package slmem_test

// Documentation gates, run by the CI docs job:
//
//   - TestExportedSymbolsDocumented enforces the godoc contract on the
//     public API surface and the service-runtime packages: every exported
//     top-level declaration (and method on an exported type) carries a doc
//     comment.
//   - TestMarkdownLinks checks that every relative link in the repo's
//     markdown files points at a file or directory that exists.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// docCheckedDirs are the packages whose exported symbols must all carry doc
// comments: the public API (root) and the service runtime layers.
var docCheckedDirs = []string{".", "internal/registry", "internal/runtime", "internal/server"}

func TestExportedSymbolsDocumented(t *testing.T) {
	for _, dir := range docCheckedDirs {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, pkg := range pkgs {
			for path, file := range pkg.Files {
				checkFileDocs(t, fset, path, file)
			}
		}
	}
}

func checkFileDocs(t *testing.T, fset *token.FileSet, path string, file *ast.File) {
	t.Helper()
	undocumented := func(pos token.Pos, what string) {
		p := fset.Position(pos)
		t.Errorf("%s:%d: exported %s has no doc comment", path, p.Line, what)
	}
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() {
				continue
			}
			// Methods count when exported, whatever their receiver; the
			// receiver type's export status only affects godoc rendering,
			// not the contract that the symbol is explained.
			if d.Doc == nil {
				kind := "function " + d.Name.Name
				if d.Recv != nil {
					kind = "method " + d.Name.Name
				}
				undocumented(d.Pos(), kind)
			}
		case *ast.GenDecl:
			// A doc comment on the grouped declaration covers every spec in
			// it (the "// Supported object kinds." const-block idiom);
			// otherwise each exported spec needs its own.
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
						undocumented(s.Pos(), "type "+s.Name.Name)
					}
				case *ast.ValueSpec:
					for _, name := range s.Names {
						if name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
							undocumented(s.Pos(), "const/var "+name.Name)
						}
					}
				}
			}
		}
	}
}

// mdLink matches markdown link targets: [text](target).
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

func TestMarkdownLinks(t *testing.T) {
	var mdFiles []string
	root, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range root {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".md") {
			mdFiles = append(mdFiles, e.Name())
		}
	}
	docs, err := filepath.Glob("docs/*.md")
	if err != nil {
		t.Fatal(err)
	}
	mdFiles = append(mdFiles, docs...)
	if len(mdFiles) < 3 {
		t.Fatalf("found only %d markdown files; link check is miswired", len(mdFiles))
	}

	for _, md := range mdFiles {
		data, err := os.ReadFile(md)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			target, _, _ = strings.Cut(target, "#")
			resolved := filepath.Join(filepath.Dir(md), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken relative link %q (%v)", md, m[1], err)
			}
		}
	}
}
