package slmem_test

import (
	"context"
	"errors"
	"strconv"
	"sync"
	"testing"

	"slmem"
	"slmem/internal/harness"
	"slmem/internal/spec"
)

func TestPooledCounterCountsEveryInc(t *testing.T) {
	const n = 4
	goroutines, incs := 16, 100
	if testing.Short() {
		goroutines, incs = 8, 40
	}
	c := slmem.NewPooledCounter(n)
	ctx := context.Background()

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < incs; i++ {
				if err := c.Inc(ctx); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	got, err := c.Read(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(goroutines * incs); got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
	if held := c.PIDs().Held(); len(held) != 0 {
		t.Fatalf("leaked pids: %v", held)
	}
}

// TestPooledCounterLinearizable records histories through the pooled counter
// path — acquire a pid, operate as that process, release — and checks each
// burst for linearizability against the sequential counter spec. A leasing
// bug that let two goroutines share a pid would corrupt the per-process
// state and show up here as a non-linearizable history (and as a data race
// under -race).
func TestPooledCounterLinearizable(t *testing.T) {
	const n = 3 // fewer pids than goroutines, so leases genuinely contend
	bursts := 30
	if testing.Short() {
		bursts = 8
	}
	pool := slmem.NewPIDPool(n)
	ctx := context.Background()

	err := harness.CheckNativeBursts(spec.Counter{}, bursts, func(burst int, rec *harness.Recorder) {
		c := slmem.NewCounter(n).Pooled(pool)
		const goroutines, ops = 8, 7 // 56 ops per burst, under lincheck's 62 cap
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			g := g
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < ops; i++ {
					err := c.PIDs().With(ctx, func(pid int) error {
						if (g+i)%3 == 0 {
							rec.Do(pid, "read()", func() string {
								return strconv.FormatUint(c.Unpooled().Read(pid), 10)
							})
							return nil
						}
						rec.Do(pid, "inc()", func() string {
							c.Unpooled().Inc(pid)
							return "ok"
						})
						return nil
					})
					if err != nil {
						t.Error(err)
						return
					}
				}
			}()
		}
		wg.Wait()
	})
	if err != nil {
		t.Fatal(err)
	}
	if held := pool.Held(); len(held) != 0 {
		t.Fatalf("leaked pids: %v", held)
	}
}

func TestPoolSnapshotScanSeesUpdates(t *testing.T) {
	const n = 4
	p := slmem.NewPool[string](n, "")
	ctx := context.Background()

	if err := p.Update(ctx, "hello"); err != nil {
		t.Fatal(err)
	}
	view, err := p.Scan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(view) != n {
		t.Fatalf("view has %d components, want %d", len(view), n)
	}
	found := false
	for _, v := range view {
		if v == "hello" {
			found = true
		}
	}
	if !found {
		t.Fatalf("update not visible in view %v", view)
	}
}

func TestSharedPoolAcrossObjects(t *testing.T) {
	const n = 4
	pool := slmem.NewPIDPool(n)
	c := slmem.NewCounter(n).Pooled(pool)
	s := slmem.NewSnapshot[uint64](n, 0).Pooled(pool)
	m := slmem.NewMaxRegister(n).Pooled(pool)
	ctx := context.Background()

	var wg sync.WaitGroup
	for g := 0; g < 12; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				switch (g + i) % 3 {
				case 0:
					if err := c.Inc(ctx); err != nil {
						t.Error(err)
					}
				case 1:
					if err := s.Update(ctx, uint64(g*100+i)); err != nil {
						t.Error(err)
					}
				default:
					if err := m.MaxWrite(ctx, uint64(g*100+i)); err != nil {
						t.Error(err)
					}
				}
			}
		}()
	}
	wg.Wait()

	if pool.InUse() != 0 {
		t.Fatalf("pids in use after quiesce: %d (%v)", pool.InUse(), pool.Held())
	}
	st := pool.Stats()
	if st.Acquires == 0 {
		t.Fatal("no acquisitions recorded")
	}
}

func TestPooledObjectExecute(t *testing.T) {
	o := slmem.NewPooledObject(slmem.SetType{}, 3)
	ctx := context.Background()

	if _, err := o.Execute(ctx, "add(7)"); err != nil {
		t.Fatal(err)
	}
	resp, err := o.Execute(ctx, "contains(7)")
	if err != nil {
		t.Fatal(err)
	}
	if resp != "true" {
		t.Fatalf("contains(7) = %q, want true", resp)
	}
}

func TestPooledOpFailsOnCancelledContext(t *testing.T) {
	c := slmem.NewPooledCounter(1)
	pid, ok := c.PIDs().TryAcquire()
	if !ok {
		t.Fatal("TryAcquire failed on fresh pool")
	}
	defer c.PIDs().Release(pid)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.Inc(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Inc error = %v, want context.Canceled", err)
	}
}

func TestPoolBatchAmortizesLease(t *testing.T) {
	p := slmem.NewPool[string](4, "")
	ctx := context.Background()
	const ops = 32

	err := p.Batch(ctx, func(h slmem.SnapshotHandle[string]) error {
		for i := 0; i < ops; i++ {
			h.Update("v" + strconv.Itoa(i))
			if view := h.Scan(); view[h.PID()] != "v"+strconv.Itoa(i) {
				return errors.New("own update not visible in scan")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.PIDs().Stats().Acquires; got != 1 {
		t.Fatalf("batch of %d ops used %d lease acquisitions, want 1", ops, got)
	}
	if got := p.PIDs().InUse(); got != 0 {
		t.Fatalf("pids in use after batch: %d", got)
	}
}

func TestPoolBatchErrorPropagatesAndReleases(t *testing.T) {
	p := slmem.NewPool[int](2, 0)
	boom := errors.New("boom")
	if err := p.Batch(context.Background(), func(h slmem.SnapshotHandle[int]) error {
		h.Update(1)
		return boom
	}); !errors.Is(err, boom) {
		t.Fatalf("Batch error = %v, want boom", err)
	}
	if got := p.PIDs().InUse(); got != 0 {
		t.Fatalf("pid leaked after failing batch: %d in use", got)
	}
}

func TestPIDPoolHolds(t *testing.T) {
	p := slmem.NewPIDPool(2)
	if p.Holds(0) || p.Holds(1) {
		t.Fatal("fresh pool holds pids")
	}
	pid, err := p.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !p.Holds(pid) {
		t.Fatalf("Holds(%d) = false while leased", pid)
	}
	p.Release(pid)
	if p.Holds(pid) {
		t.Fatalf("Holds(%d) = true after release", pid)
	}
}

func TestExecuteManyAmortizesLease(t *testing.T) {
	o := slmem.NewPooledObject(slmem.CounterType{}, 4)
	ctx := context.Background()

	invs := []string{"inc()", "inc()", "inc()", "read()"}
	resps, err := o.ExecuteMany(ctx, invs)
	if err != nil {
		t.Fatal(err)
	}
	if len(resps) != len(invs) {
		t.Fatalf("got %d responses for %d invocations", len(resps), len(invs))
	}
	if resps[3] != "3" {
		t.Fatalf("read() = %q, want 3", resps[3])
	}
	if got := o.PIDs().Stats().Acquires; got != 1 {
		t.Fatalf("ExecuteMany used %d lease acquisitions, want 1", got)
	}
	if got := o.PIDs().InUse(); got != 0 {
		t.Fatalf("pids in use after ExecuteMany: %d", got)
	}
}

func TestExecuteManyStopsAtFirstError(t *testing.T) {
	o := slmem.NewPooledObject(slmem.SetType{}, 2)
	ctx := context.Background()

	resps, err := o.ExecuteMany(ctx, []string{"add(1)", "frob(2)", "add(3)"})
	if err == nil {
		t.Fatal("bad invocation accepted")
	}
	if len(resps) != 1 {
		t.Fatalf("got %d responses before the error, want 1 (the valid prefix)", len(resps))
	}
	// The op after the failure must not have run.
	has, err := o.Execute(ctx, "contains(3)")
	if err != nil {
		t.Fatal(err)
	}
	if has != "false" {
		t.Fatal("invocation after a failed one still executed")
	}
	if got := o.PIDs().InUse(); got != 0 {
		t.Fatalf("pid leaked after failing ExecuteMany: %d in use", got)
	}
}

func TestExecuteManyCancelledContext(t *testing.T) {
	o := slmem.NewPooledObject(slmem.CounterType{}, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := o.ExecuteMany(ctx, []string{"inc()"}); !errors.Is(err, context.Canceled) {
		t.Fatalf("ExecuteMany error = %v, want context.Canceled", err)
	}
}

func TestExecuteManyEmpty(t *testing.T) {
	o := slmem.NewPooledObject(slmem.CounterType{}, 2)
	resps, err := o.ExecuteMany(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(resps) != 0 {
		t.Fatalf("empty ExecuteMany returned %d responses", len(resps))
	}
}
