// Package slmem provides lock-free strongly linearizable shared-memory
// objects built only from atomic registers, implementing the algorithms of
// "Strongly Linearizable Implementations of Snapshots and Other Types"
// (Ovens and Woelfel, PODC 2019).
//
// Strong linearizability (Golab, Higham, Woelfel 2011) strengthens
// linearizability with prefix preservation: once an operation has
// linearized, its position in the linearization order never changes. This
// is exactly the property randomized algorithms need under a strong
// adversary — with merely linearizable objects, a scheduler that sees all
// coin flips can retroactively reorder operations and skew outcome
// distributions (see examples/adversary).
//
// The package offers:
//
//   - Snapshot: the paper's bounded-space lock-free strongly linearizable
//     single-writer snapshot (Algorithm 3).
//   - ABARegister: its building block, the lock-free strongly linearizable
//     ABA-detecting register (Algorithm 2).
//   - Counter and MaxRegister: strongly linearizable types derived from the
//     snapshot (Section 4.5).
//   - Object: the Aspnes–Herlihy universal construction, turning any simple
//     type — any type whose operations pairwise commute or overwrite — into
//     a lock-free strongly linearizable implementation (Theorem 3).
//
// Concurrency model: every method takes the calling process id
// ("pid", 0 <= pid < n, fixed at construction). Each pid owns per-process
// local state, so at most one goroutine may use a given pid at a time;
// different pids may run fully concurrently. Handle is a convenience that
// binds a pid.
package slmem

import (
	"slmem/internal/aba"
	"slmem/internal/core"
	"slmem/internal/memory"
	"slmem/internal/snapshot"
	"slmem/internal/spec"
	"slmem/internal/universal"
)

// SnapshotOption configures NewSnapshot.
type SnapshotOption func(*snapshotConfig)

type snapshotConfig struct {
	waitFreeSubstrate bool
}

// WithWaitFreeSubstrate selects the wait-free Afek-style linearizable
// snapshot as the substrate S instead of the default lock-free
// double-collect one. Updates become wait-free at the cost of an embedded
// scan per update; the composed object remains lock-free overall (its scans
// still retry under contention on R).
func WithWaitFreeSubstrate() SnapshotOption {
	return func(c *snapshotConfig) { c.waitFreeSubstrate = true }
}

// Snapshot is a lock-free strongly linearizable single-writer snapshot: an
// n-component vector where component p is writable only by process p and
// Scan returns a consistent view of all components. It uses a bounded
// number of registers (paper Theorem 2).
type Snapshot[V comparable] struct {
	inner *core.Snapshot[V]
}

// NewSnapshot constructs a snapshot for n processes with every component
// initialized to initial.
func NewSnapshot[V comparable](n int, initial V, opts ...SnapshotOption) *Snapshot[V] {
	var cfg snapshotConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	var alloc memory.NativeAllocator
	if !cfg.waitFreeSubstrate {
		return &Snapshot[V]{inner: core.New[V](&alloc, n, initial)}
	}
	s := snapshot.NewAfek[V](&alloc, n, initial)
	initView := make([]V, n)
	for i := range initView {
		initView[i] = initial
	}
	r := aba.NewStrongFunc(&alloc, n, initView, func(a, b []V) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	})
	return &Snapshot[V]{inner: core.NewWith[V](n, s, r)}
}

// Update sets component pid to x, as process pid. Wait-free given a
// wait-free substrate; a constant number of substrate operations.
func (s *Snapshot[V]) Update(pid int, x V) { s.inner.Update(pid, x) }

// Scan returns a copy of the component vector, as process pid. Lock-free.
func (s *Snapshot[V]) Scan(pid int) []V { return s.inner.Scan(pid) }

// Handle binds a process id for convenience.
func (s *Snapshot[V]) Handle(pid int) SnapshotHandle[V] {
	return SnapshotHandle[V]{s: s, pid: pid}
}

// SnapshotHandle is a Snapshot bound to one process id. At most one
// goroutine may use a handle (and its pid) at a time.
type SnapshotHandle[V comparable] struct {
	s   *Snapshot[V]
	pid int
}

// Update sets this process's component to x.
func (h SnapshotHandle[V]) Update(x V) { h.s.Update(h.pid, x) }

// Scan returns a copy of the component vector.
func (h SnapshotHandle[V]) Scan() []V { return h.s.Scan(h.pid) }

// PID returns the bound process id.
func (h SnapshotHandle[V]) PID() int { return h.pid }

// ABARegister is a lock-free strongly linearizable ABA-detecting register
// (paper Theorem 1): a register whose DRead additionally reports whether any
// DWrite occurred since the calling process's previous DRead — even if the
// value is unchanged (the ABA problem).
type ABARegister[V comparable] struct {
	inner *aba.Strong[V]
}

// NewABARegister constructs an ABA-detecting register for n processes,
// initialized to initial.
func NewABARegister[V comparable](n int, initial V) *ABARegister[V] {
	var alloc memory.NativeAllocator
	return &ABARegister[V]{inner: aba.NewStrong[V](&alloc, n, initial)}
}

// DWrite writes x as process pid. Wait-free: exactly two shared steps.
func (r *ABARegister[V]) DWrite(pid int, x V) { r.inner.DWrite(pid, x) }

// DRead returns the current value and whether any DWrite happened since
// this process's previous DRead (or since initialization). Lock-free.
func (r *ABARegister[V]) DRead(pid int) (V, bool) { return r.inner.DRead(pid) }

// Counter is a lock-free strongly linearizable counter using a bounded
// number of registers (paper Section 4.5).
type Counter struct {
	inner *core.Counter
}

// NewCounter constructs a counter for n processes, starting at zero.
func NewCounter(n int) *Counter {
	var alloc memory.NativeAllocator
	return &Counter{inner: core.NewCounter(&alloc, n)}
}

// Inc increments the counter as process pid.
func (c *Counter) Inc(pid int) { c.inner.Inc(pid) }

// Read returns the current count as process pid.
func (c *Counter) Read(pid int) uint64 { return c.inner.Read(pid) }

// MaxRegister is a lock-free strongly linearizable unbounded max-register
// using a bounded number of registers (paper Section 4.5).
type MaxRegister struct {
	inner *core.MaxRegister
}

// NewMaxRegister constructs a max-register for n processes, initially 0.
func NewMaxRegister(n int) *MaxRegister {
	var alloc memory.NativeAllocator
	return &MaxRegister{inner: core.NewMaxRegister(&alloc, n)}
}

// MaxWrite raises the register to v if v exceeds its current value.
func (m *MaxRegister) MaxWrite(pid int, v uint64) { m.inner.MaxWrite(pid, v) }

// MaxRead returns the largest value ever written.
func (m *MaxRegister) MaxRead(pid int) uint64 { return m.inner.MaxRead(pid) }

// Spec is a deterministic sequential specification: a state machine over
// canonical string states, invocations (e.g. "add(x)"), and responses.
type Spec = spec.Spec

// SimpleType describes a simple type (paper Definition 33): a sequential
// specification plus the commute/overwrite calculus over invocations. Every
// simple type gets a lock-free strongly linearizable implementation through
// NewObject (paper Theorem 3).
type SimpleType = universal.Type

// Provided simple types for NewObject.
type (
	// CounterType: inc()/read().
	CounterType = universal.CounterType
	// SetType: add(x)/contains(x), a grow-only set.
	SetType = universal.SetType
	// AccumulatorType: addTo(x)/read(), a commutative integer accumulator.
	AccumulatorType = universal.AccumulatorType
	// MaxRegType: maxWrite(x)/maxRead().
	MaxRegType = universal.MaxRegType
	// RegisterType: write(x)/read(), a multi-writer register.
	RegisterType = universal.RegisterType
	// SnapshotType: update(x)/scan() over N single-writer components.
	SnapshotType = universal.SnapshotType
	// FuncType builds a custom simple type from closures; pair it with
	// FuncSpec for the sequential specification. Validate custom types with
	// ValidateSimple before use.
	FuncType = universal.FuncType
	// FuncSpec builds a sequential specification from closures.
	FuncSpec = universal.FuncSpec
)

// Object is a lock-free strongly linearizable implementation of a simple
// type via the Aspnes–Herlihy universal construction over the strongly
// linearizable snapshot. By default the shared history grows with every
// operation (the construction is wait-free but not bounded wait-free);
// SetGC bounds it by low-watermark truncation.
type Object struct {
	inner *universal.Object
}

// NewObject constructs an implementation of the simple type for n processes.
func NewObject(t SimpleType, n int) *Object {
	var alloc memory.NativeAllocator
	return &Object{inner: universal.New(&alloc, t, n)}
}

// Execute performs the invocation (e.g. "add(x)") as process pid and
// returns its response. A process-local replay cache amortizes the cost to
// the number of operations since this process's previous one, instead of
// the whole history length.
func (o *Object) Execute(pid int, invocation string) (string, error) {
	return o.inner.Execute(pid, invocation)
}

// SetCaching enables or disables the replay cache (enabled by default); see
// the internal/universal package docs. Disabling forces every Execute
// through the full history replay — useful only for measurements and
// differential testing. Must not be called concurrently with Execute.
func (o *Object) SetCaching(on bool) { o.inner.SetCaching(on) }

// ObjectCacheStats counts replay-cache hits (delta replays), misses
// (full-history fallbacks), and durable re-anchors across an Object's
// processes.
type ObjectCacheStats = universal.CacheStats

// CacheStats returns the replay-cache hit/miss counters.
func (o *Object) CacheStats() ObjectCacheStats { return o.inner.CacheStats() }

// ObjectGCOptions configures an Object's precedence-graph garbage
// collection; see SetGC.
type ObjectGCOptions = universal.GCOptions

// ObjectGCStats describes an Object's garbage-collection progress; see
// GCStats.
type ObjectGCStats = universal.GCStats

// DefaultObjectGCWindow is the per-process collection window SetGC uses
// when ObjectGCOptions.Window is unset.
const DefaultObjectGCWindow = universal.DefaultGCWindow

// SetGC bounds the object's memory: completed operations below every
// process's low watermark are folded into a checkpointed root state and
// their history nodes reclaimed, preserving strong linearizability (the
// truncated prefix is an exact prefix of every future linearization). Like
// SetCaching it must not be called concurrently with Execute; unlike
// caching it cannot be undone — calling SetGC again only retunes the
// window. Note a process that stops executing pins collection at its last
// watermark.
func (o *Object) SetGC(opts ObjectGCOptions) { o.inner.SetGC(opts) }

// GCEnabled reports whether SetGC has enabled history truncation.
func (o *Object) GCEnabled() bool { return o.inner.GCEnabled() }

// GCStats returns garbage-collection progress, reading as process pid
// (same pid ownership rules as Execute). With GC disabled only LiveNodes
// is populated, with the full history size.
func (o *Object) GCStats(pid int) ObjectGCStats { return o.inner.GCStats(pid) }

// BeginBatch enters deferred re-anchoring for process pid: until EndBatch,
// Execute calls by pid update the replay cache without writing a durable
// checkpoint, so a long single-process run re-anchors once instead of per
// operation. Pair with EndBatch; same pid ownership rules as Execute.
func (o *Object) BeginBatch(pid int) { o.inner.BeginBatch(pid) }

// EndBatch leaves deferred re-anchoring for pid and writes the one durable
// checkpoint covering the batch.
func (o *Object) EndBatch(pid int) { o.inner.EndBatch(pid) }

// ValidateSimple checks that the type's invocations pairwise commute or
// overwrite (Definition 33) over the given invocation and pid samples.
func ValidateSimple(t SimpleType, invocations []string, pids []int) error {
	return universal.ValidateSimple(t, invocations, pids)
}

// Bot is the canonical encoding of an unset value (the paper's ⊥) used by
// the string-typed specifications.
const Bot = spec.Bot
