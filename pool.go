package slmem

import (
	"context"
	"fmt"

	"slmem/internal/runtime"
)

// PIDPool leases process ids from the fixed pool 0..n-1, bridging the
// paper's model (n processes with pre-assigned ids) to ordinary Go programs
// where goroutines come and go. Acquire a pid, perform operations as that
// process, and release it; or use the Pooled* wrappers, which lease around
// every operation automatically.
//
// The pool guarantees the ownership invariant the objects rely on: a pid is
// held by at most one goroutine between Acquire and Release (misuse panics).
// Acquisition has a striped fast path and blocks FIFO — with context
// cancellation — when all n ids are leased.
type PIDPool struct {
	l *runtime.Leaser
}

// NewPIDPool constructs a pool over process ids 0..n-1.
func NewPIDPool(n int) *PIDPool {
	return &PIDPool{l: runtime.NewLeaser(n)}
}

// Acquire leases a pid, blocking while all are leased; it returns ctx.Err()
// if the context is cancelled first.
func (p *PIDPool) Acquire(ctx context.Context) (int, error) { return p.l.Acquire(ctx) }

// TryAcquire leases a pid without blocking, reporting false if none is free.
func (p *PIDPool) TryAcquire() (int, bool) { return p.l.TryAcquire() }

// Release returns a leased pid. Releasing a pid that is not leased panics.
func (p *PIDPool) Release(pid int) { p.l.Release(pid) }

// Holds reports whether pid is currently leased. Batch executors that reuse
// one lease across many operations assert this between operations to catch
// a step that gave up the pid it was handed.
func (p *PIDPool) Holds(pid int) bool { return p.l.Holds(pid) }

// With leases a pid around fn, releasing it even if fn panics.
func (p *PIDPool) With(ctx context.Context, fn func(pid int) error) error {
	return p.l.With(ctx, fn)
}

// Size returns n, the number of process ids managed.
func (p *PIDPool) Size() int { return p.l.Size() }

// InUse returns how many pids are currently leased.
func (p *PIDPool) InUse() int { return p.l.InUse() }

// Held returns the currently leased pids (a point-in-time snapshot), for
// leak detection in tests and diagnostics.
func (p *PIDPool) Held() []int { return p.l.Held() }

// Stats reports monotone acquisition counters.
func (p *PIDPool) Stats() PoolStats {
	s := p.l.Stats()
	return PoolStats{
		Acquires: s.Acquires,
		FastPath: s.FastPath,
		Steals:   s.Steals,
		Blocks:   s.Blocks,
		Cancels:  s.Cancels,
	}
}

// PoolStats are monotone counters describing how acquisitions were served.
type PoolStats struct {
	// Acquires counts successful lease acquisitions.
	Acquires int64 `json:"acquires"`
	// FastPath counts acquisitions served by the acquirer's home stripe.
	FastPath int64 `json:"fast_path"`
	// Steals counts acquisitions served by another stripe.
	Steals int64 `json:"steals"`
	// Blocks counts acquisitions that queued behind an exhausted pool.
	Blocks int64 `json:"blocks"`
	// Cancels counts acquisitions abandoned via context.
	Cancels int64 `json:"cancels"`
}

// Pool is a Snapshot whose operations lease a pid per call, so any goroutine
// may use it without pid management. Update writes the component owned by
// the leased pid: the pooled snapshot is a board of n single-writer slots
// written by whichever goroutine holds the slot's lease, not a map from
// goroutines to fixed slots. Scan still returns a consistent view of all
// components.
//
// Strong-linearizability contract: every pooled operation runs as the leased
// process and inherits the underlying snapshot's strong linearizability —
// once it linearizes, its position in the linearization order is fixed. The
// lease itself adds no ordering between calls: two pooled calls by the same
// goroutine may run as different pids (use Batch for a single-process
// sequence).
type Pool[V comparable] struct {
	s    *Snapshot[V]
	pids *PIDPool
}

// NewPool constructs a pooled snapshot for n processes, every component
// initialized to initial.
func NewPool[V comparable](n int, initial V, opts ...SnapshotOption) *Pool[V] {
	return NewSnapshot[V](n, initial, opts...).Pooled(NewPIDPool(n))
}

// Pooled binds the snapshot to a pid pool (sized for the same n). Use a
// shared pool to lease pids across several objects backed by the same
// process set.
func (s *Snapshot[V]) Pooled(p *PIDPool) *Pool[V] { return &Pool[V]{s: s, pids: p} }

// Update leases a pid and sets that pid's component to x.
func (p *Pool[V]) Update(ctx context.Context, x V) error {
	return p.pids.With(ctx, func(pid int) error {
		p.s.Update(pid, x)
		return nil
	})
}

// Scan leases a pid and returns a consistent copy of the component vector.
func (p *Pool[V]) Scan(ctx context.Context) ([]V, error) {
	var view []V
	err := p.pids.With(ctx, func(pid int) error {
		view = p.s.Scan(pid)
		return nil
	})
	return view, err
}

// Batch leases one pid and runs fn with a handle bound to it, amortizing the
// lease over every operation fn performs. The operations execute as one
// process's sequence: each Update and Scan is individually strongly
// linearizable, but the batch as a whole is not atomic — operations of other
// processes may linearize between them. fn must not retain the handle after
// it returns; the pid goes back to the pool (even if fn panics).
func (p *Pool[V]) Batch(ctx context.Context, fn func(h SnapshotHandle[V]) error) error {
	return p.pids.With(ctx, func(pid int) error {
		return fn(p.s.Handle(pid))
	})
}

// Unpooled returns the underlying Snapshot.
func (p *Pool[V]) Unpooled() *Snapshot[V] { return p.s }

// PIDs returns the pool of process ids backing this object.
func (p *Pool[V]) PIDs() *PIDPool { return p.pids }

// PooledCounter is a Counter whose operations lease a pid per call, so any
// goroutine may increment and read it without pid management. Each Inc and
// Read is strongly linearizable: it runs as the leased process against the
// paper's snapshot-derived counter, and once linearized its position in the
// order never changes.
type PooledCounter struct {
	c    *Counter
	pids *PIDPool
}

// NewPooledCounter constructs a counter for n processes with its own pool.
func NewPooledCounter(n int) *PooledCounter {
	return NewCounter(n).Pooled(NewPIDPool(n))
}

// Pooled binds the counter to a pid pool (sized for the same n).
func (c *Counter) Pooled(p *PIDPool) *PooledCounter { return &PooledCounter{c: c, pids: p} }

// Inc leases a pid and increments the counter.
func (c *PooledCounter) Inc(ctx context.Context) error {
	return c.pids.With(ctx, func(pid int) error {
		c.c.Inc(pid)
		return nil
	})
}

// Read leases a pid and returns the current count.
func (c *PooledCounter) Read(ctx context.Context) (uint64, error) {
	var v uint64
	err := c.pids.With(ctx, func(pid int) error {
		v = c.c.Read(pid)
		return nil
	})
	return v, err
}

// Unpooled returns the underlying Counter.
func (c *PooledCounter) Unpooled() *Counter { return c.c }

// PIDs returns the pool of process ids backing this object.
func (c *PooledCounter) PIDs() *PIDPool { return c.pids }

// PooledMaxRegister is a MaxRegister whose operations lease a pid per call.
// Each MaxWrite and MaxRead is strongly linearizable, running as the leased
// process against the snapshot-derived max-register.
type PooledMaxRegister struct {
	m    *MaxRegister
	pids *PIDPool
}

// NewPooledMaxRegister constructs a max-register for n processes with its
// own pool.
func NewPooledMaxRegister(n int) *PooledMaxRegister {
	return NewMaxRegister(n).Pooled(NewPIDPool(n))
}

// Pooled binds the max-register to a pid pool (sized for the same n).
func (m *MaxRegister) Pooled(p *PIDPool) *PooledMaxRegister {
	return &PooledMaxRegister{m: m, pids: p}
}

// MaxWrite leases a pid and raises the register to v if v exceeds its
// current value.
func (m *PooledMaxRegister) MaxWrite(ctx context.Context, v uint64) error {
	return m.pids.With(ctx, func(pid int) error {
		m.m.MaxWrite(pid, v)
		return nil
	})
}

// MaxRead leases a pid and returns the largest value ever written.
func (m *PooledMaxRegister) MaxRead(ctx context.Context) (uint64, error) {
	var v uint64
	err := m.pids.With(ctx, func(pid int) error {
		v = m.m.MaxRead(pid)
		return nil
	})
	return v, err
}

// Unpooled returns the underlying MaxRegister.
func (m *PooledMaxRegister) Unpooled() *MaxRegister { return m.m }

// PIDs returns the pool of process ids backing this object.
func (m *PooledMaxRegister) PIDs() *PIDPool { return m.pids }

// PooledObject is an Object (universal construction) whose Execute leases a
// pid per call. Each invocation is strongly linearizable (Theorem 3);
// ExecuteMany amortizes one lease over a whole sequence of invocations.
type PooledObject struct {
	o    *Object
	pids *PIDPool
}

// NewPooledObject constructs an implementation of the simple type for n
// processes with its own pool.
func NewPooledObject(t SimpleType, n int) *PooledObject {
	return NewObject(t, n).Pooled(NewPIDPool(n))
}

// Pooled binds the object to a pid pool (sized for the same n).
func (o *Object) Pooled(p *PIDPool) *PooledObject { return &PooledObject{o: o, pids: p} }

// Execute leases a pid and performs the invocation (e.g. "add(x)"),
// returning its response.
func (o *PooledObject) Execute(ctx context.Context, invocation string) (string, error) {
	var resp string
	err := o.pids.With(ctx, func(pid int) error {
		var err error
		resp, err = o.o.Execute(pid, invocation)
		return err
	})
	return resp, err
}

// ExecuteMany leases one pid and performs the invocations in order as that
// process, amortizing the lease — and, via BeginBatch/EndBatch, the replay
// cache's durable re-anchor — over the whole slice. Each invocation is
// individually strongly linearizable; the batch as a whole is not atomic —
// other processes' operations may linearize between consecutive invocations.
// It stops at the first failing invocation (or at context cancellation
// between invocations) and returns the responses collected so far alongside
// the error, so callers know exactly which prefix took effect.
func (o *PooledObject) ExecuteMany(ctx context.Context, invocations []string) ([]string, error) {
	resps := make([]string, 0, len(invocations))
	err := o.pids.With(ctx, func(pid int) error {
		o.o.BeginBatch(pid)
		defer o.o.EndBatch(pid)
		for i, inv := range invocations {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("batch cancelled before invocation %d: %w", i, err)
			}
			resp, err := o.o.Execute(pid, inv)
			if err != nil {
				return fmt.Errorf("invocation %d %q: %w", i, inv, err)
			}
			resps = append(resps, resp)
		}
		return nil
	})
	return resps, err
}

// GCStats leases a pid and returns the object's garbage-collection
// progress; see Object.GCStats.
func (o *PooledObject) GCStats(ctx context.Context) (ObjectGCStats, error) {
	var stats ObjectGCStats
	err := o.pids.With(ctx, func(pid int) error {
		stats = o.o.GCStats(pid)
		return nil
	})
	return stats, err
}

// Unpooled returns the underlying Object.
func (o *PooledObject) Unpooled() *Object { return o.o }

// PIDs returns the pool of process ids backing this object.
func (o *PooledObject) PIDs() *PIDPool { return o.pids }
