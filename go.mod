module slmem

go 1.24
