package slmem

import (
	"fmt"
	"sync"
	"testing"
)

func TestWithWaitFreeSubstrate(t *testing.T) {
	s := NewSnapshot[string](3, "", WithWaitFreeSubstrate())
	s.Update(0, "a")
	s.Update(2, "c")
	view := s.Scan(1)
	if view[0] != "a" || view[1] != "" || view[2] != "c" {
		t.Errorf("view = %v", view)
	}
}

func TestWithWaitFreeSubstrateConcurrentSoak(t *testing.T) {
	const n, rounds = 4, 150
	s := NewSnapshot[int](n, 0, WithWaitFreeSubstrate())
	var wg sync.WaitGroup
	for pid := 0; pid < n; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			last := make([]int, n)
			for i := 1; i <= rounds; i++ {
				s.Update(pid, i)
				view := s.Scan(pid)
				if view[pid] < i {
					t.Errorf("p%d: own progress lost: %v", pid, view)
					return
				}
				for q, v := range view {
					if v < last[q] {
						t.Errorf("p%d: component %d regressed %d -> %d", pid, q, last[q], v)
						return
					}
					last[q] = v
				}
			}
		}(pid)
	}
	wg.Wait()
}

func TestOptionsDoNotInterfere(t *testing.T) {
	// Both substrate choices must agree on sequential behaviour.
	for _, opts := range [][]SnapshotOption{nil, {WithWaitFreeSubstrate()}} {
		s := NewSnapshot[string](2, "-", opts...)
		s.Update(0, "x")
		s.Update(1, "y")
		s.Update(0, "z")
		view := s.Scan(0)
		if fmt.Sprint(view) != "[z y]" {
			t.Errorf("opts=%v: view = %v", opts, view)
		}
	}
}
