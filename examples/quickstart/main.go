// Quickstart: a strongly linearizable snapshot shared by real goroutines.
//
// Each worker owns one snapshot component (single-writer), repeatedly
// publishes its progress, and scans to observe a consistent global view.
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"sync"

	"slmem"
)

func main() {
	const n = 4
	snap := slmem.NewSnapshot[int](n, 0)

	var wg sync.WaitGroup
	for pid := 0; pid < n; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			h := snap.Handle(pid)
			for step := 1; step <= 1000; step++ {
				h.Update(step)

				// Every scan is a consistent cut of all workers' progress:
				// the vector existed at one moment in the linearization.
				view := h.Scan()
				if view[pid] < step {
					panic(fmt.Sprintf("worker %d: own progress lost from view %v", pid, view))
				}
			}
		}(pid)
	}
	wg.Wait()

	final := snap.Scan(0)
	fmt.Println("final consistent view:", final)

	total := 0
	for _, v := range final {
		total += v
	}
	fmt.Printf("all %d workers finished; combined progress %d\n", n, total)

	// The same snapshot also powers derived strongly linearizable types.
	ctr := slmem.NewCounter(n)
	var wg2 sync.WaitGroup
	for pid := 0; pid < n; pid++ {
		wg2.Add(1)
		go func(pid int) {
			defer wg2.Done()
			for i := 0; i < 250; i++ {
				ctr.Inc(pid)
			}
		}(pid)
	}
	wg2.Wait()
	fmt.Println("strongly linearizable counter:", ctr.Read(0)) // 1000
}
