// Universal construction: any simple type, strongly linearizable, from
// registers (paper Section 5, Theorem 3).
//
// A type is "simple" when every pair of operations either commutes or one
// overwrites the other. The Aspnes–Herlihy construction turns any such type
// into a wait-free implementation by maintaining a shared precedence graph
// of operations; with the strongly linearizable snapshot of this library as
// its root, the result is strongly linearizable.
//
// Run with: go run ./examples/universal
package main

import (
	"fmt"
	"sync"

	"slmem"
)

func main() {
	// First, the calculus: which types are simple?
	fmt.Println("simple-type validation:")
	for _, tc := range []struct {
		t   slmem.SimpleType
		ops []string
	}{
		{slmem.CounterType{}, []string{"inc()", "read()"}},
		{slmem.SetType{}, []string{"add(a)", "add(b)", "contains(a)"}},
		{slmem.AccumulatorType{}, []string{"addTo(3)", "addTo(-1)", "read()"}},
		{slmem.RegisterType{}, []string{"write(x)", "write(y)", "read()"}},
	} {
		err := slmem.ValidateSimple(tc.t, tc.ops, []int{0, 1, 2})
		fmt.Printf("  %-12s simple: %v\n", tc.t.Name(), err == nil)
	}

	// A grow-only set, used concurrently by three goroutines.
	const n = 3
	set := slmem.NewObject(slmem.SetType{}, n)
	var wg sync.WaitGroup
	for pid := 0; pid < n; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				item := fmt.Sprintf("item%d.%d", pid, i)
				if _, err := set.Execute(pid, "add("+item+")"); err != nil {
					panic(err)
				}
			}
		}(pid)
	}
	wg.Wait()

	found := 0
	for pid := 0; pid < n; pid++ {
		for i := 0; i < 5; i++ {
			item := fmt.Sprintf("item%d.%d", pid, i)
			resp, err := set.Execute(0, "contains("+item+")")
			if err != nil {
				panic(err)
			}
			if resp == "true" {
				found++
			}
		}
	}
	fmt.Printf("\ngrow-only set via the construction: %d/15 items present\n", found)

	// A counter: inc() operations commute, so concurrent increments are
	// never lost.
	ctr := slmem.NewObject(slmem.CounterType{}, n)
	var wg2 sync.WaitGroup
	for pid := 0; pid < n; pid++ {
		wg2.Add(1)
		go func(pid int) {
			defer wg2.Done()
			for i := 0; i < 10; i++ {
				if _, err := ctr.Execute(pid, "inc()"); err != nil {
					panic(err)
				}
			}
		}(pid)
	}
	wg2.Wait()
	count, _ := ctr.Execute(0, "read()")
	fmt.Printf("counter via the construction: %s increments (expected 30)\n", count)

	// The flip side (paper Section 5.3): the shared precedence graph keeps
	// every operation, so per-operation cost grows with history. The library
	// types (slmem.NewCounter etc.) avoid this; use the construction for
	// types without a direct implementation.
	fmt.Println("\nnote: the construction stores its whole history — operations slow down over time;")
	fmt.Println("prefer the direct snapshot-derived types where they exist")
}
