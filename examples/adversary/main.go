// Strong adversary demo: why linearizability is not enough for randomized
// algorithms, and what strong linearizability fixes.
//
// Golab, Higham, and Woelfel showed that replacing atomic objects with
// merely linearizable ones lets a strong adversary — a scheduler that sees
// every coin flip — skew the outcome distribution of randomized algorithms.
// The mechanism is retroactive reordering: with a linearizable-only object,
// the committed past of an execution prefix can still depend on the future,
// so the adversary can flip a coin first and pick the past afterwards.
//
// This demo replays the paper's Observation 4 on the linearizable
// ABA-detecting register (Algorithm 1): after one shared prefix S, the
// adversary can choose between two continuations whose responses force
// contradictory linearizations of S itself — the reading operation dr1
// either covered writes dw2..dw5 or preceded dw2, decided retroactively.
// The strongly linearizable register (Algorithm 2) makes this impossible:
// every branching future of every prefix stays consistent with one
// committed past (verified here by the strong-linearizability checker).
//
// Run with: go run ./examples/adversary
package main

import (
	"fmt"
	"math/rand"

	"slmem/internal/harness"
	"slmem/internal/lincheck"
	"slmem/internal/sched"
	"slmem/internal/spec"
)

func main() {
	sp := spec.ABARegister{N: 2}

	fmt.Println("=== Algorithm 1 (linearizable only): the adversary rewrites history ===")
	tree, err := harness.Observation4Tree()
	if err != nil {
		panic(err)
	}

	// The adversary pauses the reader mid-operation (prefix S), flips a
	// coin, and picks the continuation afterwards.
	rng := rand.New(rand.NewSource(2019))
	coin := rng.Intn(2)
	fmt.Printf("prefix S executed; reader's dr1 paused mid-operation; adversary flips coin: %d\n", coin)
	chosen := tree.Children[coin]
	fmt.Printf("adversary chooses continuation T%d; dr2 returns %s\n\n", coin+1, lastRes(chosen))

	// Each continuation alone is perfectly linearizable...
	for i, child := range tree.Children {
		chk, err := lincheck.CheckTranscript(child.T, sp)
		if err != nil {
			panic(err)
		}
		// ...but it forces a specific linearization of the shared prefix.
		single := &lincheck.Node{Label: "S", H: tree.T.Interpreted()}
		single.Children = []*lincheck.Node{{Label: "T", H: child.T.Interpreted()}}
		strong, err := lincheck.CheckStrong(single, sp)
		if err != nil {
			panic(err)
		}
		fmt.Printf("T%d alone: linearizable=%v; it forces the prefix history f(S) = %s\n",
			i+1, chk.Ok, strong.Witness["S"])
	}

	both, err := lincheck.CheckStrong(lincheck.FromSchedTree(tree), sp)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nboth futures from the SAME prefix simultaneously consistent? %v\n", both.Ok)
	fmt.Println("=> the committed past depended on a coin flipped after the fact.")
	fmt.Println("   Under a strong adversary this is exactly what skews outcome distributions.")

	fmt.Println("\n=== Algorithm 2 (strongly linearizable): the past is committed ===")
	trials, violations := 40, 0
	sys := harness.Observation4System(harness.ABAStrong)
	for seed := int64(0); seed < int64(trials); seed++ {
		bt, err := harness.RandomBranchTree(sys, seed, 8, 3)
		if err != nil {
			panic(err)
		}
		res, err := lincheck.CheckStrong(lincheck.FromSchedTree(bt), sp)
		if err != nil {
			panic(err)
		}
		if !res.Ok {
			violations++
		}
	}
	fmt.Printf("random branching futures tested: %d prefixes × 3 continuations; retroactive rewrites: %d\n",
		trials, violations)
	fmt.Println("=> whatever the adversary schedules, operations linearize at fixed points;")
	fmt.Println("   coin flips seen later cannot move them (prefix preservation, paper Thm. 12).")
}

func lastRes(node *sched.TreeNode) string {
	res := ""
	for _, op := range node.T.Interpreted().Ops {
		if op.Complete() && op.Desc == "DRead()" {
			res = op.Res
		}
	}
	return res
}
