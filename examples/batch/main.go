// Batch pipeline demo: the same workload through the per-request path and
// through POST /v1/batch, plus the library-level batch wrappers.
//
// Every single-operation HTTP request pays one pid lease and one JSON round
// trip. The batch endpoint runs a whole array of operations under ONE lease
// in ONE request, so the coordination cost amortizes across the batch —
// while each operation stays individually strongly linearizable (the batch
// itself is not atomic; see docs/ARCHITECTURE.md).
//
// Run with: go run ./examples/batch
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"slmem"
	"slmem/internal/registry"
	"slmem/internal/server"
)

const (
	procs     = 8
	totalOps  = 2048
	batchSize = 64
)

func main() {
	srv := server.New(registry.Options{Procs: procs, Shards: 8})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()
	client := &http.Client{}

	// --- Per-request path: one lease + one round trip per op. ---------------
	start := time.Now()
	for i := 0; i < totalOps; i++ {
		res, err := client.Post(base+"/v1/counter/perop/inc", "application/json", nil)
		if err != nil {
			log.Fatal(err)
		}
		res.Body.Close()
	}
	perOp := time.Since(start)

	// --- Batched path: the same ops, batchSize per request. -----------------
	entries := make([]server.BatchEntry, batchSize)
	for i := range entries {
		entries[i] = server.BatchEntry{Kind: registry.KindCounter, Name: "batched", Op: registry.OpInc}
	}
	body, err := json.Marshal(entries)
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	for done := 0; done < totalOps; done += batchSize {
		res, err := client.Post(base+"/v1/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		var reply server.BatchResponse
		if err := json.NewDecoder(res.Body).Decode(&reply); err != nil {
			log.Fatal(err)
		}
		res.Body.Close()
		if !reply.OK {
			log.Fatalf("batch failed: %+v", reply)
		}
		if reply.Stats.Leases != 1 {
			log.Fatalf("batch of %d ops used %d leases, want 1", batchSize, reply.Stats.Leases)
		}
	}
	batched := time.Since(start)

	st := srv.Stats()
	fmt.Printf("per-request: %d ops in %v (%.0f ns/op)\n",
		totalOps, perOp.Round(time.Millisecond), float64(perOp.Nanoseconds())/totalOps)
	fmt.Printf("batched:     %d ops in %v (%.0f ns/op), %d ops/request\n",
		totalOps, batched.Round(time.Millisecond), float64(batched.Nanoseconds())/totalOps, batchSize)
	fmt.Printf("speedup: %.1fx; server saw %d requests, %d batches, %d batch ops\n",
		float64(perOp.Nanoseconds())/float64(batched.Nanoseconds()),
		st.Requests, st.Batches, st.BatchOps)
	fmt.Printf("lease acquisitions: %d for %d operations\n",
		st.Registry.Pool.Acquires, st.Ops["counter"])

	// Both counters must have every increment: batching changes the cost,
	// never the strong-linearizability guarantee.
	for _, name := range []string{"perop", "batched"} {
		res, err := client.Post(base+"/v1/counter/"+name+"/read", "application/json", nil)
		if err != nil {
			log.Fatal(err)
		}
		var r server.Response
		if err := json.NewDecoder(res.Body).Decode(&r); err != nil {
			log.Fatal(err)
		}
		res.Body.Close()
		if r.Value != fmt.Sprint(totalOps) {
			log.Fatalf("counter %s = %s, want %d (lost increments)", name, r.Value, totalOps)
		}
		fmt.Printf("counter/%s = %s ✓\n", name, r.Value)
	}

	// --- The same amortization without the server: library wrappers. --------
	ctx := context.Background()
	pool := slmem.NewPool[string](procs, "")
	if err := pool.Batch(ctx, func(h slmem.SnapshotHandle[string]) error {
		for i := 0; i < 100; i++ {
			h.Update(fmt.Sprintf("step-%d", i))
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Pool.Batch: 100 updates, %d lease acquisition(s)\n", pool.PIDs().Stats().Acquires)

	obj := slmem.NewPooledObject(slmem.AccumulatorType{}, procs)
	invs := make([]string, 0, 11)
	for i := 1; i <= 10; i++ {
		invs = append(invs, fmt.Sprintf("addTo(%d)", i))
	}
	invs = append(invs, "read()")
	resps, err := obj.ExecuteMany(ctx, invs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ExecuteMany: sum 1..10 = %s, %d lease acquisition(s)\n",
		resps[len(resps)-1], obj.PIDs().Stats().Acquires)
}
