// ABA detection: why compare-by-value is not enough.
//
// A classic lock-free pattern reads a location, computes, and commits only
// if the location still holds the read value. If the value changed A -> B
// -> A in between, the comparison passes even though the world moved — the
// ABA problem. An ABA-detecting register (paper Section 3) closes the gap:
// DRead additionally reports whether ANY write happened since this
// process's previous DRead.
//
// Run with: go run ./examples/abadetect
package main

import (
	"fmt"

	"slmem"
)

func main() {
	const (
		reader = 0
		writer = 1
	)
	reg := slmem.NewABARegister[string](2, "A")

	// The reader observes "A".
	v1, _ := reg.DRead(reader)
	fmt.Printf("reader observes %q and starts computing...\n", v1)

	// Meanwhile the value changes to "B" and back to "A".
	reg.DWrite(writer, "B")
	reg.DWrite(writer, "A")
	fmt.Println("writer: A -> B -> A (value restored)")

	// A naive value comparison is fooled:
	v2, changed := reg.DRead(reader)
	fmt.Printf("naive check:        value unchanged? %v (%q == %q)\n", v1 == v2, v1, v2)
	fmt.Printf("ABA-detecting read: modified since my last read? %v\n", changed)

	if v1 == v2 && changed {
		fmt.Println("=> the register exposed the hidden A->B->A, the naive check missed it")
	}

	// Quiescence: with no further writes, the flag goes back to false.
	_, changed = reg.DRead(reader)
	fmt.Printf("next read with no writes in between: modified? %v\n", changed)

	// Each process tracks its own reads: a second reader that never read
	// before sees the full history as "modified since initialization".
	reg2 := slmem.NewABARegister[int](3, 0)
	reg2.DWrite(2, 42)
	_, firstReadFlag := reg2.DRead(1)
	fmt.Printf("fresh process's first read after any write: modified? %v\n", firstReadFlag)
}
