// Service demo: an in-process slserve instance under a swarm of HTTP
// clients.
//
// The paper's objects assume n processes with fixed ids; the service
// runtime (internal/runtime, internal/registry, internal/server) bridges
// that model to an open system. Here 48 clients — six times the pid pool —
// hammer one shared counter and one shared snapshot over real HTTP. The
// counter loses no increments even though every request transits the lease
// pool, and the stats show how acquisitions were served (fast path, stolen
// from another stripe, or queued).
//
// Run with: go run ./examples/service
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"
	"time"

	"slmem/internal/registry"
	"slmem/internal/server"
)

const (
	procs      = 8
	clients    = 48
	opsPerUser = 40
)

func main() {
	srv := server.New(registry.Options{Procs: procs, Shards: 8})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving %d-process objects at %s\n", procs, base)

	// One shared client with enough idle connections for the whole swarm;
	// the default transport keeps only 2 per host and would churn dials.
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: clients}}
	post := func(path string, body any) (server.Response, error) {
		var buf bytes.Buffer
		if body != nil {
			if err := json.NewEncoder(&buf).Encode(body); err != nil {
				return server.Response{}, err
			}
		}
		res, err := client.Post(base+path, "application/json", &buf)
		if err != nil {
			return server.Response{}, err
		}
		defer res.Body.Close()
		var r server.Response
		if err := json.NewDecoder(res.Body).Decode(&r); err != nil {
			return server.Response{}, err
		}
		if !r.OK {
			return r, fmt.Errorf("%s: %s", path, r.Error)
		}
		return r, nil
	}

	fmt.Printf("unleashing %d clients x %d ops on counter/hits and snapshot/board\n",
		clients, opsPerUser)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < opsPerUser; i++ {
				var err error
				switch i % 4 {
				case 0, 1, 2:
					_, err = post("/v1/counter/hits/inc", nil)
				default:
					_, err = post("/v1/snapshot/board/update",
						server.Request{Value: fmt.Sprintf("client%d@%d", c, i)})
					if err == nil {
						_, err = post("/v1/snapshot/board/scan", nil)
					}
				}
				if err != nil {
					log.Fatalf("client %d: %v", c, err)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	final, err := post("/v1/counter/hits/read", nil)
	if err != nil {
		log.Fatal(err)
	}
	incs := clients * opsPerUser * 3 / 4
	fmt.Printf("\ncounter/hits = %s (expected %d) after %v\n", final.Value, incs, elapsed.Round(time.Millisecond))

	st := srv.Stats()
	fmt.Printf("requests=%d failures=%d ops=%v\n", st.Requests, st.Failures, st.Ops)
	fmt.Printf("pid pool: procs=%d in-use=%d acquires=%d fast-path=%d steals=%d blocked=%d\n",
		st.Registry.Procs, st.Registry.PIDsInUse,
		st.Registry.Pool.Acquires, st.Registry.Pool.FastPath,
		st.Registry.Pool.Steals, st.Registry.Pool.Blocks)
	if final.Value != fmt.Sprint(incs) {
		log.Fatal("lost increments: strong linearizability did not survive the bridge!")
	}
	fmt.Println("no increment lost; every operation ran as a leased fixed-model process")
}
