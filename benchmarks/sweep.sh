#!/usr/bin/env sh
# benchmarks/sweep.sh — sweep {distribution x arrival rate x batch size}
# through cmd/slload and emit one consolidated TSV on stdout (one row per
# run, header first). Summary JSON lines pass through to stderr so a sweep
# can also be archived raw.
#
# Knobs (environment variables):
#
#   TARGET=self|inproc|http://host:port   what to drive        (default self)
#   DISTS="uniform hotkey zipfian"        distributions        (default all)
#   RATES="2000 10000"                    open-loop ops/s      (default "2000 10000")
#   BATCHES="1 16 64"                     ops per call         (default "1 16 64")
#   MODE=open|closed|both                 loop mode(s)         (default both;
#                                         closed-loop rows ignore RATES)
#   DURATION=5s WARMUP=1s WORKERS=16 KEYS=1024 SEED=1
#
# Examples:
#
#   benchmarks/sweep.sh > sweep.tsv                  # full default sweep
#   DURATION=1s RATES=2000 BATCHES="1 16" MODE=closed \
#     benchmarks/sweep.sh > smoke.tsv                # CI-sized smoke sweep
set -eu

cd "$(dirname "$0")/.."

TARGET="${TARGET:-self}"
DISTS="${DISTS:-uniform hotkey zipfian}"
RATES="${RATES:-2000 10000}"
BATCHES="${BATCHES:-1 16 64}"
MODE="${MODE:-both}"
DURATION="${DURATION:-5s}"
WARMUP="${WARMUP:-1s}"
WORKERS="${WORKERS:-16}"
KEYS="${KEYS:-1024}"
SEED="${SEED:-1}"

printf 'mode\tdistribution\trate_ops_s\tbatch\tworkers\tops\tthroughput_ops_s\tp50_ns\tp95_ns\tp99_ns\tmax_ns\terror_count\toverflows\n'

# row MODE DIST RATE BATCH: run slload once and print one TSV row.
row() {
  summary="$(go run ./cmd/slload -quiet -target "$TARGET" -mode "$1" -dist "$2" \
      -rate "$3" -batch "$4" -workers "$WORKERS" -keys "$KEYS" -seed "$SEED" \
      -warmup "$WARMUP" -duration "$DURATION")"
  printf '%s\n' "$summary" >&2
  printf '%s\n' "$summary" | python3 -c '
import json, sys
s = json.loads(sys.stdin.readline())
print("\t".join(str(s[k]) for k in (
    "mode", "distribution", "rate_ops_s", "batch", "workers", "ops",
    "throughput_ops_s", "p50_ns", "p95_ns", "p99_ns", "max_ns",
    "error_count")) + "\t" + str(s.get("overflows", 0)))
'
}

for dist in $DISTS; do
  for batch in $BATCHES; do
    if [ "$MODE" = "closed" ] || [ "$MODE" = "both" ]; then
      row closed "$dist" 0 "$batch"
    fi
    if [ "$MODE" = "open" ] || [ "$MODE" = "both" ]; then
      for rate in $RATES; do
        row open "$dist" "$rate" "$batch"
      done
    fi
  done
done
