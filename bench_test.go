// Benchmarks regenerating experiment E7 (DESIGN.md): the native-mode cost of
// strong linearizability. Each benchmark corresponds to one row family of
// the E7 tables in EXPERIMENTS.md.
//
// Run with: go test -bench=. -benchmem
package slmem

import (
	"context"
	"fmt"
	"runtime"
	"strconv"
	"sync/atomic"
	"testing"

	"slmem/internal/aba"
	"slmem/internal/core"
	"slmem/internal/maxreg"
	"slmem/internal/memory"
	"slmem/internal/snapshot"
	"slmem/internal/spec"
	"slmem/internal/universal"
	"slmem/internal/versioned"
)

// pidPool hands out distinct process ids to parallel benchmark goroutines.
type pidPool struct {
	next atomic.Int64
	n    int
}

func (p *pidPool) get() int {
	id := int(p.next.Add(1)) - 1
	if id >= p.n {
		panic(fmt.Sprintf("bench: more parallel goroutines (%d) than processes (%d); run with -cpu <= %d",
			id+1, p.n, p.n))
	}
	return id
}

// benchN sizes objects so that RunParallel's GOMAXPROCS goroutines each get
// a distinct process id.
func benchN() int {
	if g := runtime.GOMAXPROCS(0); g > 8 {
		return g
	}
	return 8
}

// --- E7a: ABA-detecting registers — Algorithm 1 vs Algorithm 2 ----------------

func BenchmarkABA(b *testing.B) {
	n := benchN()
	impls := []struct {
		name string
		make func(alloc memory.Allocator) interface {
			DWrite(p int, x uint64)
			DRead(q int) (uint64, bool)
		}
	}{
		{"algorithm1-linearizable", func(alloc memory.Allocator) interface {
			DWrite(p int, x uint64)
			DRead(q int) (uint64, bool)
		} {
			return aba.NewLinearizable[uint64](alloc, n, 0)
		}},
		{"algorithm2-strong", func(alloc memory.Allocator) interface {
			DWrite(p int, x uint64)
			DRead(q int) (uint64, bool)
		} {
			return aba.NewStrong[uint64](alloc, n, 0)
		}},
	}
	for _, impl := range impls {
		b.Run(impl.name+"/DWrite", func(b *testing.B) {
			var alloc memory.NativeAllocator
			reg := impl.make(&alloc)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				reg.DWrite(0, uint64(i))
			}
		})
		b.Run(impl.name+"/DRead-quiet", func(b *testing.B) {
			var alloc memory.NativeAllocator
			reg := impl.make(&alloc)
			reg.DWrite(0, 7)
			reg.DRead(1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				reg.DRead(1)
			}
		})
		b.Run(impl.name+"/mixed-parallel", func(b *testing.B) {
			var alloc memory.NativeAllocator
			reg := impl.make(&alloc)
			pool := &pidPool{n: n}
			b.RunParallel(func(pb *testing.PB) {
				pid := pool.get()
				i := uint64(0)
				for pb.Next() {
					i++
					if pid%2 == 0 {
						reg.DRead(pid)
					} else {
						reg.DWrite(pid, i)
					}
				}
			})
		})
	}
}

// --- E7b: snapshots — strongly linearizable vs linearizable baselines ---------

type benchSnapshot interface {
	Update(pid int, x uint64)
	Scan(pid int) []uint64
}

func snapshotImpls(n int) map[string]func() benchSnapshot {
	return map[string]func() benchSnapshot{
		"doublecollect-linearizable": func() benchSnapshot {
			var alloc memory.NativeAllocator
			return snapshot.NewDoubleCollect[uint64](&alloc, n, 0)
		},
		"afek-waitfree-linearizable": func() benchSnapshot {
			var alloc memory.NativeAllocator
			return snapshot.NewAfek[uint64](&alloc, n, 0)
		},
		"handshake-bounded-linearizable": func() benchSnapshot {
			var alloc memory.NativeAllocator
			return snapshot.NewHandshake[uint64](&alloc, n, 0)
		},
		"algorithm3-strong": func() benchSnapshot {
			var alloc memory.NativeAllocator
			return core.New[uint64](&alloc, n, 0)
		},
		"versioned-strong-unbounded": func() benchSnapshot {
			var alloc memory.NativeAllocator
			return versioned.New[uint64](&alloc, n, 0)
		},
	}
}

func BenchmarkSnapshot(b *testing.B) {
	n := benchN()
	names := []string{
		"doublecollect-linearizable",
		"afek-waitfree-linearizable",
		"handshake-bounded-linearizable",
		"algorithm3-strong",
		"versioned-strong-unbounded",
	}
	impls := snapshotImpls(n)
	for _, name := range names {
		mk := impls[name]
		b.Run(name+"/Update-solo", func(b *testing.B) {
			s := mk()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Update(0, uint64(i))
			}
		})
		b.Run(name+"/Scan-solo", func(b *testing.B) {
			s := mk()
			for pid := 0; pid < n; pid++ {
				s.Update(pid, uint64(pid))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Scan(0)
			}
		})
		b.Run(name+"/mixed-parallel", func(b *testing.B) {
			s := mk()
			pool := &pidPool{n: n}
			b.RunParallel(func(pb *testing.PB) {
				pid := pool.get()
				i := uint64(0)
				for pb.Next() {
					i++
					if pid%2 == 0 {
						s.Scan(pid)
					} else {
						s.Update(pid, i)
					}
				}
			})
		})
	}
}

// --- E7c: derived types --------------------------------------------------------

func BenchmarkCounter(b *testing.B) {
	n := benchN()
	b.Run("inc-solo", func(b *testing.B) {
		c := NewCounter(n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Inc(0)
		}
	})
	b.Run("read-solo", func(b *testing.B) {
		c := NewCounter(n)
		c.Inc(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Read(0)
		}
	})
	b.Run("mixed-parallel", func(b *testing.B) {
		c := NewCounter(n)
		pool := &pidPool{n: n}
		b.RunParallel(func(pb *testing.PB) {
			pid := pool.get()
			for pb.Next() {
				if pid%2 == 0 {
					c.Read(pid)
				} else {
					c.Inc(pid)
				}
			}
		})
	})
}

func BenchmarkMaxRegister(b *testing.B) {
	b.Run("trie-maxWrite-increasing", func(b *testing.B) {
		var alloc memory.NativeAllocator
		m := maxreg.NewUnbounded[struct{}](&alloc, struct{}{})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := m.MaxWrite(0, uint64(i), struct{}{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("trie-maxRead", func(b *testing.B) {
		var alloc memory.NativeAllocator
		m := maxreg.NewUnbounded[struct{}](&alloc, struct{}{})
		_ = m.MaxWrite(0, 1<<40, struct{}{})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.MaxRead(0)
		}
	})
	b.Run("snapshot-derived-maxWrite", func(b *testing.B) {
		m := NewMaxRegister(8)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.MaxWrite(0, uint64(i))
		}
	})
	b.Run("snapshot-derived-maxRead", func(b *testing.B) {
		m := NewMaxRegister(8)
		m.MaxWrite(0, 99)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.MaxRead(0)
		}
	})
}

// --- E9 companion: lease overhead on the counter hot path ---------------------
//
// The pooled path wraps every operation in a pid lease (internal/runtime).
// The pooled/direct pairs measure that bridge's overhead; the service
// runtime budgets it at well under 2x the direct Inc cost.

func BenchmarkPooledCounter(b *testing.B) {
	n := benchN()
	ctx := context.Background()
	b.Run("inc-direct", func(b *testing.B) {
		c := NewCounter(n)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Inc(0)
		}
	})
	b.Run("inc-pooled", func(b *testing.B) {
		c := NewPooledCounter(n)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := c.Inc(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("inc-direct-parallel", func(b *testing.B) {
		c := NewCounter(n)
		pool := &pidPool{n: n}
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			pid := pool.get()
			for pb.Next() {
				c.Inc(pid)
			}
		})
	})
	b.Run("inc-pooled-parallel", func(b *testing.B) {
		c := NewPooledCounter(n)
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if err := c.Inc(ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
	b.Run("acquire-release", func(b *testing.B) {
		// The lease round trip alone, for attributing pooled-path cost.
		p := NewPIDPool(n)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pid, err := p.Acquire(ctx)
			if err != nil {
				b.Fatal(err)
			}
			p.Release(pid)
		}
	})
}

// --- E7d / E6: universal construction cost growth -------------------------------

func BenchmarkUniversalHistoryGrowth(b *testing.B) {
	// The object is re-created every 32 measured operations so each subrun
	// reflects a pinned history size (the construction's per-op cost grows
	// with history, which is exactly the claim — see EXPERIMENTS.md E6).
	const burst = 32
	grow := func(b *testing.B, history int) *universal.Object {
		var alloc memory.NativeAllocator
		o := universal.New(&alloc, universal.CounterType{}, 2)
		for i := 0; i < history; i++ {
			if _, err := o.Execute(i%2, "inc()"); err != nil {
				b.Fatal(err)
			}
		}
		return o
	}
	for _, history := range []int{0, 64, 256} {
		history := history
		b.Run("counter-inc/history-"+strconv.Itoa(history), func(b *testing.B) {
			o := grow(b, history)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%burst == burst-1 {
					b.StopTimer()
					o = grow(b, history)
					b.StartTimer()
				}
				if _, err := o.Execute(0, "inc()"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkUniversalWarm measures the steady-state cost of universal-object
// execution at a fixed, pre-grown history depth, replay cache on vs off.
// With the cache, per-op cost is O(delta since this process's previous op);
// without it, every op replays the whole history (the uncached subrun uses
// a much shallower history so it finishes — scale its ns/op accordingly).
func BenchmarkUniversalWarm(b *testing.B) {
	grow := func(b *testing.B, history int, caching bool) *Object {
		o := NewObject(CounterType{}, 2)
		o.SetCaching(caching)
		for i := 0; i < history; i++ {
			if _, err := o.Execute(i%2, "inc()"); err != nil {
				b.Fatal(err)
			}
		}
		return o
	}
	b.Run("cached/history-10000", func(b *testing.B) {
		o := grow(b, 10000, true)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := o.Execute(0, "inc()"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("uncached/history-512", func(b *testing.B) {
		o := grow(b, 512, false)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := o.Execute(0, "inc()"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E5 companion: space growth as a benchmark metric ---------------------------

func BenchmarkVersionedSpaceGrowth(b *testing.B) {
	var alloc memory.NativeAllocator
	s := versioned.New[string](&alloc, 4, spec.Bot)
	base := alloc.Registers()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Update(i%4, "x")
	}
	b.StopTimer()
	if b.N > 0 {
		b.ReportMetric(float64(alloc.Registers()-base)/float64(b.N), "registers/op")
	}
}

func BenchmarkAlgorithm3SpaceConstant(b *testing.B) {
	var alloc memory.NativeAllocator
	s := core.New[string](&alloc, 4, spec.Bot)
	base := alloc.Registers()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Update(i%4, "x")
	}
	b.StopTimer()
	if b.N > 0 {
		b.ReportMetric(float64(alloc.Registers()-base)/float64(b.N), "registers/op")
	}
}

// --- E10: batch pipeline — lease amortization on the wrapper hot paths ---------
//
// The per-op pooled path pays one pid lease per operation; Batch and
// ExecuteMany pay one lease per batch. The pairs below quantify the
// amortization at batch size 64 (cmd/slbench -json carries the end-to-end
// per-request vs batched comparison recorded in BENCH_*.json).

func BenchmarkPoolBatch(b *testing.B) {
	n := benchN()
	ctx := context.Background()
	const batch = 64
	b.Run("update-perop", func(b *testing.B) {
		p := NewPool[uint64](n, 0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := p.Update(ctx, uint64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("update-batch64", func(b *testing.B) {
		p := NewPool[uint64](n, 0)
		b.ResetTimer()
		for done := 0; done < b.N; done += batch {
			err := p.Batch(ctx, func(h SnapshotHandle[uint64]) error {
				for j := 0; j < batch; j++ {
					h.Update(uint64(j))
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("update-batch64-parallel", func(b *testing.B) {
		p := NewPool[uint64](n, 0)
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				err := p.Batch(ctx, func(h SnapshotHandle[uint64]) error {
					for j := 0; j < batch; j++ {
						h.Update(uint64(j))
					}
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	})
}

func BenchmarkExecuteMany(b *testing.B) {
	// The universal construction's per-op cost grows with history, so the
	// object is re-created every 64 operations in both variants: the pair
	// differs only in how many leases those 64 operations cost.
	const batch = 64
	ctx := context.Background()
	invs := make([]string, batch)
	for i := range invs {
		invs[i] = "inc()"
	}
	b.Run("execute-perop", func(b *testing.B) {
		o := NewPooledObject(CounterType{}, 2)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%batch == 0 && i > 0 {
				b.StopTimer()
				o = NewPooledObject(CounterType{}, 2)
				b.StartTimer()
			}
			if _, err := o.Execute(ctx, "inc()"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("execute-many64", func(b *testing.B) {
		b.ResetTimer()
		for done := 0; done < b.N; done += batch {
			b.StopTimer()
			o := NewPooledObject(CounterType{}, 2)
			b.StartTimer()
			if _, err := o.ExecuteMany(ctx, invs); err != nil {
				b.Fatal(err)
			}
		}
	})
}
