package slmem

import (
	"fmt"
	"sync"
	"testing"
)

func TestSnapshotQuickstart(t *testing.T) {
	s := NewSnapshot[string](3, "")
	s.Update(0, "a")
	s.Update(2, "c")
	view := s.Scan(1)
	if view[0] != "a" || view[1] != "" || view[2] != "c" {
		t.Errorf("view = %v", view)
	}
}

func TestSnapshotHandles(t *testing.T) {
	s := NewSnapshot[int](2, 0)
	h0, h1 := s.Handle(0), s.Handle(1)
	if h0.PID() != 0 || h1.PID() != 1 {
		t.Fatal("handle pids wrong")
	}
	h0.Update(10)
	h1.Update(20)
	view := h0.Scan()
	if view[0] != 10 || view[1] != 20 {
		t.Errorf("view = %v", view)
	}
}

func TestSnapshotConcurrentSoak(t *testing.T) {
	// Real goroutines; run with -race. Each process updates with increasing
	// values and scans; per-component values must never decrease across a
	// process's own successive scans (snapshot monotonicity for single
	// writers writing increasing values).
	const n, rounds = 4, 200
	s := NewSnapshot[int](n, 0)
	var wg sync.WaitGroup
	for pid := 0; pid < n; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			last := make([]int, n)
			for i := 1; i <= rounds; i++ {
				s.Update(pid, i)
				view := s.Scan(pid)
				if view[pid] < i {
					t.Errorf("p%d: own component went back in time: %d < %d", pid, view[pid], i)
					return
				}
				for q := 0; q < n; q++ {
					if view[q] < last[q] {
						t.Errorf("p%d: component %d regressed %d -> %d", pid, q, last[q], view[q])
						return
					}
					last[q] = view[q]
				}
			}
		}(pid)
	}
	wg.Wait()
}

func TestABARegisterQuickstart(t *testing.T) {
	r := NewABARegister[string](2, "")
	r.DWrite(0, "a")
	if v, changed := r.DRead(1); v != "a" || !changed {
		t.Errorf("DRead = (%q,%t)", v, changed)
	}
	r.DWrite(0, "b")
	r.DWrite(0, "a") // ABA: value back to "a"
	if v, changed := r.DRead(1); v != "a" || !changed {
		t.Errorf("ABA not detected: DRead = (%q,%t)", v, changed)
	}
	if v, changed := r.DRead(1); v != "a" || changed {
		t.Errorf("quiescent DRead = (%q,%t)", v, changed)
	}
}

func TestABARegisterConcurrentSoak(t *testing.T) {
	const n, writes = 4, 300
	r := NewABARegister[int](n, -1)
	var wg sync.WaitGroup
	for pid := 0; pid < n; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			if pid == 0 {
				// Reader: whenever the value changes, the flag must be set.
				prev, _ := r.DRead(pid)
				for i := 0; i < writes; i++ {
					v, changed := r.DRead(pid)
					if v != prev && !changed {
						t.Errorf("value changed %d -> %d but flag false", prev, v)
						return
					}
					prev = v
				}
			} else {
				for i := 0; i < writes; i++ {
					r.DWrite(pid, pid*writes+i)
				}
			}
		}(pid)
	}
	wg.Wait()
}

func TestCounterConcurrentSoak(t *testing.T) {
	const n, incs = 4, 100
	c := NewCounter(n)
	var wg sync.WaitGroup
	for pid := 0; pid < n; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			var last uint64
			for i := 0; i < incs; i++ {
				c.Inc(pid)
				got := c.Read(pid)
				if got < last {
					t.Errorf("p%d: counter regressed %d -> %d", pid, last, got)
					return
				}
				last = got
			}
		}(pid)
	}
	wg.Wait()
	if got := c.Read(0); got != n*incs {
		t.Errorf("final count = %d, want %d", got, n*incs)
	}
}

func TestMaxRegisterConcurrentSoak(t *testing.T) {
	const n, writes = 4, 100
	m := NewMaxRegister(n)
	var wg sync.WaitGroup
	for pid := 0; pid < n; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			var last uint64
			for i := 1; i <= writes; i++ {
				m.MaxWrite(pid, uint64(pid*writes+i))
				got := m.MaxRead(pid)
				if got < last {
					t.Errorf("p%d: max regressed %d -> %d", pid, last, got)
					return
				}
				last = got
			}
		}(pid)
	}
	wg.Wait()
	want := uint64((n-1)*writes + writes)
	if got := m.MaxRead(0); got != want {
		t.Errorf("final max = %d, want %d", got, want)
	}
}

func TestObjectQuickstart(t *testing.T) {
	o := NewObject(SetType{}, 2)
	if resp, err := o.Execute(0, "contains(x)"); err != nil || resp != "false" {
		t.Fatalf("contains = (%q,%v)", resp, err)
	}
	if _, err := o.Execute(0, "add(x)"); err != nil {
		t.Fatal(err)
	}
	if resp, _ := o.Execute(1, "contains(x)"); resp != "true" {
		t.Errorf("contains after add = %q", resp)
	}
}

func TestObjectConcurrentSoak(t *testing.T) {
	const n = 3
	o := NewObject(CounterType{}, n)
	var wg sync.WaitGroup
	for pid := 0; pid < n; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, err := o.Execute(pid, "inc()"); err != nil {
					t.Error(err)
					return
				}
			}
		}(pid)
	}
	wg.Wait()
	if resp, err := o.Execute(0, "read()"); err != nil || resp != "60" {
		t.Errorf("read = (%q,%v), want 60", resp, err)
	}
}

func TestValidateSimpleExported(t *testing.T) {
	if err := ValidateSimple(CounterType{}, []string{"inc()", "read()"}, []int{0, 1}); err != nil {
		t.Error(err)
	}
}

func ExampleSnapshot() {
	s := NewSnapshot[string](3, "-")
	s.Update(0, "alpha")
	s.Update(2, "gamma")
	fmt.Println(s.Scan(1))
	// Output: [alpha - gamma]
}

func ExampleABARegister() {
	r := NewABARegister[string](2, "")
	r.DWrite(0, "a")
	r.DRead(1)       // observe "a"
	r.DWrite(0, "b") // change it...
	r.DWrite(0, "a") // ...and change it back
	v, changed := r.DRead(1)
	fmt.Println(v, changed)
	// Output: a true
}

func ExampleObject() {
	o := NewObject(CounterType{}, 2)
	o.Execute(0, "inc()")
	o.Execute(1, "inc()")
	resp, _ := o.Execute(0, "read()")
	fmt.Println(resp)
	// Output: 2
}

func ExampleFuncType() {
	// A custom simple type: a boolean OR flag. set() operations commute
	// (and are idempotent, so they mutually overwrite); everything
	// overwrites get().
	flag := FuncType{
		TypeName: "orflag",
		Sequential: FuncSpec{
			SpecName:     "orflag",
			InitialState: "false",
			ApplyFn: func(state string, _ int, desc string) (string, string, error) {
				if desc == "set()" {
					return "true", "ok", nil
				}
				return state, state, nil // get()
			},
		},
		OverwritesFn: func(a string, _ int, b string, _ int) bool {
			return b == "get()" || a == "set()" && b == "set()"
		},
	}
	if err := ValidateSimple(flag, []string{"set()", "get()"}, []int{0, 1}); err != nil {
		panic(err)
	}
	o := NewObject(flag, 2)
	o.Execute(0, "set()")
	resp, _ := o.Execute(1, "get()")
	fmt.Println(resp)
	// Output: true
}
