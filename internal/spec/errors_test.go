package spec

import (
	"errors"
	"testing"
)

// TestBadInvocationsRejected drives the error paths of every specification.
func TestBadInvocationsRejected(t *testing.T) {
	tests := []struct {
		s    Spec
		pid  int
		desc string
	}{
		{Register{}, 0, "write()"},         // missing arg
		{Register{}, 0, "destroy()"},       // unknown op
		{ABARegister{N: 2}, 0, "DWrite()"}, /* missing arg */
		{ABARegister{N: 2}, 0, "bogus()"},
		{Snapshot{N: 2}, 0, "update()"},
		{Snapshot{N: 2}, 0, "nope()"},
		{Counter{}, 0, "dec()"},
		{MaxRegister{}, 0, "maxWrite()"},
		{MaxRegister{}, 0, "maxWrite(notanumber)"},
		{MaxRegister{}, 0, "pop()"},
		{Set{}, 0, "add()"},
		{Set{}, 0, "contains()"},
		{Set{}, 0, "clear()"},
		{Accumulator{}, 0, "addTo()"},
		{Accumulator{}, 0, "addTo(xyz)"},
		{Accumulator{}, 0, "mul(2)"},
	}
	for _, tc := range tests {
		t.Run(tc.s.Name()+"/"+tc.desc, func(t *testing.T) {
			if _, _, err := tc.s.Apply(tc.s.Initial(), tc.pid, tc.desc); err == nil {
				t.Errorf("%s accepted %q", tc.s.Name(), tc.desc)
			}
		})
	}
}

func TestErrBadInvocationWrapped(t *testing.T) {
	_, _, err := Counter{}.Apply("0", 0, "dec()")
	if !errors.Is(err, ErrBadInvocation) {
		t.Errorf("err = %v, want ErrBadInvocation", err)
	}
}

func TestMalformedInvocationSyntax(t *testing.T) {
	specs := []Spec{Register{}, ABARegister{N: 1}, Snapshot{N: 1}, Counter{}, MaxRegister{}, Set{}, Accumulator{}}
	for _, s := range specs {
		if _, _, err := s.Apply(s.Initial(), 0, "broken(unclosed"); err == nil {
			t.Errorf("%s accepted malformed syntax", s.Name())
		}
	}
}

func TestABAPidRange(t *testing.T) {
	s := ABARegister{N: 2}
	if _, _, err := s.Apply(s.Initial(), 5, "DRead()"); err == nil {
		t.Error("out-of-range pid accepted")
	}
	if _, _, err := s.Apply(s.Initial(), -1, "DRead()"); err == nil {
		t.Error("negative pid accepted")
	}
}

func TestSpecNames(t *testing.T) {
	tests := map[string]Spec{
		"register":      Register{},
		"aba(n=3)":      ABARegister{N: 3},
		"snapshot(n=2)": Snapshot{N: 2},
		"counter":       Counter{},
		"maxreg":        MaxRegister{},
		"set":           Set{},
		"accumulator":   Accumulator{},
	}
	for want, s := range tests {
		if got := s.Name(); got != want {
			t.Errorf("Name = %q, want %q", got, want)
		}
	}
}

func TestCounterMalformedArgs(t *testing.T) {
	// Counter read/inc ignore args per ParseInvocation; malformed STATE is
	// the error path here.
	if _, _, err := (Counter{}).Apply("not-a-number", 0, "inc()"); err == nil {
		t.Error("malformed counter state accepted")
	}
	if _, _, err := (MaxRegister{}).Apply("-3", 0, "maxRead()"); err == nil {
		t.Error("negative maxreg state accepted")
	}
	if _, _, err := (Accumulator{}).Apply("zz", 0, "read()"); err == nil {
		t.Error("malformed accumulator state accepted")
	}
}
