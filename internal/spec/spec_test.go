package spec

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
)

func mustApply(t *testing.T, s Spec, state string, pid int, desc string) (string, string) {
	t.Helper()
	next, resp, err := s.Apply(state, pid, desc)
	if err != nil {
		t.Fatalf("%s.Apply(%q, %d, %q): %v", s.Name(), state, pid, desc, err)
	}
	return next, resp
}

func TestParseInvocation(t *testing.T) {
	tests := []struct {
		desc     string
		wantName string
		wantArgs []string
		wantErr  bool
	}{
		{"write(5)", "write", []string{"5"}, false},
		{"scan()", "scan", nil, false},
		{"read", "read", nil, false},
		{"f(a,b,c)", "f", []string{"a", "b", "c"}, false},
		{"broken(", "", nil, true},
	}
	for _, tc := range tests {
		t.Run(tc.desc, func(t *testing.T) {
			name, args, err := ParseInvocation(tc.desc)
			if tc.wantErr {
				if err == nil {
					t.Fatal("expected error")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if name != tc.wantName {
				t.Errorf("name = %q, want %q", name, tc.wantName)
			}
			if fmt.Sprint(args) != fmt.Sprint(tc.wantArgs) {
				t.Errorf("args = %v, want %v", args, tc.wantArgs)
			}
		})
	}
}

func TestFormatInvocationRoundTrip(t *testing.T) {
	f := func(nameRaw string, args []string) bool {
		name := strings.Map(func(r rune) rune {
			if r == '(' || r == ')' || r == ',' {
				return 'x'
			}
			return r
		}, nameRaw)
		if name == "" {
			name = "op"
		}
		clean := make([]string, 0, len(args))
		for _, a := range args {
			a = strings.Map(func(r rune) rune {
				if r == '(' || r == ')' || r == ',' {
					return 'x'
				}
				return r
			}, a)
			if a == "" {
				a = "v"
			}
			clean = append(clean, a)
		}
		desc := FormatInvocation(name, clean...)
		gotName, gotArgs, err := ParseInvocation(desc)
		if err != nil || gotName != name {
			return false
		}
		return fmt.Sprint(gotArgs) == fmt.Sprint(clean)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRegister(t *testing.T) {
	r := Register{}
	st := r.Initial()
	if _, resp := mustApply(t, r, st, 0, "read()"); resp != Bot {
		t.Errorf("initial read = %q, want %q", resp, Bot)
	}
	st, _ = mustApply(t, r, st, 0, "write(7)")
	if _, resp := mustApply(t, r, st, 1, "read()"); resp != "7" {
		t.Errorf("read after write(7) = %q", resp)
	}
	if _, _, err := r.Apply(st, 0, "bogus()"); err == nil {
		t.Error("bogus invocation accepted")
	}
}

func TestABARegisterFlagSemantics(t *testing.T) {
	s := ABARegister{N: 2}
	st := s.Initial()

	// First DRead by p0 with no DWrite yet: flag false.
	st, resp := mustApply(t, s, st, 0, "DRead()")
	if resp != "("+Bot+",false)" {
		t.Errorf("first DRead = %q", resp)
	}

	// DWrite then DRead by p0: flag true.
	st, _ = mustApply(t, s, st, 1, "DWrite(a)")
	st, resp = mustApply(t, s, st, 0, "DRead()")
	if resp != "(a,true)" {
		t.Errorf("DRead after DWrite = %q, want (a,true)", resp)
	}

	// No write since p0's last DRead: flag false.
	st, resp = mustApply(t, s, st, 0, "DRead()")
	if resp != "(a,false)" {
		t.Errorf("DRead without intervening DWrite = %q, want (a,false)", resp)
	}

	// p1's first DRead: flag true — DWrites happened since initialization
	// (the implementations' virtual-first-DRead convention).
	_, resp = mustApply(t, s, st, 1, "DRead()")
	if resp != "(a,true)" {
		t.Errorf("p1 first DRead = %q, want (a,true)", resp)
	}
}

func TestABARegisterABAScenario(t *testing.T) {
	// The classic ABA: value returns to "a", but the flag exposes the writes.
	s := ABARegister{N: 1}
	st := s.Initial()
	st, _ = mustApply(t, s, st, 0, "DWrite(a)")
	st, _ = mustApply(t, s, st, 0, "DRead()")
	st, _ = mustApply(t, s, st, 0, "DWrite(b)")
	st, _ = mustApply(t, s, st, 0, "DWrite(a)")
	_, resp := mustApply(t, s, st, 0, "DRead()")
	if resp != "(a,true)" {
		t.Errorf("ABA DRead = %q, want (a,true)", resp)
	}
}

func TestSnapshot(t *testing.T) {
	s := Snapshot{N: 3}
	st := s.Initial()
	if _, resp := mustApply(t, s, st, 0, "scan()"); resp != "["+Bot+" "+Bot+" "+Bot+"]" {
		t.Errorf("initial scan = %q", resp)
	}
	st, _ = mustApply(t, s, st, 1, "update(x)")
	st, _ = mustApply(t, s, st, 2, "update(y)")
	if _, resp := mustApply(t, s, st, 0, "scan()"); resp != "["+Bot+" x y]" {
		t.Errorf("scan = %q, want [%s x y]", resp, Bot)
	}
	// Single-writer: update by p overwrites only component p.
	st, _ = mustApply(t, s, st, 1, "update(z)")
	if _, resp := mustApply(t, s, st, 1, "scan()"); resp != "["+Bot+" z y]" {
		t.Errorf("scan after overwrite = %q", resp)
	}
	if _, _, err := s.Apply(st, 5, "update(q)"); err == nil {
		t.Error("out-of-range pid accepted")
	}
}

func TestCounter(t *testing.T) {
	c := Counter{}
	st := c.Initial()
	for i := 1; i <= 5; i++ {
		st, _ = mustApply(t, c, st, 0, "inc()")
	}
	if _, resp := mustApply(t, c, st, 1, "read()"); resp != "5" {
		t.Errorf("read = %q, want 5", resp)
	}
}

func TestCounterIncCommutes(t *testing.T) {
	// Property: inc by any pids in any interleaving yields count = #incs.
	f := func(k uint8) bool {
		c := Counter{}
		st := c.Initial()
		n := int(k % 50)
		for i := 0; i < n; i++ {
			st, _, _ = c.Apply(st, i%3, "inc()")
		}
		_, resp, _ := c.Apply(st, 0, "read()")
		return resp == strconv.Itoa(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMaxRegister(t *testing.T) {
	m := MaxRegister{}
	st := m.Initial()
	st, _ = mustApply(t, m, st, 0, "maxWrite(5)")
	st, _ = mustApply(t, m, st, 0, "maxWrite(3)")
	if _, resp := mustApply(t, m, st, 0, "maxRead()"); resp != "5" {
		t.Errorf("maxRead = %q, want 5", resp)
	}
	st, _ = mustApply(t, m, st, 0, "maxWrite(9)")
	if _, resp := mustApply(t, m, st, 0, "maxRead()"); resp != "9" {
		t.Errorf("maxRead = %q, want 9", resp)
	}
}

func TestMaxRegisterMonotoneProperty(t *testing.T) {
	f := func(vals []uint16) bool {
		m := MaxRegister{}
		st := m.Initial()
		var max uint64
		for _, v := range vals {
			st, _, _ = m.Apply(st, 0, FormatInvocation("maxWrite", strconv.FormatUint(uint64(v), 10)))
			if uint64(v) > max {
				max = uint64(v)
			}
			_, resp, _ := m.Apply(st, 0, "maxRead()")
			if resp != strconv.FormatUint(max, 10) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSet(t *testing.T) {
	s := Set{}
	st := s.Initial()
	if _, resp := mustApply(t, s, st, 0, "contains(a)"); resp != "false" {
		t.Errorf("contains on empty = %q", resp)
	}
	st, _ = mustApply(t, s, st, 0, "add(b)")
	st, _ = mustApply(t, s, st, 0, "add(a)")
	st, _ = mustApply(t, s, st, 0, "add(b)") // duplicate
	if st != "a,b" {
		t.Errorf("state = %q, want canonical sorted a,b", st)
	}
	if _, resp := mustApply(t, s, st, 1, "contains(b)"); resp != "true" {
		t.Errorf("contains(b) = %q", resp)
	}
}

func TestSetAddOrderIrrelevant(t *testing.T) {
	// Property: canonical state is independent of insertion order.
	f := func(vals []uint8) bool {
		s := Set{}
		forward := s.Initial()
		for _, v := range vals {
			forward, _, _ = s.Apply(forward, 0, FormatInvocation("add", strconv.Itoa(int(v))))
		}
		backward := s.Initial()
		for i := len(vals) - 1; i >= 0; i-- {
			backward, _, _ = s.Apply(backward, 0, FormatInvocation("add", strconv.Itoa(int(vals[i]))))
		}
		return forward == backward
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAccumulator(t *testing.T) {
	a := Accumulator{}
	st := a.Initial()
	st, _ = mustApply(t, a, st, 0, "addTo(5)")
	st, _ = mustApply(t, a, st, 1, "addTo(-2)")
	if _, resp := mustApply(t, a, st, 0, "read()"); resp != "3" {
		t.Errorf("read = %q, want 3", resp)
	}
}

func TestSpecsRejectMalformedState(t *testing.T) {
	specs := []Spec{ABARegister{N: 2}, Snapshot{N: 2}, Counter{}, MaxRegister{}, Accumulator{}}
	for _, s := range specs {
		t.Run(s.Name(), func(t *testing.T) {
			if _, _, err := s.Apply("!!definitely not a state!!", 0, "read()"); err == nil {
				// Set and Register treat arbitrary strings as states; others must reject.
				t.Errorf("%s accepted malformed state", s.Name())
			}
		})
	}
}

func TestSpecsDeterministic(t *testing.T) {
	specs := []struct {
		s    Spec
		pid  int
		desc string
	}{
		{Register{}, 0, "write(1)"},
		{ABARegister{N: 2}, 1, "DRead()"},
		{Snapshot{N: 2}, 0, "scan()"},
		{Counter{}, 0, "inc()"},
		{MaxRegister{}, 0, "maxWrite(4)"},
		{Set{}, 0, "add(z)"},
		{Accumulator{}, 0, "addTo(1)"},
	}
	for _, tc := range specs {
		st := tc.s.Initial()
		n1, r1, err1 := tc.s.Apply(st, tc.pid, tc.desc)
		n2, r2, err2 := tc.s.Apply(st, tc.pid, tc.desc)
		if n1 != n2 || r1 != r2 || (err1 == nil) != (err2 == nil) {
			t.Errorf("%s.Apply not deterministic for %s", tc.s.Name(), tc.desc)
		}
	}
}
