// Package spec provides sequential specifications as deterministic state
// machines, following the paper's Section 2 formalism T = (S, s0, O, R, δ).
//
// All types in this repository are deterministic: the response of an
// invocation is a function of the current state. The checkers in
// internal/lincheck exploit this to derive responses for pending operations.
//
// States, invocation descriptions, and responses are canonical strings so
// that checker states are hashable and counterexamples are printable.
package spec

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// ErrBadInvocation is returned by Apply for invocation descriptions the type
// does not support.
var ErrBadInvocation = errors.New("spec: invocation not supported by type")

// Spec is a sequential specification: a deterministic state machine.
//
// Apply computes δ(state, desc) = (next state, response). Implementations
// must be pure: same inputs, same outputs, no mutation of receiver state.
type Spec interface {
	// Name identifies the type, e.g. "snapshot(n=3)".
	Name() string
	// Initial returns the canonical encoding of the initial state s0.
	Initial() string
	// Apply steps the machine. desc carries the process id of the invoker
	// because single-writer types dispatch on it, e.g. "update(2)" invoked by
	// process 1 writes component 1.
	Apply(state string, pid int, desc string) (next, response string, err error)
}

// Checkpointer is an optional Spec extension for state checkpointing: a spec
// whose canonical states are views into shared or reusable storage implements
// it to produce a self-contained copy safe to retain across operations. The
// universal construction's replay cache (internal/universal) checkpoints the
// sequential state it computed for one operation and replays only the
// history delta onto it for the next.
type Checkpointer interface {
	// Checkpoint returns a state equal to state that remains valid however
	// long the caller retains it.
	Checkpoint(state string) string
}

// Checkpoint clones state for long-term retention via the spec's
// Checkpointer, if implemented. Canonical string states are immutable, so
// the default is the state itself.
func Checkpoint(sp Spec, state string) string {
	if c, ok := sp.(Checkpointer); ok {
		return c.Checkpoint(state)
	}
	return state
}

// Bot is the canonical encoding of the paper's ⊥ (initial/unset value).
const Bot = "_"

// ParseInvocation splits "name(a,b)" into name and argument list. A bare
// "name" parses as zero arguments.
func ParseInvocation(desc string) (name string, args []string, err error) {
	open := strings.IndexByte(desc, '(')
	if open < 0 {
		return desc, nil, nil
	}
	if !strings.HasSuffix(desc, ")") {
		return "", nil, fmt.Errorf("spec: malformed invocation %q", desc)
	}
	name = desc[:open]
	inner := desc[open+1 : len(desc)-1]
	if inner == "" {
		return name, nil, nil
	}
	return name, strings.Split(inner, ","), nil
}

// FormatInvocation renders name and args canonically.
func FormatInvocation(name string, args ...string) string {
	return name + "(" + strings.Join(args, ",") + ")"
}

// --- Read/write register ---------------------------------------------------

// Register is an atomic multi-writer register over string values.
// Invocations: "write(x)" -> "ok"; "read()" -> current value.
type Register struct{}

var _ Spec = Register{}

// Name implements Spec.
func (Register) Name() string { return "register" }

// Initial implements Spec.
func (Register) Initial() string { return Bot }

// Apply implements Spec.
func (Register) Apply(state string, _ int, desc string) (string, string, error) {
	name, args, err := ParseInvocation(desc)
	if err != nil {
		return "", "", err
	}
	switch name {
	case "write":
		if len(args) != 1 {
			return "", "", fmt.Errorf("%w: %q", ErrBadInvocation, desc)
		}
		return args[0], "ok", nil
	case "read":
		return state, state, nil
	default:
		return "", "", fmt.Errorf("%w: %q", ErrBadInvocation, desc)
	}
}

// --- ABA-detecting register --------------------------------------------------

// ABARegister specifies the ABA-detecting register of Section 3.
//
// State: value | changed bitmask, one bit per process. Invocations:
//   - "DWrite(x)" -> "ok": sets the value, marks changed for every process.
//   - "DRead()"   -> "(x,flag)": flag is true iff some DWrite happened since
//     the calling process's previous DRead, or since initialization if it
//     has never read.
//
// The "or since initialization" clause matches the behaviour of the
// Aghazadeh–Woelfel implementations (the initial announcement (⊥,⊥) plays
// the role of a virtual first DRead): a process's first DRead reports true
// exactly when a DWrite has already occurred.
type ABARegister struct {
	// N is the number of processes.
	N int
}

var _ Spec = ABARegister{}

// Name implements Spec.
func (s ABARegister) Name() string { return fmt.Sprintf("aba(n=%d)", s.N) }

// Initial implements Spec.
func (s ABARegister) Initial() string {
	return Bot + "|" + strings.Repeat("0", s.N)
}

// Apply implements Spec.
func (s ABARegister) Apply(state string, pid int, desc string) (string, string, error) {
	parts := strings.Split(state, "|")
	if len(parts) != 2 || len(parts[1]) != s.N {
		return "", "", fmt.Errorf("spec: malformed aba state %q", state)
	}
	val, changed := parts[0], []byte(parts[1])
	if pid < 0 || pid >= s.N {
		return "", "", fmt.Errorf("spec: aba pid %d out of range [0,%d)", pid, s.N)
	}
	name, args, err := ParseInvocation(desc)
	if err != nil {
		return "", "", err
	}
	switch name {
	case "DWrite":
		if len(args) != 1 {
			return "", "", fmt.Errorf("%w: %q", ErrBadInvocation, desc)
		}
		for i := range changed {
			changed[i] = '1'
		}
		return args[0] + "|" + string(changed), "ok", nil
	case "DRead":
		flag := changed[pid] == '1'
		changed[pid] = '0'
		next := val + "|" + string(changed)
		return next, fmt.Sprintf("(%s,%t)", val, flag), nil
	default:
		return "", "", fmt.Errorf("%w: %q", ErrBadInvocation, desc)
	}
}

// --- Single-writer snapshot --------------------------------------------------

// Snapshot specifies the single-writer snapshot type of Section 4.
//
// State: comma-joined vector of n components. Invocations:
//   - "update(x)" by process p -> "ok": sets component p to x.
//   - "scan()" -> "[x0 x1 ... x(n-1)]".
type Snapshot struct {
	// N is the number of components (= processes).
	N int
}

var _ Spec = Snapshot{}

// Name implements Spec.
func (s Snapshot) Name() string { return fmt.Sprintf("snapshot(n=%d)", s.N) }

// Initial implements Spec.
func (s Snapshot) Initial() string {
	comps := make([]string, s.N)
	for i := range comps {
		comps[i] = Bot
	}
	return strings.Join(comps, ",")
}

// FormatView renders a component vector the way scan responses are encoded.
func FormatView(comps []string) string {
	return "[" + strings.Join(comps, " ") + "]"
}

// Apply implements Spec.
func (s Snapshot) Apply(state string, pid int, desc string) (string, string, error) {
	comps := strings.Split(state, ",")
	if len(comps) != s.N {
		return "", "", fmt.Errorf("spec: malformed snapshot state %q", state)
	}
	if pid < 0 || pid >= s.N {
		return "", "", fmt.Errorf("spec: snapshot pid %d out of range [0,%d)", pid, s.N)
	}
	name, args, err := ParseInvocation(desc)
	if err != nil {
		return "", "", err
	}
	switch name {
	case "update":
		if len(args) != 1 {
			return "", "", fmt.Errorf("%w: %q", ErrBadInvocation, desc)
		}
		next := make([]string, s.N)
		copy(next, comps)
		next[pid] = args[0]
		return strings.Join(next, ","), "ok", nil
	case "scan":
		return state, FormatView(comps), nil
	default:
		return "", "", fmt.Errorf("%w: %q", ErrBadInvocation, desc)
	}
}

// --- Counter -----------------------------------------------------------------

// Counter specifies a counter: "inc()" -> "ok", "read()" -> decimal count.
type Counter struct{}

var _ Spec = Counter{}

// Name implements Spec.
func (Counter) Name() string { return "counter" }

// Initial implements Spec.
func (Counter) Initial() string { return "0" }

// Apply implements Spec.
func (Counter) Apply(state string, _ int, desc string) (string, string, error) {
	name, _, err := ParseInvocation(desc)
	if err != nil {
		return "", "", err
	}
	cur, err := strconv.Atoi(state)
	if err != nil {
		return "", "", fmt.Errorf("spec: malformed counter state %q", state)
	}
	switch name {
	case "inc":
		return strconv.Itoa(cur + 1), "ok", nil
	case "read":
		return state, state, nil
	default:
		return "", "", fmt.Errorf("%w: %q", ErrBadInvocation, desc)
	}
}

// --- Max-register ------------------------------------------------------------

// MaxRegister specifies a max-register: "maxWrite(x)" -> "ok" sets the value
// to max(current, x); "maxRead()" -> current maximum (decimal, initially 0).
type MaxRegister struct{}

var _ Spec = MaxRegister{}

// Name implements Spec.
func (MaxRegister) Name() string { return "maxreg" }

// Initial implements Spec.
func (MaxRegister) Initial() string { return "0" }

// Apply implements Spec.
func (MaxRegister) Apply(state string, _ int, desc string) (string, string, error) {
	name, args, err := ParseInvocation(desc)
	if err != nil {
		return "", "", err
	}
	cur, err := strconv.ParseUint(state, 10, 64)
	if err != nil {
		return "", "", fmt.Errorf("spec: malformed maxreg state %q", state)
	}
	switch name {
	case "maxWrite":
		if len(args) != 1 {
			return "", "", fmt.Errorf("%w: %q", ErrBadInvocation, desc)
		}
		x, err := strconv.ParseUint(args[0], 10, 64)
		if err != nil {
			return "", "", fmt.Errorf("spec: maxWrite arg %q: %v", args[0], err)
		}
		if x > cur {
			return args[0], "ok", nil
		}
		return state, "ok", nil
	case "maxRead":
		return state, state, nil
	default:
		return "", "", fmt.Errorf("%w: %q", ErrBadInvocation, desc)
	}
}

// --- Set ---------------------------------------------------------------------

// Set specifies a grow-only set: "add(x)" -> "ok", "contains(x)" ->
// "true"/"false". State is a sorted comma-joined element list ("{}" empty).
type Set struct{}

var _ Spec = Set{}

// Name implements Spec.
func (Set) Name() string { return "set" }

// Initial implements Spec.
func (Set) Initial() string { return "{}" }

func setElems(state string) []string {
	if state == "{}" {
		return nil
	}
	return strings.Split(state, ",")
}

func setEncode(elems []string) string {
	if len(elems) == 0 {
		return "{}"
	}
	return strings.Join(elems, ",")
}

// Apply implements Spec.
func (Set) Apply(state string, _ int, desc string) (string, string, error) {
	name, args, err := ParseInvocation(desc)
	if err != nil {
		return "", "", err
	}
	elems := setElems(state)
	switch name {
	case "add":
		if len(args) != 1 {
			return "", "", fmt.Errorf("%w: %q", ErrBadInvocation, desc)
		}
		x := args[0]
		// Insert in sorted position, keeping the encoding canonical.
		pos := 0
		for pos < len(elems) && elems[pos] < x {
			pos++
		}
		if pos < len(elems) && elems[pos] == x {
			return state, "ok", nil
		}
		next := make([]string, 0, len(elems)+1)
		next = append(next, elems[:pos]...)
		next = append(next, x)
		next = append(next, elems[pos:]...)
		return setEncode(next), "ok", nil
	case "contains":
		if len(args) != 1 {
			return "", "", fmt.Errorf("%w: %q", ErrBadInvocation, desc)
		}
		for _, e := range elems {
			if e == args[0] {
				return state, "true", nil
			}
		}
		return state, "false", nil
	default:
		return "", "", fmt.Errorf("%w: %q", ErrBadInvocation, desc)
	}
}

// --- Accumulator ---------------------------------------------------------------

// Accumulator specifies a commutative additive accumulator:
// "addTo(x)" -> "ok" adds integer x, "read()" -> current sum.
// It is a simple type: addTo operations commute, addTo overwrites read.
type Accumulator struct{}

var _ Spec = Accumulator{}

// Name implements Spec.
func (Accumulator) Name() string { return "accumulator" }

// Initial implements Spec.
func (Accumulator) Initial() string { return "0" }

// Apply implements Spec.
func (Accumulator) Apply(state string, _ int, desc string) (string, string, error) {
	name, args, err := ParseInvocation(desc)
	if err != nil {
		return "", "", err
	}
	cur, err := strconv.ParseInt(state, 10, 64)
	if err != nil {
		return "", "", fmt.Errorf("spec: malformed accumulator state %q", state)
	}
	switch name {
	case "addTo":
		if len(args) != 1 {
			return "", "", fmt.Errorf("%w: %q", ErrBadInvocation, desc)
		}
		x, err := strconv.ParseInt(args[0], 10, 64)
		if err != nil {
			return "", "", fmt.Errorf("spec: addTo arg %q: %v", args[0], err)
		}
		return strconv.FormatInt(cur+x, 10), "ok", nil
	case "read":
		return state, state, nil
	default:
		return "", "", fmt.Errorf("%w: %q", ErrBadInvocation, desc)
	}
}
