package spec

import (
	"fmt"
	"strconv"
	"strings"
)

// Bag specifies a bag (multiset) of strings, in outcome-refined form: a
// bag's Remove is nondeterministic ("some element"), which a deterministic
// checker cannot express directly, so recorded histories refine each
// remove by the outcome it witnessed (harness.OpToken.ReturnRefined). A
// history of the nondeterministic bag is linearizable iff its refinement
// is linearizable against this deterministic specification.
//
// State: sorted comma-joined multiset ("{}" empty). Invocations:
//
//   - "insert(x)" -> "ok": adds one occurrence of x.
//   - "remove(x)" -> x if an occurrence of x is present (and removes it),
//     "absent" otherwise — so a refined remove(x) can only linearize where
//     x is in the bag.
//   - "remove()" -> Bot if the bag is empty, "nonempty" otherwise — the
//     refinement of a remove that reported empty, which can only linearize
//     where the bag is empty.
//   - "size()" -> decimal count.
type Bag struct{}

var _ Spec = Bag{}

// Name implements Spec.
func (Bag) Name() string { return "bag" }

// Initial implements Spec.
func (Bag) Initial() string { return "{}" }

func bagElems(state string) []string {
	if state == "{}" {
		return nil
	}
	return strings.Split(state, ",")
}

func bagEncode(elems []string) string {
	if len(elems) == 0 {
		return "{}"
	}
	return strings.Join(elems, ",")
}

// Apply implements Spec.
func (Bag) Apply(state string, _ int, desc string) (string, string, error) {
	name, args, err := ParseInvocation(desc)
	if err != nil {
		return "", "", err
	}
	elems := bagElems(state)
	switch name {
	case "insert":
		if len(args) != 1 {
			return "", "", fmt.Errorf("%w: %q", ErrBadInvocation, desc)
		}
		x := args[0]
		// Insert in sorted position, keeping the encoding canonical;
		// duplicates are kept (a bag, not a set).
		pos := 0
		for pos < len(elems) && elems[pos] < x {
			pos++
		}
		next := make([]string, 0, len(elems)+1)
		next = append(next, elems[:pos]...)
		next = append(next, x)
		next = append(next, elems[pos:]...)
		return bagEncode(next), "ok", nil
	case "remove":
		switch len(args) {
		case 0:
			// Refined empty remove: legal only on the empty bag.
			if len(elems) == 0 {
				return state, Bot, nil
			}
			return state, "nonempty", nil
		case 1:
			x := args[0]
			for i, e := range elems {
				if e == x {
					next := make([]string, 0, len(elems)-1)
					next = append(next, elems[:i]...)
					next = append(next, elems[i+1:]...)
					return bagEncode(next), x, nil
				}
			}
			return state, "absent", nil
		}
		return "", "", fmt.Errorf("%w: %q", ErrBadInvocation, desc)
	case "size":
		return state, strconv.Itoa(len(elems)), nil
	default:
		return "", "", fmt.Errorf("%w: %q", ErrBadInvocation, desc)
	}
}
