package harness

import (
	"fmt"

	"slmem/internal/lincheck"
	"slmem/internal/sched"
	"slmem/internal/spec"
	"slmem/internal/trace"
)

// PriorityAdversary always schedules the earliest enabled pid in its
// preference order.
func PriorityAdversary(order ...int) sched.Adversary {
	pref := append([]int(nil), order...)
	return sched.AdversaryFunc(func(enabled []int, _ *trace.Transcript) int {
		for _, want := range pref {
			for _, pid := range enabled {
				if pid == want {
					return pid
				}
			}
		}
		return enabled[0]
	})
}

// HuntResult reports a guided strong-linearizability hunt.
type HuntResult struct {
	// CutsTried is the number of prefix cut points examined.
	CutsTried int
	// Violations lists the cut lengths whose branching tree admitted no
	// prefix-preserving linearization function.
	Violations []int
}

// Hunt branches the system at every prefix of the given schedule, attaching
// one writer-priority and one reader-priority completed continuation, and
// checks each two-branch tree for prefix preservation. It automates the
// shape of the paper's Observation 4 proof without hard-coding where the
// commitment point lies.
func Hunt(sys func() sched.System, schedule []int, sp spec.Spec, priorities [][]int) (*HuntResult, error) {
	out := &HuntResult{}
	for cut := 1; cut <= len(schedule); cut++ {
		prefix := schedule[:cut]
		conts := make([][]int, 0, len(priorities))
		for _, order := range priorities {
			adv := sched.NewChain(sched.NewScript(prefix...), PriorityAdversary(order...))
			res := sched.Run(sys(), adv, sched.Options{})
			if res.Err != nil {
				return nil, fmt.Errorf("harness: hunt cut %d: %w", cut, res.Err)
			}
			conts = append(conts, res.Schedule[cut:])
		}
		tree, err := sched.PrefixTree(sys(), prefix, conts, sched.Options{})
		if err != nil {
			return nil, fmt.Errorf("harness: hunt cut %d: %w", cut, err)
		}
		out.CutsTried++
		chk, err := lincheck.CheckStrong(lincheck.FromSchedTree(tree), sp)
		if err != nil {
			return nil, err
		}
		if !chk.Ok {
			out.Violations = append(out.Violations, cut)
		}
	}
	return out, nil
}
