package harness

import (
	"strconv"
	"strings"
	"testing"

	"slmem/internal/core"
	"slmem/internal/lincheck"
	"slmem/internal/sched"
	"slmem/internal/spec"
)

func TestTableFormatting(t *testing.T) {
	tbl := &Table{
		Title:  "T",
		Claim:  "c",
		Header: []string{"a", "bb"},
		Notes:  []string{"n1"},
	}
	tbl.AddRow(1, "x")
	tbl.AddRow("longer", 2)

	text := tbl.String()
	for _, want := range []string{"## T", "Claim: c", "a", "bb", "longer", "note: n1"} {
		if !strings.Contains(text, want) {
			t.Errorf("String() missing %q:\n%s", want, text)
		}
	}
	md := tbl.Markdown()
	for _, want := range []string{"### T", "| a | bb |", "| --- | --- |", "| longer | 2 |"} {
		if !strings.Contains(md, want) {
			t.Errorf("Markdown() missing %q:\n%s", want, md)
		}
	}
}

func TestObservation4TreeShape(t *testing.T) {
	tree, err := Observation4Tree()
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Children) != 2 {
		t.Fatalf("children = %d, want 2 (T1, T2)", len(tree.Children))
	}
	// The prefix contains dw1 complete, dr1 pending, dw2 complete.
	h := tree.T.Interpreted()
	if len(h.Ops) != 3 {
		t.Fatalf("prefix has %d ops, want 3:\n%s", len(h.Ops), h)
	}
	if h.Ops[1].Complete() {
		t.Error("dr1 should be pending in the prefix")
	}
	// T1's dr2 must return (x,false), T2's (x,true) — the proof's A-2/B-2.
	finals := []string{}
	for _, c := range tree.Children {
		last := ""
		for _, op := range c.T.Interpreted().Ops {
			if op.Complete() && op.Desc == "DRead()" {
				last = op.Res
			}
		}
		finals = append(finals, last)
	}
	if finals[0] != "(x,false)" || finals[1] != "(x,true)" {
		t.Fatalf("dr2 results = %v, want [(x,false) (x,true)]", finals)
	}
}

func TestE1Verdicts(t *testing.T) {
	tbl, err := E1Observation4()
	if err != nil {
		t.Fatal(err)
	}
	// Row 0: the scripted tree — linearizable yes, strongly linearizable NO.
	if tbl.Rows[0][3] != "yes" || tbl.Rows[0][4] != "NO" {
		t.Errorf("scripted row = %v, want linearizable=yes strong=NO", tbl.Rows[0])
	}
	// Algorithm 2 rows must all be strongly linearizable; the only "NO"
	// verdicts allowed are Algorithm 1's scripted tree and its guided hunt.
	for _, row := range tbl.Rows[1:] {
		isAlg1 := strings.Contains(row[1], "algorithm1") || row[1] == "Algorithm 1"
		isHunt := strings.HasPrefix(row[0], "guided hunt")
		switch {
		case !isAlg1 && row[4] != "yes":
			t.Errorf("row %v: Algorithm 2 must pass", row)
		case isAlg1 && isHunt && row[4] != "NO":
			t.Errorf("row %v: guided hunt must rediscover the Algorithm 1 violation", row)
		}
	}
}

func TestE2Verdicts(t *testing.T) {
	tbl, err := E2ABASteps()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range tbl.Rows {
		// Theorem 14(a): max DWrite steps is exactly 2.
		if row[5] != "2" {
			t.Errorf("row %v: max DWrite steps = %s, want 2", row, row[5])
		}
		// Theorem 14(b): the ratio stays bounded by a small constant.
		ratio, err := strconv.ParseFloat(row[8], 64)
		if err != nil {
			t.Fatal(err)
		}
		if ratio > 4.0 {
			t.Errorf("row %v: ratio %f exceeds sanity bound", row, ratio)
		}
	}
}

func TestE3Verdicts(t *testing.T) {
	tbl, err := E3SnapshotSteps()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		ratio, err := strconv.ParseFloat(row[6], 64)
		if err != nil {
			t.Fatal(err)
		}
		if ratio > 1.0 {
			t.Errorf("row %v: scan ops exceeded the Theorem 32 bound", row)
		}
	}
}

func TestE4Verdicts(t *testing.T) {
	tbl, err := E4SoloOps()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		if row[3] != row[4] {
			t.Errorf("%s %s: measured %s, expected %s", row[0], row[1], row[3], row[4])
		}
	}
}

func TestE5Verdicts(t *testing.T) {
	tbl, err := E5SpaceGrowth()
	if err != nil {
		t.Fatal(err)
	}
	first, last := tbl.Rows[0], tbl.Rows[len(tbl.Rows)-1]
	if first[1] != last[1] {
		t.Errorf("algorithm3 registers grew: %s -> %s", first[1], last[1])
	}
	if first[2] != last[2] {
		t.Errorf("fully-bounded registers grew: %s -> %s", first[2], last[2])
	}
	v0, _ := strconv.Atoi(first[3])
	vN, _ := strconv.Atoi(last[3])
	if vN <= v0+50 {
		t.Errorf("versioned registers grew only %d -> %d; expected unbounded-style growth", v0, vN)
	}
}

func TestE8Verdicts(t *testing.T) {
	tbl, err := E8Starvation()
	if err != nil {
		t.Fatal(err)
	}
	// Victim step counts must grow with w within each object group, and the
	// victim must always be last to finish.
	var prev int
	for i, row := range tbl.Rows {
		steps, err := strconv.Atoi(row[2])
		if err != nil {
			t.Fatal(err)
		}
		if i%3 != 0 && steps <= prev {
			t.Errorf("row %v: victim steps %d did not grow (prev %d)", row, steps, prev)
		}
		prev = steps
		if row[3] != "yes" {
			t.Errorf("row %v: victim finished before writers — storm adversary failed", row)
		}
	}
}

func TestABASystemWorkloadShape(t *testing.T) {
	sys := ABASystem(ABAStrong, 4, 2, 3, 5)
	res := sched.Run(sys, &sched.RoundRobin{}, sched.Options{})
	if !res.Completed() {
		t.Fatalf("incomplete: %v", res.Err)
	}
	reads, writes := 0, 0
	for _, op := range res.T.Interpreted().Ops {
		if strings.HasPrefix(op.Desc, "DRead") {
			reads++
		} else {
			writes++
		}
	}
	if reads != 2*3 || writes != 2*5 {
		t.Errorf("ops = %d reads, %d writes; want 6, 10", reads, writes)
	}
}

func TestSnapshotSystemStatsExposed(t *testing.T) {
	var stats *core.Stats
	sys := SnapshotSystem(2, 1, 2, 2, &stats)
	res := sched.Run(sys, &sched.RoundRobin{}, sched.Options{})
	if !res.Completed() {
		t.Fatalf("incomplete: %v", res.Err)
	}
	if stats == nil {
		t.Fatal("stats pointer not populated by Setup")
	}
	if stats.SUpdates.Load() != 2 {
		t.Errorf("SUpdates = %d, want 2", stats.SUpdates.Load())
	}
	if stats.TotalScanOps() < 3*2 {
		t.Errorf("TotalScanOps = %d, want >= 6", stats.TotalScanOps())
	}
}

func TestStepsByOp(t *testing.T) {
	sys := ABASystem(ABAStrong, 2, 1, 2, 2)
	res := sched.Run(sys, &sched.RoundRobin{}, sched.Options{})
	if !res.Completed() {
		t.Fatalf("incomplete: %v", res.Err)
	}
	writes := StepsByOp(res.T, func(d string) bool { return strings.HasPrefix(d, "DWrite") })
	if writes.Ops != 2 {
		t.Errorf("DWrite ops = %d, want 2", writes.Ops)
	}
	if writes.Max != 2 || writes.Total != 4 {
		t.Errorf("DWrite steps: max=%d total=%d, want 2/4", writes.Max, writes.Total)
	}
	all := StepsByOp(res.T, func(string) bool { return true })
	if all.Ops != 4 {
		t.Errorf("total ops = %d, want 4", all.Ops)
	}
}

func TestRandomBranchTreePrefixProperty(t *testing.T) {
	sys := Observation4System(ABAStrong)
	tree, err := RandomBranchTree(sys, 3, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Children) != 4 {
		t.Fatalf("fanout = %d, want 4", len(tree.Children))
	}
	for _, c := range tree.Children {
		if !tree.T.IsPrefixOf(c.T) {
			t.Fatal("child does not extend prefix")
		}
		// Children ran to completion.
		if !c.T.Interpreted().Complete() {
			t.Fatal("continuation left pending operations")
		}
	}
	// The tree must satisfy strong linearizability (Algorithm 2).
	res, err := lincheck.CheckStrong(lincheck.FromSchedTree(tree), spec.ABARegister{N: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok {
		t.Error("Algorithm 2 failed on a random branching tree")
	}
}

func TestTreeStats(t *testing.T) {
	tree, err := Observation4Tree()
	if err != nil {
		t.Fatal(err)
	}
	nodes, leaves, depth := TreeStats(tree)
	if nodes != 3 || leaves != 2 || depth != 1 {
		t.Errorf("TreeStats = (%d,%d,%d), want (3,2,1)", nodes, leaves, depth)
	}
}
