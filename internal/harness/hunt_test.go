package harness

import (
	"testing"

	"slmem/internal/sched"
	"slmem/internal/spec"
)

// obs4BaseSchedule is the scripted schedule of the Observation 4 prefix S
// followed by T1's continuation — a natural "one execution" of the workload
// whose cut points the hunt then explores.
func obs4BaseSchedule() []int {
	rep := func(pid, k int) []int {
		out := make([]int, k)
		for i := range out {
			out[i] = pid
		}
		return out
	}
	var s []int
	s = append(s, rep(1, 4)...)  // dw1
	s = append(s, rep(0, 3)...)  // dr1 through line 16
	s = append(s, rep(1, 16)...) // dw2..dw5
	s = append(s, rep(0, 9)...)  // dr1 completion + dr2
	return s
}

// TestHuntFindsObservation4 rediscovers the paper's impossibility without
// hard-coding the branch point: branching at every cut of one natural
// execution, with writer-priority vs reader-priority futures, must expose
// at least one cut where Algorithm 1 admits no prefix-preserving
// linearization function.
func TestHuntFindsObservation4(t *testing.T) {
	res, err := Hunt(
		func() sched.System { return Observation4System(ABALinearizable) },
		obs4BaseSchedule(),
		spec.ABARegister{N: 2},
		[][]int{{1, 0}, {0, 1}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) == 0 {
		t.Fatalf("hunt over %d cuts found no violation — Observation 4 should be discoverable", res.CutsTried)
	}
	t.Logf("hunt: %d/%d cut points violate prefix preservation: %v",
		len(res.Violations), res.CutsTried, res.Violations)
}

// TestHuntClearsAlgorithm2 runs the identical hunt against Algorithm 2:
// every cut must pass.
func TestHuntClearsAlgorithm2(t *testing.T) {
	// Algorithm 2's DRead has a different step structure, so derive the base
	// schedule from an actual run instead of the Algorithm 1 script.
	probe := sched.Run(Observation4System(ABAStrong), PriorityAdversary(1, 0), sched.Options{})
	if !probe.Completed() {
		t.Fatalf("probe incomplete: %v", probe.Err)
	}
	res, err := Hunt(
		func() sched.System { return Observation4System(ABAStrong) },
		probe.Schedule,
		spec.ABARegister{N: 2},
		[][]int{{1, 0}, {0, 1}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("Algorithm 2 violated prefix preservation at cuts %v", res.Violations)
	}
}
