package harness

import (
	"context"
	"fmt"
	"sync"

	"slmem/internal/core"
	"slmem/internal/memory"
	"slmem/internal/runtime"
)

// SoakReport summarizes one pid-lease soak run (E9).
type SoakReport struct {
	// Procs is the pool size, Goroutines the churn width.
	Procs, Goroutines int
	// Incs is the number of counter increments performed through leases.
	Incs int64
	// Final is the counter value read after quiescence; correctness demands
	// Final == Incs.
	Final uint64
	// Leaked lists pids still leased after quiescence (must be empty).
	Leaked []int
	// Stats reports how acquisitions were served.
	Stats runtime.StatsSnapshot
}

// SoakLeases drives a strongly linearizable counter through a pid leaser
// with many more goroutines than pids: each goroutine repeatedly leases a
// pid, increments as that process, and releases. It then checks the two
// properties the service runtime stakes its correctness on — no increment
// is lost (the leaser never let two goroutines share a pid) and no pid
// leaks. Run it under -race for the full effect; the race detector turns
// any ownership violation into a hard failure.
func SoakLeases(procs, goroutines, opsPerGoroutine int) (SoakReport, error) {
	l := runtime.NewLeaser(procs)
	var alloc memory.NativeAllocator
	c := core.NewCounter(&alloc, procs)
	ctx := context.Background()

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for op := 0; op < opsPerGoroutine; op++ {
				if err := l.With(ctx, func(pid int) error {
					c.Inc(pid)
					return nil
				}); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return SoakReport{}, err
	}

	rep := SoakReport{
		Procs:      procs,
		Goroutines: goroutines,
		Incs:       int64(goroutines) * int64(opsPerGoroutine),
		Leaked:     l.Held(),
		Stats:      l.Stats(),
	}
	pid, err := l.Acquire(ctx)
	if err != nil {
		return rep, err
	}
	rep.Final = c.Read(pid)
	l.Release(pid)

	if rep.Final != uint64(rep.Incs) {
		return rep, fmt.Errorf("soak: counter read %d after %d increments", rep.Final, rep.Incs)
	}
	if len(rep.Leaked) > 0 {
		return rep, fmt.Errorf("soak: pids leaked after quiescence: %v", rep.Leaked)
	}
	return rep, nil
}

// E9LeaseSoak regenerates the service-runtime soak table: lease churn at
// several pool sizes, each verified for lost increments and leaked pids.
func E9LeaseSoak() (*Table, error) {
	t := &Table{
		Title:  "E9: pid-lease soak — fixed-model objects under goroutine churn",
		Claim:  "leasing preserves the per-pid ownership invariant: no lost increments, no leaked pids",
		Header: []string{"procs", "goroutines", "incs", "final", "fast-path", "steals", "blocked"},
	}
	for _, cfg := range []struct{ procs, goroutines, ops int }{
		{1, 16, 50},
		{4, 32, 50},
		{8, 64, 50},
	} {
		rep, err := SoakLeases(cfg.procs, cfg.goroutines, cfg.ops)
		if err != nil {
			return nil, err
		}
		t.AddRow(rep.Procs, rep.Goroutines, rep.Incs, rep.Final,
			rep.Stats.FastPath, rep.Stats.Steals, rep.Stats.Blocks)
	}
	t.Notes = append(t.Notes,
		"every increment ran as a leased fixed-model process; final == incs in every row")
	return t, nil
}
