package harness

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"slmem/internal/aba"
	"slmem/internal/core"
	"slmem/internal/memory"
	"slmem/internal/spec"
)

func TestRecorderSequential(t *testing.T) {
	rec := NewRecorder()
	rec.Do(0, "write(1)", func() string { return "ok" })
	rec.Do(1, "read()", func() string { return "1" })
	h := rec.History()
	if len(h.Ops) != 2 {
		t.Fatalf("ops = %d, want 2", len(h.Ops))
	}
	if !h.HappensBefore(h.Ops[0], h.Ops[1]) {
		t.Error("sequential ops not ordered by happens-before")
	}
	rec.Reset()
	if rec.Len() != 0 {
		t.Error("Reset did not clear ops")
	}
}

func TestRecorderOverlapDetection(t *testing.T) {
	rec := NewRecorder()
	t1 := rec.Invoke(0, "a()")
	t2 := rec.Invoke(1, "b()") // overlaps t1
	t1.Return("ok")
	t2.Return("ok")
	h := rec.History()
	if h.HappensBefore(h.Ops[0], h.Ops[1]) || h.HappensBefore(h.Ops[1], h.Ops[0]) {
		t.Error("overlapping ops reported as ordered")
	}
}

func TestRecorderConcurrentSoundness(t *testing.T) {
	// Operations performed strictly in sequence across goroutines (via a
	// channel baton) must come out happens-before ordered.
	rec := NewRecorder()
	baton := make(chan struct{}, 1)
	baton <- struct{}{}
	var wg sync.WaitGroup
	for pid := 0; pid < 4; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			<-baton
			rec.Do(pid, fmt.Sprintf("op%d()", pid), func() string { return "ok" })
			baton <- struct{}{}
		}(pid)
	}
	wg.Wait()
	h := rec.History()
	ordered := 0
	for i := range h.Ops {
		for j := range h.Ops {
			if i != j && (h.HappensBefore(h.Ops[i], h.Ops[j]) || h.HappensBefore(h.Ops[j], h.Ops[i])) {
				ordered++
			}
		}
	}
	if ordered != 4*3 { // every pair ordered one way
		t.Errorf("ordered pair count = %d, want 12", ordered)
	}
}

func TestCheckNativeBurstsABA(t *testing.T) {
	// Real-concurrency validation of the strongly linearizable ABA register:
	// every recorded burst must be linearizable.
	const n = 4
	err := CheckNativeBursts(spec.ABARegister{N: n}, 30, func(burst int, rec *Recorder) {
		var alloc memory.NativeAllocator
		reg := aba.NewStrong[string](&alloc, n, spec.Bot)
		var wg sync.WaitGroup
		for pid := 0; pid < n; pid++ {
			wg.Add(1)
			go func(pid int) {
				defer wg.Done()
				for i := 0; i < 3; i++ {
					if pid%2 == 0 {
						rec.Do(pid, "DRead()", func() string {
							v, f := reg.DRead(pid)
							return fmt.Sprintf("(%s,%t)", v, f)
						})
					} else {
						x := fmt.Sprintf("b%d.%d.%d", burst, pid, i)
						rec.Do(pid, spec.FormatInvocation("DWrite", x), func() string {
							reg.DWrite(pid, x)
							return "ok"
						})
					}
				}
			}(pid)
		}
		wg.Wait()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCheckNativeBurstsSnapshot(t *testing.T) {
	const n = 4
	err := CheckNativeBursts(spec.Snapshot{N: n}, 20, func(burst int, rec *Recorder) {
		var alloc memory.NativeAllocator
		s := core.New[string](&alloc, n, spec.Bot)
		var wg sync.WaitGroup
		for pid := 0; pid < n; pid++ {
			wg.Add(1)
			go func(pid int) {
				defer wg.Done()
				for i := 0; i < 3; i++ {
					if pid%2 == 0 {
						rec.Do(pid, "scan()", func() string {
							return spec.FormatView(s.Scan(pid))
						})
					} else {
						x := fmt.Sprintf("b%d.%d.%d", burst, pid, i)
						rec.Do(pid, spec.FormatInvocation("update", x), func() string {
							s.Update(pid, x)
							return "ok"
						})
					}
				}
			}(pid)
		}
		wg.Wait()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCheckNativeBurstsCatchesViolations(t *testing.T) {
	// Teeth: a fake register that drops writes must fail the burst check.
	err := CheckNativeBursts(spec.Register{}, 1, func(_ int, rec *Recorder) {
		rec.Do(0, "write(1)", func() string { return "ok" })
		rec.Do(1, "read()", func() string { return spec.Bot }) // lost write
	})
	if err == nil {
		t.Fatal("lost write accepted by burst checker")
	}
	if !strings.Contains(err.Error(), "not linearizable") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestCheckNativeBurstsSizeLimit(t *testing.T) {
	err := CheckNativeBursts(spec.Register{}, 1, func(_ int, rec *Recorder) {
		for i := 0; i < 63; i++ {
			rec.Do(0, "read()", func() string { return spec.Bot })
		}
	})
	if err == nil {
		t.Fatal("oversized burst accepted")
	}
}
