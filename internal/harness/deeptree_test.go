package harness

import (
	"testing"

	"slmem/internal/core"
	"slmem/internal/lincheck"
	"slmem/internal/sched"
	"slmem/internal/spec"
)

func TestDeepBranchTreeShape(t *testing.T) {
	sys := Observation4System(ABAStrong)
	tree, err := DeepBranchTree(sys, 1, 2, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	nodes, leaves, depth := TreeStats(tree)
	if depth < 2 {
		t.Errorf("depth = %d, want >= 2", depth)
	}
	if leaves < 2 || nodes < 4 {
		t.Errorf("nodes=%d leaves=%d; tree too small", nodes, leaves)
	}
	// Every leaf must be a completed run.
	var checkLeaves func(n *sched.TreeNode)
	checkLeaves = func(n *sched.TreeNode) {
		if len(n.Children) == 0 {
			if len(n.Enabled) != 0 && !n.T.Interpreted().Complete() {
				t.Errorf("leaf with pending ops and enabled processes")
			}
			return
		}
		for _, c := range n.Children {
			if !n.T.IsPrefixOf(c.T) {
				t.Error("child does not extend parent")
			}
			checkLeaves(c)
		}
	}
	checkLeaves(tree)
}

// TestStrongABAOnDeepTrees: Algorithm 2 must remain prefix-preserving
// across nested branching futures.
func TestStrongABAOnDeepTrees(t *testing.T) {
	sys := Observation4System(ABAStrong)
	for seed := int64(0); seed < 8; seed++ {
		tree, err := DeepBranchTree(sys, seed, 2, 2, 7)
		if err != nil {
			t.Fatal(err)
		}
		res, err := lincheck.CheckStrong(lincheck.FromSchedTree(tree), spec.ABARegister{N: 2})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Ok {
			t.Fatalf("seed %d: deep tree check failed at %s", seed, res.FailNode)
		}
	}
}

// TestStrongSnapshotOnDeepTrees: the composed snapshot (Algorithm 3) must
// remain prefix-preserving across nested branching futures.
func TestStrongSnapshotOnDeepTrees(t *testing.T) {
	var stats *core.Stats
	sys := SnapshotSystem(2, 1, 2, 2, &stats)
	for seed := int64(0); seed < 6; seed++ {
		tree, err := DeepBranchTree(sys, seed, 2, 2, 9)
		if err != nil {
			t.Fatal(err)
		}
		res, err := lincheck.CheckStrong(lincheck.FromSchedTree(tree), spec.Snapshot{N: 2})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Ok {
			t.Fatalf("seed %d: deep tree check failed at %s", seed, res.FailNode)
		}
	}
}

// TestLinearizableABAFailsSomeDeepTree: hunting Algorithm 1 with deep trees
// around the Observation 4 workload should find at least one violation — a
// randomized rediscovery of the impossibility, independent of the scripted
// proof schedule.
func TestLinearizableABAFailsSomeDeepTree(t *testing.T) {
	sys := Observation4System(ABALinearizable)
	found := false
	for seed := int64(0); seed < 60 && !found; seed++ {
		tree, err := DeepBranchTree(sys, seed, 2, 3, 7)
		if err != nil {
			t.Fatal(err)
		}
		res, err := lincheck.CheckStrong(lincheck.FromSchedTree(tree), spec.ABARegister{N: 2})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Ok {
			found = true
		}
	}
	if !found {
		t.Log("no violation found by random deep trees (the scripted Observation 4 scenario still refutes); consider more seeds")
	}
}
