package harness

import (
	"fmt"

	"slmem/internal/aba"
	"slmem/internal/core"
	"slmem/internal/sched"
	"slmem/internal/spec"
	"slmem/internal/trace"
)

// ABAImpl selects an ABA-detecting register implementation.
type ABAImpl string

// ABA-detecting register implementations under test.
const (
	ABALinearizable ABAImpl = "algorithm1-linearizable"
	ABAStrong       ABAImpl = "algorithm2-strong"
)

type dregister interface {
	DWrite(p int, x string)
	DRead(q int) (string, bool)
}

// ABASystem builds a simulated ABA workload: readerPids perform reads DReads
// each, the rest perform writes DWrites each.
func ABASystem(impl ABAImpl, n, readers, reads, writes int) sched.System {
	return sched.System{
		N: n,
		Setup: func(env *sched.Env) []sched.Program {
			var reg dregister
			switch impl {
			case ABALinearizable:
				reg = aba.NewLinearizable[string](env, n, spec.Bot)
			default:
				reg = aba.NewStrong[string](env, n, spec.Bot)
			}
			progs := make([]sched.Program, n)
			for pid := 0; pid < n; pid++ {
				pid := pid
				if pid < readers {
					progs[pid] = func(p *sched.Proc) {
						for i := 0; i < reads; i++ {
							p.Do("DRead()", func() string {
								v, flag := reg.DRead(pid)
								return fmt.Sprintf("(%s,%t)", v, flag)
							})
						}
					}
				} else {
					progs[pid] = func(p *sched.Proc) {
						for i := 0; i < writes; i++ {
							x := fmt.Sprintf("w%d.%d", pid, i)
							p.Do(spec.FormatInvocation("DWrite", x), func() string {
								reg.DWrite(pid, x)
								return "ok"
							})
						}
					}
				}
			}
			return progs
		},
	}
}

// SnapshotSystem builds a simulated workload on the paper's Algorithm 3
// snapshot: scanners perform scans each, the rest perform updates each.
// statsOut, if non-nil, receives the object's Stats pointer.
func SnapshotSystem(n, scanners, scans, updates int, statsOut **core.Stats) sched.System {
	return sched.System{
		N: n,
		Setup: func(env *sched.Env) []sched.Program {
			s := core.New[string](env, n, spec.Bot)
			if statsOut != nil {
				*statsOut = s.Stats()
			}
			progs := make([]sched.Program, n)
			for pid := 0; pid < n; pid++ {
				pid := pid
				if pid < scanners {
					progs[pid] = func(p *sched.Proc) {
						for i := 0; i < scans; i++ {
							p.Do("scan()", func() string {
								return spec.FormatView(s.Scan(pid))
							})
						}
					}
				} else {
					progs[pid] = func(p *sched.Proc) {
						for i := 0; i < updates; i++ {
							x := fmt.Sprintf("u%d.%d", pid, i)
							p.Do(spec.FormatInvocation("update", x), func() string {
								s.Update(pid, x)
								return "ok"
							})
						}
					}
				}
			}
			return progs
		},
	}
}

// Observation4System reproduces the workload of the paper's Observation 4
// proof on the chosen implementation: process 0 performs two DReads and
// process 1 performs five DWrites of the same value. With n = 2 the
// writer's sequence numbers cycle 0,1,2,3,0, so the first and fifth DWrite
// share a sequence number (the proof's dw_i and dw_j).
func Observation4System(impl ABAImpl) sched.System {
	return sched.System{
		N: 2,
		Setup: func(env *sched.Env) []sched.Program {
			var reg dregister
			switch impl {
			case ABALinearizable:
				reg = aba.NewLinearizable[string](env, 2, spec.Bot)
			default:
				reg = aba.NewStrong[string](env, 2, spec.Bot)
			}
			return []sched.Program{
				func(p *sched.Proc) {
					for i := 0; i < 2; i++ {
						p.Do("DRead()", func() string {
							v, flag := reg.DRead(0)
							return fmt.Sprintf("(%s,%t)", v, flag)
						})
					}
				},
				func(p *sched.Proc) {
					for i := 0; i < 5; i++ {
						p.Do("DWrite(x)", func() string {
							reg.DWrite(1, "x")
							return "ok"
						})
					}
				},
			}
		},
	}
}

// Observation4Tree builds the paper's transcript tree {S, T1, T2} for the
// given implementation, using the step accounting of Algorithm 1:
// DWrite = 4 scheduled steps (inv, read A[c], write X, ret) and DRead = 6
// (inv, read X, read A[q], write A[q], read X, ret).
//
// It is meaningful only for ABALinearizable; Algorithm 2's DRead has a
// different step structure, so its strong linearizability is tested on
// random and exhaustive trees instead.
func Observation4Tree() (*sched.TreeNode, error) {
	rep := func(pid, k int) []int {
		out := make([]int, k)
		for i := range out {
			out[i] = pid
		}
		return out
	}
	cat := func(parts ...[]int) []int {
		var out []int
		for _, p := range parts {
			out = append(out, p...)
		}
		return out
	}
	prefixS := cat(rep(1, 4), rep(0, 3), rep(1, 4))
	contT1 := cat(rep(1, 12), rep(0, 3), rep(0, 6))
	contT2 := cat(rep(0, 3), rep(0, 6))
	return sched.PrefixTree(Observation4System(ABALinearizable), prefixS, [][]int{contT1, contT2}, sched.Options{})
}

// RandomBranchTree samples a random schedule prefix and attaches fanout
// completed continuations diverging after it.
func RandomBranchTree(sys sched.System, seed int64, prefixLen, fanout int) (*sched.TreeNode, error) {
	probe := sched.Run(sys, sched.NewSeeded(seed), sched.Options{})
	prefix := probe.Schedule
	if len(prefix) > prefixLen {
		prefix = prefix[:prefixLen]
	}
	conts := make([][]int, 0, fanout)
	for f := 0; f < fanout; f++ {
		adv := sched.NewChain(sched.NewScript(prefix...), sched.NewSeeded(seed*1009+int64(f)))
		res := sched.Run(sys, adv, sched.Options{})
		if res.Err != nil {
			return nil, res.Err
		}
		conts = append(conts, res.Schedule[len(prefix):])
	}
	return sched.PrefixTree(sys, prefix, conts, sched.Options{})
}

// DeepBranchTree samples a multi-level branching tree: at each of depth
// levels the schedule forks into fanout continuations, each extended by
// extLen random choices; leaves run to completion. This probes prefix
// preservation across nested futures, which single-level trees cannot.
func DeepBranchTree(sys sched.System, seed int64, depth, fanout, extLen int) (*sched.TreeNode, error) {
	var build func(prefix []int, level int, seed int64) (*sched.TreeNode, error)
	build = func(prefix []int, level int, seed int64) (*sched.TreeNode, error) {
		res := sched.RunScript(sys, prefix, sched.Options{})
		if res.Err != nil {
			return nil, res.Err
		}
		node := &sched.TreeNode{
			Schedule: append([]int(nil), prefix...),
			T:        res.T,
			Enabled:  res.Enabled,
		}
		if len(res.Enabled) == 0 {
			return node, nil // all programs finished
		}
		for f := 0; f < fanout; f++ {
			childSeed := seed*131 + int64(f) + 1
			var childSchedule []int
			if level == 0 {
				// Leaf level: run to completion.
				adv := sched.NewChain(sched.NewScript(prefix...), sched.NewSeeded(childSeed))
				full := sched.Run(sys, adv, sched.Options{})
				if full.Err != nil {
					return nil, full.Err
				}
				childSchedule = full.Schedule
			} else {
				adv := sched.NewChain(sched.NewScript(prefix...), sched.NewSeeded(childSeed))
				full := sched.Run(sys, adv, sched.Options{})
				if full.Err != nil {
					return nil, full.Err
				}
				childSchedule = full.Schedule
				if len(childSchedule) > len(prefix)+extLen {
					childSchedule = childSchedule[:len(prefix)+extLen]
				}
			}
			child, err := build(childSchedule, level-1, childSeed)
			if err != nil {
				return nil, err
			}
			if !node.T.IsPrefixOf(child.T) {
				return nil, fmt.Errorf("harness: deep tree child does not extend parent")
			}
			node.Children = append(node.Children, child)
		}
		return node, nil
	}
	probe := sched.Run(sys, sched.NewSeeded(seed), sched.Options{})
	prefix := probe.Schedule
	if len(prefix) > extLen {
		prefix = prefix[:extLen]
	}
	return build(prefix, depth, seed)
}

// OpSteps aggregates base-object steps per high-level operation whose
// invocation description matches the filter.
type OpSteps struct {
	// Ops is the number of matching operations.
	Ops int
	// Total is the number of base steps attributed to them.
	Total int
	// Max is the largest step count of any single matching operation.
	Max int
}

// StepsByOp counts register steps grouped by operation over a transcript.
func StepsByOp(t *trace.Transcript, match func(desc string) bool) OpSteps {
	descs := make(map[int]string)
	counts := make(map[int]int)
	for _, e := range t.Events {
		switch e.Kind {
		case trace.KindInvoke:
			descs[e.OpID] = e.Desc
		case trace.KindRead, trace.KindWrite:
			counts[e.OpID]++
		}
	}
	var out OpSteps
	for opID, desc := range descs {
		if !match(desc) {
			continue
		}
		out.Ops++
		out.Total += counts[opID]
		if counts[opID] > out.Max {
			out.Max = counts[opID]
		}
	}
	return out
}

// TreeStats summarizes a transcript tree.
func TreeStats(node *sched.TreeNode) (nodes, leaves, maxDepth int) {
	var walk func(n *sched.TreeNode, depth int)
	walk = func(n *sched.TreeNode, depth int) {
		nodes++
		if depth > maxDepth {
			maxDepth = depth
		}
		if len(n.Children) == 0 {
			leaves++
			return
		}
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(node, 0)
	return nodes, leaves, maxDepth
}
