package harness

import (
	"fmt"
	"sync"
	"sync/atomic"

	"slmem/internal/lincheck"
	"slmem/internal/spec"
	"slmem/internal/trace"
)

// Recorder captures operation-level histories from NATIVE concurrent runs
// (real goroutines) so they can be checked for linearizability.
//
// Invocation and response times come from one global atomic clock: if
// operation a's response tick precedes operation b's invocation tick, then a
// happened before b in real time. The happens-before order derived this way
// is sound (it only relates operations that truly did not overlap), so a
// history that fails the checker is a genuine linearizability violation.
//
// The simulator cannot observe real scheduling and real scheduling cannot be
// replayed, so native validation is probabilistic: record many small bursts
// and check each (lincheck histories are capped at 62 operations).
type Recorder struct {
	clock atomic.Int64
	ids   atomic.Int64

	mu  sync.Mutex
	ops []recordedOp
}

type recordedOp struct {
	id   int
	pid  int
	desc string
	res  string
	inv  int64
	ret  int64
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Invoke starts recording an operation by pid and returns a token to
// complete it with. Safe for concurrent use.
func (r *Recorder) Invoke(pid int, desc string) OpToken {
	return OpToken{
		r:    r,
		id:   int(r.ids.Add(1)),
		pid:  pid,
		desc: desc,
		inv:  r.clock.Add(1),
	}
}

// OpToken is a pending recorded operation.
type OpToken struct {
	r    *Recorder
	id   int
	pid  int
	desc string
	inv  int64
}

// Return completes the operation with the canonical response encoding.
func (t OpToken) Return(res string) {
	t.ReturnRefined(t.desc, res)
}

// ReturnRefined completes the operation, rewriting its description to
// desc. This is how nondeterministic-by-response types are checked against
// deterministic specifications: a bag's remove() is recorded as the
// refined "remove(x)" naming the item it actually took (or "remove()" when
// it reported empty), and the history is checked against the refined spec
// (spec.Bag). The invocation tick was taken at Invoke, so the operation's
// real-time interval is unchanged — only the checker-facing description is
// refined post hoc.
func (t OpToken) ReturnRefined(desc, res string) {
	ret := t.r.clock.Add(1)
	t.r.mu.Lock()
	defer t.r.mu.Unlock()
	t.r.ops = append(t.r.ops, recordedOp{
		id: t.id, pid: t.pid, desc: desc, res: res, inv: t.inv, ret: ret,
	})
}

// Do records fn as one operation.
func (r *Recorder) Do(pid int, desc string, fn func() string) string {
	tok := r.Invoke(pid, desc)
	res := fn()
	tok.Return(res)
	return res
}

// Len returns the number of completed operations recorded.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ops)
}

// History converts the recording into a checkable history. Tick values
// become event indices; only completed operations are included (operations
// pending at the end of a burst are unobservable natively and are dropped,
// which is sound: dropping a pending op from a history preserves
// linearizability in both directions for the remaining ops).
func (r *Recorder) History() *trace.History {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := &trace.History{Ops: make([]trace.Operation, 0, len(r.ops))}
	for _, op := range r.ops {
		h.Ops = append(h.Ops, trace.Operation{
			OpID: op.id,
			PID:  op.pid,
			Desc: op.desc,
			Res:  op.res,
			Inv:  int(op.inv),
			Ret:  int(op.ret),
		})
	}
	return h
}

// Reset clears recorded operations (the clock keeps advancing).
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ops = r.ops[:0]
}

// CheckNativeBursts drives a native concurrent workload in independent
// bursts and checks each burst's recorded history for linearizability.
//
// For each burst, runner must construct a FRESH object, start its
// goroutines, perform operations through the recorder, and return once all
// goroutines have finished. Bursts are independent because the final state
// of a concurrent history is not always unique — chaining bursts on one
// object could produce false alarms.
func CheckNativeBursts(sp spec.Spec, bursts int, runner func(burst int, rec *Recorder)) error {
	rec := NewRecorder()
	for b := 0; b < bursts; b++ {
		rec.Reset()
		runner(b, rec)
		h := rec.History()
		if len(h.Ops) > 62 {
			return fmt.Errorf("harness: burst %d recorded %d ops, max 62", b, len(h.Ops))
		}
		res, err := lincheck.CheckHistory(h, sp)
		if err != nil {
			return fmt.Errorf("harness: burst %d: %w", b, err)
		}
		if !res.Ok {
			return fmt.Errorf("harness: burst %d not linearizable:\n%s", b, h)
		}
	}
	return nil
}
