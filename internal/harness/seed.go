package harness

// seedBase offsets every randomized schedule seed the experiments use, so a
// single flag (slbench -seed) re-rolls all of their random adversaries and
// branch trees at once while the default 0 keeps runs byte-for-byte
// identical to historical tables. Not synchronized: set it once before
// running experiments.
var seedBase int64

// SetSeedBase sets the base offset applied to every experiment schedule
// seed. cmd/slbench threads its -seed flag here; base 0 (the default)
// reproduces the historical schedules exactly.
func SetSeedBase(base int64) { seedBase = base }

// scheduleSeed derives the effective seed for one randomized schedule.
func scheduleSeed(local int64) int64 { return seedBase + local }
