package harness

import "testing"

// TestSoakLeases drives the pid-lease soak under whatever detector the test
// run enables; CI runs it with -race, where an ownership violation in the
// leaser would surface as a data race inside the counter's per-pid state.
func TestSoakLeases(t *testing.T) {
	procs, goroutines, ops := 8, 64, 120
	if testing.Short() {
		procs, goroutines, ops = 4, 24, 40
	}
	rep, err := SoakLeases(procs, goroutines, ops)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Final != uint64(rep.Incs) {
		t.Fatalf("final = %d, want %d", rep.Final, rep.Incs)
	}
	if got := rep.Stats.Acquires; got < rep.Incs {
		t.Fatalf("acquires = %d < %d incs", got, rep.Incs)
	}
	t.Logf("soak: %+v", rep)
}

func TestE9LeaseSoak(t *testing.T) {
	tbl, err := E9LeaseSoak()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("E9 produced %d rows, want 3", len(tbl.Rows))
	}
}
