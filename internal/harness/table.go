// Package harness implements the experiment suite of DESIGN.md (E1–E8):
// each of the paper's theorems and complexity claims is regenerated as a
// table or series. cmd/slbench prints them; EXPERIMENTS.md records the
// outcomes.
package harness

import (
	"fmt"
	"strings"
)

// Table is a formatted experiment result.
type Table struct {
	// Title names the experiment, e.g. "E2: ABA-detecting register step complexity".
	Title string
	// Claim is the paper statement being tested.
	Claim string
	// Header labels the columns.
	Header []string
	// Rows hold the measurements.
	Rows [][]string
	// Notes carry caveats and conclusions.
	Notes []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprintf("%v", c)
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s\n", t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&b, "Claim: %s\n", t.Claim)
	}
	b.WriteString("\n")

	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s\n\n", t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&b, "*Claim:* %s\n\n", t.Claim)
	}
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*Note:* %s\n", n)
	}
	return b.String()
}
