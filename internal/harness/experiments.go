package harness

import (
	"fmt"
	"strings"
	"time"

	"slmem/internal/aba"
	"slmem/internal/core"
	"slmem/internal/lincheck"
	"slmem/internal/memory"
	"slmem/internal/sched"
	"slmem/internal/snapshot"
	"slmem/internal/spec"
	"slmem/internal/universal"
	"slmem/internal/versioned"
)

// E1Observation4 regenerates Observation 4 and Theorem 12: Algorithm 1
// admits no prefix-preserving linearization function over the paper's
// {S, T1, T2} tree, while Algorithm 2 passes the same scenario shape, random
// branching trees, and exhaustive interleaving trees of a small workload.
func E1Observation4() (*Table, error) {
	t := &Table{
		Title:  "E1: strong linearizability — Observation 4 vs Theorem 12",
		Claim:  "Algorithm 1 is linearizable but NOT strongly linearizable (Obs. 4); Algorithm 2 is strongly linearizable (Thm. 12)",
		Header: []string{"scenario", "implementation", "trees", "linearizable", "strongly linearizable"},
	}
	sp := spec.ABARegister{N: 2}

	// Scripted Observation 4 tree for Algorithm 1.
	tree, err := Observation4Tree()
	if err != nil {
		return nil, fmt.Errorf("observation 4 tree: %w", err)
	}
	linOK := true
	for _, child := range tree.Children {
		chk, err := lincheck.CheckTranscript(child.T, sp)
		if err != nil {
			return nil, err
		}
		linOK = linOK && chk.Ok
	}
	strong, err := lincheck.CheckStrong(lincheck.FromSchedTree(tree), sp)
	if err != nil {
		return nil, err
	}
	t.AddRow("scripted {S,T1,T2} (paper proof)", "Algorithm 1", 1, verdict(linOK), verdict(strong.Ok))

	// Random branching trees for both implementations.
	for _, impl := range []ABAImpl{ABALinearizable, ABAStrong} {
		const trees = 20
		sys := Observation4System(impl)
		allStrong, allLin := true, true
		for seed := int64(0); seed < trees; seed++ {
			bt, err := RandomBranchTree(sys, scheduleSeed(seed), 8, 3)
			if err != nil {
				return nil, err
			}
			res, err := lincheck.CheckStrong(lincheck.FromSchedTree(bt), sp)
			if err != nil {
				return nil, err
			}
			allStrong = allStrong && res.Ok
			for _, c := range bt.Children {
				chk, err := lincheck.CheckTranscript(c.T, sp)
				if err != nil {
					return nil, err
				}
				allLin = allLin && chk.Ok
			}
		}
		t.AddRow("random branching trees", string(impl), trees, verdict(allLin), verdict(allStrong))
	}

	// Exhaustive interleaving trees of a tiny workload (1 DWrite + 1 DRead).
	for _, impl := range []ABAImpl{ABALinearizable, ABAStrong} {
		sys := ABASystem(impl, 2, 1, 1, 1)
		full, err := sched.Explore(sys, 0, 300000, sched.Options{})
		if err != nil {
			return nil, fmt.Errorf("explore %s: %w", impl, err)
		}
		nodes, leaves, depth := TreeStats(full)
		res, err := lincheck.CheckStrong(lincheck.FromSchedTree(full), sp)
		if err != nil {
			return nil, err
		}
		t.AddRow(
			fmt.Sprintf("exhaustive 1 DWrite + 1 DRead (%d nodes, %d leaves, depth %d)", nodes, leaves, depth),
			string(impl), 1, "—", verdict(res.Ok))
	}

	// Guided hunt: branch at EVERY cut point of one natural execution with
	// writer-priority vs reader-priority futures — rediscovers the proof's
	// branch point without hard-coding it.
	huntSchedule := obs4HuntSchedule()
	for _, impl := range []ABAImpl{ABALinearizable, ABAStrong} {
		schedule := huntSchedule
		if impl == ABAStrong {
			probe := sched.Run(Observation4System(ABAStrong), PriorityAdversary(1, 0), sched.Options{})
			if !probe.Completed() {
				return nil, fmt.Errorf("hunt probe: %v", probe.Err)
			}
			schedule = probe.Schedule
		}
		hunt, err := Hunt(
			func() sched.System { return Observation4System(impl) },
			schedule, sp,
			[][]int{{1, 0}, {0, 1}},
		)
		if err != nil {
			return nil, err
		}
		t.AddRow(
			fmt.Sprintf("guided hunt over %d cut points (violations at cuts %v)", hunt.CutsTried, hunt.Violations),
			string(impl), hunt.CutsTried, "yes", verdict(len(hunt.Violations) == 0))
	}

	t.Notes = append(t.Notes,
		"the scripted tree realizes the paper's proof: dw1..dw5 reuse a sequence number; T1/T2 force contradictory prefix choices",
		"Algorithm 1 remains linearizable on every branch — only prefix preservation fails",
		"the guided hunt rediscovers the violation automatically; cut 11 is exactly the paper's prefix S",
	)
	return t, nil
}

// obs4HuntSchedule is one natural complete execution of the Observation 4
// workload on Algorithm 1 whose cut points the guided hunt explores.
func obs4HuntSchedule() []int {
	rep := func(pid, k int) []int {
		out := make([]int, k)
		for i := range out {
			out[i] = pid
		}
		return out
	}
	var s []int
	s = append(s, rep(1, 4)...)  // dw1
	s = append(s, rep(0, 3)...)  // dr1 through line 16
	s = append(s, rep(1, 16)...) // dw2..dw5
	s = append(s, rep(0, 9)...)  // dr1 completion + dr2
	return s
}

func verdict(ok bool) string {
	if ok {
		return "yes"
	}
	return "NO"
}

// E2ABASteps regenerates Theorem 14: DWrite takes exactly 2 shared steps and
// the total DRead work over a run is O(min(r,n)·w + r).
func E2ABASteps() (*Table, error) {
	t := &Table{
		Title:  "E2: ABA-detecting register step complexity (Theorem 14)",
		Claim:  "DWrite ≤ 2 shared steps; Σ DRead steps = O(min(r,n)·w + r); amortized O(n)",
		Header: []string{"n", "readers", "w", "r", "adversary", "max DWrite steps", "Σ DRead steps", "bound min(r,n)w+r", "ratio"},
	}
	type cfg struct {
		n, readers, writes, reads int
	}
	cfgs := []cfg{
		{2, 1, 16, 16}, {2, 1, 64, 16}, {2, 1, 256, 16},
		{4, 2, 32, 32}, {4, 2, 128, 32},
		{8, 4, 32, 32}, {8, 4, 128, 64},
	}
	for _, c := range cfgs {
		for _, advName := range []string{"random", "reader-storm"} {
			sys := ABASystem(ABAStrong, c.n, c.readers, c.reads, c.writes)
			var adv sched.Adversary
			if advName == "random" {
				adv = sched.NewSeeded(scheduleSeed(int64(c.n*1000 + c.writes)))
			} else {
				adv = &sched.Storm{IsVictim: func(pid int) bool { return pid < c.readers }, Period: 5}
			}
			res := sched.Run(sys, adv, sched.Options{StepLimit: 8 << 20})
			if !res.Completed() {
				return nil, fmt.Errorf("E2 run incomplete (n=%d): %v", c.n, res.Err)
			}
			w := (c.n - c.readers) * c.writes
			r := c.readers * c.reads
			writeSteps := StepsByOp(res.T, func(d string) bool { return strings.HasPrefix(d, "DWrite") })
			readSteps := StepsByOp(res.T, func(d string) bool { return strings.HasPrefix(d, "DRead") })
			bound := min(r, c.n)*w + r
			ratio := float64(readSteps.Total) / float64(bound)
			t.AddRow(c.n, c.readers, w, r, advName, writeSteps.Max, readSteps.Total, bound, fmt.Sprintf("%.2f", ratio))
		}
	}
	t.Notes = append(t.Notes,
		"ratio is the empirical constant of Theorem 14(b); boundedness across the sweep is the claim",
		"max DWrite steps must equal 2 in every run (Theorem 14a)",
	)
	return t, nil
}

// E3SnapshotSteps regenerates Theorem 32: SLupdate uses at most one
// S.update, one S.scan, one R.DWrite; total base-object operations in
// SLscans are O(s + n³·u).
func E3SnapshotSteps() (*Table, error) {
	t := &Table{
		Title:  "E3: strongly linearizable snapshot step complexity (Theorem 32)",
		Claim:  "SLupdate ≤ 1 S.update + 1 S.scan + 1 R.DWrite; Σ base ops in SLscans = O(s + n³u)",
		Header: []string{"n", "u", "s", "adversary", "scan base ops", "bound s+n³u", "ratio", "max scan iters"},
	}
	type cfg struct {
		n, scanners, scans, updates int
	}
	cfgs := []cfg{
		{2, 1, 8, 8}, {2, 1, 8, 32},
		{3, 1, 8, 16}, {4, 2, 8, 16},
		{4, 2, 16, 64}, {6, 3, 8, 16},
	}
	for _, c := range cfgs {
		for _, advName := range []string{"random", "scanner-storm"} {
			var stats *core.Stats
			sys := SnapshotSystem(c.n, c.scanners, c.scans, c.updates, &stats)
			var adv sched.Adversary
			if advName == "random" {
				adv = sched.NewSeeded(scheduleSeed(int64(c.n*100 + c.updates)))
			} else {
				adv = &sched.Storm{IsVictim: func(pid int) bool { return pid < c.scanners }, Period: 6}
			}
			res := sched.Run(sys, adv, sched.Options{StepLimit: 8 << 20})
			if !res.Completed() {
				return nil, fmt.Errorf("E3 run incomplete (n=%d): %v", c.n, res.Err)
			}
			u := (c.n - c.scanners) * c.updates
			s := c.scanners * c.scans
			bound := s + c.n*c.n*c.n*u
			got := int(stats.TotalScanOps())
			t.AddRow(c.n, u, s, advName, got, bound,
				fmt.Sprintf("%.4f", float64(got)/float64(bound)),
				stats.MaxScanIters.Load())
		}
	}
	t.Notes = append(t.Notes,
		"ratios far below 1 are expected: the n³ bound is worst-case; the claim is that they stay bounded as n, u grow",
	)
	return t, nil
}

// E4SoloOps regenerates the contention-free fast-path claims (Sections 3.3
// and 4.5): uncontended operations cost O(1) base-object operations.
func E4SoloOps() (*Table, error) {
	t := &Table{
		Title:  "E4: contention-free fast paths (Sections 3.3, 4.5)",
		Claim:  "without contention: DWrite = 2 steps, DRead = 4 steps, SLupdate = 3 substrate ops, SLscan = 3 substrate ops",
		Header: []string{"object", "operation", "metric", "measured", "expected"},
	}

	counter := memory.NewStepCounter(2)
	alloc := &memory.CountingAllocator{Inner: &memory.NativeAllocator{}, Counter: counter}
	reg := aba.NewStrong[string](alloc, 2, spec.Bot)
	before := counter.Steps(0)
	reg.DWrite(0, "x")
	t.AddRow("aba.Strong", "DWrite (solo)", "register steps", counter.Steps(0)-before, 2)
	// The first DRead after a write needs two loop iterations: its announced
	// tag does not match X yet. Steady-state DReads need one iteration.
	before = counter.Steps(1)
	reg.DRead(1)
	t.AddRow("aba.Strong", "DRead (first after DWrite)", "register steps", counter.Steps(1)-before, 8)
	before = counter.Steps(1)
	reg.DRead(1)
	t.AddRow("aba.Strong", "DRead (steady state)", "register steps", counter.Steps(1)-before, 4)

	var nalloc memory.NativeAllocator
	snap := core.New[string](&nalloc, 2, spec.Bot)
	snap.Update(0, "a")
	st := snap.Stats()
	t.AddRow("core.Snapshot", "Update (solo)", "substrate ops", st.OpsInUpdate.Load(), 3)
	beforeScan := st.OpsInScan.Load()
	snap.Scan(1)
	t.AddRow("core.Snapshot", "Scan (solo)", "substrate ops", st.OpsInScan.Load()-beforeScan, 3)
	t.AddRow("core.Snapshot", "Scan (solo)", "loop iterations", st.MaxScanIters.Load(), 1)
	return t, nil
}

// E5SpaceGrowth regenerates the bounded-space claim of Theorem 2 against the
// Section 4.1 baseline: Algorithm 3 allocates no registers after
// construction, the versioned construction grows forever.
func E5SpaceGrowth() (*Table, error) {
	t := &Table{
		Title:  "E5: register usage — bounded (Theorem 2) vs unbounded (Section 4.1 baseline)",
		Claim:  "Algorithm 3 uses O(n) registers total; the versioned-object construction allocates registers forever",
		Header: []string{"updates", "algorithm3 registers", "fully-bounded registers", "versioned registers"},
	}
	const n = 4
	var allocB, allocH, allocV memory.NativeAllocator
	b := core.New[string](&allocB, n, spec.Bot)
	h := newFullyBoundedSnapshot(&allocH, n)
	v := versioned.New[string](&allocV, n, spec.Bot)
	t.AddRow(0, allocB.Registers(), allocH.Registers(), allocV.Registers())
	for i := 1; i <= 256; i++ {
		x := fmt.Sprintf("x%d", i)
		b.Update(i%n, x)
		h.Update(i%n, x)
		v.Update(i%n, x)
		if i == 1 || i == 4 || i == 16 || i == 64 || i == 256 {
			t.AddRow(i, allocB.Registers(), allocH.Registers(), allocV.Registers())
		}
	}
	t.Notes = append(t.Notes,
		"versioned growth is the lazily-materialized max-register trie: each new version number touches fresh nodes",
		"algorithm3 (default substrate) still stores unbounded sequence numbers inside its double-collect substrate;",
		"fully-bounded composes Algorithm 3 over the handshake snapshot: fixed register count AND bounded register contents",
	)
	return t, nil
}

// newFullyBoundedSnapshot composes Algorithm 3 over the bounded handshake
// substrate: every register holds bounded state.
func newFullyBoundedSnapshot(alloc memory.Allocator, n int) *core.Snapshot[string] {
	s := snapshot.NewHandshake[string](alloc, n, spec.Bot)
	initView := make([]string, n)
	for i := range initView {
		initView[i] = spec.Bot
	}
	eq := func(a, b []string) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	return core.NewWith[string](n, s, aba.NewStrongFunc(alloc, n, initView, eq))
}

// E6Universal regenerates Theorem 3/54 evidence and the Section 5.3 caveat:
// the universal construction is correct (linearizable under random
// schedules, prefix-preserving on branching trees) but per-operation cost
// grows with history length.
func E6Universal() (*Table, error) {
	t := &Table{
		Title:  "E6: Aspnes–Herlihy universal construction (Theorems 3, 54)",
		Claim:  "simple types are strongly linearizable via the construction; cost grows with history (not bounded wait-free)",
		Header: []string{"measurement", "value"},
	}

	// Correctness: counter over random schedules.
	sys := universalCounterSystem()
	okAll := true
	for seed := int64(0); seed < 15; seed++ {
		res := sched.Run(sys, sched.NewSeeded(scheduleSeed(seed)), sched.Options{})
		if !res.Completed() {
			return nil, fmt.Errorf("E6 run incomplete: %v", res.Err)
		}
		chk, err := lincheck.CheckTranscript(res.T, spec.Counter{})
		if err != nil {
			return nil, err
		}
		okAll = okAll && chk.Ok
	}
	t.AddRow("counter linearizable over 15 random schedules", verdict(okAll))

	strongAll := true
	for seed := int64(0); seed < 8; seed++ {
		bt, err := RandomBranchTree(sys, scheduleSeed(seed), 12, 3)
		if err != nil {
			return nil, err
		}
		res, err := lincheck.CheckStrong(lincheck.FromSchedTree(bt), spec.Counter{})
		if err != nil {
			return nil, err
		}
		strongAll = strongAll && res.Ok
	}
	t.AddRow("counter prefix-preserving over 8 branching trees", verdict(strongAll))

	// Growth: native per-op latency by history length, with the textbook
	// O(history) execution (replay cache off — the Section 5.3 claim) next
	// to the replay-cached execution this repo runs by default.
	const probe = 25
	for _, caching := range []bool{false, true} {
		var alloc memory.NativeAllocator
		o := universal.New(&alloc, universal.CounterType{}, 2)
		o.SetCaching(caching)
		label := "uncached"
		if caching {
			label = "cached"
		}
		for _, target := range []int{50, 100, 200, 400} {
			for o.HistorySize(0) < target-probe {
				if _, err := o.Execute(0, "inc()"); err != nil {
					return nil, err
				}
			}
			// One op per pid outside the timer: the filler ran as pid 0
			// only, so pid 1's first op pays its catch-up delta here, not
			// inside the probe.
			for pid := 0; pid < 2; pid++ {
				if _, err := o.Execute(pid, "inc()"); err != nil {
					return nil, err
				}
			}
			start := time.Now()
			for i := 0; i < probe; i++ {
				if _, err := o.Execute(i%2, "inc()"); err != nil {
					return nil, err
				}
			}
			elapsed := time.Since(start)
			t.AddRow(
				fmt.Sprintf("µs/op at history ≈ %d (%s)", target, label),
				fmt.Sprintf("%.1f", float64(elapsed.Microseconds())/probe))
		}
	}
	t.Notes = append(t.Notes,
		"uncached per-operation cost grows superlinearly with history length — the Section 5.3/6 unbounded-space caveat",
		"the process-local replay cache flattens per-op cost to O(ops since the process's previous op) without touching the linearization",
	)
	return t, nil
}

func universalCounterSystem() sched.System {
	scripts := [][]string{{"inc()", "read()"}, {"inc()", "read()"}}
	return sched.System{
		N: len(scripts),
		Setup: func(env *sched.Env) []sched.Program {
			o := universal.New(env, universal.CounterType{}, len(scripts))
			progs := make([]sched.Program, len(scripts))
			for pid := range scripts {
				pid := pid
				progs[pid] = func(p *sched.Proc) {
					for _, desc := range scripts[pid] {
						desc := desc
						p.Do(desc, func() string {
							resp, err := o.Execute(pid, desc)
							if err != nil {
								return "ERR:" + err.Error()
							}
							return resp
						})
					}
				}
			}
			return progs
		},
	}
}

// E8Starvation regenerates the lock-freedom-but-not-wait-freedom behaviour
// (Sections 3.3, 4.5): under a writer storm a single read's step count grows
// with the number of concurrent writes, while writers always finish.
func E8Starvation() (*Table, error) {
	t := &Table{
		Title:  "E8: reader starvation under writer storms (lock-free, not wait-free)",
		Claim:  "a DRead/SLscan can be forced to take Ω(w) steps; system-wide progress is preserved",
		Header: []string{"object", "writer ops w", "victim op steps", "victim finished after writers?"},
	}

	for _, w := range []int{4, 16, 64} {
		sys := ABASystem(ABAStrong, 2, 1, 1, w)
		res := sched.Run(sys, &sched.Storm{IsVictim: func(pid int) bool { return pid == 0 }, Period: 4},
			sched.Options{StepLimit: 4 << 20})
		if !res.Completed() {
			return nil, fmt.Errorf("E8 aba run incomplete: %v", res.Err)
		}
		steps := StepsByOp(res.T, func(d string) bool { return strings.HasPrefix(d, "DRead") })
		t.AddRow("aba.Strong DRead", w, steps.Max, verdict(victimLast(res)))
	}

	for _, w := range []int{4, 16, 64} {
		var stats *core.Stats
		sys := SnapshotSystem(2, 1, 1, w, &stats)
		res := sched.Run(sys, &sched.Storm{IsVictim: func(pid int) bool { return pid == 0 }, Period: 6},
			sched.Options{StepLimit: 4 << 20})
		if !res.Completed() {
			return nil, fmt.Errorf("E8 snapshot run incomplete: %v", res.Err)
		}
		steps := StepsByOp(res.T, func(d string) bool { return d == "scan()" })
		t.AddRow("core.Snapshot Scan", w, steps.Max, verdict(victimLast(res)))
	}
	t.Notes = append(t.Notes,
		"victim step counts growing with w demonstrate the absence of wait-freedom; every run still terminates (lock-freedom)",
	)
	return t, nil
}

// victimLast reports whether process 0's last response came after every
// other process's last response.
func victimLast(res *sched.Result) bool {
	lastVictim, lastOther := -1, -1
	for _, op := range res.T.Interpreted().Ops {
		if !op.Complete() {
			continue
		}
		if op.PID == 0 {
			if op.Ret > lastVictim {
				lastVictim = op.Ret
			}
		} else if op.Ret > lastOther {
			lastOther = op.Ret
		}
	}
	return lastVictim > lastOther
}

// All runs every experiment in order.
func All() ([]*Table, error) {
	type exp struct {
		name string
		run  func() (*Table, error)
	}
	exps := []exp{
		{"E1", E1Observation4},
		{"E2", E2ABASteps},
		{"E3", E3SnapshotSteps},
		{"E4", E4SoloOps},
		{"E5", E5SpaceGrowth},
		{"E6", E6Universal},
		{"E8", E8Starvation},
	}
	out := make([]*Table, 0, len(exps))
	for _, e := range exps {
		tbl, err := e.run()
		if err != nil {
			return out, fmt.Errorf("%s: %w", e.name, err)
		}
		out = append(out, tbl)
	}
	return out, nil
}
