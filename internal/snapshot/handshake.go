package snapshot

import (
	"fmt"

	"slmem/internal/memory"
)

// hcell is a component of the bounded handshake snapshot: the value, a
// toggle bit flipped by every update, and the updater's embedded view.
// Unlike dcell/acell there is no unbounded sequence number — modification
// detection uses the handshake bits and the toggle.
type hcell[V any] struct {
	val    V
	toggle bool
	view   []V // immutable once written
}

// Handshake is the bounded wait-free single-writer snapshot of Afek,
// Attiya, Dolev, Gafni, Merritt, and Shavit: the sequence numbers of the
// simple variants are replaced by O(n²) single-bit handshake registers plus
// a per-component toggle bit, so every register holds bounded state.
//
// Updaters handshake with every potential scanner, embed a scan with their
// write, and flip their toggle. Scanners handshake, double-collect, and
// treat a handshake or toggle discrepancy as a detected move; a process seen
// moving twice has performed a complete update inside the scan, so its
// embedded view can be borrowed.
//
// Using Handshake as the substrate S of the paper's Algorithm 3 yields a
// strongly linearizable snapshot whose registers are ALL bounded, matching
// Theorem 2's O(n) registers of size O(log n + log |D|) up to the O(n²)
// handshake bits of this classic substrate.
type Handshake[V any] struct {
	n    int
	regs []memory.Reg[hcell[V]]
	// q[j][i]: written by updater j to handshake with scanner i.
	q [][]memory.Reg[bool]
	// p[i][j]: written by scanner i to handshake with updater j.
	p [][]memory.Reg[bool]
	// toggle[j]: local mirror of j's toggle bit (single writer).
	toggle []bool
}

var _ Snapshot[int] = (*Handshake[int])(nil)

// NewHandshake constructs the bounded snapshot with n components, all
// initialized to initial.
func NewHandshake[V any](alloc memory.Allocator, n int, initial V) *Handshake[V] {
	if n < 1 {
		panic(fmt.Sprintf("snapshot: n = %d, need at least 1 process", n))
	}
	s := &Handshake[V]{
		n:      n,
		regs:   make([]memory.Reg[hcell[V]], n),
		q:      make([][]memory.Reg[bool], n),
		p:      make([][]memory.Reg[bool], n),
		toggle: make([]bool, n),
	}
	initView := make([]V, n)
	for i := range initView {
		initView[i] = initial
	}
	for j := range s.regs {
		s.regs[j] = memory.NewReg(alloc, fmt.Sprintf("snap.H[%d]", j), hcell[V]{val: initial, view: initView})
		s.q[j] = make([]memory.Reg[bool], n)
		s.p[j] = make([]memory.Reg[bool], n)
		for i := 0; i < n; i++ {
			s.q[j][i] = memory.NewReg(alloc, fmt.Sprintf("snap.q[%d][%d]", j, i), false)
			s.p[j][i] = memory.NewReg(alloc, fmt.Sprintf("snap.p[%d][%d]", j, i), false)
		}
	}
	return s
}

// Update implements Snapshot: handshake with every scanner, embed a scan,
// write value + flipped toggle. Wait-free.
func (s *Handshake[V]) Update(pid int, x V) {
	// Handshake: announce "an update is in progress" to every scanner by
	// making q[pid][i] differ from p[i][pid].
	for i := 0; i < s.n; i++ {
		s.q[pid][i].Write(pid, !s.p[i][pid].Read(pid))
	}
	view := s.Scan(pid)
	s.toggle[pid] = !s.toggle[pid]
	s.regs[pid].Write(pid, hcell[V]{val: x, toggle: s.toggle[pid], view: view})
}

// hsObservation is one scanner observation of updater j.
type hsObservation[V any] struct {
	q    bool
	cell hcell[V]
}

func (s *Handshake[V]) collect(pid int) []hsObservation[V] {
	out := make([]hsObservation[V], s.n)
	for j := 0; j < s.n; j++ {
		out[j].q = s.q[j][pid].Read(pid)
		out[j].cell = s.regs[j].Read(pid)
	}
	return out
}

// Scan implements Snapshot.
//
// Move evidence per updater j comes in two kinds:
//
//   - started: q[j][pid] differs from the acknowledged handshake — j began
//     an update AFTER this scan's handshake, so that update's embedded scan
//     lies within this scan's interval;
//   - completed: j's toggle changed between the two collects — some write
//     by j landed inside this double collect.
//
// A view may be borrowed only when a write provably belongs to an update
// that started inside this scan: either a second `started` for j, or a
// `completed` observed in a round after j's `started` was recorded. A bare
// toggle flip can come from an update that began before this scan and its
// embedded view could predate the scan, so it never justifies borrowing on
// its own.
//
// Wait-free: per updater there is at most one pre-scan completion round and
// one recorded start before a borrow triggers, so the loop runs at most
// O(n) rounds.
func (s *Handshake[V]) Scan(pid int) []V {
	// Handshake with every updater and remember what we acknowledged.
	shake := make([]bool, s.n)
	for j := 0; j < s.n; j++ {
		shake[j] = s.q[j][pid].Read(pid)
		s.p[pid][j].Write(pid, shake[j])
	}
	startRound := make([]int, s.n) // 0 = no start recorded; else round number
	for round := 1; ; round++ {
		c1 := s.collect(pid)
		c2 := s.collect(pid)
		clean := true
		for j := 0; j < s.n; j++ {
			started := c1[j].q != shake[j] || c2[j].q != shake[j]
			completed := c1[j].cell.toggle != c2[j].cell.toggle
			if !started && !completed {
				continue
			}
			clean = false
			if startRound[j] > 0 && startRound[j] < round && (started || completed) {
				// The register now holds a write from an update that began
				// after startRound[j]'s evidence, i.e. inside this scan;
				// its embedded view is a snapshot within our interval.
				out := make([]V, len(c2[j].cell.view))
				copy(out, c2[j].cell.view)
				return out
			}
			if started && startRound[j] == 0 {
				startRound[j] = round
				// Acknowledge, so only a further update counts as started.
				shake[j] = c2[j].q
				s.p[pid][j].Write(pid, shake[j])
			}
		}
		if clean {
			out := make([]V, s.n)
			for j := range out {
				out[j] = c2[j].cell.val
			}
			return out
		}
	}
}
