package snapshot

import (
	"fmt"
	"testing"
	"testing/quick"

	"slmem/internal/lincheck"
	"slmem/internal/memory"
	"slmem/internal/sched"
	"slmem/internal/spec"
	"slmem/internal/trace"
)

func TestHandshakeRegisterCount(t *testing.T) {
	// The whole point of the handshake variant: a FIXED number of registers
	// holding bounded values — n components + 2n² handshake bits.
	for _, n := range []int{1, 2, 4, 8} {
		var alloc memory.NativeAllocator
		NewHandshake[string](&alloc, n, spec.Bot)
		want := n + 2*n*n
		if got := alloc.Registers(); got != want {
			t.Errorf("n=%d: registers = %d, want %d", n, got, want)
		}
	}
}

func TestHandshakeNoAllocationAfterConstruction(t *testing.T) {
	var alloc memory.NativeAllocator
	s := NewHandshake[string](&alloc, 3, spec.Bot)
	base := alloc.Registers()
	for i := 0; i < 100; i++ {
		s.Update(i%3, fmt.Sprintf("v%d", i))
		s.Scan((i + 1) % 3)
	}
	if got := alloc.Registers(); got != base {
		t.Errorf("registers grew %d -> %d; bounded-space property broken", base, got)
	}
}

func TestHandshakeToggleAlternates(t *testing.T) {
	var alloc memory.NativeAllocator
	s := NewHandshake[string](&alloc, 2, spec.Bot)
	prev := s.regs[0].Read(0).toggle
	for i := 0; i < 5; i++ {
		s.Update(0, fmt.Sprintf("v%d", i))
		cur := s.regs[0].Read(0).toggle
		if cur == prev {
			t.Fatalf("toggle did not flip on update %d", i)
		}
		prev = cur
	}
}

func TestHandshakeSequentialProperty(t *testing.T) {
	const n = 3
	f := func(script []uint8) bool {
		var alloc memory.NativeAllocator
		s := NewHandshake[string](&alloc, n, spec.Bot)
		sp := spec.Snapshot{N: n}
		state := sp.Initial()
		for i, b := range script {
			pid := int(b) % n
			if b%2 == 0 {
				x := fmt.Sprintf("v%d", i)
				s.Update(pid, x)
				state, _, _ = sp.Apply(state, pid, spec.FormatInvocation("update", x))
			} else {
				got := spec.FormatView(s.Scan(pid))
				_, want, _ := sp.Apply(state, pid, "scan()")
				if got != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func handshakeSystem(n, updates, scans int) sched.System {
	return sched.System{
		N: n,
		Setup: func(env *sched.Env) []sched.Program {
			s := NewHandshake[string](env, n, spec.Bot)
			progs := make([]sched.Program, n)
			for pid := 0; pid < n; pid++ {
				pid := pid
				if pid%2 == 1 {
					progs[pid] = func(p *sched.Proc) {
						for i := 0; i < updates; i++ {
							x := fmt.Sprintf("u%d.%d", pid, i)
							p.Do(spec.FormatInvocation("update", x), func() string {
								s.Update(pid, x)
								return "ok"
							})
						}
					}
				} else {
					progs[pid] = func(p *sched.Proc) {
						for i := 0; i < scans; i++ {
							p.Do("scan()", func() string {
								return spec.FormatView(s.Scan(pid))
							})
						}
					}
				}
			}
			return progs
		},
	}
}

// TestHandshakeLinearizableManySeeds hammers the trickiest implementation in
// the package with many random schedules — the borrow path in particular is
// reached when updates interleave scans tightly.
func TestHandshakeLinearizableManySeeds(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		res := sched.Run(handshakeSystem(3, 3, 2), sched.NewSeeded(seed), sched.Options{})
		if !res.Completed() {
			t.Fatalf("seed %d: incomplete: %v", seed, res.Err)
		}
		chk, err := lincheck.CheckTranscript(res.T, spec.Snapshot{N: 3})
		if err != nil {
			t.Fatal(err)
		}
		if !chk.Ok {
			t.Fatalf("seed %d: not linearizable:\n%s", seed, res.T.Interpreted())
		}
	}
}

// TestHandshakeScanWaitFreeUnderStorm: unlike the double-collect scan, a
// handshake scan completes in a bounded number of its own steps even while
// writers run forever — the scanner borrows an embedded view.
func TestHandshakeScanWaitFreeUnderStorm(t *testing.T) {
	const n = 3
	const writerOps = 25 // keeps the history within the checker's 62-op cap
	sys := sched.System{
		N: n,
		Setup: func(env *sched.Env) []sched.Program {
			s := NewHandshake[string](env, n, spec.Bot)
			progs := make([]sched.Program, n)
			progs[0] = func(p *sched.Proc) {
				p.Do("scan()", func() string {
					return spec.FormatView(s.Scan(0))
				})
			}
			for pid := 1; pid < n; pid++ {
				pid := pid
				progs[pid] = func(p *sched.Proc) {
					for i := 0; i < writerOps; i++ {
						x := fmt.Sprintf("u%d.%d", pid, i)
						p.Do(spec.FormatInvocation("update", x), func() string {
							s.Update(pid, x)
							return "ok"
						})
					}
				}
			}
			return progs
		},
	}
	res := sched.Run(sys, &sched.Storm{IsVictim: func(pid int) bool { return pid == 0 }, Period: 4},
		sched.Options{})
	if !res.Completed() {
		t.Fatalf("incomplete: %v", res.Err)
	}
	if scanReturnIndex(res.T) > lastWriterReturnIndex(res.T) {
		t.Error("handshake scan starved until writers finished — wait-freedom (helping) failed")
	}
	chk, err := lincheck.CheckTranscript(res.T, spec.Snapshot{N: n})
	if err != nil {
		t.Fatal(err)
	}
	if !chk.Ok {
		t.Fatal("storm run not linearizable")
	}
}

// TestHandshakeStaleBorrowRegression targets the unsound-borrow scenario: an
// update U0 starts BEFORE the scan, completes inside it (toggle-only
// evidence), then a second update U1 starts (handshake evidence). Borrowing
// at that moment would return U0's stale embedded view. The scan must not
// borrow until evidence of a write from an update that began inside it.
func TestHandshakeStaleBorrowRegression(t *testing.T) {
	// p0: scanner (1 scan); p1: updater (3 updates); p2: updater whose
	// update completes before the scan starts, making U0's embedded view
	// stale relative to it.
	sys := sched.System{
		N: 3,
		Setup: func(env *sched.Env) []sched.Program {
			s := NewHandshake[string](env, 3, spec.Bot)
			return []sched.Program{
				func(p *sched.Proc) {
					p.Do("scan()", func() string {
						return spec.FormatView(s.Scan(0))
					})
				},
				func(p *sched.Proc) {
					for i := 0; i < 3; i++ {
						x := fmt.Sprintf("a%d", i)
						p.Do(spec.FormatInvocation("update", x), func() string {
							s.Update(1, x)
							return "ok"
						})
					}
				},
				func(p *sched.Proc) {
					p.Do("update(z)", func() string {
						s.Update(2, "z")
						return "ok"
					})
				},
			}
		},
	}
	// Drive many interleavings biased to overlap U0's tail with the scan.
	for seed := int64(0); seed < 80; seed++ {
		res := sched.Run(sys, sched.NewSeeded(seed), sched.Options{})
		if !res.Completed() {
			t.Fatalf("seed %d: incomplete: %v", seed, res.Err)
		}
		chk, err := lincheck.CheckTranscript(res.T, spec.Snapshot{N: 3})
		if err != nil {
			t.Fatal(err)
		}
		if !chk.Ok {
			t.Fatalf("seed %d: stale borrow suspected — not linearizable:\n%s", seed, res.T.Interpreted())
		}
	}
}

// TestHandshakeChainMonitor: the substrate itself need not be strongly
// linearizable, but every single run must still admit a monotone
// linearization (a property of all linearizable objects on chains our
// monitor can certify when it holds).
func TestHandshakeChainMonitor(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		res := sched.Run(handshakeSystem(2, 2, 2), sched.NewSeeded(seed), sched.Options{})
		if !res.Completed() {
			t.Fatalf("seed %d: incomplete: %v", seed, res.Err)
		}
		chk, err := lincheck.CheckChain(res.T, spec.Snapshot{N: 2})
		if err != nil {
			t.Fatal(err)
		}
		if !chk.Ok {
			t.Logf("seed %d: no monotone linearization along this run (allowed for a merely linearizable substrate)", seed)
		}
	}
}

// TestHandshakeScanStepBound: a scan takes O(n) rounds of O(n) steps each,
// regardless of how many writes interleave (wait-freedom, quantitative).
func TestHandshakeScanStepBound(t *testing.T) {
	const n = 3
	for seed := int64(0); seed < 30; seed++ {
		res := sched.Run(handshakeSystem(n, 6, 2), sched.NewSeeded(seed), sched.Options{})
		if !res.Completed() {
			t.Fatalf("seed %d: incomplete: %v", seed, res.Err)
		}
		// Upper bound: handshake (2n) + rounds (<= 2n+2) * collect pair (4n)
		// steps, generously padded.
		limit := 2*n + (2*n+2)*4*n
		stats := scanSteps(res.T)
		if stats > limit {
			t.Errorf("seed %d: a scan took %d steps, bound %d", seed, stats, limit)
		}
	}
}

func scanSteps(tr *trace.Transcript) int {
	perOp := make(map[int]int)
	desc := make(map[int]string)
	for _, e := range tr.Events {
		switch e.Kind {
		case trace.KindInvoke:
			desc[e.OpID] = e.Desc
		case trace.KindRead, trace.KindWrite:
			perOp[e.OpID]++
		}
	}
	max := 0
	for id, d := range desc {
		if d == "scan()" && perOp[id] > max {
			max = perOp[id]
		}
	}
	return max
}
