// Package snapshot provides linearizable single-writer snapshot objects
// built from atomic registers. These are the substrate "S" of the paper's
// Algorithm 3/4 (Section 4.3), which treats S as a black-box linearizable
// snapshot ("any lock-free or wait-free linearizable implementation").
//
// Two classic implementations are provided:
//
//   - DoubleCollect: the lock-free clean-double-collect algorithm of Afek,
//     Attiya, Dolev, Gafni, Merritt, and Shavit. A scan repeatedly collects
//     all components until two consecutive collects agree.
//   - Afek: the wait-free variant with embedded scans (helping): an updater
//     first performs a scan and publishes the view with its write, and a
//     scanner that observes some process move twice borrows that process's
//     published view.
//
// The paper uses the bounded Attiya–Rachman snapshot for concrete space
// bounds; both algorithms here are behaviourally interchangeable with it as
// the substrate (see DESIGN.md, "Model mismatch and substitutions").
//
// A Versioned wrapper exposes the per-scan version number (the sum of the
// per-component sequence numbers) needed by the Denysyuk–Woelfel unbounded
// construction of Section 4.1 (internal/versioned).
package snapshot

import (
	"fmt"
	"sync"

	"slmem/internal/memory"
)

// Snapshot is a linearizable single-writer snapshot object: component p is
// writable only by process p, and Scan returns a consistent view of all
// components.
type Snapshot[V any] interface {
	// Update sets component pid to x.
	Update(pid int, x V)
	// Scan returns a copy of the component vector.
	Scan(pid int) []V
}

// dcell is a snapshot component: the value and the writer's sequence number.
type dcell[V any] struct {
	val V
	seq uint64
}

// DoubleCollect is the lock-free clean-double-collect snapshot.
type DoubleCollect[V any] struct {
	n    int
	regs []memory.Reg[dcell[V]]
	seq  []uint64  // local per-writer sequence numbers
	bufs sync.Pool // *[]dcell[V] collect scratch, recycled across Scans
}

var _ Snapshot[int] = (*DoubleCollect[int])(nil)

// NewDoubleCollect constructs a lock-free snapshot with n components, all
// initialized to initial.
func NewDoubleCollect[V any](alloc memory.Allocator, n int, initial V) *DoubleCollect[V] {
	if n < 1 {
		panic(fmt.Sprintf("snapshot: n = %d, need at least 1 process", n))
	}
	s := &DoubleCollect[V]{
		n:    n,
		regs: make([]memory.Reg[dcell[V]], n),
		seq:  make([]uint64, n),
	}
	for i := range s.regs {
		s.regs[i] = memory.NewReg(alloc, fmt.Sprintf("snap.R[%d]", i), dcell[V]{val: initial})
	}
	return s
}

// Update implements Snapshot: one shared write.
func (s *DoubleCollect[V]) Update(pid int, x V) {
	s.seq[pid]++
	s.regs[pid].Write(pid, dcell[V]{val: x, seq: s.seq[pid]})
}

// getBuf returns a collect scratch buffer from the pool. Scratch buffers
// never escape a Scan: values() copies the result out before putBuf, so
// recycling them cuts the two collect allocations off every Scan.
func (s *DoubleCollect[V]) getBuf() *[]dcell[V] {
	if p, ok := s.bufs.Get().(*[]dcell[V]); ok {
		return p
	}
	buf := make([]dcell[V], s.n)
	return &buf
}

func (s *DoubleCollect[V]) putBuf(p *[]dcell[V]) { s.bufs.Put(p) }

func (s *DoubleCollect[V]) collectInto(pid int, out []dcell[V]) {
	for i := range s.regs {
		out[i] = s.regs[i].Read(pid)
	}
}

func seqsEqual[V any](a, b []dcell[V]) bool {
	for i := range a {
		// Sequence numbers identify writes: a component with an unchanged
		// sequence number has an unchanged value.
		if a[i].seq != b[i].seq {
			return false
		}
	}
	return true
}

func values[V any](cells []dcell[V]) []V {
	out := make([]V, len(cells))
	for i, c := range cells {
		out[i] = c.val
	}
	return out
}

// Scan implements Snapshot: collect until two consecutive collects agree
// (a "clean double collect"). Lock-free: a failed pair of collects means a
// concurrent Update completed.
func (s *DoubleCollect[V]) Scan(pid int) []V {
	b1, b2 := s.getBuf(), s.getBuf()
	c1, c2 := *b1, *b2
	s.collectInto(pid, c1)
	for {
		s.collectInto(pid, c2)
		if seqsEqual(c1, c2) {
			out := values(c2)
			s.putBuf(b1)
			s.putBuf(b2)
			return out
		}
		c1, c2 = c2, c1
	}
}

// ScanVersioned is Scan returning also the view's version: the sum of all
// component sequence numbers, which increases with every Update (the
// versioned-object interface of paper Section 4.1).
func (s *DoubleCollect[V]) ScanVersioned(pid int) ([]V, uint64) {
	b1, b2 := s.getBuf(), s.getBuf()
	c1, c2 := *b1, *b2
	s.collectInto(pid, c1)
	for {
		s.collectInto(pid, c2)
		if seqsEqual(c1, c2) {
			var version uint64
			for _, c := range c2 {
				version += c.seq
			}
			out := values(c2)
			s.putBuf(b1)
			s.putBuf(b2)
			return out, version
		}
		c1, c2 = c2, c1
	}
}

// acell is an Afek-snapshot component: value, sequence number, and the view
// the updater embedded with its write.
type acell[V any] struct {
	val  V
	seq  uint64
	view []V // immutable once written
}

// Afek is the wait-free snapshot with embedded scans.
type Afek[V any] struct {
	n    int
	regs []memory.Reg[acell[V]]
	seq  []uint64
	bufs sync.Pool // *afekScratch[V], recycled across Scans
}

// afekScratch is one Scan's worth of Afek scratch: two collect buffers and
// the moved flags. None of it escapes a Scan (borrowed views are copied out).
type afekScratch[V any] struct {
	c1, c2 []acell[V]
	moved  []bool
}

var _ Snapshot[int] = (*Afek[int])(nil)

// NewAfek constructs a wait-free snapshot with n components, all initialized
// to initial.
func NewAfek[V any](alloc memory.Allocator, n int, initial V) *Afek[V] {
	if n < 1 {
		panic(fmt.Sprintf("snapshot: n = %d, need at least 1 process", n))
	}
	s := &Afek[V]{
		n:    n,
		regs: make([]memory.Reg[acell[V]], n),
		seq:  make([]uint64, n),
	}
	for i := range s.regs {
		s.regs[i] = memory.NewReg(alloc, fmt.Sprintf("snap.A[%d]", i), acell[V]{val: initial})
	}
	return s
}

// Update implements Snapshot: an embedded Scan followed by one write that
// publishes the new value together with the scanned view.
func (s *Afek[V]) Update(pid int, x V) {
	view := s.Scan(pid)
	s.seq[pid]++
	s.regs[pid].Write(pid, acell[V]{val: x, seq: s.seq[pid], view: view})
}

func (s *Afek[V]) getScratch() *afekScratch[V] {
	if sc, ok := s.bufs.Get().(*afekScratch[V]); ok {
		for q := range sc.moved {
			sc.moved[q] = false
		}
		return sc
	}
	return &afekScratch[V]{
		c1:    make([]acell[V], s.n),
		c2:    make([]acell[V], s.n),
		moved: make([]bool, s.n),
	}
}

func (s *Afek[V]) collectInto(pid int, out []acell[V]) {
	for i := range s.regs {
		out[i] = s.regs[i].Read(pid)
	}
}

// Scan implements Snapshot. Wait-free: after at most n+1 collect pairs some
// process has been seen to move twice, and its embedded view (which is a
// valid snapshot taken within our interval) is borrowed.
func (s *Afek[V]) Scan(pid int) []V {
	sc := s.getScratch()
	c1, c2 := sc.c1, sc.c2
	s.collectInto(pid, c1)
	for {
		s.collectInto(pid, c2)
		clean := true
		for q := 0; q < s.n; q++ {
			if c1[q].seq != c2[q].seq {
				clean = false
				if sc.moved[q] {
					// q performed two Updates during this Scan; its second
					// embedded view was taken entirely inside our interval.
					out := make([]V, len(c2[q].view))
					copy(out, c2[q].view)
					s.bufs.Put(sc)
					return out
				}
				sc.moved[q] = true
			}
		}
		if clean {
			out := avalues(c2)
			s.bufs.Put(sc)
			return out
		}
		c1, c2 = c2, c1
	}
}

func avalues[V any](cells []acell[V]) []V {
	out := make([]V, len(cells))
	for i, c := range cells {
		out[i] = c.val
	}
	return out
}
