package snapshot

import (
	"fmt"
	"testing"
	"testing/quick"

	"slmem/internal/lincheck"
	"slmem/internal/memory"
	"slmem/internal/sched"
	"slmem/internal/spec"
	"slmem/internal/trace"
)

func implementations(alloc memory.Allocator, n int) map[string]Snapshot[string] {
	return map[string]Snapshot[string]{
		"doublecollect": NewDoubleCollect[string](alloc, n, spec.Bot),
		"afek":          NewAfek[string](alloc, n, spec.Bot),
		"handshake":     NewHandshake[string](alloc, n, spec.Bot),
	}
}

func TestSequentialSemantics(t *testing.T) {
	const n = 3
	for name := range implementations(&memory.NativeAllocator{}, n) {
		name := name
		t.Run(name, func(t *testing.T) {
			var alloc memory.NativeAllocator
			s := implementations(&alloc, n)[name]

			view := s.Scan(0)
			for i, v := range view {
				if v != spec.Bot {
					t.Errorf("initial component %d = %q, want %q", i, v, spec.Bot)
				}
			}
			s.Update(1, "x")
			s.Update(2, "y")
			s.Update(1, "z") // overwrite own component
			view = s.Scan(0)
			want := []string{spec.Bot, "z", "y"}
			for i := range want {
				if view[i] != want[i] {
					t.Errorf("view[%d] = %q, want %q", i, view[i], want[i])
				}
			}
		})
	}
}

func TestScanReturnsCopy(t *testing.T) {
	const n = 2
	for name := range implementations(&memory.NativeAllocator{}, n) {
		name := name
		t.Run(name, func(t *testing.T) {
			var alloc memory.NativeAllocator
			s := implementations(&alloc, n)[name]
			s.Update(0, "a")
			v1 := s.Scan(0)
			v1[0] = "mutated"
			v2 := s.Scan(0)
			if v2[0] != "a" {
				t.Error("Scan result shares storage with the object")
			}
		})
	}
}

func TestSequentialRandomAgainstSpec(t *testing.T) {
	const n = 3
	for name := range implementations(&memory.NativeAllocator{}, n) {
		name := name
		t.Run(name, func(t *testing.T) {
			f := func(script []uint8) bool {
				var alloc memory.NativeAllocator
				s := implementations(&alloc, n)[name]
				sp := spec.Snapshot{N: n}
				state := sp.Initial()
				for i, b := range script {
					pid := int(b) % n
					if b%2 == 0 {
						x := fmt.Sprintf("v%d", i)
						s.Update(pid, x)
						state, _, _ = sp.Apply(state, pid, spec.FormatInvocation("update", x))
					} else {
						got := spec.FormatView(s.Scan(pid))
						_, want, _ := sp.Apply(state, pid, "scan()")
						if got != want {
							return false
						}
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
				t.Error(err)
			}
		})
	}
}

// simSystem: odd pids update twice, even pids scan twice.
func simSystem(name string, n int) sched.System {
	return sched.System{
		N: n,
		Setup: func(env *sched.Env) []sched.Program {
			s := implementations(env, n)[name]
			progs := make([]sched.Program, n)
			for pid := 0; pid < n; pid++ {
				pid := pid
				if pid%2 == 1 {
					progs[pid] = func(p *sched.Proc) {
						for i := 0; i < 2; i++ {
							x := fmt.Sprintf("u%d.%d", pid, i)
							p.Do(spec.FormatInvocation("update", x), func() string {
								s.Update(pid, x)
								return "ok"
							})
						}
					}
				} else {
					progs[pid] = func(p *sched.Proc) {
						for i := 0; i < 2; i++ {
							p.Do("scan()", func() string {
								return spec.FormatView(s.Scan(pid))
							})
						}
					}
				}
			}
			return progs
		},
	}
}

func TestLinearizableUnderRandomSchedules(t *testing.T) {
	for _, name := range []string{"doublecollect", "afek", "handshake"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < 25; seed++ {
				res := sched.Run(simSystem(name, 3), sched.NewSeeded(seed), sched.Options{})
				if !res.Completed() {
					t.Fatalf("seed %d: incomplete: %v", seed, res.Err)
				}
				chk, err := lincheck.CheckTranscript(res.T, spec.Snapshot{N: 3})
				if err != nil {
					t.Fatal(err)
				}
				if !chk.Ok {
					t.Fatalf("seed %d: not linearizable:\n%s", seed, res.T.Interpreted())
				}
			}
		})
	}
}

// TestAfekWaitFreeUnderWriterStorm: an Afek scan completes in a bounded
// number of its own steps even when every other process writes constantly;
// a double-collect scan does not (it is only lock-free). The adversary
// always lets writers land between the scanner's collects.
func TestAfekWaitFreeUnderWriterStorm(t *testing.T) {
	const n = 3
	const writerOps = 40

	system := func(name string) sched.System {
		return sched.System{
			N: n,
			Setup: func(env *sched.Env) []sched.Program {
				s := implementations(env, n)[name]
				progs := make([]sched.Program, n)
				progs[0] = func(p *sched.Proc) {
					p.Do("scan()", func() string {
						return spec.FormatView(s.Scan(0))
					})
				}
				for pid := 1; pid < n; pid++ {
					pid := pid
					progs[pid] = func(p *sched.Proc) {
						for i := 0; i < writerOps; i++ {
							x := fmt.Sprintf("u%d.%d", pid, i)
							p.Do(spec.FormatInvocation("update", x), func() string {
								s.Update(pid, x)
								return "ok"
							})
						}
					}
				}
				return progs
			},
		}
	}

	// Storm adversary: every 4th step goes to the scanner, the rest to
	// writers; once writers are done, the scanner runs alone.
	stormy := func() sched.Adversary {
		step := 0
		return sched.AdversaryFunc(func(enabled []int, _ *trace.Transcript) int {
			step++
			if step%4 != 0 {
				for _, pid := range enabled {
					if pid != 0 {
						return pid
					}
				}
			}
			for _, pid := range enabled {
				if pid == 0 {
					return 0
				}
			}
			return enabled[0]
		})
	}

	resAfek := sched.Run(system("afek"), stormy(), sched.Options{})
	if !resAfek.Completed() {
		t.Fatalf("afek run incomplete: %v", resAfek.Err)
	}
	resDC := sched.Run(system("doublecollect"), stormy(), sched.Options{})
	if !resDC.Completed() {
		t.Fatalf("doublecollect run incomplete: %v", resDC.Err)
	}

	// Afek: the scan must finish well before the writers are exhausted.
	if scanReturnIndex(resAfek.T) > lastWriterReturnIndex(resAfek.T) {
		t.Error("afek scan did not complete until writers finished — helping failed")
	}
	// Double-collect: with a writer landing between every pair of scanner
	// steps, the scan only finishes once the storm subsides.
	if scanReturnIndex(resDC.T) < lastWriterReturnIndex(resDC.T) {
		t.Error("double-collect scan finished amid the storm — adversary too weak to exercise lock-freedom")
	}
}

func scanReturnIndex(tr *trace.Transcript) int {
	for _, op := range tr.Interpreted().Ops {
		if op.Desc == "scan()" {
			return op.Ret
		}
	}
	return -1
}

func lastWriterReturnIndex(tr *trace.Transcript) int {
	last := -1
	for _, op := range tr.Interpreted().Ops {
		if op.Desc != "scan()" && op.Ret > last {
			last = op.Ret
		}
	}
	return last
}
