package snapshot

import (
	"fmt"
	"testing"

	"slmem/internal/lincheck"
	"slmem/internal/memory"
	"slmem/internal/sched"
	"slmem/internal/spec"
)

// brokenCollect is a deliberately incorrect snapshot whose Scan performs a
// single collect with no clean-double-collect check. It exists to prove the
// linearizability harness has teeth: the classic two-scanner interleaving
// below produces contradictory views that lincheck must reject.
type brokenCollect struct {
	n    int
	regs []memory.Reg[string]
}

var _ Snapshot[string] = (*brokenCollect)(nil)

func newBrokenCollect(alloc memory.Allocator, n int) *brokenCollect {
	s := &brokenCollect{n: n, regs: make([]memory.Reg[string], n)}
	for i := range s.regs {
		s.regs[i] = memory.NewReg(alloc, fmt.Sprintf("broken.R[%d]", i), spec.Bot)
	}
	return s
}

func (s *brokenCollect) Update(pid int, x string) {
	s.regs[pid].Write(pid, x)
}

func (s *brokenCollect) Scan(pid int) []string {
	out := make([]string, s.n)
	for i := range s.regs {
		out[i] = s.regs[i].Read(pid)
	}
	return out
}

// TestCheckerCatchesTornCollect scripts the classic counterexample: two
// concurrent single-collect scans observe two concurrent updates in
// contradictory orders. scan0 sees {a, not b}, scan1 sees {b, not a}, yet
// update(a) happens-before update(b) — no linearization exists.
func TestCheckerCatchesTornCollect(t *testing.T) {
	sys := sched.System{
		N: 4,
		Setup: func(env *sched.Env) []sched.Program {
			s := newBrokenCollect(env, 4)
			progs := make([]sched.Program, 4)
			for pid := 0; pid < 2; pid++ {
				pid := pid
				progs[pid] = func(p *sched.Proc) {
					p.Do("scan()", func() string {
						return spec.FormatView(s.Scan(pid))
					})
				}
			}
			for pid := 2; pid < 4; pid++ {
				pid := pid
				x := string(rune('a' + pid - 2))
				progs[pid] = func(p *sched.Proc) {
					p.Do(spec.FormatInvocation("update", x), func() string {
						s.Update(pid, x)
						return "ok"
					})
				}
			}
			return progs
		},
	}

	// p1 reads comps 0..2 (comp2 still old) / p2 writes a to comp2 in full /
	// p0 scans comps 0..3 (comp2 new, comp3 old) / p3 writes b to comp3 in
	// full / p1 reads comp3 (new) and returns / p0 returns.
	schedule := []int{
		1, 1, 1, 1, // p1: inv, r0, r1, r2(old)
		2, 2, 2, // p2: update(a) complete
		0, 0, 0, 0, 0, // p0: inv, r0, r1, r2(new), r3(old)
		3, 3, 3, // p3: update(b) complete
		1, 1, // p1: r3(new), ret
		0, // p0: ret
	}
	res := sched.RunScript(sys, schedule, sched.Options{})
	if res.Err != nil {
		t.Fatalf("script error: %v", res.Err)
	}

	h := res.T.Interpreted()
	var v0, v1 string
	for _, op := range h.Ops {
		if op.Desc == "scan()" && op.Complete() {
			if op.PID == 0 {
				v0 = op.Res
			} else {
				v1 = op.Res
			}
		}
	}
	wantV0 := "[" + spec.Bot + " " + spec.Bot + " a " + spec.Bot + "]"
	wantV1 := "[" + spec.Bot + " " + spec.Bot + " " + spec.Bot + " b]"
	if v0 != wantV0 || v1 != wantV1 {
		t.Fatalf("scripted views: scan0=%s scan1=%s, want %s / %s", v0, v1, wantV0, wantV1)
	}

	chk, err := lincheck.CheckTranscript(res.T, spec.Snapshot{N: 4})
	if err != nil {
		t.Fatal(err)
	}
	if chk.Ok {
		t.Fatal("torn single-collect views accepted as linearizable — checker is toothless")
	}

	// The real implementations must survive the same schedule shape; run the
	// correct double-collect under every seed of the same process mix.
	good := sched.System{
		N: 4,
		Setup: func(env *sched.Env) []sched.Program {
			s := NewDoubleCollect[string](env, 4, spec.Bot)
			progs := make([]sched.Program, 4)
			for pid := 0; pid < 2; pid++ {
				pid := pid
				progs[pid] = func(p *sched.Proc) {
					p.Do("scan()", func() string {
						return spec.FormatView(s.Scan(pid))
					})
				}
			}
			for pid := 2; pid < 4; pid++ {
				pid := pid
				x := string(rune('a' + pid - 2))
				progs[pid] = func(p *sched.Proc) {
					p.Do(spec.FormatInvocation("update", x), func() string {
						s.Update(pid, x)
						return "ok"
					})
				}
			}
			return progs
		},
	}
	for seed := int64(0); seed < 20; seed++ {
		res := sched.Run(good, sched.NewSeeded(seed), sched.Options{})
		if !res.Completed() {
			t.Fatalf("seed %d incomplete: %v", seed, res.Err)
		}
		chk, err := lincheck.CheckTranscript(res.T, spec.Snapshot{N: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !chk.Ok {
			t.Fatalf("seed %d: double-collect not linearizable", seed)
		}
	}
}
