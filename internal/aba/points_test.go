package aba

import (
	"sort"
	"strings"
	"testing"

	"slmem/internal/sched"
	"slmem/internal/spec"
	"slmem/internal/trace"
)

// TestPaperLinearizationPoints validates the paper's strong linearization
// function for Algorithm 2 (Theorem 10) on real transcripts — not just that
// SOME linearization exists, but that the paper's specific construction is
// one:
//
//	Q-1: a DRead linearizes at its final read of X (line 37);
//	Q-2: a DWrite linearizes at its write to X (line 2).
//
// For every completed run, ordering operations by those exact points must
// yield a history valid for the sequential specification.
func TestPaperLinearizationPoints(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		res := sched.Run(simSystem("strong", 3, 4, 4), sched.NewSeeded(seed), sched.Options{})
		if !res.Completed() {
			t.Fatalf("seed %d: incomplete: %v", seed, res.Err)
		}
		validatePoints(t, seed, res.T)
	}
	// Storm schedules stretch DReads across many iterations, moving their
	// final line-37 read far from their invocation.
	res := sched.Run(simSystem("strong", 2, 8, 3),
		&sched.Storm{IsVictim: func(pid int) bool { return pid%2 == 0 }, Period: 5}, sched.Options{})
	if !res.Completed() {
		t.Fatalf("storm: incomplete: %v", res.Err)
	}
	validatePoints(t, -1, res.T)
}

func validatePoints(t *testing.T, seed int64, tr *trace.Transcript) {
	t.Helper()

	type pointed struct {
		op trace.Operation
		pt int
	}
	h := tr.Interpreted()
	var seq []pointed
	for _, op := range h.Ops {
		if !op.Complete() {
			continue
		}
		pt := -1
		for i := op.Inv; i <= op.Ret; i++ {
			e := tr.Events[i]
			if e.OpID != op.OpID || !isXReg(e.Reg) {
				continue
			}
			if strings.HasPrefix(op.Desc, "DWrite") && e.Kind == trace.KindWrite {
				pt = i // Q-2: the write to X
			}
			if strings.HasPrefix(op.Desc, "DRead") && e.Kind == trace.KindRead {
				pt = i // Q-1: keep the LAST read of X
			}
		}
		if pt < 0 {
			t.Fatalf("seed %d: op %s has no X access", seed, op)
		}
		seq = append(seq, pointed{op: op, pt: pt})
	}
	sort.Slice(seq, func(i, j int) bool { return seq[i].pt < seq[j].pt })

	// The induced sequential history must be valid.
	sp := spec.ABARegister{N: 3}
	state := sp.Initial()
	for _, pc := range seq {
		next, want, err := sp.Apply(state, pc.op.PID, pc.op.Desc)
		if err != nil {
			t.Fatal(err)
		}
		if pc.op.Res != want {
			t.Fatalf("seed %d: paper linearization invalid at %s: recorded %s, spec says %s\norder-so-far state %q",
				seed, pc.op, pc.op.Res, want, state)
		}
		state = next
	}

	// And the points must respect real time (they are inside each op's
	// interval by construction, so the order extends happens-before).
	for i := 1; i < len(seq); i++ {
		if seq[i-1].pt == seq[i].pt {
			t.Fatalf("seed %d: two operations share a linearization point", seed)
		}
	}
}

// TestPointsDeterminedAtStep validates the prefix-preservation mechanism of
// Lemma 11: whether a given X-read is a DRead's FINAL line-37 read is
// determined at that step — the read is final iff its iteration was quiet.
// Equivalently: truncating the transcript right after any quiet line-37 read
// must leave that DRead's linearization decided (it returns at its next
// steps without touching shared memory again).
func TestPointsDeterminedAtStep(t *testing.T) {
	res := sched.Run(simSystem("strong", 2, 3, 3), sched.NewSeeded(11), sched.Options{})
	if !res.Completed() {
		t.Fatalf("incomplete: %v", res.Err)
	}
	tr := res.T
	h := tr.Interpreted()
	for _, op := range h.Ops {
		if !op.Complete() || !strings.HasPrefix(op.Desc, "DRead") {
			continue
		}
		// The op's final X read must be its last shared step: only the
		// response event may follow.
		lastShared := -1
		for i := op.Inv; i <= op.Ret; i++ {
			e := tr.Events[i]
			if e.OpID == op.OpID && (e.Kind == trace.KindRead || e.Kind == trace.KindWrite) {
				lastShared = i
			}
		}
		if lastShared < 0 || !isXReg(tr.Events[lastShared].Reg) || tr.Events[lastShared].Kind != trace.KindRead {
			t.Fatalf("DRead #%d: last shared step is not a read of X: %v", op.OpID, tr.Events[lastShared])
		}
	}
}
