package aba

import (
	"fmt"
	"testing"
	"testing/quick"

	"slmem/internal/lincheck"
	"slmem/internal/memory"
	"slmem/internal/sched"
	"slmem/internal/spec"
	"slmem/internal/trace"
)

// dregister abstracts over both implementations for shared tests.
type dregister interface {
	DWrite(p int, x string)
	DRead(q int) (string, bool)
}

func newImpls(alloc memory.Allocator, n int) map[string]dregister {
	return map[string]dregister{
		"linearizable": NewLinearizable[string](alloc, n, spec.Bot),
		"strong":       NewStrong[string](alloc, n, spec.Bot),
	}
}

// --- Sequential semantics vs. the specification -------------------------------

func TestSequentialAgainstSpec(t *testing.T) {
	const n = 3
	for name := range newImpls(&memory.NativeAllocator{}, n) {
		name := name
		t.Run(name, func(t *testing.T) {
			// Random sequential op streams must match the state machine.
			f := func(script []uint8) bool {
				var alloc memory.NativeAllocator
				reg := newImpls(&alloc, n)[name]
				sp := spec.ABARegister{N: n}
				state := sp.Initial()
				for i, b := range script {
					pid := int(b) % n
					if b%2 == 0 {
						x := fmt.Sprintf("v%d", i%5)
						reg.DWrite(pid, x)
						next, _, err := sp.Apply(state, pid, spec.FormatInvocation("DWrite", x))
						if err != nil {
							return false
						}
						state = next
					} else {
						val, flag := reg.DRead(pid)
						next, want, err := sp.Apply(state, pid, "DRead()")
						if err != nil {
							return false
						}
						if fmt.Sprintf("(%s,%t)", val, flag) != want {
							t.Logf("step %d pid %d: got (%s,%t), want %s", i, pid, val, flag, want)
							return false
						}
						state = next
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestFirstDReadAfterDWriteFlagsTrue(t *testing.T) {
	for name, reg := range newImpls(&memory.NativeAllocator{}, 2) {
		t.Run(name, func(t *testing.T) {
			reg.DWrite(1, "a")
			if v, flag := reg.DRead(0); v != "a" || !flag {
				t.Errorf("DRead = (%s,%t), want (a,true)", v, flag)
			}
			if v, flag := reg.DRead(0); v != "a" || flag {
				t.Errorf("second DRead = (%s,%t), want (a,false)", v, flag)
			}
		})
	}
}

func TestABADetected(t *testing.T) {
	// Value returns to "a" between two DReads; the flag must expose it.
	for name, reg := range newImpls(&memory.NativeAllocator{}, 2) {
		t.Run(name, func(t *testing.T) {
			reg.DWrite(1, "a")
			reg.DRead(0)
			reg.DWrite(1, "b")
			reg.DWrite(1, "a")
			if v, flag := reg.DRead(0); v != "a" || !flag {
				t.Errorf("ABA DRead = (%s,%t), want (a,true)", v, flag)
			}
		})
	}
}

// --- Sequence number machinery (white box) -------------------------------------

func TestGetSeqRange(t *testing.T) {
	const n = 3
	var alloc memory.NativeAllocator
	b := newBase(&alloc, n, spec.Bot, func(a, b string) bool { return a == b })
	for i := 0; i < 100; i++ {
		s := b.getSeq(1)
		if s < 0 || s > 2*n+1 {
			t.Fatalf("getSeq returned %d, outside [0,%d]", s, 2*n+1)
		}
	}
}

func TestConsecutiveSeqsDiffer(t *testing.T) {
	// Paper statement (1) in the proof of Observation 4: no two consecutive
	// DWrites by the same process choose the same sequence number.
	f := func(nRaw uint8, k uint8) bool {
		n := int(nRaw)%4 + 1
		var alloc memory.NativeAllocator
		b := newBase(&alloc, n, spec.Bot, func(a, b string) bool { return a == b })
		prev := -2
		for i := 0; i < int(k)+2; i++ {
			s := b.getSeq(0)
			if s == prev {
				return false
			}
			prev = s
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSeqAvoidsAnnouncement(t *testing.T) {
	// If a reader has announced (writer, s), the writer must not pick s
	// while the announcement is visible at its cursor position.
	const n = 2
	var alloc memory.NativeAllocator
	reg := NewStrong[string](&alloc, n, spec.Bot)

	reg.DWrite(1, "a") // writer picks s0, cursor now at A[1]
	// Reader announces (1, s0) into A[0].
	if v, _ := reg.DRead(0); v != "a" {
		t.Fatal("setup read failed")
	}
	// Writer's next two writes read A[1] then A[0]; when it reads A[0] it
	// must exclude the announced number from then on.
	seen := make(map[int]bool)
	for i := 0; i < 2*n+2; i++ {
		reg.DWrite(1, "b")
		seen[reg.x.Read(1).seq] = true
	}
	announced := reg.a[0].Read(0)
	if announced.pid != 1 {
		t.Fatalf("announcement = %+v, want writer 1", announced)
	}
	if seen[announced.seq] {
		t.Errorf("writer reused announced sequence number %d", announced.seq)
	}
}

func TestSeqQueue(t *testing.T) {
	q := newSeqQueue(3)
	for _, s := range []int{0, 1, 2} {
		q.pushPop(s)
	}
	for _, s := range []int{0, 1, 2} {
		if !q.contains(s) {
			t.Errorf("queue lost %d", s)
		}
	}
	q.pushPop(3) // evicts 0
	if q.contains(0) {
		t.Error("oldest entry not evicted")
	}
	if !q.contains(3) || !q.contains(1) || !q.contains(2) {
		t.Error("queue dropped a recent entry")
	}
}

// --- Simulated linearizability ---------------------------------------------------

// simSystem builds a simulated system: writers do DWrites, readers do DReads.
func simSystem(name string, n, writes, reads int) sched.System {
	return sched.System{
		N: n,
		Setup: func(env *sched.Env) []sched.Program {
			reg := newImpls(env, n)[name]
			progs := make([]sched.Program, n)
			for pid := 0; pid < n; pid++ {
				pid := pid
				if pid%2 == 0 {
					progs[pid] = func(p *sched.Proc) {
						for i := 0; i < reads; i++ {
							p.Do("DRead()", func() string {
								v, flag := reg.DRead(pid)
								return fmt.Sprintf("(%s,%t)", v, flag)
							})
						}
					}
				} else {
					progs[pid] = func(p *sched.Proc) {
						for i := 0; i < writes; i++ {
							x := fmt.Sprintf("w%d.%d", pid, i)
							p.Do(spec.FormatInvocation("DWrite", x), func() string {
								reg.DWrite(pid, x)
								return "ok"
							})
						}
					}
				}
			}
			return progs
		},
	}
}

func TestLinearizableUnderRandomSchedules(t *testing.T) {
	for _, name := range []string{"linearizable", "strong"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < 30; seed++ {
				res := sched.Run(simSystem(name, 3, 3, 3), sched.NewSeeded(seed), sched.Options{})
				if !res.Completed() {
					t.Fatalf("seed %d: run incomplete: %v", seed, res.Err)
				}
				chk, err := lincheck.CheckTranscript(res.T, spec.ABARegister{N: 3})
				if err != nil {
					t.Fatal(err)
				}
				if !chk.Ok {
					t.Fatalf("seed %d: history not linearizable:\n%s", seed, res.T.Interpreted())
				}
			}
		})
	}
}

func TestStrongChainMonitor(t *testing.T) {
	// Necessary condition for strong linearizability along single runs.
	for seed := int64(0); seed < 20; seed++ {
		res := sched.Run(simSystem("strong", 2, 3, 3), sched.NewSeeded(seed), sched.Options{})
		if !res.Completed() {
			t.Fatalf("seed %d: incomplete: %v", seed, res.Err)
		}
		chk, err := lincheck.CheckChain(res.T, spec.ABARegister{N: 2})
		if err != nil {
			t.Fatal(err)
		}
		if !chk.Ok {
			t.Fatalf("seed %d: no monotone linearization along run (fail at %s)", seed, chk.FailNode)
		}
	}
}

// --- Observation 4: mechanical reproduction -------------------------------------

// observation4System: process 0 performs two DReads, process 1 performs
// five DWrites of the same value "x". With n=2 the writer's sequence
// numbers cycle 0,1,2,3,0: dw1 and dw5 share s=0 (the paper's dwi and dwj).
func observation4System(impl string) sched.System {
	return sched.System{
		N: 2,
		Setup: func(env *sched.Env) []sched.Program {
			reg := newImpls(env, 2)[impl]
			return []sched.Program{
				func(p *sched.Proc) {
					for i := 0; i < 2; i++ {
						p.Do("DRead()", func() string {
							v, flag := reg.DRead(0)
							return fmt.Sprintf("(%s,%t)", v, flag)
						})
					}
				},
				func(p *sched.Proc) {
					for i := 0; i < 5; i++ {
						p.Do("DWrite(x)", func() string {
							reg.DWrite(1, "x")
							return "ok"
						})
					}
				},
			}
		},
	}
}

func rep(pid, k int) []int {
	out := make([]int, k)
	for i := range out {
		out[i] = pid
	}
	return out
}

func cat(parts ...[]int) []int {
	var out []int
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// TestObservation4 reproduces the paper's Observation 4: the transcript tree
// {S, T1, T2} of Algorithm 1 admits no prefix-preserving linearization
// function, even though each individual transcript is linearizable.
//
// Step accounting (simulator): DWrite = inv + read A[c] + write X + ret = 4
// steps; Algorithm 1 DRead = inv + read X + read A[q] + write A[q] + read X
// + ret = 6 steps. "dr1 to the end of line 16" = first 3 of those.
func TestObservation4(t *testing.T) {
	sys := observation4System("linearizable")

	prefixS := cat(
		rep(1, 4), // dw1
		rep(0, 3), // dr1 through line 16
		rep(1, 4), // dw2 (the paper's dw_{i+1}, choosing s' != s)
	)
	contT1 := cat(
		rep(1, 12), // dw3, dw4, dw5 (dw5 = the paper's dwj, reusing s)
		rep(0, 3),  // dr1 from line 17 to completion
		rep(0, 6),  // dr2
	)
	contT2 := cat(
		rep(0, 3), // dr1 from line 17 to completion
		rep(0, 6), // dr2
	)

	tree, err := sched.PrefixTree(sys, prefixS, [][]int{contT1, contT2}, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}

	sp := spec.ABARegister{N: 2}

	// Sanity: the runs took the shapes the proof requires.
	t1Ops := tree.Children[0].T.Interpreted()
	t2Ops := tree.Children[1].T.Interpreted()
	if got := finalDReadRes(t1Ops); got != "(x,false)" {
		t.Fatalf("dr2 in T1 returned %s, want (x,false) (paper's A-2)", got)
	}
	if got := finalDReadRes(t2Ops); got != "(x,true)" {
		t.Fatalf("dr2 in T2 returned %s, want (x,true) (paper's B-2)", got)
	}

	// Each branch in isolation is linearizable...
	for i, child := range tree.Children {
		chk, err := lincheck.CheckTranscript(child.T, sp)
		if err != nil {
			t.Fatal(err)
		}
		if !chk.Ok {
			t.Fatalf("branch T%d not linearizable — Algorithm 1 is linearizable, bug in setup:\n%s",
				i+1, child.T.Interpreted())
		}
	}

	// ...but the tree admits no prefix-preserving linearization function.
	res, err := lincheck.CheckStrong(lincheck.FromSchedTree(tree), sp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ok {
		t.Fatal("Observation 4 violated: Algorithm 1's {S,T1,T2} tree accepted as strongly linearizable")
	}
}

func finalDReadRes(h *trace.History) string {
	res := ""
	for _, op := range h.Ops {
		if op.Desc == "DRead()" && op.Complete() {
			res = op.Res
		}
	}
	return res
}

// TestStrongSurvivesBranchingTrees: Algorithm 2 must admit a prefix-
// preserving linearization function on randomly sampled branching trees of
// the same workload that refutes Algorithm 1.
func TestStrongSurvivesBranchingTrees(t *testing.T) {
	sys := observation4System("strong")
	for seed := int64(0); seed < 15; seed++ {
		tree, err := randomBranchTree(sys, seed, 8, 3)
		if err != nil {
			t.Fatal(err)
		}
		res, err := lincheck.CheckStrong(lincheck.FromSchedTree(tree), spec.ABARegister{N: 2})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Ok {
			t.Fatalf("seed %d: Algorithm 2 failed strong-linearizability tree check at %s", seed, res.FailNode)
		}
	}
}

// randomBranchTree samples a random schedule prefix of the given length and
// attaches `fanout` completed continuations that diverge immediately after
// the prefix.
func randomBranchTree(sys sched.System, seed int64, prefixLen, fanout int) (*sched.TreeNode, error) {
	// Derive a prefix by running with a seeded adversary and recording which
	// pids it picked.
	probe := sched.Run(sys, sched.NewSeeded(seed), sched.Options{})
	prefix := probe.Schedule
	if len(prefix) > prefixLen {
		prefix = prefix[:prefixLen]
	}
	conts := make([][]int, 0, fanout)
	for f := 0; f < fanout; f++ {
		// Each continuation diverges with its own seeded adversary, running
		// to completion; its schedule is recovered from the run.
		adv := sched.NewChain(sched.NewScript(prefix...), sched.NewSeeded(seed*31+int64(f)))
		res := sched.Run(sys, adv, sched.Options{})
		if res.Err != nil {
			return nil, res.Err
		}
		conts = append(conts, res.Schedule[len(prefix):])
	}
	return sched.PrefixTree(sys, prefix, conts, sched.Options{})
}

// TestObservation6a: two GetSeq calls by the same process returning the same
// sequence number have at least n GetSeq calls between them (the usedQ keeps
// the last n+1 numbers distinct).
func TestObservation6a(t *testing.T) {
	f := func(nRaw uint8, kRaw uint8) bool {
		n := int(nRaw)%5 + 1
		k := int(kRaw)%64 + 2*n + 2
		var alloc memory.NativeAllocator
		b := newBase(&alloc, n, spec.Bot, func(a, b string) bool { return a == b })
		seqs := make([]int, k)
		for i := range seqs {
			seqs[i] = b.getSeq(0)
		}
		for i := range seqs {
			for j := i + 1; j < len(seqs) && j <= i+n; j++ {
				if seqs[i] == seqs[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestDWriteAlwaysTwoSteps: Theorem 14(a) on the native path, any process
// mix, any history length.
func TestDWriteAlwaysTwoSteps(t *testing.T) {
	const n = 3
	counter := memory.NewStepCounter(n)
	alloc := &memory.CountingAllocator{Inner: &memory.NativeAllocator{}, Counter: counter}
	reg := NewStrong[string](alloc, n, spec.Bot)
	for i := 0; i < 50; i++ {
		pid := i % n
		before := counter.Steps(pid)
		reg.DWrite(pid, "v")
		if got := counter.Steps(pid) - before; got != 2 {
			t.Fatalf("DWrite %d took %d steps, want 2", i, got)
		}
		if i%7 == 0 {
			reg.DRead((pid + 1) % n)
		}
	}
}
