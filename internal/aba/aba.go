// Package aba implements ABA-detecting registers (paper Section 3).
//
// An ABA-detecting register stores a value and supports DWrite(x) and
// DRead() -> (x, flag), where flag is true iff the calling process has
// performed an earlier DRead and some DWrite happened since.
//
// Two implementations are provided, built from atomic registers only:
//
//   - Linearizable: the wait-free linearizable register of Aghazadeh and
//     Woelfel (the paper's Algorithm 1). The paper's Observation 4 proves it
//     is NOT strongly linearizable; the test suite reproduces that proof
//     mechanically.
//   - Strong: the paper's lock-free strongly linearizable modification
//     (Algorithm 2): DRead retries its read sequence until it observes a
//     quiescent period, so every operation linearizes at its final shared
//     step (Theorems 1, 12, 14).
//
// Both use the same writer machinery: writes are tagged with the writer's
// id and a bounded sequence number chosen by GetSeq to avoid numbers that
// readers may still rely on (announced in A, or among the writer's n+1 most
// recently used).
//
// Methods take the calling process id; per-process local state (the paper's
// usedQ, na, c, and Algorithm 1's b flag) is kept in per-pid slots, so each
// pid must be driven by at most one goroutine at a time.
package aba

import (
	"fmt"

	"slmem/internal/memory"
)

// noSeq is the paper's ⊥ for sequence numbers and process ids.
const noSeq = -1

// cell is the content of the main register X: a value tagged with the
// writing process and its sequence number.
type cell[V any] struct {
	val V
	pid int
	seq int
}

// tag is the (process id, sequence number) pair announced in A.
type tag struct {
	pid int
	seq int
}

func (c cell[V]) tag() tag { return tag{pid: c.pid, seq: c.seq} }

// seqQueue is the paper's usedQ: the writer's n+1 most recently used
// sequence numbers, as a fixed-size ring. enqueue-then-dequeue of the paper
// is replacing the oldest entry.
type seqQueue struct {
	buf  []int
	head int
}

func newSeqQueue(size int) *seqQueue {
	buf := make([]int, size)
	for i := range buf {
		buf[i] = noSeq
	}
	return &seqQueue{buf: buf}
}

func (q *seqQueue) pushPop(s int) {
	q.buf[q.head] = s
	q.head = (q.head + 1) % len(q.buf)
}

func (q *seqQueue) contains(s int) bool {
	for _, v := range q.buf {
		if v == s {
			return true
		}
	}
	return false
}

// writerLocal is the per-process local state of the DWrite/GetSeq machinery.
type writerLocal struct {
	usedQ *seqQueue
	na    []int // na[i] = sequence number announced at A[i], noSeq if none
	c     int   // round-robin cursor over A
}

// base holds the shared registers and per-process locals common to both
// implementations.
type base[V any] struct {
	n  int
	eq func(a, b V) bool
	x  memory.Reg[cell[V]]
	a  []memory.Reg[tag]
	w  []writerLocal
}

func newBase[V any](alloc memory.Allocator, n int, initial V, eq func(a, b V) bool) *base[V] {
	if n < 1 {
		panic(fmt.Sprintf("aba: n = %d, need at least 1 process", n))
	}
	b := &base[V]{
		n:  n,
		eq: eq,
		x:  memory.NewReg(alloc, "aba.X", cell[V]{val: initial, pid: noSeq, seq: noSeq}),
		a:  make([]memory.Reg[tag], n),
		w:  make([]writerLocal, n),
	}
	for i := range b.a {
		b.a[i] = memory.NewReg(alloc, fmt.Sprintf("aba.A[%d]", i), tag{pid: noSeq, seq: noSeq})
	}
	for i := range b.w {
		b.w[i] = writerLocal{
			usedQ: newSeqQueue(n + 1),
			na:    make([]int, n),
		}
		for j := range b.w[i].na {
			b.w[i].na[j] = noSeq
		}
	}
	return b
}

// getSeq implements the paper's GetSeq (Algorithm 1, lines 3-14): read one
// announcement (round-robin), remember it if it names this writer, and pick
// a sequence number from {0,...,2n+1} that is neither announced nor among
// the writer's n+1 most recently used. One shared-memory step.
func (b *base[V]) getSeq(p int) int {
	l := &b.w[p]
	ann := b.a[l.c].Read(p) // line 3
	if ann.pid == p {       // lines 4-9
		l.na[l.c] = ann.seq
	} else {
		l.na[l.c] = noSeq
	}
	l.c = (l.c + 1) % b.n // line 10

	// Line 11: choose the smallest available sequence number. The domain has
	// 2n+2 values; at most n are announced and n+1 recently used, so one is
	// always free.
	s := noSeq
	for cand := 0; cand <= 2*b.n+1; cand++ {
		if l.usedQ.contains(cand) {
			continue
		}
		announced := false
		for _, v := range l.na {
			if v == cand {
				announced = true
				break
			}
		}
		if !announced {
			s = cand
			break
		}
	}
	if s == noSeq {
		// Unreachable by the counting argument above.
		panic("aba: no available sequence number")
	}
	l.usedQ.pushPop(s) // lines 12-13
	return s
}

// dWrite implements DWrite (Algorithm 1, lines 1-2): two shared steps.
func (b *base[V]) dWrite(p int, x V) {
	s := b.getSeq(p)
	b.x.Write(p, cell[V]{val: x, pid: p, seq: s})
}

func (b *base[V]) cellEq(c1, c2 cell[V]) bool {
	return c1.pid == c2.pid && c1.seq == c2.seq && b.eq(c1.val, c2.val)
}

// Linearizable is the wait-free linearizable ABA-detecting register of
// Aghazadeh and Woelfel (Algorithm 1). It is linearizable but not strongly
// linearizable (Observation 4).
type Linearizable[V any] struct {
	*base[V]
	b []bool // per-process delegation flag (paper's local b)
}

// NewLinearizable constructs Algorithm 1 for n processes over comparable
// values, initialized to initial (the paper's ⊥).
func NewLinearizable[V comparable](alloc memory.Allocator, n int, initial V) *Linearizable[V] {
	return NewLinearizableFunc(alloc, n, initial, func(a, b V) bool { return a == b })
}

// NewLinearizableFunc is NewLinearizable with an explicit value-equality
// function, for value types that are not comparable (e.g. vectors).
func NewLinearizableFunc[V any](alloc memory.Allocator, n int, initial V, eq func(a, b V) bool) *Linearizable[V] {
	return &Linearizable[V]{
		base: newBase(alloc, n, initial, eq),
		b:    make([]bool, n),
	}
}

// DWrite writes x as process p. Wait-free; exactly two shared steps.
func (r *Linearizable[V]) DWrite(p int, x V) { r.dWrite(p, x) }

// DRead returns the current value and the modification flag, as process q
// (Algorithm 1, lines 15-31). Wait-free: four shared steps.
func (r *Linearizable[V]) DRead(q int) (V, bool) {
	c1 := r.x.Read(q)         // line 15
	ann := r.a[q].Read(q)     // line 16
	r.a[q].Write(q, c1.tag()) // line 17
	c2 := r.x.Read(q)         // line 18
	var ret bool
	if c1.tag() == ann { // line 19
		ret = r.b[q] // line 20
	} else {
		ret = true // line 23
	}
	if r.cellEq(c1, c2) { // line 25
		r.b[q] = false // line 26
	} else {
		r.b[q] = true // line 29
	}
	return c1.val, ret // line 31
}

// Strong is the paper's lock-free strongly linearizable ABA-detecting
// register (Algorithm 2 with the Algorithm 1 writer).
//
// DRead repeats its read sequence until X and A[q] are mutually consistent
// and unchanged, so it can linearize at its final shared step; DWrite
// linearizes at its write to X. Theorem 12 proves strong linearizability;
// Theorem 14 bounds the total work.
type Strong[V any] struct {
	*base[V]
}

// NewStrong constructs Algorithm 2 for n processes over comparable values,
// initialized to initial (the paper's ⊥).
func NewStrong[V comparable](alloc memory.Allocator, n int, initial V) *Strong[V] {
	return NewStrongFunc(alloc, n, initial, func(a, b V) bool { return a == b })
}

// NewStrongFunc is NewStrong with an explicit value-equality function.
func NewStrongFunc[V any](alloc memory.Allocator, n int, initial V, eq func(a, b V) bool) *Strong[V] {
	return &Strong[V]{base: newBase(alloc, n, initial, eq)}
}

// DWrite writes x as process p. Wait-free; exactly two shared steps.
func (r *Strong[V]) DWrite(p int, x V) { r.dWrite(p, x) }

// DRead returns the current value and the modification flag, as process q
// (Algorithm 2, lines 32-42). Lock-free: retries while concurrent DWrites
// land, then linearizes at its final read of X.
func (r *Strong[V]) DRead(q int) (V, bool) {
	changed := false // line 32
	for {            // line 33
		c1 := r.x.Read(q)         // line 34
		ann := r.a[q].Read(q)     // line 35
		r.a[q].Write(q, c1.tag()) // line 36
		c2 := r.x.Read(q)         // line 37
		quiet := c1.tag() == ann && r.cellEq(c1, c2)
		if !quiet { // lines 38-40
			changed = true
			continue // line 41
		}
		return c2.val, changed // line 42
	}
}
