package aba

import (
	"strings"
	"testing"

	"slmem/internal/sched"
	"slmem/internal/trace"
)

// TestLemma13 checks the paper's Lemma 13 on recorded transcripts: if a
// DRead performs three consecutive reads of X on line 34 (the loop head),
// then some DWrite linearizes (writes X) strictly between the first and the
// third. In other words, every extra loop iteration is paid for by a
// concurrent write — the amortization argument behind Theorem 14.
func TestLemma13(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		res := sched.Run(simSystem("strong", 3, 4, 4), sched.NewSeeded(seed), sched.Options{})
		if !res.Completed() {
			t.Fatalf("seed %d: incomplete: %v", seed, res.Err)
		}
		verifyLemma13(t, seed, res.T)
	}
	// Also under a reader storm, which maximizes loop iterations.
	res := sched.Run(simSystem("strong", 2, 12, 2),
		&sched.Storm{IsVictim: func(pid int) bool { return pid%2 == 0 }, Period: 5},
		sched.Options{})
	if !res.Completed() {
		t.Fatalf("storm run incomplete: %v", res.Err)
	}
	verifyLemma13(t, -1, res.T)
}

func verifyLemma13(t *testing.T, seed int64, tr *trace.Transcript) {
	t.Helper()

	// Line-34 reads are the X-reads at positions 0, 4, 8, ... of each
	// DRead's base-step sequence (each iteration is read X, read A, write A,
	// read X).
	type xread struct{ time int }
	line34 := make(map[int][]xread) // opID -> line-34 X reads
	var xwrites []int               // times of writes to X (DWrite linearization points)
	isDRead := make(map[int]bool)
	stepIdx := make(map[int]int) // opID -> base steps seen so far

	for i, e := range tr.Events {
		switch e.Kind {
		case trace.KindInvoke:
			if strings.HasPrefix(e.Desc, "DRead") {
				isDRead[e.OpID] = true
			}
		case trace.KindRead, trace.KindWrite:
			if e.Kind == trace.KindWrite && isXReg(e.Reg) {
				xwrites = append(xwrites, i)
			}
			if isDRead[e.OpID] {
				if e.Kind == trace.KindRead && isXReg(e.Reg) && stepIdx[e.OpID]%4 == 0 {
					line34[e.OpID] = append(line34[e.OpID], xread{time: i})
				}
				stepIdx[e.OpID]++
			}
		}
	}

	if len(line34) == 0 {
		t.Fatalf("seed %d: no line-34 reads attributed; register matching broken (vacuous test)", seed)
	}
	for opID, reads := range line34 {
		for i := 0; i+2 < len(reads); i++ {
			lo, hi := reads[i].time, reads[i+2].time
			found := false
			for _, w := range xwrites {
				if w > lo && w < hi {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("seed %d: DRead #%d looped (X reads at %d..%d) with no DWrite in between — Lemma 13 violated",
					seed, opID, lo, hi)
			}
		}
	}
}

// TestLinearizableDReadStepCount: Algorithm 1's DRead is wait-free with
// exactly four shared steps, always.
func TestLinearizableDReadStepCount(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		res := sched.Run(simSystem("linearizable", 3, 4, 4), sched.NewSeeded(seed), sched.Options{})
		if !res.Completed() {
			t.Fatalf("seed %d: incomplete: %v", seed, res.Err)
		}
		steps := make(map[int]int)
		isDRead := make(map[int]bool)
		for _, e := range res.T.Events {
			switch e.Kind {
			case trace.KindInvoke:
				if strings.HasPrefix(e.Desc, "DRead") {
					isDRead[e.OpID] = true
				}
			case trace.KindRead, trace.KindWrite:
				if isDRead[e.OpID] {
					steps[e.OpID]++
				}
			}
		}
		for opID, n := range steps {
			if n != 4 {
				t.Errorf("seed %d: Algorithm 1 DRead #%d took %d steps, want exactly 4", seed, opID, n)
			}
		}
	}
}

// isXReg matches the main register X of whichever instance is under test
// (allocators suffix duplicate names, e.g. "aba.X#1").
func isXReg(name string) bool {
	return strings.HasPrefix(name, "aba.X")
}
