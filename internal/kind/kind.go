// Package kind is the open driver API of the named-object registry: the
// seam through which object kinds (counter, maxreg, snapshot, object, bag,
// ...) plug into internal/registry, internal/server, and the cmds without
// any of those layers naming a kind explicitly.
//
// A driver, in the spirit of database/sql driver registration, declares
//
//   - a kind name and an op list (introspection: GET /v1/kinds, slbench),
//   - a constructor New that builds one named instance over a pid pool,
//   - a typed op codec: Validate rejects requests that can never succeed
//     (before any object is created), and Instance.Compile turns a request
//     into an executable Compiled step bound to the instance,
//   - Options, e.g. a request for a dedicated per-kind pid pool.
//
// Drivers register themselves in an init function:
//
//	func init() { kind.Register(bagDriver{}) }
//
// and from then on the registry, the batch compiler, the HTTP server, and
// the benchmarks serve the kind with zero edits — that is the contract this
// package exists to enforce. The four paper kinds live in
// internal/kind/builtin; internal/bag adds the Ellen–Sela bag.
package kind

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"slmem"
)

// Request is the wire-level form of one operation, shared by the
// single-operation endpoints and batch entries: the op name plus the three
// operand fields every kind draws from (Value for plain operands, Type and
// Invocation for universal objects). Drivers read only the fields their ops
// need and must reject requests whose meaningful fields are malformed.
type Request struct {
	// Op names the operation, e.g. "inc".
	Op string
	// Value is the plain operand (a decimal for maxreg write, the component
	// text for snapshot update, the item for bag insert).
	Value string
	// Type names the simple type for universal-object kinds.
	Type string
	// Invocation is the invocation string for universal-object kinds.
	Invocation string
}

// Result is the outcome of one executed operation. At most one payload
// field is set, mirroring the HTTP response envelope: Value for scalar
// responses, View for vector responses, neither for pure writes.
type Result struct {
	// Value is the scalar response, if any.
	Value string
	// View is the vector response, if any.
	View []string
}

// Compiled is a validated operation bound to an instance, ready to run as a
// leased process. Run executes it as process pid; implementations must be
// safe for reuse (a driver may hand out one cached Compiled for an
// operandless op forever) and must not acquire or release pids themselves —
// the caller owns the lease.
type Compiled interface {
	// Run executes the operation as process pid.
	Run(pid int) (Result, error)
}

// Instance is one named object created by a driver. Instances are cached by
// the registry and shared by every goroutine that names them.
type Instance interface {
	// Compile validates req against this instance and returns the executable
	// step. It must not execute the operation and must return an error (not
	// panic) for ops the instance cannot run — including per-instance
	// conflicts such as a universal object addressed with the wrong type,
	// reported via Conflict so HTTP maps it to 409.
	Compile(req Request) (Compiled, error)
}

// Unwrapper is implemented by instances that expose an underlying typed
// object, letting the registry's typed accessors stay thin shims over the
// generic driver path.
type Unwrapper interface {
	// Unwrap returns the underlying typed object (e.g. *slmem.PooledCounter).
	Unwrap() any
}

// TypeNamer is implemented by instances parameterized by a type name (the
// universal-object kind), so callers can detect create-time type conflicts
// without compiling an op.
type TypeNamer interface {
	// TypeName returns the simple-type name the instance was created with.
	TypeName() string
}

// OpInfo describes one operation a driver supports, for introspection.
type OpInfo struct {
	// Name is the op name as it appears in requests, e.g. "inc".
	Name string `json:"name"`
	// Doc is a one-line human description.
	Doc string `json:"doc,omitempty"`
}

// Options declare kind-wide behavior the registry honors at instance
// creation.
type Options struct {
	// DedicatedPool requests a per-kind pid pool: instances of this kind
	// lease from their own pool of Procs ids instead of the registry's
	// shared pool, so a hot kind cannot starve the rest of the service (and
	// vice versa). Batches mixing kinds acquire one lease per pool.
	DedicatedPool bool
	// GCWindow, when positive, asks instances of this kind to bound their
	// memory by history truncation with the given per-process collection
	// window (operations between truncation attempts). Zero leaves memory
	// management to the instance's default; only kinds with unbounded
	// per-operation history (the universal object) honor it.
	GCWindow int
}

// Env is what the registry hands a driver when creating an instance.
type Env struct {
	// Name is the object's registry name.
	Name string
	// Procs is the process-pool size n; the instance must size its
	// per-process state for pids 0..Procs-1.
	Procs int
	// Pool is the pid pool the instance's operations will lease from (the
	// registry's shared pool, or a per-kind pool when the driver's Options
	// request one).
	Pool *slmem.PIDPool
	// Req is the request that triggered creation; drivers whose instances
	// are parameterized (the universal object's simple type) read their
	// parameters from it.
	Req Request
}

// Driver creates and describes instances of one object kind.
type Driver interface {
	// Kind returns the kind name, e.g. "counter". It must be non-empty,
	// must not contain '/', and is the path segment HTTP clients use.
	Kind() string
	// Doc returns a one-line description of the kind.
	Doc() string
	// Ops lists the supported operations in stable order.
	Ops() []OpInfo
	// Options returns the kind-wide options.
	Options() Options
	// Validate reports whether req could ever succeed against some instance
	// of this kind, without creating or touching any object: unknown ops
	// (wrapped as NotFound), malformed operands, and unknown types must be
	// rejected here so doomed requests never register objects.
	Validate(req Request) error
	// New creates the named instance. It is called at most once per name
	// (under the registry's shard lock) with a request that already passed
	// Validate.
	New(env Env) (Instance, error)
}

// Batcher is implemented by instances that can amortize per-operation
// bookkeeping across a run of operations executed by one leased pid — the
// universal object defers its per-op checkpoint to one re-anchor per batch.
// The registry's BatchExecute brackets each leased pid's dispatch with
// BeginBatch/EndBatch; both must be cheap no-ops when the instance has
// nothing to defer. The pid passed to EndBatch must match its BeginBatch.
type Batcher interface {
	// BeginBatch enters deferred mode for operations run as pid.
	BeginBatch(pid int)
	// EndBatch leaves deferred mode and settles deferred work for pid.
	EndBatch(pid int)
}

// Prober is implemented by drivers that supply a representative mutating
// request for perf probes; cmd/slbench measures one instance of every
// registered Prober through the driver codec.
type Prober interface {
	// Probe returns a request suitable for tight-loop benchmarking.
	Probe() Request
}

// GrowthProber is an optional Prober extension for drivers whose probe
// request accumulates state the operation's cost depends on — unbounded
// history, tombstone cells — so a tight-loop measurement reflects growth
// over the probe duration rather than a steady per-op cost. slbench
// annotates such probes mode:"growth" in its summary; drivers without the
// extension are mode:"steady". Keeping the flag on the driver keeps kind
// names out of the benchmark harness.
type GrowthProber interface {
	Prober
	// ProbeGrowth reports whether the Probe request's per-op cost grows
	// with state accumulated over a measuring run.
	ProbeGrowth() bool
}

// --- Error classification ----------------------------------------------------

// ErrNotFound marks errors for names that do not exist in the op space:
// unknown kinds and unknown ops. HTTP maps it to 404.
var ErrNotFound = errors.New("not found")

// ErrConflict marks errors for requests that contradict existing state,
// e.g. a universal object addressed with a different type than it was
// created with. HTTP maps it to 409.
var ErrConflict = errors.New("conflict")

// classified carries a human message plus a classification sentinel, so
// error text stays clean while errors.Is sees the class.
type classified struct {
	msg   string
	class error
}

// Error implements error.
func (e *classified) Error() string { return e.msg }

// Unwrap exposes the classification sentinel to errors.Is.
func (e *classified) Unwrap() error { return e.class }

// NotFound formats an error classified as ErrNotFound.
func NotFound(format string, args ...any) error {
	return &classified{fmt.Sprintf(format, args...), ErrNotFound}
}

// Conflict formats an error classified as ErrConflict.
func Conflict(format string, args ...any) error {
	return &classified{fmt.Sprintf(format, args...), ErrConflict}
}

// IsNotFound reports whether err is classified as not-found.
func IsNotFound(err error) bool { return errors.Is(err, ErrNotFound) }

// IsConflict reports whether err is classified as a conflict.
func IsConflict(err error) bool { return errors.Is(err, ErrConflict) }

// --- Global driver registry ---------------------------------------------------

// ReservedOps are op names claimed by the registry itself for batch-level
// introspection entries; Register rejects drivers that declare them.
var ReservedOps = []string{"names", "stats"}

// drivers is the registered driver set, published copy-on-write so Lookup
// is a single atomic load on the hot path. interned maps every registered
// kind name and op name (plus the reserved introspection ops) to one
// canonical string, maintained the same way, so hot-path decoders can
// resolve vocabulary bytes to strings without allocating.
var (
	regMu    sync.Mutex
	drivers  atomic.Pointer[map[string]Driver]
	interned atomic.Pointer[map[string]string]
)

func init() {
	m := map[string]Driver{}
	drivers.Store(&m)
	in := make(map[string]string, len(ReservedOps))
	for _, op := range ReservedOps {
		in[op] = op
	}
	interned.Store(&in)
}

// Register makes a driver available under its kind name. It panics if the
// name is empty, contains '/', collides with a registered driver, or
// declares a reserved op — all programmer errors, following database/sql.
// Safe for concurrent use.
func Register(d Driver) {
	name := d.Kind()
	if name == "" || strings.ContainsRune(name, '/') {
		panic(fmt.Sprintf("kind: invalid kind name %q", name))
	}
	for _, op := range d.Ops() {
		for _, reserved := range ReservedOps {
			if op.Name == reserved {
				panic(fmt.Sprintf("kind: driver %q declares reserved op %q", name, reserved))
			}
		}
	}
	regMu.Lock()
	defer regMu.Unlock()
	old := *drivers.Load()
	if _, dup := old[name]; dup {
		panic(fmt.Sprintf("kind: Register called twice for kind %q", name))
	}
	next := make(map[string]Driver, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[name] = d
	drivers.Store(&next)

	oldIn := *interned.Load()
	nextIn := make(map[string]string, len(oldIn)+1+len(d.Ops()))
	for k, v := range oldIn {
		nextIn[k] = v
	}
	nextIn[name] = name
	for _, op := range d.Ops() {
		nextIn[op.Name] = op.Name
	}
	interned.Store(&nextIn)
}

// Intern returns the canonical string for b when b spells a registered kind
// name, a registered op name, or a reserved introspection op. The lookup is
// keyed by string(b) inside a map index expression, which Go does not
// allocate for — hot-path decoders use it to avoid one allocation per
// vocabulary field. ok is false for anything outside the vocabulary; safe
// for concurrent use with Register.
func Intern(b []byte) (s string, ok bool) {
	s, ok = (*interned.Load())[string(b)]
	return s, ok
}

// Lookup returns the driver registered under name. The fast path is one
// atomic load; safe for concurrent use with Register.
func Lookup(name string) (Driver, bool) {
	d, ok := (*drivers.Load())[name]
	return d, ok
}

// Names returns the registered kind names, sorted.
func Names() []string {
	m := *drivers.Load()
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Drivers returns the registered drivers, sorted by kind name. It iterates
// one snapshot of the driver map — using Names() here would load a second,
// possibly newer snapshot and hand back a nil Driver for a kind registered
// between the two loads.
func Drivers() []Driver {
	m := *drivers.Load()
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	ds := make([]Driver, 0, len(names))
	for _, name := range names {
		ds = append(ds, m[name])
	}
	return ds
}

// Info is the introspection record for one registered driver, the unit of
// GET /v1/kinds replies.
type Info struct {
	// Kind is the kind name.
	Kind string `json:"kind"`
	// Doc is the driver's one-line description.
	Doc string `json:"doc,omitempty"`
	// Ops lists the supported operations.
	Ops []OpInfo `json:"ops"`
	// DedicatedPool reports whether instances lease from a per-kind pool.
	DedicatedPool bool `json:"dedicated_pool,omitempty"`
	// GCWindow is the kind's history-truncation window, 0 when the kind
	// does not truncate.
	GCWindow int `json:"gc_window,omitempty"`
}

// Describe returns introspection records for every registered driver,
// sorted by kind name.
func Describe() []Info {
	ds := Drivers()
	infos := make([]Info, 0, len(ds))
	for _, d := range ds {
		infos = append(infos, Info{
			Kind:          d.Kind(),
			Doc:           d.Doc(),
			Ops:           d.Ops(),
			DedicatedPool: d.Options().DedicatedPool,
			GCWindow:      d.Options().GCWindow,
		})
	}
	return infos
}

// UnknownKind builds the canonical error for an unregistered kind name,
// classified as not-found.
func UnknownKind(name string) error {
	return NotFound("unknown object kind %q (registered: %s)", name, strings.Join(Names(), ", "))
}
