package kind

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"slmem"
)

// stubDriver is a minimal driver for registration tests.
type stubDriver struct {
	name string
	ops  []OpInfo
	opts Options
}

func (d stubDriver) Kind() string           { return d.name }
func (d stubDriver) Doc() string            { return "stub" }
func (d stubDriver) Ops() []OpInfo          { return d.ops }
func (d stubDriver) Options() Options       { return d.opts }
func (d stubDriver) Validate(Request) error { return nil }
func (d stubDriver) New(env Env) (Instance, error) {
	return stubInstance{}, nil
}

type stubInstance struct{}

func (stubInstance) Compile(req Request) (Compiled, error) {
	return stubCompiled{}, nil
}

type stubCompiled struct{}

func (stubCompiled) Run(pid int) (Result, error) { return Result{Value: "stub"}, nil }

func TestRegisterLookupDescribe(t *testing.T) {
	d := stubDriver{name: "test-alpha", ops: []OpInfo{{Name: "poke", Doc: "pokes"}}}
	Register(d)
	got, ok := Lookup("test-alpha")
	if !ok {
		t.Fatal("registered driver not found")
	}
	if got.Kind() != "test-alpha" {
		t.Fatalf("Lookup returned driver %q", got.Kind())
	}
	if _, ok := Lookup("test-never-registered"); ok {
		t.Fatal("unregistered kind found")
	}
	found := false
	for _, info := range Describe() {
		if info.Kind == "test-alpha" {
			found = true
			if len(info.Ops) != 1 || info.Ops[0].Name != "poke" {
				t.Fatalf("Describe ops = %+v", info.Ops)
			}
		}
	}
	if !found {
		t.Fatal("Describe omits registered driver")
	}
}

func TestRegisterRejectsBadDrivers(t *testing.T) {
	mustPanic := func(name string, d Driver) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register did not panic", name)
			}
		}()
		Register(d)
	}
	mustPanic("empty name", stubDriver{name: ""})
	mustPanic("slash in name", stubDriver{name: "a/b"})
	mustPanic("reserved op", stubDriver{name: "test-reserved", ops: []OpInfo{{Name: "names"}}})

	Register(stubDriver{name: "test-dup"})
	mustPanic("duplicate", stubDriver{name: "test-dup"})
}

func TestNamesSorted(t *testing.T) {
	Register(stubDriver{name: "test-zz"})
	Register(stubDriver{name: "test-aa"})
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names not sorted: %v", names)
		}
	}
}

// TestConcurrentRegistration races many registrations against lookups and
// enumeration: the copy-on-write publication must keep every reader
// consistent while writers add drivers (run under -race).
func TestConcurrentRegistration(t *testing.T) {
	const writers = 16
	var wg, readers sync.WaitGroup
	stop := make(chan struct{})

	// Readers: hammer Lookup and Names while registration happens.
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				Lookup("test-conc-7")
				for i, name := range Names() {
					if i > 0 && name == "" {
						t.Error("empty name in Names")
						return
					}
				}
			}
		}()
	}
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			Register(stubDriver{name: fmt.Sprintf("test-conc-%d", w)})
		}()
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			Lookup("test-conc-0")
		}()
	}
	// Wait for writers+lookups, then stop readers.
	wg.Wait()
	close(stop)
	readers.Wait()

	for w := 0; w < writers; w++ {
		if _, ok := Lookup(fmt.Sprintf("test-conc-%d", w)); !ok {
			t.Errorf("driver test-conc-%d lost during concurrent registration", w)
		}
	}
}

func TestErrorClassification(t *testing.T) {
	nf := NotFound("no such thing %q", "x")
	if !IsNotFound(nf) || IsConflict(nf) {
		t.Fatalf("NotFound misclassified: %v", nf)
	}
	if want := `no such thing "x"`; nf.Error() != want {
		t.Fatalf("NotFound text = %q, want %q", nf.Error(), want)
	}
	cf := Conflict("already there")
	if !IsConflict(cf) || IsNotFound(cf) {
		t.Fatalf("Conflict misclassified: %v", cf)
	}
	if IsNotFound(fmt.Errorf("plain")) || IsConflict(fmt.Errorf("plain")) {
		t.Fatal("plain error classified")
	}
	uk := UnknownKind("nope")
	if !IsNotFound(uk) || !strings.Contains(uk.Error(), "nope") {
		t.Fatalf("UnknownKind = %v", uk)
	}
}

// TestEnvCarriesPool is a compile-and-smoke check that Env plumbs the pool
// through to instances.
func TestEnvCarriesPool(t *testing.T) {
	pool := slmem.NewPIDPool(2)
	d := stubDriver{name: "test-env"}
	Register(d)
	inst, err := d.New(Env{Name: "n", Procs: 2, Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	c, err := inst.Compile(Request{Op: "poke"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(0)
	if err != nil || res.Value != "stub" {
		t.Fatalf("Run = %+v, %v", res, err)
	}
}
