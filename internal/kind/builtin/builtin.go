// Package builtin registers the four paper kinds — counter, maxreg,
// snapshot, and the universal object — as kind drivers, so the registry,
// batch compiler, server, and benchmarks serve them through the same open
// API new kinds use. Importing the package (internal/registry does, for
// everyone) performs the registration.
package builtin

import (
	"fmt"
	"strconv"

	"slmem"
	"slmem/internal/kind"
)

func init() {
	kind.Register(counterDriver{})
	kind.Register(maxregDriver{})
	kind.Register(snapshotDriver{})
	kind.Register(objectDriver{})
}

// ObjectType maps the type names accepted by the universal-object kind to
// their simple types. Counter-like and max-register-like workloads also
// have dedicated kinds with cheaper snapshot-derived implementations; the
// universal construction carries the rest.
func ObjectType(typeName string) (slmem.SimpleType, error) {
	switch typeName {
	case "set":
		return slmem.SetType{}, nil
	case "accumulator":
		return slmem.AccumulatorType{}, nil
	case "register":
		return slmem.RegisterType{}, nil
	case "counter":
		return slmem.CounterType{}, nil
	case "maxreg":
		return slmem.MaxRegType{}, nil
	default:
		return nil, fmt.Errorf("unknown object type %q (want set, accumulator, register, counter, or maxreg)", typeName)
	}
}

// ObjectTypeNames lists the type names accepted by the universal-object
// kind, sorted.
func ObjectTypeNames() []string {
	return []string{"accumulator", "counter", "maxreg", "register", "set"}
}

// ValidateInvocation checks that invocation is well-formed for the named
// object type by dry-running it against the type's sequential specification
// from its initial state, without creating or touching any object. The
// provided simple types accept or reject an invocation independent of
// state, so this predicts exactly what Execute would say.
func ValidateInvocation(typeName, invocation string) error {
	t, err := ObjectType(typeName)
	if err != nil {
		return err
	}
	sp := t.Spec()
	if _, _, err := sp.Apply(sp.Initial(), 0, invocation); err != nil {
		return err
	}
	return nil
}

// --- counter -----------------------------------------------------------------

type counterDriver struct{}

// Kind implements kind.Driver.
func (counterDriver) Kind() string { return "counter" }

// Doc implements kind.Driver.
func (counterDriver) Doc() string {
	return "strongly linearizable counter derived from the snapshot (paper Section 4.5)"
}

// Ops implements kind.Driver.
func (counterDriver) Ops() []kind.OpInfo {
	return []kind.OpInfo{
		{Name: "inc", Doc: "increment the counter"},
		{Name: "read", Doc: "read the current count"},
	}
}

// Options implements kind.Driver.
func (counterDriver) Options() kind.Options { return kind.Options{} }

// Validate implements kind.Driver.
func (counterDriver) Validate(req kind.Request) error {
	switch req.Op {
	case "inc", "read":
		return nil
	}
	return kind.NotFound("counter has no operation %q (want inc or read)", req.Op)
}

// Probe implements kind.Prober.
func (counterDriver) Probe() kind.Request { return kind.Request{Op: "inc"} }

// New implements kind.Driver.
func (counterDriver) New(env kind.Env) (kind.Instance, error) {
	inst := &counterInstance{pooled: slmem.NewCounter(env.Procs).Pooled(env.Pool)}
	inst.inc = counterInc{inst.pooled.Unpooled()}
	inst.read = counterRead{inst.pooled.Unpooled()}
	return inst, nil
}

// counterInstance caches one Compiled per operandless op so compiling the
// hot inc/read path allocates nothing.
type counterInstance struct {
	pooled *slmem.PooledCounter
	inc    counterInc
	read   counterRead
}

// Compile implements kind.Instance.
func (c *counterInstance) Compile(req kind.Request) (kind.Compiled, error) {
	switch req.Op {
	case "inc":
		return c.inc, nil
	case "read":
		return c.read, nil
	}
	return nil, kind.NotFound("counter has no operation %q (want inc or read)", req.Op)
}

// Unwrap implements kind.Unwrapper.
func (c *counterInstance) Unwrap() any { return c.pooled }

// counterInc is the compiled inc op.
type counterInc struct{ c *slmem.Counter }

// Run implements kind.Compiled.
func (op counterInc) Run(pid int) (kind.Result, error) {
	op.c.Inc(pid)
	return kind.Result{}, nil
}

// counterRead is the compiled read op.
type counterRead struct{ c *slmem.Counter }

// Run implements kind.Compiled.
func (op counterRead) Run(pid int) (kind.Result, error) {
	return kind.Result{Value: strconv.FormatUint(op.c.Read(pid), 10)}, nil
}

// --- maxreg ------------------------------------------------------------------

type maxregDriver struct{}

// Kind implements kind.Driver.
func (maxregDriver) Kind() string { return "maxreg" }

// Doc implements kind.Driver.
func (maxregDriver) Doc() string {
	return "strongly linearizable max-register derived from the snapshot (paper Section 4.5)"
}

// Ops implements kind.Driver.
func (maxregDriver) Ops() []kind.OpInfo {
	return []kind.OpInfo{
		{Name: "write", Doc: "raise the register to value if it exceeds the current maximum"},
		{Name: "read", Doc: "read the largest value ever written"},
	}
}

// Options implements kind.Driver.
func (maxregDriver) Options() kind.Options { return kind.Options{} }

// parseMaxreg validates op + operand, returning the parsed value for write.
func parseMaxreg(req kind.Request) (uint64, error) {
	switch req.Op {
	case "write":
		v, err := strconv.ParseUint(req.Value, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("maxreg write needs a decimal value: %v", err)
		}
		return v, nil
	case "read":
		return 0, nil
	}
	return 0, kind.NotFound("maxreg has no operation %q (want write or read)", req.Op)
}

// Validate implements kind.Driver.
func (maxregDriver) Validate(req kind.Request) error {
	_, err := parseMaxreg(req)
	return err
}

// Probe implements kind.Prober.
func (maxregDriver) Probe() kind.Request { return kind.Request{Op: "write", Value: "1"} }

// New implements kind.Driver.
func (maxregDriver) New(env kind.Env) (kind.Instance, error) {
	inst := &maxregInstance{pooled: slmem.NewMaxRegister(env.Procs).Pooled(env.Pool)}
	inst.read = maxregRead{inst.pooled.Unpooled()}
	return inst, nil
}

type maxregInstance struct {
	pooled *slmem.PooledMaxRegister
	read   maxregRead
}

// Compile implements kind.Instance.
func (m *maxregInstance) Compile(req kind.Request) (kind.Compiled, error) {
	v, err := parseMaxreg(req)
	if err != nil {
		return nil, err
	}
	if req.Op == "read" {
		return m.read, nil
	}
	return maxregWrite{m.pooled.Unpooled(), v}, nil
}

// Unwrap implements kind.Unwrapper.
func (m *maxregInstance) Unwrap() any { return m.pooled }

// maxregWrite is the compiled write op with its parsed operand.
type maxregWrite struct {
	m *slmem.MaxRegister
	v uint64
}

// Run implements kind.Compiled.
func (op maxregWrite) Run(pid int) (kind.Result, error) {
	op.m.MaxWrite(pid, op.v)
	return kind.Result{}, nil
}

// maxregRead is the compiled read op.
type maxregRead struct{ m *slmem.MaxRegister }

// Run implements kind.Compiled.
func (op maxregRead) Run(pid int) (kind.Result, error) {
	return kind.Result{Value: strconv.FormatUint(op.m.MaxRead(pid), 10)}, nil
}

// --- snapshot ----------------------------------------------------------------

type snapshotDriver struct{}

// Kind implements kind.Driver.
func (snapshotDriver) Kind() string { return "snapshot" }

// Doc implements kind.Driver.
func (snapshotDriver) Doc() string {
	return "the paper's bounded-space strongly linearizable single-writer snapshot (Algorithm 3)"
}

// Ops implements kind.Driver.
func (snapshotDriver) Ops() []kind.OpInfo {
	return []kind.OpInfo{
		{Name: "update", Doc: "set the leased pid's component to value"},
		{Name: "scan", Doc: "read a consistent view of all components"},
	}
}

// Options implements kind.Driver.
func (snapshotDriver) Options() kind.Options { return kind.Options{} }

// Validate implements kind.Driver.
func (snapshotDriver) Validate(req kind.Request) error {
	switch req.Op {
	case "update", "scan":
		return nil
	}
	return kind.NotFound("snapshot has no operation %q (want update or scan)", req.Op)
}

// Probe implements kind.Prober.
func (snapshotDriver) Probe() kind.Request { return kind.Request{Op: "update", Value: "probe"} }

// New implements kind.Driver.
func (snapshotDriver) New(env kind.Env) (kind.Instance, error) {
	inst := &snapshotInstance{pooled: slmem.NewSnapshot[string](env.Procs, "").Pooled(env.Pool)}
	inst.scan = snapshotScan{inst.pooled.Unpooled()}
	return inst, nil
}

type snapshotInstance struct {
	pooled *slmem.Pool[string]
	scan   snapshotScan
}

// Compile implements kind.Instance.
func (s *snapshotInstance) Compile(req kind.Request) (kind.Compiled, error) {
	switch req.Op {
	case "update":
		return snapshotUpdate{s.pooled.Unpooled(), req.Value}, nil
	case "scan":
		return s.scan, nil
	}
	return nil, kind.NotFound("snapshot has no operation %q (want update or scan)", req.Op)
}

// Unwrap implements kind.Unwrapper.
func (s *snapshotInstance) Unwrap() any { return s.pooled }

// snapshotUpdate is the compiled update op with its operand.
type snapshotUpdate struct {
	s *slmem.Snapshot[string]
	x string
}

// Run implements kind.Compiled.
func (op snapshotUpdate) Run(pid int) (kind.Result, error) {
	op.s.Update(pid, op.x)
	return kind.Result{}, nil
}

// snapshotScan is the compiled scan op.
type snapshotScan struct{ s *slmem.Snapshot[string] }

// Run implements kind.Compiled.
func (op snapshotScan) Run(pid int) (kind.Result, error) {
	return kind.Result{View: op.s.Scan(pid)}, nil
}

// --- universal object --------------------------------------------------------

type objectDriver struct{}

// Kind implements kind.Driver.
func (objectDriver) Kind() string { return "object" }

// Doc implements kind.Driver.
func (objectDriver) Doc() string {
	return "Aspnes–Herlihy universal construction over a simple type (paper Theorem 3)"
}

// Ops implements kind.Driver.
func (objectDriver) Ops() []kind.OpInfo {
	return []kind.OpInfo{
		{Name: "execute", Doc: "run one invocation (type + invocation fields) against the object"},
	}
}

// Options implements kind.Driver: universal objects truncate their history
// with the default collection window, so a long-lived instance's memory is
// bounded by its process count and window rather than its operation count.
func (objectDriver) Options() kind.Options {
	return kind.Options{GCWindow: slmem.DefaultObjectGCWindow}
}

// Validate implements kind.Driver: reject unknown ops, unknown types, and
// malformed invocations before any object exists.
func (objectDriver) Validate(req kind.Request) error {
	if req.Op != "execute" {
		return kind.NotFound("object has no operation %q (want execute)", req.Op)
	}
	return ValidateInvocation(req.Type, req.Invocation)
}

// Probe implements kind.Prober.
func (objectDriver) Probe() kind.Request {
	return kind.Request{Op: "execute", Type: "accumulator", Invocation: "addTo(1)"}
}

// ProbeGrowth implements kind.GrowthProber: the universal construction's
// precedence graph used to keep every executed operation, making this the
// canonical growth probe; with history truncation enabled by default
// (Options.GCWindow) the live node count is bounded, so the probe measures
// a steady per-op cost. The method stays so the flag's reasoning is
// recorded next to the driver.
func (objectDriver) ProbeGrowth() bool { return false }

// New implements kind.Driver: the creating request's Type parameterizes the
// instance, and history truncation is enabled with the driver's GCWindow.
func (d objectDriver) New(env kind.Env) (kind.Instance, error) {
	t, err := ObjectType(env.Req.Type)
	if err != nil {
		return nil, err
	}
	obj := slmem.NewObject(t, env.Procs)
	if w := d.Options().GCWindow; w > 0 {
		obj.SetGC(slmem.ObjectGCOptions{Window: w})
	}
	return &objectInstance{
		typeName: env.Req.Type,
		pooled:   obj.Pooled(env.Pool),
	}, nil
}

type objectInstance struct {
	typeName string
	pooled   *slmem.PooledObject
}

// BeginBatch implements kind.Batcher: defer the replay cache's durable
// re-anchor for pid until EndBatch, so a batch of executes re-anchors once.
func (o *objectInstance) BeginBatch(pid int) { o.pooled.Unpooled().BeginBatch(pid) }

// EndBatch implements kind.Batcher.
func (o *objectInstance) EndBatch(pid int) { o.pooled.Unpooled().EndBatch(pid) }

// Compile implements kind.Instance. Addressing an existing object with a
// different type is a conflict (HTTP 409), checked here so it also fires
// between two ops of one batch.
func (o *objectInstance) Compile(req kind.Request) (kind.Compiled, error) {
	if req.Op != "execute" {
		return nil, kind.NotFound("object has no operation %q (want execute)", req.Op)
	}
	if req.Type != o.typeName {
		return nil, kind.Conflict("object already exists with type %q, not %q", o.typeName, req.Type)
	}
	if err := ValidateInvocation(req.Type, req.Invocation); err != nil {
		return nil, err
	}
	return objectExecute{o.pooled.Unpooled(), req.Invocation}, nil
}

// Unwrap implements kind.Unwrapper.
func (o *objectInstance) Unwrap() any { return o.pooled }

// TypeName implements kind.TypeNamer.
func (o *objectInstance) TypeName() string { return o.typeName }

// objectExecute is the compiled execute op with its invocation.
type objectExecute struct {
	o   *slmem.Object
	inv string
}

// Run implements kind.Compiled.
func (op objectExecute) Run(pid int) (kind.Result, error) {
	v, err := op.o.Execute(pid, op.inv)
	return kind.Result{Value: v}, err
}
