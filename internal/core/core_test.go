package core

import (
	"fmt"
	"strconv"
	"testing"
	"testing/quick"

	"slmem/internal/aba"
	"slmem/internal/lincheck"
	"slmem/internal/memory"
	"slmem/internal/sched"
	"slmem/internal/snapshot"
	"slmem/internal/spec"
)

// slsnapshot abstracts Algorithm 3 and Algorithm 4 for shared tests.
type slsnapshot interface {
	Update(p int, x string)
	Scan(p int) []string
	Stats() *Stats
}

func implementations(alloc memory.Allocator, n int) map[string]slsnapshot {
	return map[string]slsnapshot{
		"alg3": New[string](alloc, n, spec.Bot),
		"alg4": NewSeq[string](alloc, n, spec.Bot),
	}
}

func TestSequentialSemantics(t *testing.T) {
	const n = 3
	for name := range implementations(&memory.NativeAllocator{}, n) {
		name := name
		t.Run(name, func(t *testing.T) {
			var alloc memory.NativeAllocator
			s := implementations(&alloc, n)[name]

			for i, v := range s.Scan(0) {
				if v != spec.Bot {
					t.Errorf("initial component %d = %q", i, v)
				}
			}
			s.Update(1, "x")
			s.Update(2, "y")
			s.Update(1, "z")
			got := spec.FormatView(s.Scan(0))
			want := "[" + spec.Bot + " z y]"
			if got != want {
				t.Errorf("scan = %s, want %s", got, want)
			}
		})
	}
}

func TestSequentialRandomAgainstSpec(t *testing.T) {
	const n = 3
	for name := range implementations(&memory.NativeAllocator{}, n) {
		name := name
		t.Run(name, func(t *testing.T) {
			f := func(script []uint8) bool {
				var alloc memory.NativeAllocator
				s := implementations(&alloc, n)[name]
				sp := spec.Snapshot{N: n}
				state := sp.Initial()
				for i, b := range script {
					pid := int(b) % n
					if b%2 == 0 {
						x := fmt.Sprintf("v%d", i)
						s.Update(pid, x)
						state, _, _ = sp.Apply(state, pid, spec.FormatInvocation("update", x))
					} else {
						got := spec.FormatView(s.Scan(pid))
						_, want, _ := sp.Apply(state, pid, "scan()")
						if got != want {
							return false
						}
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestScanReturnsCopy(t *testing.T) {
	var alloc memory.NativeAllocator
	s := New[string](&alloc, 2, spec.Bot)
	s.Update(0, "a")
	v := s.Scan(0)
	v[0] = "mutated"
	if s.Scan(0)[0] != "a" {
		t.Error("Scan result shares storage with the object")
	}
}

// simSystem: odd pids update, even pids scan.
func simSystem(name string, n, updates, scans int) sched.System {
	return sched.System{
		N: n,
		Setup: func(env *sched.Env) []sched.Program {
			s := implementations(env, n)[name]
			progs := make([]sched.Program, n)
			for pid := 0; pid < n; pid++ {
				pid := pid
				if pid%2 == 1 {
					progs[pid] = func(p *sched.Proc) {
						for i := 0; i < updates; i++ {
							x := fmt.Sprintf("u%d.%d", pid, i)
							p.Do(spec.FormatInvocation("update", x), func() string {
								s.Update(pid, x)
								return "ok"
							})
						}
					}
				} else {
					progs[pid] = func(p *sched.Proc) {
						for i := 0; i < scans; i++ {
							p.Do("scan()", func() string {
								return spec.FormatView(s.Scan(pid))
							})
						}
					}
				}
			}
			return progs
		},
	}
}

func TestLinearizableUnderRandomSchedules(t *testing.T) {
	for _, name := range []string{"alg3", "alg4"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < 20; seed++ {
				res := sched.Run(simSystem(name, 3, 2, 2), sched.NewSeeded(seed), sched.Options{})
				if !res.Completed() {
					t.Fatalf("seed %d: incomplete: %v", seed, res.Err)
				}
				chk, err := lincheck.CheckTranscript(res.T, spec.Snapshot{N: 3})
				if err != nil {
					t.Fatal(err)
				}
				if !chk.Ok {
					t.Fatalf("seed %d: not linearizable:\n%s", seed, res.T.Interpreted())
				}
			}
		})
	}
}

func TestStrongChainMonitor(t *testing.T) {
	for _, name := range []string{"alg3", "alg4"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < 12; seed++ {
				res := sched.Run(simSystem(name, 2, 2, 2), sched.NewSeeded(seed), sched.Options{})
				if !res.Completed() {
					t.Fatalf("seed %d: incomplete: %v", seed, res.Err)
				}
				chk, err := lincheck.CheckChain(res.T, spec.Snapshot{N: 2})
				if err != nil {
					t.Fatal(err)
				}
				if !chk.Ok {
					t.Fatalf("seed %d: no monotone linearization (fail at %s)", seed, chk.FailNode)
				}
			}
		})
	}
}

// TestStrongBranchingTrees: the composed snapshot must admit a prefix-
// preserving linearization function on randomly sampled branching trees.
func TestStrongBranchingTrees(t *testing.T) {
	sys := simSystem("alg3", 2, 2, 2)
	for seed := int64(0); seed < 10; seed++ {
		tree, err := randomBranchTree(sys, seed, 10, 3)
		if err != nil {
			t.Fatal(err)
		}
		res, err := lincheck.CheckStrong(lincheck.FromSchedTree(tree), spec.Snapshot{N: 2})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Ok {
			t.Fatalf("seed %d: strong-linearizability tree check failed at %s", seed, res.FailNode)
		}
	}
}

func randomBranchTree(sys sched.System, seed int64, prefixLen, fanout int) (*sched.TreeNode, error) {
	probe := sched.Run(sys, sched.NewSeeded(seed), sched.Options{})
	prefix := probe.Schedule
	if len(prefix) > prefixLen {
		prefix = prefix[:prefixLen]
	}
	conts := make([][]int, 0, fanout)
	for f := 0; f < fanout; f++ {
		adv := sched.NewChain(sched.NewScript(prefix...), sched.NewSeeded(seed*131+int64(f)))
		res := sched.Run(sys, adv, sched.Options{})
		if res.Err != nil {
			return nil, res.Err
		}
		conts = append(conts, res.Schedule[len(prefix):])
	}
	return sched.PrefixTree(sys, prefix, conts, sched.Options{})
}

// --- Theorem 32(a) and the contention-free fast path ----------------------------

func TestUpdateBaseOpCounts(t *testing.T) {
	// Theorem 32(a): each SLupdate performs at most one S.update, one
	// S.scan, and one R.DWrite — here exactly one of each.
	var alloc memory.NativeAllocator
	s := New[string](&alloc, 3, spec.Bot)
	const k = 10
	for i := 0; i < k; i++ {
		s.Update(0, strconv.Itoa(i))
	}
	st := s.Stats()
	if st.SUpdates.Load() != k || st.SScans.Load() != k || st.RDWrites.Load() != k {
		t.Errorf("counts = (%d updates, %d scans, %d dwrites), want %d each",
			st.SUpdates.Load(), st.SScans.Load(), st.RDWrites.Load(), k)
	}
	if st.RDReads.Load() != 0 {
		t.Errorf("SLupdate performed %d DReads, want 0", st.RDReads.Load())
	}
}

func TestSoloScanFastPath(t *testing.T) {
	// Contention-free SLscan: exactly one loop iteration — one S.scan and
	// two R.DReads, no helping writes (Section 4.5 remarks).
	for name := range implementations(&memory.NativeAllocator{}, 2) {
		name := name
		t.Run(name, func(t *testing.T) {
			var alloc memory.NativeAllocator
			s := implementations(&alloc, 2)[name]
			s.Update(0, "a")
			before := s.Stats().OpsInScan.Load()
			s.Scan(1)
			delta := s.Stats().OpsInScan.Load() - before
			if delta != 3 {
				t.Errorf("solo scan issued %d base ops, want 3", delta)
			}
			if got := s.Stats().MaxScanIters.Load(); got != 1 {
				t.Errorf("solo scan took %d iterations, want 1", got)
			}
		})
	}
}

func TestHelpingPublishesToR(t *testing.T) {
	// If R and S disagree when a scan starts, the scanner must help by
	// writing its S-scan to R. Build the disagreement with an injected
	// test-double R whose content lags S.
	var alloc memory.NativeAllocator
	s := New[string](&alloc, 2, spec.Bot)
	s.Update(0, "a") // brings S and R in sync

	// Make R lag behind S by writing a stale view directly into R.
	s.r.DWrite(1, []string{spec.Bot, spec.Bot})

	before := s.Stats().RDWrites.Load()
	got := s.Scan(1)
	if got[0] != "a" {
		t.Fatalf("scan = %v, want component 0 = a", got)
	}
	if s.Stats().RDWrites.Load() == before {
		t.Error("scan observed R≠S but did not help (no R.DWrite)")
	}
}

// --- Derived counter and max-register -------------------------------------------

func TestCounterSequential(t *testing.T) {
	var alloc memory.NativeAllocator
	c := NewCounter(&alloc, 3)
	if got := c.Read(0); got != 0 {
		t.Errorf("initial Read = %d", got)
	}
	c.Inc(0)
	c.Inc(1)
	c.Inc(0)
	if got := c.Read(2); got != 3 {
		t.Errorf("Read = %d, want 3", got)
	}
}

func TestCounterSimLinearizable(t *testing.T) {
	sys := sched.System{
		N: 3,
		Setup: func(env *sched.Env) []sched.Program {
			c := NewCounter(env, 3)
			progs := make([]sched.Program, 3)
			for pid := 0; pid < 3; pid++ {
				pid := pid
				progs[pid] = func(p *sched.Proc) {
					p.Do("inc()", func() string { c.Inc(pid); return "ok" })
					p.Do("read()", func() string {
						return strconv.FormatUint(c.Read(pid), 10)
					})
				}
			}
			return progs
		},
	}
	for seed := int64(0); seed < 15; seed++ {
		res := sched.Run(sys, sched.NewSeeded(seed), sched.Options{})
		if !res.Completed() {
			t.Fatalf("seed %d: incomplete: %v", seed, res.Err)
		}
		chk, err := lincheck.CheckTranscript(res.T, spec.Counter{})
		if err != nil {
			t.Fatal(err)
		}
		if !chk.Ok {
			t.Fatalf("seed %d: counter not linearizable:\n%s", seed, res.T.Interpreted())
		}
	}
}

func TestMaxRegisterSequential(t *testing.T) {
	var alloc memory.NativeAllocator
	m := NewMaxRegister(&alloc, 2)
	if got := m.MaxRead(0); got != 0 {
		t.Errorf("initial MaxRead = %d", got)
	}
	m.MaxWrite(0, 5)
	m.MaxWrite(1, 3)
	if got := m.MaxRead(0); got != 5 {
		t.Errorf("MaxRead = %d, want 5", got)
	}
	m.MaxWrite(1, 9)
	if got := m.MaxRead(0); got != 9 {
		t.Errorf("MaxRead = %d, want 9", got)
	}
}

func TestMaxRegisterNoOpWritesAreFree(t *testing.T) {
	var alloc memory.NativeAllocator
	m := NewMaxRegister(&alloc, 2)
	m.MaxWrite(0, 10)
	before := m.Stats().SUpdates.Load()
	m.MaxWrite(0, 3) // does not raise the max
	m.MaxWrite(0, 10)
	if m.Stats().SUpdates.Load() != before {
		t.Error("non-raising MaxWrite performed shared work")
	}
}

func TestMaxRegisterSimLinearizable(t *testing.T) {
	sys := sched.System{
		N: 2,
		Setup: func(env *sched.Env) []sched.Program {
			m := NewMaxRegister(env, 2)
			return []sched.Program{
				func(p *sched.Proc) {
					for _, v := range []uint64{3, 1, 7} {
						v := v
						p.Do(spec.FormatInvocation("maxWrite", strconv.FormatUint(v, 10)), func() string {
							m.MaxWrite(0, v)
							return "ok"
						})
					}
				},
				func(p *sched.Proc) {
					for i := 0; i < 3; i++ {
						p.Do("maxRead()", func() string {
							return strconv.FormatUint(m.MaxRead(1), 10)
						})
					}
				},
			}
		},
	}
	for seed := int64(0); seed < 15; seed++ {
		res := sched.Run(sys, sched.NewSeeded(seed), sched.Options{})
		if !res.Completed() {
			t.Fatalf("seed %d: incomplete: %v", seed, res.Err)
		}
		chk, err := lincheck.CheckTranscript(res.T, spec.MaxRegister{})
		if err != nil {
			t.Fatal(err)
		}
		if !chk.Ok {
			t.Fatalf("seed %d: max-register not linearizable:\n%s", seed, res.T.Interpreted())
		}
	}
}

// TestVals and TestSeq cover the Algorithm 4 view helpers.
func TestValsAndSeq(t *testing.T) {
	view := []SeqCell[string]{{Val: "a", Seq: 2}, {Val: "b", Seq: 5}}
	if got := spec.FormatView(Vals(view)); got != "[a b]" {
		t.Errorf("Vals = %s", got)
	}
	if got := Seq(view); got != 7 {
		t.Errorf("Seq = %d, want 7", got)
	}
}

// TestSeqIncrementsPerUpdate: Algorithm 4 line 55 — each update by p
// increments p's sequence number exactly once (white box).
func TestSeqIncrementsPerUpdate(t *testing.T) {
	var alloc memory.NativeAllocator
	s := NewSeq[string](&alloc, 2, spec.Bot)
	for i := 1; i <= 5; i++ {
		s.Update(0, strconv.Itoa(i))
		if s.seq[0] != uint64(i) {
			t.Fatalf("after %d updates seq[0] = %d", i, s.seq[0])
		}
	}
	if s.seq[1] != 0 {
		t.Errorf("seq[1] = %d, want 0", s.seq[1])
	}
}

// TestInjectedSubstrates: NewWith composes over caller-provided substrates;
// the composition must behave identically with the wait-free Afek snapshot
// as S.
func TestInjectedSubstrates(t *testing.T) {
	var alloc memory.NativeAllocator
	n := 3
	initView := make([]string, n)
	for i := range initView {
		initView[i] = spec.Bot
	}
	s := NewWith[string](n,
		snapshot.NewAfek[string](&alloc, n, spec.Bot),
		aba.NewStrongFunc(&alloc, n, initView, viewsEqual[string]),
	)
	s.Update(0, "a")
	s.Update(2, "c")
	if got := spec.FormatView(s.Scan(1)); got != "[a "+spec.Bot+" c]" {
		t.Errorf("scan = %s", got)
	}
}
