package core

import (
	"fmt"
	"testing"

	"slmem/internal/aba"
	"slmem/internal/lincheck"
	"slmem/internal/memory"
	"slmem/internal/sched"
	"slmem/internal/snapshot"
	"slmem/internal/spec"
)

// newFullyBounded composes Algorithm 3 over the bounded handshake snapshot
// and the strongly linearizable ABA register: every register in the whole
// object holds bounded state and the register count is fixed at
// construction — the full Theorem 2 story with a concrete bounded substrate.
func newFullyBounded(alloc memory.Allocator, n int) *Snapshot[string] {
	s := snapshot.NewHandshake[string](alloc, n, spec.Bot)
	initView := make([]string, n)
	for i := range initView {
		initView[i] = spec.Bot
	}
	r := aba.NewStrongFunc(alloc, n, initView, viewsEqual[string])
	return NewWith[string](n, s, r)
}

func TestFullyBoundedComposition(t *testing.T) {
	var alloc memory.NativeAllocator
	s := newFullyBounded(&alloc, 3)
	base := alloc.Registers()

	// Exercise heavily; the footprint must not move.
	for i := 0; i < 200; i++ {
		s.Update(i%3, fmt.Sprintf("v%d", i))
		if i%5 == 0 {
			s.Scan((i + 1) % 3)
		}
	}
	if got := alloc.Registers(); got != base {
		t.Errorf("registers grew %d -> %d under a fully bounded composition", base, got)
	}

	got := spec.FormatView(s.Scan(0))
	want := "[v198 v199 v197]"
	if got != want {
		t.Errorf("final scan = %s, want %s", got, want)
	}
}

func TestFullyBoundedRegisterBudget(t *testing.T) {
	// Theorem 2 shape: O(n) value registers plus the substrate's O(n²)
	// handshake bits. Verify the exact budget so regressions are loud:
	// handshake substrate: n + 2n²; ABA register: 1 + n.
	for _, n := range []int{2, 4, 8} {
		var alloc memory.NativeAllocator
		newFullyBounded(&alloc, n)
		want := (n + 2*n*n) + (1 + n)
		if got := alloc.Registers(); got != want {
			t.Errorf("n=%d: registers = %d, want %d", n, got, want)
		}
	}
}

func TestFullyBoundedLinearizable(t *testing.T) {
	sys := sched.System{
		N: 3,
		Setup: func(env *sched.Env) []sched.Program {
			s := newFullyBounded(env, 3)
			progs := make([]sched.Program, 3)
			for pid := 0; pid < 3; pid++ {
				pid := pid
				if pid == 0 {
					progs[pid] = func(p *sched.Proc) {
						for i := 0; i < 2; i++ {
							p.Do("scan()", func() string {
								return spec.FormatView(s.Scan(0))
							})
						}
					}
				} else {
					progs[pid] = func(p *sched.Proc) {
						for i := 0; i < 2; i++ {
							x := fmt.Sprintf("u%d.%d", pid, i)
							p.Do(spec.FormatInvocation("update", x), func() string {
								s.Update(pid, x)
								return "ok"
							})
						}
					}
				}
			}
			return progs
		},
	}
	for seed := int64(0); seed < 20; seed++ {
		res := sched.Run(sys, sched.NewSeeded(seed), sched.Options{})
		if !res.Completed() {
			t.Fatalf("seed %d: incomplete: %v", seed, res.Err)
		}
		chk, err := lincheck.CheckTranscript(res.T, spec.Snapshot{N: 3})
		if err != nil {
			t.Fatal(err)
		}
		if !chk.Ok {
			t.Fatalf("seed %d: not linearizable:\n%s", seed, res.T.Interpreted())
		}
	}
}

func TestFullyBoundedChainMonitor(t *testing.T) {
	sys := sched.System{
		N: 2,
		Setup: func(env *sched.Env) []sched.Program {
			s := newFullyBounded(env, 2)
			return []sched.Program{
				func(p *sched.Proc) {
					for i := 0; i < 2; i++ {
						p.Do("scan()", func() string {
							return spec.FormatView(s.Scan(0))
						})
					}
				},
				func(p *sched.Proc) {
					for i := 0; i < 2; i++ {
						x := fmt.Sprintf("u%d", i)
						p.Do(spec.FormatInvocation("update", x), func() string {
							s.Update(1, x)
							return "ok"
						})
					}
				},
			}
		},
	}
	for seed := int64(0); seed < 10; seed++ {
		res := sched.Run(sys, sched.NewSeeded(seed), sched.Options{})
		if !res.Completed() {
			t.Fatalf("seed %d: incomplete: %v", seed, res.Err)
		}
		chk, err := lincheck.CheckChain(res.T, spec.Snapshot{N: 2})
		if err != nil {
			t.Fatal(err)
		}
		if !chk.Ok {
			t.Fatalf("seed %d: chain check failed at %s", seed, chk.FailNode)
		}
	}
}
