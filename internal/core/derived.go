package core

import (
	"slmem/internal/memory"
)

// Counter is a lock-free strongly linearizable counter derived from the
// strongly linearizable snapshot (paper Section 4.5): component p holds the
// number of increments by process p, and a read sums the components.
//
// As the paper notes, the counter still stores unbounded values, but it uses
// a bounded number of registers — previously strongly linearizable counters
// required unboundedly many.
type Counter struct {
	snap  *Snapshot[uint64]
	count []uint64 // local increment counts, one slot per process
}

// NewCounter constructs a counter for n processes.
func NewCounter(alloc memory.Allocator, n int) *Counter {
	return &Counter{
		snap:  New[uint64](alloc, n, 0),
		count: make([]uint64, n),
	}
}

// Inc increments the counter as process p.
func (c *Counter) Inc(p int) {
	c.count[p]++
	c.snap.Update(p, c.count[p])
}

// Read returns the current count as process p.
func (c *Counter) Read(p int) uint64 {
	var sum uint64
	for _, v := range c.snap.Scan(p) {
		sum += v
	}
	return sum
}

// Stats returns the underlying snapshot's base-object operation counters.
func (c *Counter) Stats() *Stats { return c.snap.Stats() }

// MaxRegister is a lock-free strongly linearizable unbounded max-register
// derived from the strongly linearizable snapshot (paper Section 4.5):
// component p holds the largest value written by process p, and a read takes
// the maximum of the components.
type MaxRegister struct {
	snap  *Snapshot[uint64]
	local []uint64 // largest value each process has written
}

// NewMaxRegister constructs a max-register for n processes, initially 0.
func NewMaxRegister(alloc memory.Allocator, n int) *MaxRegister {
	return &MaxRegister{
		snap:  New[uint64](alloc, n, 0),
		local: make([]uint64, n),
	}
}

// MaxWrite raises the register to v if v exceeds its current value, as
// process p. Writes not exceeding the process's own prior maximum are
// no-ops with zero shared steps.
func (m *MaxRegister) MaxWrite(p int, v uint64) {
	if v <= m.local[p] {
		return
	}
	m.local[p] = v
	m.snap.Update(p, v)
}

// MaxRead returns the largest value ever written, as process p.
func (m *MaxRegister) MaxRead(p int) uint64 {
	var max uint64
	for _, v := range m.snap.Scan(p) {
		if v > max {
			max = v
		}
	}
	return max
}

// Stats returns the underlying snapshot's base-object operation counters.
func (m *MaxRegister) Stats() *Stats { return m.snap.Stats() }
