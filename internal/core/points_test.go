package core

import (
	"sort"
	"strings"
	"testing"

	"slmem/internal/sched"
	"slmem/internal/spec"
	"slmem/internal/trace"
)

// TestPaperLinearizationPointsR validates the paper's linearization-point
// construction for Algorithm 3 (Section 4.3, rules R-1/R-2 and tie-breaks
// U-1..U-3) on real transcripts:
//
//	R-1: an SLscan linearizes at its final shared step (its last R.DRead);
//	R-2: an SLupdate of x by p linearizes at the earliest of (a) the first
//	     SLscan point after its invocation whose returned vector carries x
//	     in entry p, and (b) its own R.DWrite.
//
// Ordering all operations by those points (updates before scans on ties,
// pid order within a kind) must produce a valid sequential snapshot
// history — the operational content of Lemmas 20-22 and Theorem 25.
func TestPaperLinearizationPointsR(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		res := sched.Run(simSystem("alg3", 3, 3, 3), sched.NewSeeded(seed), sched.Options{})
		if !res.Completed() {
			t.Fatalf("seed %d: incomplete: %v", seed, res.Err)
		}
		validateSnapshotPoints(t, seed, res.T, 3)
	}
	// Scanner-storm runs force helping writes and long scans.
	res := sched.Run(simSystem("alg3", 2, 6, 3),
		&sched.Storm{IsVictim: func(pid int) bool { return pid%2 == 0 }, Period: 6}, sched.Options{})
	if !res.Completed() {
		t.Fatalf("storm: incomplete: %v", res.Err)
	}
	validateSnapshotPoints(t, -1, res.T, 2)
}

func validateSnapshotPoints(t *testing.T, seed int64, tr *trace.Transcript, n int) {
	t.Helper()
	h := tr.Interpreted()

	type pointed struct {
		op       trace.Operation
		pt       int
		isUpdate bool
	}

	// Scans first: pt = last shared step; remember parsed views.
	type scanInfo struct {
		pt   int
		view []string
	}
	var scans []scanInfo
	var seq []pointed
	for _, op := range h.Ops {
		if !op.Complete() || op.Desc != "scan()" {
			continue
		}
		pt := -1
		for i := op.Inv; i <= op.Ret; i++ {
			e := tr.Events[i]
			if e.OpID == op.OpID && (e.Kind == trace.KindRead || e.Kind == trace.KindWrite) {
				pt = i
			}
		}
		if pt < 0 {
			t.Fatalf("seed %d: scan %s performed no shared steps", seed, op)
		}
		view := parseView(op.Res)
		if len(view) != n {
			t.Fatalf("seed %d: scan view %q has %d entries, want %d", seed, op.Res, len(view), n)
		}
		scans = append(scans, scanInfo{pt: pt, view: view})
		seq = append(seq, pointed{op: op, pt: pt})
	}

	// Updates: pt = min(own R.DWrite point, earliest carrying scan point).
	for _, op := range h.Ops {
		if !op.Complete() || !strings.HasPrefix(op.Desc, "update(") {
			continue
		}
		_, args, err := spec.ParseInvocation(op.Desc)
		if err != nil || len(args) != 1 {
			t.Fatalf("seed %d: bad update desc %q", seed, op.Desc)
		}
		x := args[0]

		own := -1
		for i := op.Inv; i <= op.Ret; i++ {
			e := tr.Events[i]
			if e.OpID == op.OpID && e.Kind == trace.KindWrite && strings.HasPrefix(e.Reg, "aba.X") {
				own = i // the R.DWrite's linearization (write to R's X)
			}
		}
		if own < 0 {
			t.Fatalf("seed %d: update %s never wrote R", seed, op)
		}
		pt := own
		for _, sc := range scans {
			if sc.pt > op.Inv && sc.view[op.PID] == x && sc.pt < pt {
				pt = sc.pt
			}
		}
		seq = append(seq, pointed{op: op, pt: pt, isUpdate: true})
	}

	// Order by point; U-3: updates precede scans at equal points; U-2: pid
	// order within a kind.
	sort.Slice(seq, func(i, j int) bool {
		a, b := seq[i], seq[j]
		if a.pt != b.pt {
			return a.pt < b.pt
		}
		if a.isUpdate != b.isUpdate {
			return a.isUpdate
		}
		return a.op.PID < b.op.PID
	})

	sp := spec.Snapshot{N: n}
	state := sp.Initial()
	for _, pc := range seq {
		next, want, err := sp.Apply(state, pc.op.PID, pc.op.Desc)
		if err != nil {
			t.Fatal(err)
		}
		if pc.op.Res != want {
			t.Fatalf("seed %d: paper linearization invalid at %s:\nrecorded %s, spec says %s",
				seed, pc.op, pc.op.Res, want)
		}
		state = next
	}
}

func parseView(res string) []string {
	trimmed := strings.TrimSuffix(strings.TrimPrefix(res, "["), "]")
	if trimmed == "" {
		return nil
	}
	return strings.Split(trimmed, " ")
}

// TestScanLinearizesAtFinalSharedStep checks R-1's prerequisite: a completed
// SLscan's final shared step is a read of R's X (the last step of its final
// R.DRead on line 49).
func TestScanLinearizesAtFinalSharedStep(t *testing.T) {
	res := sched.Run(simSystem("alg3", 2, 2, 2), sched.NewSeeded(5), sched.Options{})
	if !res.Completed() {
		t.Fatalf("incomplete: %v", res.Err)
	}
	checked := 0
	for _, op := range res.T.Interpreted().Ops {
		if !op.Complete() || op.Desc != "scan()" {
			continue
		}
		last := -1
		for i := op.Inv; i <= op.Ret; i++ {
			e := res.T.Events[i]
			if e.OpID == op.OpID && (e.Kind == trace.KindRead || e.Kind == trace.KindWrite) {
				last = i
			}
		}
		e := res.T.Events[last]
		if e.Kind != trace.KindRead || !strings.HasPrefix(e.Reg, "aba.X") {
			t.Errorf("scan #%d last shared step = %v, want a read of R's X", op.OpID, e)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no scans checked (vacuous)")
	}
}
