// Package core implements the paper's primary contribution: the first
// bounded-space lock-free strongly linearizable single-writer snapshot
// (Section 4, Algorithm 3), its sequence-numbered analysis variant
// (Algorithm 4), and the derived strongly linearizable counter and
// max-register of Section 4.5.
//
// The construction composes two objects:
//
//   - S, any linearizable single-writer snapshot (internal/snapshot), which
//     always holds the most recent state; and
//   - R, a strongly linearizable ABA-detecting register (internal/aba)
//     holding a recently observed view of S.
//
// SLupdate(p, x) updates S, scans it, and publishes the scanned view to R.
// SLscan repeats [R.DRead; S.scan; R.DRead] until all three agree and R was
// quiet, helping laggards by republishing its scan of S whenever it observes
// disagreement. Every SLscan linearizes at its final shared step and every
// SLupdate linearizes when some view containing it reaches R (or at its own
// R.DWrite), which makes the linearization order prefix-preserving
// (Theorem 25). Lock-freedom and the O(s + n³u) total-work bound are
// Theorem 32.
package core

import (
	"fmt"
	"sync/atomic"

	"slmem/internal/aba"
	"slmem/internal/memory"
	"slmem/internal/snapshot"
)

// ABARegister is the interface of the ABA-detecting register R. It is
// satisfied by *aba.Strong (the strongly linearizable implementation the
// construction needs for Theorem 2); tests may inject doubles.
type ABARegister[V any] interface {
	DWrite(p int, v V)
	DRead(q int) (V, bool)
}

// Stats counts base-object operations, supporting the Theorem 32 experiments
// (E3/E4/E8 in DESIGN.md). All fields are safe for concurrent use.
type Stats struct {
	// SUpdates, SScans, RDWrites, RDReads count operations on S and R.
	SUpdates atomic.Int64
	SScans   atomic.Int64
	RDWrites atomic.Int64
	RDReads  atomic.Int64
	// OpsInUpdate and OpsInScan partition the above by whether they were
	// issued during an SLupdate or an SLscan (Theorem 32 bounds the latter).
	OpsInUpdate atomic.Int64
	OpsInScan   atomic.Int64
	// MaxScanIters is the maximum number of main-loop iterations any single
	// SLscan performed (lock-freedom experiments).
	MaxScanIters atomic.Int64
}

func (st *Stats) observeIters(iters int64) {
	for {
		cur := st.MaxScanIters.Load()
		if iters <= cur || st.MaxScanIters.CompareAndSwap(cur, iters) {
			return
		}
	}
}

// TotalScanOps returns the number of base-object operations issued during
// SLscan operations — the quantity Theorem 32(b) bounds by O(s + n³u).
func (st *Stats) TotalScanOps() int64 { return st.OpsInScan.Load() }

// Snapshot is the strongly linearizable snapshot of Algorithm 3. Component p
// is writable only by process p. Views are vectors of V.
//
// Methods take the calling process id; at most one goroutine may drive a
// given pid at a time.
type Snapshot[V comparable] struct {
	n     int
	s     snapshot.Snapshot[V]
	r     ABARegister[[]V]
	stats *Stats
}

// New constructs the snapshot for n processes over comparable values using
// the default substrates: a lock-free double-collect linearizable snapshot
// for S and the strongly linearizable ABA-detecting register (Algorithm 2)
// for R. All components start as initial (the paper's ⊥).
func New[V comparable](alloc memory.Allocator, n int, initial V) *Snapshot[V] {
	s := snapshot.NewDoubleCollect[V](alloc, n, initial)
	initView := make([]V, n)
	for i := range initView {
		initView[i] = initial
	}
	r := aba.NewStrongFunc(alloc, n, initView, viewsEqual[V])
	return NewWith[V](n, s, r)
}

// NewWith constructs the snapshot over explicit substrates. The composition
// is strongly linearizable iff r is (strong linearizability is composable;
// paper Sections 1.1 and 4.3).
func NewWith[V comparable](n int, s snapshot.Snapshot[V], r ABARegister[[]V]) *Snapshot[V] {
	if n < 1 {
		panic(fmt.Sprintf("core: n = %d, need at least 1 process", n))
	}
	return &Snapshot[V]{n: n, s: s, r: r, stats: &Stats{}}
}

// Stats returns the base-object operation counters.
func (o *Snapshot[V]) Stats() *Stats { return o.stats }

// N returns the number of components.
func (o *Snapshot[V]) N() int { return o.n }

func viewsEqual[V comparable](a, b []V) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Update sets component p to x (Algorithm 3, SLupdate, lines 43-45):
// exactly one S.update, one S.scan, and one R.DWrite (Theorem 32a).
func (o *Snapshot[V]) Update(p int, x V) {
	o.s.Update(p, x) // line 43
	o.stats.SUpdates.Add(1)
	s := o.s.Scan(p) // line 44
	o.stats.SScans.Add(1)
	o.r.DWrite(p, s) // line 45
	o.stats.RDWrites.Add(1)
	o.stats.OpsInUpdate.Add(3)
}

// Scan returns a consistent view of all components (Algorithm 3, SLscan,
// lines 46-54). Lock-free: the loop repeats only when a concurrent Update
// or helping write landed.
func (o *Snapshot[V]) Scan(p int) []V {
	var iters int64
	for { // line 46
		iters++
		s1, _ := o.r.DRead(p)  // line 47
		l := o.s.Scan(p)       // line 48
		s2, c2 := o.r.DRead(p) // line 49
		o.stats.RDReads.Add(2)
		o.stats.SScans.Add(1)
		o.stats.OpsInScan.Add(3)

		agree := viewsEqual(s1, l) && viewsEqual(l, s2)
		if !agree { // lines 50-52: help pending updates by publishing l
			o.r.DWrite(p, l)
			o.stats.RDWrites.Add(1)
			o.stats.OpsInScan.Add(1)
			continue
		}
		if c2 { // line 53: R changed during the read sequence; retry
			continue
		}
		o.stats.observeIters(iters)
		out := make([]V, len(s2))
		copy(out, s2) // copy at the boundary; R's stored view is shared
		return out    // line 54
	}
}

// --- Algorithm 4: sequence-numbered variant ------------------------------------

// SeqCell is a component of the Algorithm 4 snapshot: a value paired with
// the writer's per-process sequence number.
type SeqCell[V comparable] struct {
	Val V
	Seq uint64
}

// SeqSnapshot is Algorithm 4: Algorithm 3 with a sequence number attached to
// every update. The paper uses it for the complexity analysis (its seq
// function makes views totally ordered); it performs exactly the same
// shared-memory operations as Algorithm 3 but needs unbounded sequence
// numbers.
type SeqSnapshot[V comparable] struct {
	n     int
	s     snapshot.Snapshot[SeqCell[V]]
	r     ABARegister[[]SeqCell[V]]
	seq   []uint64
	stats *Stats
}

// NewSeq constructs Algorithm 4 with the default substrates.
func NewSeq[V comparable](alloc memory.Allocator, n int, initial V) *SeqSnapshot[V] {
	s := snapshot.NewDoubleCollect[SeqCell[V]](alloc, n, SeqCell[V]{Val: initial})
	initView := make([]SeqCell[V], n)
	for i := range initView {
		initView[i] = SeqCell[V]{Val: initial}
	}
	r := aba.NewStrongFunc(alloc, n, initView, viewsEqual[SeqCell[V]])
	if n < 1 {
		panic(fmt.Sprintf("core: n = %d, need at least 1 process", n))
	}
	return &SeqSnapshot[V]{
		n:     n,
		s:     s,
		r:     r,
		seq:   make([]uint64, n),
		stats: &Stats{},
	}
}

// Stats returns the base-object operation counters.
func (o *SeqSnapshot[V]) Stats() *Stats { return o.stats }

// Vals projects a sequence-numbered view onto its values (the paper's
// vals(X)).
func Vals[V comparable](view []SeqCell[V]) []V {
	out := make([]V, len(view))
	for i, c := range view {
		out[i] = c.Val
	}
	return out
}

// Seq sums the sequence numbers of a view (the paper's seq(X)); it is
// non-decreasing over the linearization order of S's scans (Observation 26).
func Seq[V comparable](view []SeqCell[V]) uint64 {
	var sum uint64
	for _, c := range view {
		sum += c.Seq
	}
	return sum
}

func valsEqual[V comparable](a, b []SeqCell[V]) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Val != b[i].Val {
			return false
		}
	}
	return true
}

// Update sets component p to x (Algorithm 4, lines 55-58).
func (o *SeqSnapshot[V]) Update(p int, x V) {
	o.seq[p]++                                       // line 55
	o.s.Update(p, SeqCell[V]{Val: x, Seq: o.seq[p]}) // line 56
	o.stats.SUpdates.Add(1)
	s := o.s.Scan(p) // line 57
	o.stats.SScans.Add(1)
	o.r.DWrite(p, s) // line 58
	o.stats.RDWrites.Add(1)
	o.stats.OpsInUpdate.Add(3)
}

// Scan returns a consistent view of component values (Algorithm 4, lines
// 59-67). Agreement is on values only (the paper's vals), matching line 63.
func (o *SeqSnapshot[V]) Scan(p int) []V {
	var iters int64
	for { // line 59
		iters++
		s1, _ := o.r.DRead(p)  // line 60
		l := o.s.Scan(p)       // line 61
		s2, c2 := o.r.DRead(p) // line 62
		o.stats.RDReads.Add(2)
		o.stats.SScans.Add(1)
		o.stats.OpsInScan.Add(3)

		agree := valsEqual(s1, l) && valsEqual(l, s2)
		if !agree { // lines 63-65
			o.r.DWrite(p, l)
			o.stats.RDWrites.Add(1)
			o.stats.OpsInScan.Add(1)
			continue
		}
		if c2 { // line 66
			continue
		}
		o.stats.observeIters(iters)
		return Vals(s2) // line 67
	}
}
