// Package memory provides the shared-memory base objects of the paper's
// model: atomic multi-reader multi-writer registers.
//
// Algorithms are written once against the Register interface and an
// Allocator, and run in two modes:
//
//   - native: registers are sync/atomic pointers (a hardware atomic load or
//     store of a pointer is an atomic register), used by examples, soak
//     tests, and benchmarks;
//   - simulated: registers are owned by the deterministic scheduler in
//     internal/sched, where each access is one scheduled step.
//
// Every Register method takes the id of the calling process. Native
// registers ignore it; simulated registers use it to attribute the step and
// to block the caller until the adversary schedules it.
package memory

import (
	"fmt"
	"sync/atomic"
)

// Register is an atomic multi-reader multi-writer register.
//
// Values written to a register must be treated as immutable: the register
// stores them verbatim and may hand the same value to many readers.
type Register interface {
	// Read returns the current value, as a step of process pid.
	Read(pid int) any
	// Write replaces the current value, as a step of process pid.
	Write(pid int, v any)
	// Name returns the register's allocation name (for transcripts).
	Name() string
}

// Allocator creates registers. Implementations count allocations so that
// space-complexity experiments can report register usage.
type Allocator interface {
	// NewRegister returns a fresh register initialized to init. The name
	// appears in transcripts and space reports; allocators may suffix it to
	// keep names unique.
	NewRegister(name string, init any) Register
	// Registers returns the number of registers allocated so far.
	Registers() int
}

// --- Native registers --------------------------------------------------------

// Native registers are padded out to a full cache line (64 bytes). Adjacent
// per-process components (one register per pid, allocated back to back) would
// otherwise land on the same line, and every write by one process would
// invalidate the line its neighbours are spinning on — false sharing that the
// collect loops of the snapshot algorithms are particularly exposed to.
const cacheLine = 64

type nativeRegister struct {
	name string
	v    atomic.Pointer[any]
	_    [cacheLine - 24]byte // name (16) + v (8) = 24
}

var _ Register = (*nativeRegister)(nil)

func (r *nativeRegister) Read(int) any {
	return *r.v.Load()
}

func (r *nativeRegister) Write(_ int, v any) {
	r.v.Store(&v)
}

func (r *nativeRegister) Name() string { return r.name }

// NativeAllocator allocates registers backed by sync/atomic. The zero value
// is ready to use. It is safe for concurrent use.
type NativeAllocator struct {
	count atomic.Int64
}

var _ Allocator = (*NativeAllocator)(nil)

// NewRegister implements Allocator.
func (a *NativeAllocator) NewRegister(name string, init any) Register {
	a.count.Add(1)
	r := &nativeRegister{name: name}
	r.v.Store(&init)
	return r
}

// Registers implements Allocator.
func (a *NativeAllocator) Registers() int { return int(a.count.Load()) }

// --- Step counting -----------------------------------------------------------

// StepCounter counts shared-memory steps per process. It is safe for
// concurrent use.
type StepCounter struct {
	reads  []atomic.Int64
	writes []atomic.Int64
}

// NewStepCounter returns a counter for n processes.
func NewStepCounter(n int) *StepCounter {
	return &StepCounter{
		reads:  make([]atomic.Int64, n),
		writes: make([]atomic.Int64, n),
	}
}

// Reads returns the number of register reads by pid.
func (c *StepCounter) Reads(pid int) int64 { return c.reads[pid].Load() }

// Writes returns the number of register writes by pid.
func (c *StepCounter) Writes(pid int) int64 { return c.writes[pid].Load() }

// Steps returns reads+writes by pid.
func (c *StepCounter) Steps(pid int) int64 { return c.Reads(pid) + c.Writes(pid) }

// TotalSteps returns reads+writes across all processes.
func (c *StepCounter) TotalSteps() int64 {
	var sum int64
	for i := range c.reads {
		sum += c.reads[i].Load() + c.writes[i].Load()
	}
	return sum
}

// Reset zeroes all counters.
func (c *StepCounter) Reset() {
	for i := range c.reads {
		c.reads[i].Store(0)
		c.writes[i].Store(0)
	}
}

type countingRegister struct {
	inner Register
	c     *StepCounter
}

var _ Register = (*countingRegister)(nil)

func (r *countingRegister) Read(pid int) any {
	r.c.reads[pid].Add(1)
	return r.inner.Read(pid)
}

func (r *countingRegister) Write(pid int, v any) {
	r.c.writes[pid].Add(1)
	r.inner.Write(pid, v)
}

func (r *countingRegister) Name() string { return r.inner.Name() }

// CountingAllocator decorates an Allocator so that every register it hands
// out counts steps into Counter.
type CountingAllocator struct {
	Inner   Allocator
	Counter *StepCounter
}

var _ Allocator = (*CountingAllocator)(nil)

// NewRegister implements Allocator.
func (a *CountingAllocator) NewRegister(name string, init any) Register {
	return &countingRegister{inner: a.Inner.NewRegister(name, init), c: a.Counter}
}

// Registers implements Allocator.
func (a *CountingAllocator) Registers() int { return a.Inner.Registers() }

// --- Typed wrapper -----------------------------------------------------------

// typedNative is the allocation-lean native register behind Reg's fast path:
// values are stored as typed pointers, so a write costs one heap cell (the V
// copy) instead of the two (interface box plus pointer cell) the untyped
// nativeRegister pays. Padded to a cache line like nativeRegister, so
// per-process register arrays do not false-share.
type typedNative[V any] struct {
	name string
	v    atomic.Pointer[V]
	_    [cacheLine - 24]byte // name (16) + v (8) = 24
}

func (r *typedNative[V]) read() V { return *r.v.Load() }

func (r *typedNative[V]) write(v V) {
	p := new(V)
	*p = v
	r.v.Store(p)
}

// Reg is a typed view over a register. The zero value is unusable; construct
// with NewReg.
//
// When the allocator is a plain *NativeAllocator, the register is backed by
// a typed atomic pointer directly (no interface boxing per access); any other
// allocator — counting decorators, the simulated scheduler — goes through the
// untyped Register interface it hands out.
type Reg[V any] struct {
	fast *typedNative[V] // non-nil iff allocated from a bare NativeAllocator
	r    Register
}

// NewReg allocates a register holding values of type V, initialized to init.
func NewReg[V any](a Allocator, name string, init V) Reg[V] {
	if na, ok := a.(*NativeAllocator); ok {
		na.count.Add(1)
		fast := &typedNative[V]{name: name}
		fast.v.Store(&init)
		return Reg[V]{fast: fast}
	}
	return Reg[V]{r: a.NewRegister(name, init)}
}

// Read returns the current value as a step of process pid.
func (t Reg[V]) Read(pid int) V {
	if t.fast != nil {
		return t.fast.read()
	}
	v, ok := t.r.Read(pid).(V)
	if !ok {
		// Registers are allocated typed and only written through this
		// wrapper, so this indicates memory corruption or API misuse.
		panic(fmt.Sprintf("memory: register %s holds %T, want %T", t.r.Name(), t.r.Read(pid), v))
	}
	return v
}

// Write stores v as a step of process pid.
func (t Reg[V]) Write(pid int, v V) {
	if t.fast != nil {
		t.fast.write(v)
		return
	}
	t.r.Write(pid, v)
}

// Name returns the underlying register name.
func (t Reg[V]) Name() string {
	if t.fast != nil {
		return t.fast.name
	}
	return t.r.Name()
}
