package memory

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestNativeRegisterBasic(t *testing.T) {
	var a NativeAllocator
	r := a.NewRegister("X", 42)
	if got := r.Read(0); got != 42 {
		t.Errorf("initial Read = %v, want 42", got)
	}
	r.Write(1, "hello")
	if got := r.Read(0); got != "hello" {
		t.Errorf("Read after Write = %v, want hello", got)
	}
	if r.Name() != "X" {
		t.Errorf("Name = %q, want X", r.Name())
	}
}

func TestNativeAllocatorCounts(t *testing.T) {
	var a NativeAllocator
	for i := 0; i < 10; i++ {
		a.NewRegister("r", i)
	}
	if got := a.Registers(); got != 10 {
		t.Errorf("Registers = %d, want 10", got)
	}
}

func TestNativeRegisterConcurrent(t *testing.T) {
	var a NativeAllocator
	r := a.NewRegister("X", 0)
	const writers, iters = 4, 1000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Write(pid, pid*iters+i)
				if v := r.Read(pid).(int); v < 0 || v >= writers*iters {
					t.Errorf("torn read: %d", v)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestStepCounter(t *testing.T) {
	var native NativeAllocator
	c := NewStepCounter(2)
	a := &CountingAllocator{Inner: &native, Counter: c}
	r := a.NewRegister("X", 0)

	r.Write(0, 1)
	r.Write(0, 2)
	r.Read(1)

	if got := c.Writes(0); got != 2 {
		t.Errorf("Writes(0) = %d, want 2", got)
	}
	if got := c.Reads(1); got != 1 {
		t.Errorf("Reads(1) = %d, want 1", got)
	}
	if got := c.Steps(0); got != 2 {
		t.Errorf("Steps(0) = %d, want 2", got)
	}
	if got := c.TotalSteps(); got != 3 {
		t.Errorf("TotalSteps = %d, want 3", got)
	}
	if got := a.Registers(); got != 1 {
		t.Errorf("Registers = %d, want 1", got)
	}

	c.Reset()
	if got := c.TotalSteps(); got != 0 {
		t.Errorf("TotalSteps after Reset = %d, want 0", got)
	}
}

func TestTypedReg(t *testing.T) {
	var a NativeAllocator
	type pair struct{ p, s int }
	r := NewReg(&a, "A", pair{1, 2})
	if got := r.Read(0); got != (pair{1, 2}) {
		t.Errorf("Read = %v", got)
	}
	r.Write(0, pair{3, 4})
	if got := r.Read(0); got != (pair{3, 4}) {
		t.Errorf("Read after Write = %v", got)
	}
	if r.Name() != "A" {
		t.Errorf("Name = %q", r.Name())
	}
}

// Property: a sequential series of writes is always read back verbatim.
func TestRegisterSequentialProperty(t *testing.T) {
	f := func(vals []int64) bool {
		var a NativeAllocator
		r := NewReg(&a, "X", int64(0))
		for _, v := range vals {
			r.Write(0, v)
			if r.Read(0) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTypedRegPanicsOnTypeConfusion(t *testing.T) {
	var a NativeAllocator
	raw := a.NewRegister("X", 1)
	typed := Reg[string]{r: raw} // deliberately mistyped view
	defer func() {
		if recover() == nil {
			t.Error("mistyped register read did not panic")
		}
	}()
	typed.Read(0)
}

func TestCountingAllocatorNesting(t *testing.T) {
	c1 := NewStepCounter(1)
	c2 := NewStepCounter(1)
	var native NativeAllocator
	a1 := &CountingAllocator{Inner: &native, Counter: c1}
	a2 := &CountingAllocator{Inner: a1, Counter: c2}
	r := a2.NewRegister("X", 0)
	r.Write(0, 1)
	r.Read(0)
	if c1.Steps(0) != 2 || c2.Steps(0) != 2 {
		t.Errorf("nested counters = %d/%d, want 2/2", c1.Steps(0), c2.Steps(0))
	}
	if a2.Registers() != 1 {
		t.Errorf("Registers = %d", a2.Registers())
	}
}
