// Package sched is a deterministic shared-memory simulator implementing the
// paper's asynchronous model (Section 2): n processes take atomic steps on
// shared registers, one at a time, in an order chosen by an adversary.
//
// Each simulated process runs in its own goroutine but only one process is
// ever runnable: processes block at every step (invocation event, register
// access, response event) until the scheduler grants them the step. Runs are
// therefore deterministic functions of the adversary's choices, which makes
// executions replayable and lets internal/lincheck explore prefix-closed
// transcript trees — exactly the structures strong linearizability is
// defined over.
package sched

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"slmem/internal/memory"
	"slmem/internal/trace"
)

// ErrScheduleViolation is reported when an adversary picks a process that is
// not enabled.
var ErrScheduleViolation = errors.New("sched: adversary chose a process that is not enabled")

// errAborted is the sentinel used to unwind process goroutines when a run
// stops with operations still pending.
var errAborted = errors.New("sched: run aborted")

// Program is the code of one simulated process. It receives the process
// handle used to issue operations; shared objects are closed over from the
// System setup function.
type Program func(p *Proc)

// System describes a complete simulated system. Setup is called once per
// run with a fresh environment; it must allocate all shared objects through
// the environment (which implements memory.Allocator) and return one program
// per process. Programs and setup must be deterministic.
type System struct {
	// N is the number of processes.
	N int
	// Setup builds the shared objects and returns N programs, indexed by pid.
	Setup func(env *Env) []Program
}

// Adversary chooses the next process to step.
type Adversary interface {
	// Next returns the pid to schedule, chosen from enabled (sorted
	// ascending, never empty), or -1 to stop the run. The transcript so far
	// is visible, modeling the paper's strong adversary.
	Next(enabled []int, t *trace.Transcript) int
}

// AdversaryFunc adapts a function to the Adversary interface.
type AdversaryFunc func(enabled []int, t *trace.Transcript) int

// Next implements Adversary.
func (f AdversaryFunc) Next(enabled []int, t *trace.Transcript) int { return f(enabled, t) }

// Script replays a fixed schedule, then stops. Scheduling a disabled process
// is an error (the run reports ErrScheduleViolation).
type Script struct {
	pids []int
	pos  int
}

// NewScript returns a scripted adversary over the given pid sequence.
func NewScript(pids ...int) *Script {
	cp := make([]int, len(pids))
	copy(cp, pids)
	return &Script{pids: cp}
}

// Next implements Adversary.
func (s *Script) Next([]int, *trace.Transcript) int {
	if s.pos >= len(s.pids) {
		return -1
	}
	pid := s.pids[s.pos]
	s.pos++
	return pid
}

// Seeded schedules uniformly at random among enabled processes, from a fixed
// seed: deterministic and replayable.
type Seeded struct {
	rng *rand.Rand
}

// NewSeeded returns a seeded random adversary.
func NewSeeded(seed int64) *Seeded {
	return &Seeded{rng: rand.New(rand.NewSource(seed))}
}

// Next implements Adversary.
func (s *Seeded) Next(enabled []int, _ *trace.Transcript) int {
	return enabled[s.rng.Intn(len(enabled))]
}

// RoundRobin cycles through processes fairly.
type RoundRobin struct {
	last int
}

// Next implements Adversary.
func (r *RoundRobin) Next(enabled []int, _ *trace.Transcript) int {
	for _, pid := range enabled {
		if pid > r.last {
			r.last = pid
			return pid
		}
	}
	r.last = enabled[0]
	return enabled[0]
}

// Storm starves victim processes: it schedules non-victims whenever
// possible, granting a victim a step only every Period-th decision (and
// whenever no non-victim is enabled). It models the writer-storm adversary
// used to show that lock-free reads are not wait-free (experiment E8).
type Storm struct {
	// IsVictim classifies starved processes.
	IsVictim func(pid int) bool
	// Period is how often a victim gets a step; values < 2 mean every other
	// decision.
	Period int

	step int
}

// Next implements Adversary.
func (s *Storm) Next(enabled []int, _ *trace.Transcript) int {
	period := s.Period
	if period < 2 {
		period = 2
	}
	s.step++
	if s.step%period != 0 {
		for _, pid := range enabled {
			if !s.IsVictim(pid) {
				return pid
			}
		}
	}
	for _, pid := range enabled {
		if s.IsVictim(pid) {
			return pid
		}
	}
	return enabled[0]
}

// Chain runs each adversary in turn, moving to the next when the current one
// returns -1. The run stops when the last one does.
type Chain struct {
	advs []Adversary
	cur  int
}

// NewChain concatenates adversaries.
func NewChain(advs ...Adversary) *Chain { return &Chain{advs: advs} }

// Next implements Adversary.
func (c *Chain) Next(enabled []int, t *trace.Transcript) int {
	for c.cur < len(c.advs) {
		if pid := c.advs[c.cur].Next(enabled, t); pid != -1 {
			return pid
		}
		c.cur++
	}
	return -1
}

// Options configure a run.
type Options struct {
	// StepLimit aborts the run after this many scheduled steps; 0 means the
	// package default (DefaultStepLimit). The limit is a safety net: with
	// finite programs all schedules of the algorithms here terminate.
	StepLimit int
}

// DefaultStepLimit bounds runs whose options leave StepLimit zero.
const DefaultStepLimit = 1 << 20

// Result is the outcome of a run.
type Result struct {
	// T is the recorded transcript.
	T *trace.Transcript
	// Schedule is the sequence of pids granted steps, in order; replaying it
	// with NewScript reproduces the run exactly.
	Schedule []int
	// Enabled lists the processes that could have taken another step when
	// the run stopped (empty if every program ran to completion).
	Enabled []int
	// Steps is the number of scheduled steps taken.
	Steps int
	// Registers is the number of registers the system allocated.
	Registers int
	// Err reports schedule violations or the step limit being hit.
	Err error
}

// Completed reports whether all programs ran to completion.
func (r *Result) Completed() bool { return len(r.Enabled) == 0 && r.Err == nil }

// Env is the per-run simulation environment. It implements memory.Allocator;
// all shared objects of a simulated system must be allocated through it.
type Env struct {
	n        int
	t        *trace.Transcript
	procs    []*Proc
	regCount int
	regNames map[string]int
	nextOp   int

	reqCh  chan int
	doneCh chan int
}

var _ memory.Allocator = (*Env)(nil)

func newEnv(n int) *Env {
	env := &Env{
		n:        n,
		t:        &trace.Transcript{},
		regNames: make(map[string]int),
		reqCh:    make(chan int),
		doneCh:   make(chan int),
	}
	env.procs = make([]*Proc, n)
	for pid := range env.procs {
		env.procs[pid] = &Proc{env: env, pid: pid, grant: make(chan bool)}
	}
	return env
}

// N returns the number of processes.
func (e *Env) N() int { return e.n }

// NewRegister implements memory.Allocator. Names are made unique by
// suffixing a counter when reused.
func (e *Env) NewRegister(name string, init any) memory.Register {
	if c := e.regNames[name]; c > 0 {
		e.regNames[name] = c + 1
		name = fmt.Sprintf("%s#%d", name, c)
	} else {
		e.regNames[name] = 1
	}
	e.regCount++
	return &simRegister{env: e, name: name, val: init}
}

// Registers implements memory.Allocator.
func (e *Env) Registers() int { return e.regCount }

// Proc is the handle a simulated process uses to perform operations and
// steps. Exactly one goroutine uses a Proc.
type Proc struct {
	env   *Env
	pid   int
	grant chan bool
	curOp int
}

// PID returns the process id.
func (p *Proc) PID() int { return p.pid }

// yield blocks until the scheduler grants this process its next step.
func (p *Proc) yield() {
	p.env.reqCh <- p.pid
	if !<-p.grant {
		panic(errAborted)
	}
}

func (p *Proc) record(e trace.Event) {
	p.env.t.Append(e)
}

// Do performs one high-level operation: an invocation event (one scheduled
// step), the operation body, and a response event (one scheduled step). fn
// returns the canonical response encoding. Do returns fn's result.
func (p *Proc) Do(desc string, fn func() string) string {
	p.yield()
	op := p.env.nextOp
	p.env.nextOp++
	p.curOp = op
	p.record(trace.Event{Kind: trace.KindInvoke, PID: p.pid, OpID: op, Desc: desc})
	res := fn()
	p.yield()
	p.record(trace.Event{Kind: trace.KindReturn, PID: p.pid, OpID: op, Res: res})
	return res
}

// Annotate records an implementation annotation (not a scheduled step).
func (p *Proc) Annotate(text string) {
	p.record(trace.Event{Kind: trace.KindAnnotate, PID: p.pid, OpID: p.curOp, Desc: text})
}

type simRegister struct {
	env  *Env
	name string
	val  any
}

var _ memory.Register = (*simRegister)(nil)

func (r *simRegister) Read(pid int) any {
	p := r.env.procs[pid]
	p.yield()
	v := r.val
	p.record(trace.Event{
		Kind: trace.KindRead, PID: pid, OpID: p.curOp,
		Reg: r.name, Val: fmt.Sprintf("%v", v),
	})
	return v
}

func (r *simRegister) Write(pid int, v any) {
	p := r.env.procs[pid]
	p.yield()
	r.val = v
	p.record(trace.Event{
		Kind: trace.KindWrite, PID: pid, OpID: p.curOp,
		Reg: r.name, Val: fmt.Sprintf("%v", v),
	})
}

func (r *simRegister) Name() string { return r.name }

// Run executes the system under the adversary and returns the outcome.
func Run(sys System, adv Adversary, opts Options) *Result {
	limit := opts.StepLimit
	if limit <= 0 {
		limit = DefaultStepLimit
	}

	env := newEnv(sys.N)
	programs := sys.Setup(env)
	if len(programs) != sys.N {
		return &Result{T: env.t, Err: fmt.Errorf("sched: setup returned %d programs, want %d", len(programs), sys.N)}
	}

	for pid, prog := range programs {
		go runProgram(env, env.procs[pid], prog)
	}

	res := &Result{T: env.t, Registers: env.regCount}
	pending := make([]bool, sys.N)
	live := sys.N
	outstanding := sys.N

	stop := func() {
		// Abort every blocked process and wait for all goroutines to exit.
		for pid, isPending := range pending {
			if isPending {
				pending[pid] = false
				env.procs[pid].grant <- false
				outstanding++
			}
		}
		for live > 0 {
			select {
			case pid := <-env.reqCh:
				// A process that was running when the run stopped and is now
				// requesting its next step; abort it too.
				env.procs[pid].grant <- false
			case <-env.doneCh:
				live--
			}
		}
	}

	for {
		for outstanding > 0 {
			select {
			case pid := <-env.reqCh:
				pending[pid] = true
				outstanding--
			case <-env.doneCh:
				live--
				outstanding--
			}
		}
		if live == 0 {
			res.Registers = env.regCount
			return res
		}

		enabled := make([]int, 0, live)
		for pid, isPending := range pending {
			if isPending {
				enabled = append(enabled, pid)
			}
		}
		sort.Ints(enabled)

		if res.Steps >= limit {
			res.Enabled = enabled
			res.Err = fmt.Errorf("sched: step limit %d reached", limit)
			stop()
			res.Registers = env.regCount
			return res
		}

		pid := adv.Next(enabled, env.t)
		if pid == -1 {
			res.Enabled = enabled
			stop()
			res.Registers = env.regCount
			return res
		}
		if pid < 0 || pid >= sys.N || !pending[pid] {
			res.Enabled = enabled
			res.Err = fmt.Errorf("%w: pid %d, enabled %v", ErrScheduleViolation, pid, enabled)
			stop()
			res.Registers = env.regCount
			return res
		}

		pending[pid] = false
		outstanding = 1
		env.procs[pid].grant <- true
		res.Steps++
		res.Schedule = append(res.Schedule, pid)
	}
}

func runProgram(env *Env, p *Proc, prog Program) {
	defer func() {
		if r := recover(); r != nil && r != errAborted { //nolint:errorlint // sentinel identity
			panic(r)
		}
		env.doneCh <- p.pid
	}()
	prog(p)
}
