package sched

import (
	"testing"
	"testing/quick"

	"slmem/internal/trace"
)

func TestStormPrefersNonVictims(t *testing.T) {
	s := &Storm{IsVictim: func(pid int) bool { return pid == 0 }, Period: 4}
	picks := make(map[int]int)
	for i := 0; i < 100; i++ {
		picks[s.Next([]int{0, 1, 2}, nil)]++
	}
	if picks[0] == 0 {
		t.Error("victim never scheduled — starvation must be partial (Period)")
	}
	if picks[0] >= picks[1]+picks[2] {
		t.Errorf("victim scheduled too often: %v", picks)
	}
	// With only the victim enabled, it must be scheduled.
	if got := s.Next([]int{0}, nil); got != 0 {
		t.Errorf("sole enabled process not scheduled: %d", got)
	}
}

func TestStormDefaultPeriod(t *testing.T) {
	s := &Storm{IsVictim: func(pid int) bool { return pid == 0 }}
	sawVictim := false
	for i := 0; i < 10; i++ {
		if s.Next([]int{0, 1}, nil) == 0 {
			sawVictim = true
		}
	}
	if !sawVictim {
		t.Error("default period starved the victim entirely")
	}
}

func TestRoundRobinFairness(t *testing.T) {
	rr := &RoundRobin{}
	picks := make(map[int]int)
	for i := 0; i < 300; i++ {
		picks[rr.Next([]int{0, 1, 2}, nil)]++
	}
	for pid := 0; pid < 3; pid++ {
		if picks[pid] != 100 {
			t.Errorf("pid %d scheduled %d times, want 100", pid, picks[pid])
		}
	}
}

func TestRoundRobinSkipsDisabled(t *testing.T) {
	rr := &RoundRobin{}
	for i := 0; i < 10; i++ {
		if got := rr.Next([]int{1, 3}, nil); got != 1 && got != 3 {
			t.Fatalf("scheduled disabled pid %d", got)
		}
	}
}

func TestChainHandsOver(t *testing.T) {
	c := NewChain(NewScript(0, 0), NewScript(1))
	want := []int{0, 0, 1, -1}
	for i, w := range want {
		if got := c.Next([]int{0, 1}, nil); got != w {
			t.Fatalf("step %d: got %d, want %d", i, got, w)
		}
	}
}

func TestScriptExhaustion(t *testing.T) {
	s := NewScript(2)
	if got := s.Next([]int{2}, nil); got != 2 {
		t.Fatalf("got %d", got)
	}
	if got := s.Next([]int{2}, nil); got != -1 {
		t.Fatalf("exhausted script returned %d, want -1", got)
	}
}

func TestScriptCopiesInput(t *testing.T) {
	pids := []int{0, 1}
	s := NewScript(pids...)
	pids[0] = 9
	if got := s.Next([]int{0, 1}, nil); got != 0 {
		t.Errorf("script shares caller storage: got %d", got)
	}
}

func TestAdversaryFunc(t *testing.T) {
	var sawTranscript *trace.Transcript
	f := AdversaryFunc(func(enabled []int, tr *trace.Transcript) int {
		sawTranscript = tr
		return enabled[len(enabled)-1]
	})
	tr := &trace.Transcript{}
	if got := f.Next([]int{3, 5}, tr); got != 5 {
		t.Errorf("got %d", got)
	}
	if sawTranscript != tr {
		t.Error("transcript not passed through")
	}
}

// Property: Seeded adversaries always pick an enabled pid.
func TestSeededPicksEnabled(t *testing.T) {
	f := func(seed int64, raw []uint8) bool {
		adv := NewSeeded(seed)
		enabled := []int{2, 4, 7}
		for range raw {
			pick := adv.Next(enabled, nil)
			if pick != 2 && pick != 4 && pick != 7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestEnabledSortedForAdversary: the scheduler must present enabled pids in
// ascending order (adversaries may rely on it).
func TestEnabledSortedForAdversary(t *testing.T) {
	sys := regSystem(4, 1)
	sorted := true
	adv := AdversaryFunc(func(enabled []int, _ *trace.Transcript) int {
		for i := 1; i < len(enabled); i++ {
			if enabled[i-1] >= enabled[i] {
				sorted = false
			}
		}
		return enabled[0]
	})
	res := Run(sys, adv, Options{})
	if !res.Completed() {
		t.Fatalf("incomplete: %v", res.Err)
	}
	if !sorted {
		t.Error("enabled list not sorted ascending")
	}
}

// TestScheduleMatchesSteps: Result.Schedule replays to the identical
// transcript.
func TestScheduleMatchesSteps(t *testing.T) {
	res := Run(regSystem(3, 2), NewSeeded(99), Options{})
	if !res.Completed() {
		t.Fatalf("incomplete: %v", res.Err)
	}
	if len(res.Schedule) != res.Steps {
		t.Fatalf("schedule length %d != steps %d", len(res.Schedule), res.Steps)
	}
	replay := RunScript(regSystem(3, 2), res.Schedule, Options{})
	if replay.Err != nil {
		t.Fatal(replay.Err)
	}
	if len(replay.T.Events) != len(res.T.Events) {
		t.Fatalf("replay produced %d events, original %d", len(replay.T.Events), len(res.T.Events))
	}
	for i := range replay.T.Events {
		if replay.T.Events[i] != res.T.Events[i] {
			t.Fatalf("replay diverges at event %d", i)
		}
	}
}
