package sched

import (
	"errors"
	"fmt"

	"slmem/internal/trace"
)

// ErrTooManyNodes is returned by Explore when the transcript tree exceeds
// the node budget.
var ErrTooManyNodes = errors.New("sched: exploration exceeded node budget")

// TreeNode is a node of a prefix-closed transcript tree: its transcript is a
// prefix of every descendant's transcript. Strong linearizability is a
// property of such trees (the prefix closure of the implementation's
// transcript set), which is what internal/lincheck checks.
type TreeNode struct {
	// Schedule is the adversary choice sequence producing this node.
	Schedule []int
	// T is the transcript after running Schedule.
	T *trace.Transcript
	// Enabled lists processes that can extend this node.
	Enabled []int
	// Children, one per explored extension.
	Children []*TreeNode
}

// RunScript runs the system along an exact schedule and stops, reporting the
// processes still enabled. Scheduling a disabled process is an error.
func RunScript(sys System, schedule []int, opts Options) *Result {
	return Run(sys, NewScript(schedule...), opts)
}

// RunToCompletion runs the schedule prefix, then round-robin until all
// programs finish.
func RunToCompletion(sys System, prefix []int, opts Options) *Result {
	return Run(sys, NewChain(NewScript(prefix...), &RoundRobin{}), opts)
}

// Explore builds the full transcript tree of the system: the root is the
// empty run, and every node has one child per enabled process. maxDepth
// bounds schedule length (0 = unlimited); maxNodes bounds total tree size.
//
// Each node replays the system from scratch (runs are deterministic), so the
// cost is O(nodes × depth) steps. Use only on small systems.
func Explore(sys System, maxDepth, maxNodes int, opts Options) (*TreeNode, error) {
	budget := maxNodes
	var build func(schedule []int) (*TreeNode, error)
	build = func(schedule []int) (*TreeNode, error) {
		if budget <= 0 {
			return nil, fmt.Errorf("%w (max %d)", ErrTooManyNodes, maxNodes)
		}
		budget--
		res := RunScript(sys, schedule, opts)
		if res.Err != nil {
			return nil, fmt.Errorf("sched: explore replay %v: %w", schedule, res.Err)
		}
		node := &TreeNode{
			Schedule: append([]int(nil), schedule...),
			T:        res.T,
			Enabled:  res.Enabled,
		}
		if maxDepth > 0 && len(schedule) >= maxDepth {
			return node, nil
		}
		for _, pid := range res.Enabled {
			child, err := build(append(append([]int(nil), schedule...), pid))
			if err != nil {
				return nil, err
			}
			node.Children = append(node.Children, child)
		}
		return node, nil
	}
	return build(nil)
}

// PrefixTree runs the system along prefix, then along prefix+continuation
// for each continuation, and returns the two-level tree. This is how the
// Observation 4 scenario {S, T1, T2} is materialized: S is the prefix and
// T1, T2 are the continuations.
func PrefixTree(sys System, prefix []int, continuations [][]int, opts Options) (*TreeNode, error) {
	root := RunScript(sys, prefix, opts)
	if root.Err != nil {
		return nil, fmt.Errorf("sched: prefix run: %w", root.Err)
	}
	node := &TreeNode{
		Schedule: append([]int(nil), prefix...),
		T:        root.T,
		Enabled:  root.Enabled,
	}
	for i, cont := range continuations {
		full := make([]int, 0, len(prefix)+len(cont))
		full = append(full, prefix...)
		full = append(full, cont...)
		res := RunScript(sys, full, opts)
		if res.Err != nil {
			return nil, fmt.Errorf("sched: continuation %d: %w", i, res.Err)
		}
		if !node.T.IsPrefixOf(res.T) {
			return nil, fmt.Errorf("sched: continuation %d does not extend the prefix transcript (nondeterministic system?)", i)
		}
		node.Children = append(node.Children, &TreeNode{
			Schedule: full,
			T:        res.T,
			Enabled:  res.Enabled,
		})
	}
	return node, nil
}
