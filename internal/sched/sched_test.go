package sched

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"testing/quick"

	"slmem/internal/memory"
	"slmem/internal/trace"
)

// regSystem is a tiny system: each process writes its pid+1 to a shared
// register and then reads it, ops times.
func regSystem(n, ops int) System {
	return System{
		N: n,
		Setup: func(env *Env) []Program {
			x := memory.NewReg(env, "X", 0)
			progs := make([]Program, n)
			for pid := 0; pid < n; pid++ {
				pid := pid
				progs[pid] = func(p *Proc) {
					for i := 0; i < ops; i++ {
						p.Do(fmt.Sprintf("write(%d)", pid+1), func() string {
							x.Write(p.PID(), pid+1)
							return "ok"
						})
						p.Do("read()", func() string {
							return fmt.Sprintf("%d", x.Read(p.PID()))
						})
					}
				}
			}
			return progs
		},
	}
}

func TestRunToCompletionRoundRobin(t *testing.T) {
	res := Run(regSystem(3, 2), &RoundRobin{}, Options{})
	if !res.Completed() {
		t.Fatalf("run did not complete: err=%v enabled=%v", res.Err, res.Enabled)
	}
	h := res.T.Interpreted()
	if len(h.Ops) != 3*2*2 {
		t.Fatalf("got %d ops, want 12", len(h.Ops))
	}
	if !h.Complete() {
		t.Fatal("history has pending ops after completed run")
	}
	if res.Registers != 1 {
		t.Errorf("Registers = %d, want 1", res.Registers)
	}
}

func TestDeterministicReplay(t *testing.T) {
	r1 := Run(regSystem(3, 3), NewSeeded(42), Options{})
	r2 := Run(regSystem(3, 3), NewSeeded(42), Options{})
	if !r1.Completed() || !r2.Completed() {
		t.Fatalf("runs incomplete: %v / %v", r1.Err, r2.Err)
	}
	if !reflect.DeepEqual(r1.T.Events, r2.T.Events) {
		t.Fatal("same seed produced different transcripts")
	}
	r3 := Run(regSystem(3, 3), NewSeeded(43), Options{})
	if reflect.DeepEqual(r1.T.Events, r3.T.Events) {
		t.Log("different seeds produced identical transcripts (possible but unlikely)")
	}
}

func TestScriptExactControl(t *testing.T) {
	// p0's first op is write(1): steps are inv, reg write, ret.
	res := RunScript(regSystem(2, 1), []int{0, 0, 0}, Options{})
	if res.Err != nil {
		t.Fatalf("script run error: %v", res.Err)
	}
	events := res.T.Events
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3:\n%s", len(events), res.T)
	}
	if events[0].Kind != trace.KindInvoke || events[1].Kind != trace.KindWrite || events[2].Kind != trace.KindReturn {
		t.Fatalf("unexpected event kinds:\n%s", res.T)
	}
	// Both processes should still be enabled.
	if !reflect.DeepEqual(res.Enabled, []int{0, 1}) {
		t.Errorf("Enabled = %v, want [0 1]", res.Enabled)
	}
}

func TestScriptViolation(t *testing.T) {
	// Schedule a pid that does not exist / is not enabled.
	res := RunScript(regSystem(2, 1), []int{5}, Options{})
	if !errors.Is(res.Err, ErrScheduleViolation) {
		t.Fatalf("err = %v, want ErrScheduleViolation", res.Err)
	}
}

func TestStepLimit(t *testing.T) {
	res := Run(regSystem(2, 100), &RoundRobin{}, Options{StepLimit: 10})
	if res.Err == nil {
		t.Fatal("expected step-limit error")
	}
	if res.Steps != 10 {
		t.Errorf("Steps = %d, want 10", res.Steps)
	}
}

func TestInterleavingVisible(t *testing.T) {
	// p0 writes 1; p1 writes 2; p0 reads. Schedule p1's write between p0's
	// write and read; p0 must read 2.
	sys := System{
		N: 2,
		Setup: func(env *Env) []Program {
			x := memory.NewReg(env, "X", 0)
			return []Program{
				func(p *Proc) {
					p.Do("write(1)", func() string { x.Write(0, 1); return "ok" })
					p.Do("read()", func() string { return fmt.Sprintf("%d", x.Read(0)) })
				},
				func(p *Proc) {
					p.Do("write(2)", func() string { x.Write(1, 2); return "ok" })
				},
			}
		},
	}
	// p0: inv,w,ret, then p1: inv,w,ret, then p0: inv,r,ret.
	res := RunScript(sys, []int{0, 0, 0, 1, 1, 1, 0, 0, 0}, Options{})
	if res.Err != nil {
		t.Fatalf("run error: %v", res.Err)
	}
	h := res.T.Interpreted()
	var readRes string
	for _, op := range h.Ops {
		if op.Desc == "read()" {
			readRes = op.Res
		}
	}
	if readRes != "2" {
		t.Errorf("p0 read %q, want 2 (p1's write scheduled in between)", readRes)
	}
}

func TestAbortLeavesPendingOps(t *testing.T) {
	// Stop p0 mid-operation: between its invocation and register step.
	res := RunScript(regSystem(1, 1), []int{0}, Options{})
	if res.Err != nil {
		t.Fatalf("run error: %v", res.Err)
	}
	h := res.T.Interpreted()
	if len(h.Ops) != 1 || h.Ops[0].Complete() {
		t.Fatalf("want exactly one pending op, got:\n%s", h)
	}
}

func TestRunToCompletionAfterPrefix(t *testing.T) {
	res := RunToCompletion(regSystem(2, 2), []int{0, 0}, Options{})
	if !res.Completed() {
		t.Fatalf("not completed: %v", res.Err)
	}
	if !res.T.Interpreted().Complete() {
		t.Fatal("history incomplete")
	}
}

func TestExploreSmall(t *testing.T) {
	// One process, one op: linear chain of 3+1 nodes, no branching.
	tree, err := Explore(regSystem(1, 1), 0, 100, Options{})
	if err != nil {
		t.Fatal(err)
	}
	depth := 0
	for n := tree; n != nil; {
		if len(n.Children) > 1 {
			t.Fatal("single-process exploration branched")
		}
		if len(n.Children) == 0 {
			break
		}
		n = n.Children[0]
		depth++
	}
	// write op: inv, reg, ret; read op: inv, reg, ret.
	if depth != 6 {
		t.Errorf("chain depth = %d, want 6", depth)
	}
}

func TestExploreBranches(t *testing.T) {
	tree, err := Explore(regSystem(2, 1), 3, 1000, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Children) != 2 {
		t.Fatalf("root has %d children, want 2", len(tree.Children))
	}
	// Every child transcript must extend its parent's.
	var verify func(n *TreeNode)
	verify = func(n *TreeNode) {
		for _, c := range n.Children {
			if !n.T.IsPrefixOf(c.T) {
				t.Fatalf("child transcript does not extend parent (schedule %v -> %v)", n.Schedule, c.Schedule)
			}
			verify(c)
		}
	}
	verify(tree)
}

func TestExploreNodeBudget(t *testing.T) {
	_, err := Explore(regSystem(3, 3), 0, 5, Options{})
	if !errors.Is(err, ErrTooManyNodes) {
		t.Fatalf("err = %v, want ErrTooManyNodes", err)
	}
}

func TestPrefixTree(t *testing.T) {
	prefix := []int{0, 0} // p0: inv + write step
	conts := [][]int{
		{0, 1, 1, 1},
		{1, 1, 1, 0},
	}
	tree, err := PrefixTree(regSystem(2, 1), prefix, conts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Children) != 2 {
		t.Fatalf("children = %d, want 2", len(tree.Children))
	}
	for _, c := range tree.Children {
		if !tree.T.IsPrefixOf(c.T) {
			t.Fatal("continuation does not extend prefix")
		}
	}
}

func TestAnnotateRecorded(t *testing.T) {
	sys := System{
		N: 1,
		Setup: func(env *Env) []Program {
			x := memory.NewReg(env, "X", 0)
			return []Program{func(p *Proc) {
				p.Do("op()", func() string {
					x.Write(0, 1)
					p.Annotate("linearized")
					return "ok"
				})
			}}
		},
	}
	res := Run(sys, &RoundRobin{}, Options{})
	if !res.Completed() {
		t.Fatalf("incomplete: %v", res.Err)
	}
	found := false
	for _, e := range res.T.Events {
		if e.Kind == trace.KindAnnotate && e.Desc == "linearized" {
			found = true
		}
	}
	if !found {
		t.Error("annotation not recorded")
	}
}

func TestRegisterNameUniquing(t *testing.T) {
	env := newEnv(1)
	r1 := env.NewRegister("A", 0)
	r2 := env.NewRegister("A", 0)
	if r1.Name() == r2.Name() {
		t.Errorf("duplicate register names: %q", r1.Name())
	}
	if env.Registers() != 2 {
		t.Errorf("Registers = %d, want 2", env.Registers())
	}
}

// Property: for any seed, a completed run of the tiny system yields a
// transcript whose per-process projection is well-formed (inv/step/ret
// pattern, sequential ops).
func TestWellFormedPerProcess(t *testing.T) {
	f := func(seed int64) bool {
		res := Run(regSystem(2, 2), NewSeeded(seed), Options{})
		if !res.Completed() {
			return false
		}
		for pid := 0; pid < 2; pid++ {
			proj := res.T.ProjectPID(pid)
			depth := 0 // 0 = between ops, 1 = inside an op
			for _, e := range proj.Events {
				switch e.Kind {
				case trace.KindInvoke:
					if depth != 0 {
						return false
					}
					depth = 1
				case trace.KindReturn:
					if depth != 1 {
						return false
					}
					depth = 0
				case trace.KindRead, trace.KindWrite:
					if depth != 1 {
						return false
					}
				case trace.KindAnnotate:
					// allowed anywhere
				}
			}
			if depth != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
