// Package bag implements a lock-free strongly linearizable bag (multiset)
// of strings, following the approach of Ellen and Sela, "Strong
// Linearizability without Compare&Swap: The Case of Bags" (2024): strong
// linearizability is achieved from primitives strictly weaker than
// compare-and-swap — atomic registers (here, the repo's own strongly
// linearizable snapshot, itself built from registers) plus per-item
// test-and-set bits (implemented with atomic swap, i.e. fetch-and-store).
// Like Ovens and Woelfel's snapshot, the point is that the strong guarantee
// composed randomized clients need does not require the strongest
// synchronization primitive.
//
// # Structure
//
// Each process p owns an append-only log of the items it inserted, stored
// in chunks whose cells carry the value and a test-and-set "claimed" bit.
// How many items p has published is component p of an n-component strongly
// linearizable snapshot (slmem.Snapshot[int]): Insert writes the value
// into the log and then publishes the new count with Update; Remove and
// Size learn about items only through Scan, so a cell is read only after
// the Update that published it (the snapshot's internal synchronization
// makes the value write visible).
//
// # Linearization points (proof sketch)
//
//   - Insert linearizes at the linearization point of its snapshot Update.
//     The substrate is strongly linearizable, so this point is fixed once
//     reached and never revised.
//   - A successful Remove linearizes at its winning test-and-set — a single
//     atomic instruction on the item's claimed bit, fixed in the past the
//     moment it executes. The TAS arbitrates racing removers without CAS;
//     a won item was published (only scanned items are tried) and
//     unclaimed (the TAS returned the clear bit), so it is in the bag at
//     that instant.
//   - An empty Remove and a Size linearize inside a clean double collect:
//     Scan (view v), read the claimed bits of every item published in v,
//     Scan again, and require the second view to equal v. Publication
//     counts are monotone, so an unchanged view means no insert linearized
//     between the two scans; claimed bits are monotone (set once, never
//     cleared), so a bit read as set stays set. At the time τ of the last
//     bit read, therefore, the published items are exactly those of v, and
//     — for the empty case — every one of them was already claimed, i.e.
//     the bag was empty at τ. For Size, the count "published(v) − bits
//     read as set" is sandwiched between the bag's true size at the first
//     and last bit read; removals shrink the bag one item at a time and no
//     insert intervenes, so some instant in that window has exactly the
//     returned size. Both points lie in the operation's own execution
//     interval and depend only on events already in the past, which is
//     what prefix preservation requires.
//
// Because every operation's linearization point is fixed by its own past —
// never chosen retroactively when later operations complete — the
// composed implementation is strongly linearizable; strong linearizability
// is preserved under composition of strongly linearizable base objects
// (Golab, Higham, Woelfel 2011), which the tests in this package check
// mechanically with internal/lincheck over recorded histories.
//
// # Progress and space
//
// All operations are lock-free: a Remove retries only when another
// process's insert published or another remover's TAS won, and Size
// retries only when an insert published.
//
// Space is bounded by chunk recycling in the style of Ellen and Sela's
// Section on memory reclamation: a claimed cell is a tombstone, and once
// every cell of a published chunk is claimed the owner unlinks the chunk
// from its log (during Insert, at chunk boundaries), making the tombstones
// unreachable so the garbage collector reclaims them. Every chunk carries
// the absolute index of its first cell, and walkers account an index gap
// between consecutive chunks as recycled — hence claimed — cells; the
// claimed bits of unlinked chunks were observed set before the unlink and
// bits are monotone, so the linearization arguments above are unchanged. A
// reader that raced the unlink and still holds the dead chunk just walks
// its claimed cells one last time. Live space is therefore proportional to
// the number of chunks holding at least one unclaimed cell (plus one open
// tail chunk per process), not to the insert total; Stats reports the
// reachable-cell counts and the bag_test churn tests pin the bound.
//
// # Straggler migration
//
// A single unclaimed cell pins its whole chunk — nothing in the claimed-bit
// invariants forces claims to be contiguous, so sustained churn can in
// principle strand chunkSize cells per straggler. The owner's sweep
// therefore migrates: a published non-tail chunk holding at most migrateMax
// unclaimed cells has those cells claimed by the owner — through the same
// test-and-set removers use, so races resolve exactly as remover-remover
// races do — and the values the owner won are republished at the tail,
// leaving the chunk fully claimed and recyclable. A migrated item is still
// the same abstract item; no bag operation was invoked, so the migration
// must be invisible. The success path of Remove is: a remover either claims
// the old cell before the owner (an ordinary removal) or finds it claimed
// and can win the republished cell instead. The observed-empty and Size
// paths, whose double collects could otherwise catch an item mid-flight
// (old cell claimed, new cell not yet published), validate against a
// per-owner migration counter: the owner makes it odd before its first
// claim and even again after republishing, and a clean collect additionally
// requires every counter unchanged and even across its bit reads — any
// migration whose claim could have landed inside the collect is caught by
// the counter or by the publication views, and the collect retries. The
// transit window is a bounded straight-line run of owner steps with no
// retries inside, so these retries, like all others, are charged to another
// process's progress; a process that halts mid-sweep stalls empty
// observations and sizes until it resumes (the same caveat as a halted
// process pinning any low-watermark scheme).
package bag

import (
	"sync/atomic"

	"slmem"
)

// chunkSize is the cell count of one log chunk.
const chunkSize = 64

// chunk is one block of a process's append-only item log. vals[i] is
// written by the owner before the cell is published through the snapshot
// and is immutable afterwards; claimed[i] is the item's test-and-set bit.
// base is the absolute index of vals[0] in the owner's insert sequence,
// fixed at allocation.
type chunk struct {
	base     int
	vals     [chunkSize]string
	claimed  [chunkSize]atomic.Uint32
	nclaimed atomic.Int32 // cells claimed so far; full chunks are recyclable
	next     atomic.Pointer[chunk]
}

// tas test-and-sets cell i via atomic swap (fetch-and-store — weaker than
// compare-and-swap), reporting whether this caller claimed it. The winner
// bumps nclaimed, so the owner's recycling sweep can recognize a fully
// claimed chunk in O(1).
func (c *chunk) tas(i int) bool {
	if c.claimed[i].Swap(1) == 0 {
		c.nclaimed.Add(1)
		return true
	}
	return false
}

// taken reports whether cell i has been claimed.
func (c *chunk) taken(i int) bool { return c.claimed[i].Load() != 0 }

// ownerLog is process p's append cursor. head is read by every walker and
// advanced by the owner's recycling sweep, so it is atomic; tail, count,
// and the sweep itself are per-process local state, used only by the
// current holder of pid p (the lease hand-off provides the happens-before
// edge, as for all per-pid state in this repo). Padded so adjacent
// per-process entries do not false-share.
type ownerLog struct {
	head     atomic.Pointer[chunk] // walkers start here
	tail     *chunk                // owner's append position
	count    int                   // items appended == published count after each Insert
	recycled atomic.Int64          // chunks unlinked over the log's lifetime
	// Straggler migration (see the package comment): transit is odd while
	// the owner has claimed straggler cells it has not yet republished;
	// empty-Remove and Size validate their double collects against it.
	// migrated counts cells republished over the log's lifetime.
	transit  atomic.Int64
	migrated atomic.Int64
	// Sweep backoff: a full sweep costs O(live chunks), so insert-only
	// workloads (whose sweeps never free anything) double the boundary
	// interval between sweeps up to maxSweepBackoff, keeping the amortized
	// sweep cost per insert O(1); any productive sweep resets the interval.
	sweepWait  int
	sweepEvery int
	// Caller-pid scratch for the transit validation reads, allocated on
	// first use so the empty/size paths stay allocation-free per call.
	tcBefore, tcAfter []int64
	_                 [16]byte // pad to two cache lines (14 words above)
}

// appendCell writes x into the owner's next log cell, linking a fresh
// chunk at chunk boundaries. It does not publish: callers follow up with
// one pub.Update covering every cell they appended. Owner-only.
func (l *ownerLog) appendCell(x string) {
	i := l.count % chunkSize
	if l.count > 0 && i == 0 {
		next := &chunk{base: l.count}
		l.tail.next.Store(next)
		l.tail = next
	}
	l.tail.vals[i] = x
	l.count++
}

// maxSweepBackoff caps the sweep interval (in chunk boundaries): a fully
// claimed chunk becomes unreachable at most maxSweepBackoff*chunkSize
// inserts after it becomes claimable, even if every earlier sweep was
// unproductive.
const maxSweepBackoff = 64

// Bag is a lock-free strongly linearizable bag of strings for n processes.
// Every method takes the calling process id (0 <= pid < n); at most one
// goroutine may use a given pid at a time. Use Pooled for lease-per-call
// access.
type Bag struct {
	n    int
	pub  *slmem.Snapshot[int] // component p: #items p has published
	logs []ownerLog
}

// New constructs a bag for n processes, initially empty.
func New(n int) *Bag {
	b := &Bag{
		n:    n,
		pub:  slmem.NewSnapshot[int](n, 0),
		logs: make([]ownerLog, n),
	}
	for p := range b.logs {
		c := &chunk{}
		b.logs[p].head.Store(c)
		b.logs[p].tail = c
	}
	return b
}

// N returns the number of processes the bag was constructed for.
func (b *Bag) N() int { return b.n }

// Insert adds x to the bag, as process pid. Wait-free given the snapshot's
// wait-free update: one cell write plus one Update, and at chunk
// boundaries an amortized-O(1) recycling-and-migration sweep (see
// ownerLog's backoff; a migrating sweep appends the moved cells and
// publishes them with one extra Update).
func (b *Bag) Insert(pid int, x string) {
	l := &b.logs[pid]
	boundary := l.count > 0 && l.count%chunkSize == 0
	l.appendCell(x)
	// Publication: the Update's linearization point is Insert's.
	b.pub.Update(pid, l.count)
	if boundary {
		// The previously filled chunk is now linked past and fully
		// published: recycle and migrate on the backoff schedule.
		l.sweepWait++
		if l.sweepWait >= l.sweepEvery {
			l.sweepWait = 0
			switch freed := b.sweep(pid, l); {
			case freed > 0:
				l.sweepEvery = 1
			case l.sweepEvery < maxSweepBackoff:
				if l.sweepEvery == 0 {
					l.sweepEvery = 1
				}
				l.sweepEvery *= 2
			}
		}
	}
}

// migrateMax is the most unclaimed cells a published non-tail chunk may
// hold for the sweep to migrate it: a chunk qualifies only after removers
// claimed chunkSize-migrateMax of its cells, so republication stays a small
// amortized fraction of the removal traffic that earned it.
const migrateMax = chunkSize / 8

// sweep is the owner's full reclamation pass: unlink fully claimed chunks,
// then migrate straggler chunks (at most migrateMax unclaimed cells) by
// claiming their stragglers and republishing the values the owner won at
// the tail, then unlink what migration just filled. Returns how many chunks
// it unlinked. Owner-only; the transit counter brackets the claims so the
// observed-empty and Size collects never linearize against a half-moved
// item (see the package comment).
func (b *Bag) sweep(pid int, l *ownerLog) int {
	freed := compact(l)
	inTransit := false
	var moved []string
	for c := l.head.Load(); c != l.tail; c = c.next.Load() {
		n := int(c.nclaimed.Load())
		if n >= chunkSize || chunkSize-n > migrateMax {
			continue
		}
		if !inTransit {
			// Enter transit before the first claim: validators that could
			// observe one of these bits set must see an odd or changed
			// counter and retry.
			l.transit.Add(1)
			inTransit = true
		}
		for i := 0; i < chunkSize; i++ {
			if !c.taken(i) && c.tas(i) {
				moved = append(moved, c.vals[i])
			}
		}
	}
	if inTransit {
		for _, x := range moved {
			l.appendCell(x)
		}
		if len(moved) > 0 {
			b.pub.Update(pid, l.count)
			l.migrated.Add(int64(len(moved)))
		}
		l.transit.Add(1)
		freed += compact(l)
	}
	return freed
}

// compact unlinks every fully published, fully claimed chunk of l except
// the tail — the recycling step bounding tombstone growth — and returns
// how many it unlinked. One O(1) check per live chunk (nclaimed), so a
// sweep costs O(live chunks); Insert amortizes that with backoff.
// Owner-only. A walker racing an unlink either already holds the dead
// chunk (and visits its claimed cells one last time through its untouched
// next pointer) or skips it via the updated link; both walks see the same
// claimed bits.
func compact(l *ownerLog) int {
	freed := 0
	var prev *chunk
	for c := l.head.Load(); c != l.tail; c = c.next.Load() {
		// Non-tail chunks are complete and published (the owner fills a
		// chunk and publishes its last cell before linking a successor).
		if int(c.nclaimed.Load()) < chunkSize {
			prev = c
			continue
		}
		next := c.next.Load()
		if prev == nil {
			l.head.Store(next)
		} else {
			prev.next.Store(next)
		}
		l.recycled.Add(1)
		freed++
	}
	return freed
}

// Compact runs pid's recycling sweep immediately, unlinking its fully
// claimed published chunks and migrating its straggler chunks without
// waiting for the next chunk-boundary Insert. Like every method it runs as
// process pid and sweeps only that process's log; an idle producer can call
// it after removers drain its items. Returns how many chunks the sweep
// unlinked, and resets the insert-path sweep backoff.
func (b *Bag) Compact(pid int) int {
	l := &b.logs[pid]
	l.sweepWait, l.sweepEvery = 0, 1
	return b.sweep(pid, l)
}

// walkPublished iterates the still-reachable published cells of process
// p's log below limit (an absolute index from a publication view), calling
// visit(c, i) for each. Cells in recycled chunks are skipped; they are
// claimed by construction, and the per-chunk base indexes let callers
// account them (skipped = limit - visited when every visited cell counts).
func (b *Bag) walkPublished(p int, limit int, visit func(c *chunk, i int) bool) (visited int) {
	for c := b.logs[p].head.Load(); c != nil && c.base < limit; c = c.next.Load() {
		end := limit - c.base
		if end > chunkSize {
			end = chunkSize
		}
		for i := 0; i < end; i++ {
			visited++
			if !visit(c, i) {
				return visited
			}
		}
	}
	return visited
}

// Remove takes some item out of the bag, as process pid. It returns
// (item, true) on success — linearized at the winning test-and-set — or
// ("", false) when the bag is observed empty: a clean double collect in
// which every published item was already claimed (cells recycled out of
// reach were observed claimed before their unlink, and claimed bits are
// monotone) and no owner's migration could have claimed one of those bits
// mid-flight (the transit counters bracket the bit reads). Lock-free:
// every retry is caused by another process's insert publishing, another
// remover's test-and-set winning, or an owner's bounded migration window
// progressing.
func (b *Bag) Remove(pid int) (string, bool) {
	view := b.pub.Scan(pid)
	l := &b.logs[pid]
	for {
		b.readTransit(&l.tcBefore)
		allClaimed := true
		var won *chunk
		wonIdx := 0
		for p := 0; p < b.n && won == nil; p++ {
			b.walkPublished(p, view[p], func(c *chunk, i int) bool {
				if c.taken(i) {
					return true
				}
				allClaimed = false
				if c.tas(i) {
					// Linearization point: this TAS. The item was published
					// (it is in view) and unclaimed an instant ago.
					won, wonIdx = c, i
					return false
				}
				return true
			})
		}
		if won != nil {
			return won.vals[wonIdx], true
		}
		view2 := b.pub.Scan(pid)
		b.readTransit(&l.tcAfter)
		if allClaimed && equalViews(view, view2) && transitClean(l.tcBefore, l.tcAfter) {
			// Empty case: at the last claimed-bit read, every item
			// published then (= view, unchanged through the second scan)
			// was already claimed — and none of those claims belonged to a
			// migration still in flight — so the bag was empty at that
			// instant.
			return "", false
		}
		view = view2
	}
}

// Size returns the number of items in the bag, as process pid: published
// inserts minus claimed items, observed in a clean double collect (see the
// package comment for where it linearizes). Cells no longer reachable
// (recycled chunks) count as claimed, and the transit counters rule out a
// migration claiming bits mid-collect — a fully migrated item inside the
// view contributes one published cell and one claimed cell, net zero.
// Lock-free: it retries only when an insert publishes between the two
// scans or an owner's bounded migration window progresses.
func (b *Bag) Size(pid int) int {
	view := b.pub.Scan(pid)
	l := &b.logs[pid]
	for {
		b.readTransit(&l.tcBefore)
		total, claimed := 0, 0
		for p := 0; p < b.n; p++ {
			total += view[p]
			reachableClaimed := 0
			visited := b.walkPublished(p, view[p], func(c *chunk, i int) bool {
				if c.taken(i) {
					reachableClaimed++
				}
				return true
			})
			// Published cells not visited were recycled: all claimed.
			claimed += reachableClaimed + (view[p] - visited)
		}
		view2 := b.pub.Scan(pid)
		b.readTransit(&l.tcAfter)
		if equalViews(view, view2) && transitClean(l.tcBefore, l.tcAfter) {
			return total - claimed
		}
		view = view2
	}
}

// readTransit loads every owner's migration counter into *dst, allocating
// the caller's scratch on first use.
func (b *Bag) readTransit(dst *[]int64) {
	if *dst == nil {
		*dst = make([]int64, b.n)
	}
	for p := range b.logs {
		(*dst)[p] = b.logs[p].transit.Load()
	}
}

// transitClean reports whether two transit reads bracketing a collect's bit
// reads are pointwise equal and even: no migration was in flight at either
// read, and none completed between them. Counters are single-writer and
// monotone, so equal reads mean no transition at all — any migration whose
// claim landed inside the bracket is caught here (or, when it completed
// and republished before the first read, by the publication views).
func transitClean(before, after []int64) bool {
	for i := range before {
		if before[i] != after[i] || before[i]%2 != 0 {
			return false
		}
	}
	return true
}

// BagStats describes a bag's space at one instant, as observed by pid:
// what has been published, what is still reachable, and what recycling has
// reclaimed. LiveCells-LiveClaimed is the item count; LiveClaimed is the
// tombstones not yet recycled, bounded by the fragmentation of unclaimed
// cells across chunks plus the open tail chunks.
type BagStats struct {
	// Published is the total number of inserts published, ever.
	Published int
	// LiveChunks is the number of reachable chunks holding published cells.
	LiveChunks int
	// LiveCells is the number of reachable published cells.
	LiveCells int
	// LiveClaimed is how many reachable published cells are claimed
	// (tombstones awaiting their chunk's recycling).
	LiveClaimed int
	// RecycledChunks is how many fully claimed chunks have been unlinked
	// over the bag's lifetime (RecycledChunks*chunkSize cells reclaimed).
	RecycledChunks int
	// MigratedCells is how many straggler cells the owners' sweeps have
	// republished at their tails over the bag's lifetime, freeing the
	// nearly claimed chunks that held them.
	MigratedCells int
}

// Stats reports the bag's space counters, as process pid. One scan plus a
// walk of the reachable chunks; counters are monotone except the Live*
// fields, which can shrink as recycling runs.
func (b *Bag) Stats(pid int) BagStats {
	view := b.pub.Scan(pid)
	var st BagStats
	for p := 0; p < b.n; p++ {
		st.Published += view[p]
		st.RecycledChunks += int(b.logs[p].recycled.Load())
		st.MigratedCells += int(b.logs[p].migrated.Load())
		lastChunk := (*chunk)(nil)
		st.LiveCells += b.walkPublished(p, view[p], func(c *chunk, i int) bool {
			if c != lastChunk {
				lastChunk = c
				st.LiveChunks++
			}
			if c.taken(i) {
				st.LiveClaimed++
			}
			return true
		})
	}
	return st
}

// equalViews compares two publication views.
func equalViews(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
