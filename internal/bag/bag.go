// Package bag implements a lock-free strongly linearizable bag (multiset)
// of strings, following the approach of Ellen and Sela, "Strong
// Linearizability without Compare&Swap: The Case of Bags" (2024): strong
// linearizability is achieved from primitives strictly weaker than
// compare-and-swap — atomic registers (here, the repo's own strongly
// linearizable snapshot, itself built from registers) plus per-item
// test-and-set bits (implemented with atomic swap, i.e. fetch-and-store).
// Like Ovens and Woelfel's snapshot, the point is that the strong guarantee
// composed randomized clients need does not require the strongest
// synchronization primitive.
//
// # Structure
//
// Each process p owns an append-only log of the items it inserted, stored
// in chunks whose cells carry the value and a test-and-set "claimed" bit.
// How many items p has published is component p of an n-component strongly
// linearizable snapshot (slmem.Snapshot[int]): Insert writes the value
// into the log and then publishes the new count with Update; Remove and
// Size learn about items only through Scan, so a cell is read only after
// the Update that published it (the snapshot's internal synchronization
// makes the value write visible).
//
// # Linearization points (proof sketch)
//
//   - Insert linearizes at the linearization point of its snapshot Update.
//     The substrate is strongly linearizable, so this point is fixed once
//     reached and never revised.
//   - A successful Remove linearizes at its winning test-and-set — a single
//     atomic instruction on the item's claimed bit, fixed in the past the
//     moment it executes. The TAS arbitrates racing removers without CAS;
//     a won item was published (only scanned items are tried) and
//     unclaimed (the TAS returned the clear bit), so it is in the bag at
//     that instant.
//   - An empty Remove and a Size linearize inside a clean double collect:
//     Scan (view v), read the claimed bits of every item published in v,
//     Scan again, and require the second view to equal v. Publication
//     counts are monotone, so an unchanged view means no insert linearized
//     between the two scans; claimed bits are monotone (set once, never
//     cleared), so a bit read as set stays set. At the time τ of the last
//     bit read, therefore, the published items are exactly those of v, and
//     — for the empty case — every one of them was already claimed, i.e.
//     the bag was empty at τ. For Size, the count "published(v) − bits
//     read as set" is sandwiched between the bag's true size at the first
//     and last bit read; removals shrink the bag one item at a time and no
//     insert intervenes, so some instant in that window has exactly the
//     returned size. Both points lie in the operation's own execution
//     interval and depend only on events already in the past, which is
//     what prefix preservation requires.
//
// Because every operation's linearization point is fixed by its own past —
// never chosen retroactively when later operations complete — the
// composed implementation is strongly linearizable; strong linearizability
// is preserved under composition of strongly linearizable base objects
// (Golab, Higham, Woelfel 2011), which the tests in this package check
// mechanically with internal/lincheck over recorded histories.
//
// # Progress and space
//
// All operations are lock-free: a Remove retries only when another
// process's insert published or another remover's TAS won, and Size
// retries only when an insert published. Space grows with the number of
// inserts (claimed cells are tombstones), like the repo's universal
// construction with its unbounded history; bounding it is future work.
package bag

import (
	"sync/atomic"

	"slmem"
)

// chunkSize is the cell count of one log chunk.
const chunkSize = 64

// chunk is one block of a process's append-only item log. vals[i] is
// written by the owner before the cell is published through the snapshot
// and is immutable afterwards; claimed[i] is the item's test-and-set bit.
type chunk struct {
	vals    [chunkSize]string
	claimed [chunkSize]atomic.Uint32
	next    atomic.Pointer[chunk]
}

// tas test-and-sets cell i via atomic swap (fetch-and-store — weaker than
// compare-and-swap), reporting whether this caller claimed it.
func (c *chunk) tas(i int) bool { return c.claimed[i].Swap(1) == 0 }

// taken reports whether cell i has been claimed.
func (c *chunk) taken(i int) bool { return c.claimed[i].Load() != 0 }

// ownerLog is process p's append cursor: per-process local state, used
// only by the current holder of pid p (the lease hand-off provides the
// happens-before edge, as for all per-pid state in this repo).
type ownerLog struct {
	head  *chunk // fixed at construction; readers start here
	tail  *chunk // owner's append position
	count int    // items appended == published count after each Insert
}

// Bag is a lock-free strongly linearizable bag of strings for n processes.
// Every method takes the calling process id (0 <= pid < n); at most one
// goroutine may use a given pid at a time. Use Pooled for lease-per-call
// access.
type Bag struct {
	n    int
	pub  *slmem.Snapshot[int] // component p: #items p has published
	logs []ownerLog
}

// New constructs a bag for n processes, initially empty.
func New(n int) *Bag {
	b := &Bag{
		n:    n,
		pub:  slmem.NewSnapshot[int](n, 0),
		logs: make([]ownerLog, n),
	}
	for p := range b.logs {
		c := &chunk{}
		b.logs[p].head = c
		b.logs[p].tail = c
	}
	return b
}

// N returns the number of processes the bag was constructed for.
func (b *Bag) N() int { return b.n }

// Insert adds x to the bag, as process pid. Wait-free given the snapshot's
// wait-free update: one cell write plus one Update.
func (b *Bag) Insert(pid int, x string) {
	l := &b.logs[pid]
	i := l.count % chunkSize
	if l.count > 0 && i == 0 {
		// Link a fresh chunk; the atomic store publishes it to readers
		// (who will only follow it after the count covering it publishes).
		next := &chunk{}
		l.tail.next.Store(next)
		l.tail = next
	}
	l.tail.vals[i] = x
	l.count++
	// Publication: the Update's linearization point is Insert's.
	b.pub.Update(pid, l.count)
}

// walker iterates the published prefix of one process's log.
type walker struct {
	c *chunk
	i int // absolute index of the next cell
}

// cell returns the chunk and intra-chunk index for the walker's position,
// advancing chunk boundaries.
func (w *walker) cell() (*chunk, int) {
	if w.i > 0 && w.i%chunkSize == 0 {
		w.c = w.c.next.Load()
	}
	return w.c, w.i % chunkSize
}

// Remove takes some item out of the bag, as process pid. It returns
// (item, true) on success — linearized at the winning test-and-set — or
// ("", false) when the bag is observed empty: a clean double collect in
// which every published item was already claimed. Lock-free: every retry
// is caused by another process's insert publishing or another remover's
// test-and-set winning.
func (b *Bag) Remove(pid int) (string, bool) {
	view := b.pub.Scan(pid)
	for {
		allClaimed := true
		for p := 0; p < b.n; p++ {
			w := walker{c: b.logs[p].head}
			for ; w.i < view[p]; w.i++ {
				c, i := w.cell()
				if c.taken(i) {
					continue
				}
				allClaimed = false
				if c.tas(i) {
					// Linearization point: this TAS. The item was published
					// (it is in view) and unclaimed an instant ago.
					return c.vals[i], true
				}
			}
		}
		view2 := b.pub.Scan(pid)
		if allClaimed && equalViews(view, view2) {
			// Empty case: at the last claimed-bit read, every item
			// published then (= view, unchanged through the second scan)
			// was already claimed — the bag was empty at that instant.
			return "", false
		}
		view = view2
	}
}

// Size returns the number of items in the bag, as process pid: published
// inserts minus claimed items, observed in a clean double collect (see the
// package comment for where it linearizes). Lock-free: it retries only
// when an insert publishes between the two scans.
func (b *Bag) Size(pid int) int {
	view := b.pub.Scan(pid)
	for {
		total, claimed := 0, 0
		for p := 0; p < b.n; p++ {
			total += view[p]
			w := walker{c: b.logs[p].head}
			for ; w.i < view[p]; w.i++ {
				c, i := w.cell()
				if c.taken(i) {
					claimed++
				}
			}
		}
		view2 := b.pub.Scan(pid)
		if equalViews(view, view2) {
			return total - claimed
		}
		view = view2
	}
}

// equalViews compares two publication views.
func equalViews(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
