package bag

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"testing"

	"slmem/internal/harness"
	"slmem/internal/lincheck"
	"slmem/internal/spec"
)

// runBurst drives one burst of concurrent bag traffic through the POOLED
// path (pids leased per call, like real service traffic) and records the
// outcome-refined history: each remove is recorded as "remove(item)" or as
// "remove()" when it reported empty, so the nondeterministic bag checks
// against the deterministic refined spec.Bag. Recorder pids are client
// ids: the checker's happens-before comes from the recorder's global
// clock, and spec.Bag ignores pids.
func runBurst(t *testing.T, burst, clients, opsPer int, rec *harness.Recorder) {
	t.Helper()
	pb := NewPooled(3) // pool smaller than client count: leases contend
	ctx := context.Background()
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				switch (g + i) % 3 {
				case 0:
					x := fmt.Sprintf("b%dg%di%d", burst, g, i)
					tok := rec.Invoke(g, "insert("+x+")")
					if err := pb.Insert(ctx, x); err != nil {
						t.Error(err)
						return
					}
					tok.Return("ok")
				case 1:
					tok := rec.Invoke(g, "remove()")
					item, ok, err := pb.Remove(ctx)
					if err != nil {
						t.Error(err)
						return
					}
					if ok {
						tok.ReturnRefined("remove("+item+")", item)
					} else {
						tok.ReturnRefined("remove()", spec.Bot)
					}
				default:
					tok := rec.Invoke(g, "size()")
					n, err := pb.Size(ctx)
					if err != nil {
						t.Error(err)
						return
					}
					tok.Return(strconv.Itoa(n))
				}
			}
		}()
	}
	wg.Wait()
}

// TestBagPooledLinearizable checks recorded bursts of pooled bag traffic
// for linearizability against the refined bag specification.
func TestBagPooledLinearizable(t *testing.T) {
	bursts := 60
	if testing.Short() {
		bursts = 15
	}
	err := harness.CheckNativeBursts(spec.Bag{}, bursts, func(burst int, rec *harness.Recorder) {
		runBurst(t, burst, 4, 3, rec)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestBagPooledStrongChains checks the per-execution necessary condition
// for strong linearizability on histories recorded through the pooled
// path: CheckStrong over the prefix chain of each burst must find a
// prefix-preserving linearization function — once an operation linearizes
// at some cut, no later cut may need to reorder it.
func TestBagPooledStrongChains(t *testing.T) {
	bursts := 40
	if testing.Short() {
		bursts = 10
	}
	rec := harness.NewRecorder()
	for burst := 0; burst < bursts; burst++ {
		rec.Reset()
		runBurst(t, burst, 4, 3, rec)
		h := rec.History()
		if len(h.Ops) > 62 {
			t.Fatalf("burst %d recorded %d ops, max 62", burst, len(h.Ops))
		}
		res, err := lincheck.CheckStrong(lincheck.ChainFromHistory(h), spec.Bag{})
		if err != nil {
			t.Fatalf("burst %d: %v", burst, err)
		}
		if !res.Ok {
			t.Fatalf("burst %d: no prefix-preserving linearization (fails at %s):\n%s",
				burst, res.FailNode, h)
		}
	}
}

// TestBagRefinedSpecSanity pins the refined specification's behavior: a
// refined remove can only linearize where its item is present, and an
// empty remove only on the empty bag.
func TestBagRefinedSpecSanity(t *testing.T) {
	sp := spec.Bag{}
	st := sp.Initial()
	if st != "{}" {
		t.Fatalf("initial = %q", st)
	}
	st, resp, err := sp.Apply(st, 0, "insert(a)")
	if err != nil || resp != "ok" {
		t.Fatalf("insert: %q %v", resp, err)
	}
	st, resp, err = sp.Apply(st, 1, "insert(a)")
	if err != nil || resp != "ok" || st != "a,a" {
		t.Fatalf("dup insert: state %q resp %q err %v", st, resp, err)
	}
	if _, resp, _ = sp.Apply(st, 0, "remove()"); resp != "nonempty" {
		t.Fatalf("refined empty remove on non-empty bag = %q", resp)
	}
	if _, resp, _ = sp.Apply(st, 0, "remove(zz)"); resp != "absent" {
		t.Fatalf("remove of absent item = %q", resp)
	}
	st, resp, err = sp.Apply(st, 0, "remove(a)")
	if err != nil || resp != "a" || st != "a" {
		t.Fatalf("remove: state %q resp %q err %v", st, resp, err)
	}
	if _, resp, _ = sp.Apply(st, 0, "size()"); resp != "1" {
		t.Fatalf("size = %q", resp)
	}
	st, resp, err = sp.Apply(st, 0, "remove(a)")
	if err != nil || resp != "a" || st != "{}" {
		t.Fatalf("last remove: state %q resp %q err %v", st, resp, err)
	}
	if _, resp, _ = sp.Apply(st, 0, "remove()"); resp != spec.Bot {
		t.Fatalf("empty remove on empty bag = %q, want %q", resp, spec.Bot)
	}
}
