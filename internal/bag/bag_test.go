package bag

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

func TestBagSequentialBasics(t *testing.T) {
	b := New(2)
	if n := b.Size(0); n != 0 {
		t.Fatalf("fresh bag size = %d", n)
	}
	if item, ok := b.Remove(0); ok {
		t.Fatalf("remove from empty bag returned %q", item)
	}
	b.Insert(0, "a")
	b.Insert(1, "b")
	b.Insert(0, "a") // duplicates are kept: a bag, not a set
	if n := b.Size(1); n != 3 {
		t.Fatalf("size = %d, want 3", n)
	}
	got := map[string]int{}
	for i := 0; i < 3; i++ {
		item, ok := b.Remove(i % 2)
		if !ok {
			t.Fatalf("remove %d reported empty", i)
		}
		got[item]++
	}
	if got["a"] != 2 || got["b"] != 1 {
		t.Fatalf("removed multiset = %v, want a:2 b:1", got)
	}
	if n := b.Size(0); n != 0 {
		t.Fatalf("size after draining = %d", n)
	}
	if _, ok := b.Remove(0); ok {
		t.Fatal("drained bag still removes")
	}
}

// TestBagChunkBoundaries pushes one process's log across several chunks
// and drains it, exercising the linked-chunk walker on both the remove and
// size paths.
func TestBagChunkBoundaries(t *testing.T) {
	const items = 3*chunkSize + 7
	b := New(2)
	want := map[string]bool{}
	for i := 0; i < items; i++ {
		x := fmt.Sprintf("x%d", i)
		b.Insert(0, x)
		want[x] = true
	}
	if n := b.Size(1); n != items {
		t.Fatalf("size = %d, want %d", n, items)
	}
	for i := 0; i < items; i++ {
		item, ok := b.Remove(1)
		if !ok {
			t.Fatalf("remove %d reported empty", i)
		}
		if !want[item] {
			t.Fatalf("removed %q twice or never inserted", item)
		}
		delete(want, item)
	}
	if len(want) != 0 {
		t.Fatalf("items lost: %v", want)
	}
	if _, ok := b.Remove(0); ok {
		t.Fatal("drained bag still removes")
	}
}

// TestBagConservation is the core exclusivity check, run with real
// goroutines (and -race in CI): concurrent producers insert unique items
// while consumers remove; every item must be removed exactly once —
// the test&set arbitration may never hand one item to two removers, and
// claimed items may never resurface.
func TestBagConservation(t *testing.T) {
	const n = 8
	producers, perProducer := 4, 120
	if testing.Short() {
		producers, perProducer = 4, 40
	}
	pb := NewPooled(n)
	ctx := context.Background()

	var wg sync.WaitGroup
	removed := make(chan string, producers*perProducer)
	var consumers sync.WaitGroup
	stop := make(chan struct{})
	for c := 0; c < 3; c++ {
		consumers.Add(1)
		go func() {
			defer consumers.Done()
			for {
				item, ok, err := pb.Remove(ctx)
				if err != nil {
					t.Error(err)
					return
				}
				if ok {
					removed <- item
					continue
				}
				select {
				case <-stop:
					return
				default:
				}
			}
		}()
	}
	for p := 0; p < producers; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if err := pb.Insert(ctx, fmt.Sprintf("p%d-i%d", p, i)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	consumers.Wait()

	// Drain what the consumers left behind.
	for {
		item, ok, err := pb.Remove(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		removed <- item
	}
	close(removed)

	seen := map[string]bool{}
	for item := range removed {
		if seen[item] {
			t.Fatalf("item %q removed twice", item)
		}
		seen[item] = true
	}
	if got, want := len(seen), producers*perProducer; got != want {
		t.Fatalf("removed %d distinct items, want %d", got, want)
	}
	if n, err := pb.Size(ctx); err != nil || n != 0 {
		t.Fatalf("final size = %d, %v", n, err)
	}
	if pb.PIDs().InUse() != 0 {
		t.Fatalf("pids leaked: %d", pb.PIDs().InUse())
	}
}

// TestBagSizeNeverNegative hammers size against concurrent churn: whatever
// interleaving happens, a linearizable size can never be negative nor
// exceed the number of items ever inserted.
func TestBagSizeNeverNegative(t *testing.T) {
	const n = 4
	iters := 400
	if testing.Short() {
		iters = 100
	}
	pb := NewPooled(n)
	ctx := context.Background()
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				pb.Insert(ctx, fmt.Sprintf("g%d-%d", g, i))
				pb.Remove(ctx)
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		select {
		case <-done:
			return
		default:
		}
		sz, err := pb.Size(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if sz < 0 || sz > 2*iters {
			t.Fatalf("size = %d out of range [0,%d]", sz, 2*iters)
		}
	}
}
