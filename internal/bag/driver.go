package bag

import (
	"errors"
	"strconv"

	"slmem/internal/kind"
)

// The bag registers itself as the "bag" kind: importing this package is
// all it takes for the registry, the batch compiler, the HTTP server, and
// slbench to serve bags — none of those layers name the bag anywhere.
// The driver requests a dedicated pid pool, so bag traffic leases from its
// own pool of Procs ids and a hot bag cannot starve the shared-pool kinds
// (nor they it).
func init() {
	kind.Register(driver{})
}

// EmptyValue is the Value a remove op reports when the bag was observed
// empty (the paper's ⊥ as encoded by internal/spec). An item equal to
// EmptyValue is indistinguishable from an empty bag on the wire; insert
// therefore rejects it.
const EmptyValue = "_"

type driver struct{}

// Kind implements kind.Driver.
func (driver) Kind() string { return "bag" }

// Doc implements kind.Driver.
func (driver) Doc() string {
	return "strongly linearizable bag from registers + test&set, no CAS (Ellen & Sela 2024)"
}

// Ops implements kind.Driver.
func (driver) Ops() []kind.OpInfo {
	return []kind.OpInfo{
		{Name: "insert", Doc: "add value to the bag"},
		{Name: "remove", Doc: "take some item out (value " + EmptyValue + " when empty)"},
		{Name: "size", Doc: "count the items in the bag"},
	}
}

// Options implements kind.Driver: bags lease from a dedicated per-kind
// pool.
func (driver) Options() kind.Options { return kind.Options{DedicatedPool: true} }

// Validate implements kind.Driver.
func (driver) Validate(req kind.Request) error {
	switch req.Op {
	case "insert":
		if req.Value == "" {
			return errors.New("bag insert needs a non-empty value")
		}
		if req.Value == EmptyValue {
			return errors.New("bag insert value " + EmptyValue + " is reserved for the empty-remove response")
		}
		return nil
	case "remove", "size":
		return nil
	}
	return kind.NotFound("bag has no operation %q (want insert, remove, or size)", req.Op)
}

// Probe implements kind.Prober.
func (driver) Probe() kind.Request { return kind.Request{Op: "insert", Value: "probe"} }

// ProbeGrowth implements kind.GrowthProber: an insert-only probe accretes
// live cells for its whole duration (chunk recycling only reclaims claimed
// cells, and nothing removes).
func (driver) ProbeGrowth() bool { return true }

// New implements kind.Driver.
func (driver) New(env kind.Env) (kind.Instance, error) {
	inst := &instance{pooled: New(env.Procs).Pooled(env.Pool)}
	inst.remove = removeOp{inst.pooled.Unpooled()}
	inst.size = sizeOp{inst.pooled.Unpooled()}
	return inst, nil
}

// instance adapts one PooledBag to the driver codec, caching the
// operandless compiled ops.
type instance struct {
	pooled *PooledBag
	remove removeOp
	size   sizeOp
}

// Compile implements kind.Instance. Only insert carries an operand to
// check; remove and size return the cached compiled ops without re-running
// the validation the dispatch paths already performed.
func (b *instance) Compile(req kind.Request) (kind.Compiled, error) {
	switch req.Op {
	case "insert":
		if err := (driver{}).Validate(req); err != nil {
			return nil, err
		}
		return insertOp{b.pooled.Unpooled(), req.Value}, nil
	case "remove":
		return b.remove, nil
	case "size":
		return b.size, nil
	}
	return nil, kind.NotFound("bag has no operation %q (want insert, remove, or size)", req.Op)
}

// Unwrap implements kind.Unwrapper, exposing the *PooledBag.
func (b *instance) Unwrap() any { return b.pooled }

// insertOp is the compiled insert with its operand.
type insertOp struct {
	b *Bag
	x string
}

// Run implements kind.Compiled.
func (op insertOp) Run(pid int) (kind.Result, error) {
	op.b.Insert(pid, op.x)
	return kind.Result{}, nil
}

// removeOp is the compiled remove.
type removeOp struct{ b *Bag }

// Run implements kind.Compiled.
func (op removeOp) Run(pid int) (kind.Result, error) {
	item, ok := op.b.Remove(pid)
	if !ok {
		item = EmptyValue
	}
	return kind.Result{Value: item}, nil
}

// sizeOp is the compiled size.
type sizeOp struct{ b *Bag }

// Run implements kind.Compiled.
func (op sizeOp) Run(pid int) (kind.Result, error) {
	return kind.Result{Value: strconv.Itoa(op.b.Size(pid))}, nil
}
