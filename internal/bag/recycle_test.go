package bag

import (
	"fmt"
	"sync"
	"testing"
)

// TestChurnBoundedSpace pins the recycling bound: under sustained
// insert/remove churn the number of reachable cells stays bounded by a
// small constant, no matter how many items pass through the bag.
func TestChurnBoundedSpace(t *testing.T) {
	const rounds = 50 * chunkSize // ~3200 items through a 1-process bag
	b := New(1)
	for i := 0; i < rounds; i++ {
		b.Insert(0, "x")
		if _, ok := b.Remove(0); !ok {
			t.Fatalf("round %d: remove found the bag empty", i)
		}
	}
	st := b.Stats(0)
	if st.Published != rounds {
		t.Fatalf("Published = %d, want %d", st.Published, rounds)
	}
	// Everything removed: only the open tail chunk (and at most one
	// not-yet-compacted predecessor) may still be reachable.
	if st.LiveCells > 2*chunkSize {
		t.Errorf("LiveCells = %d after full churn, want <= %d (recycling failed to bound space)",
			st.LiveCells, 2*chunkSize)
	}
	if st.RecycledChunks < rounds/chunkSize-2 {
		t.Errorf("RecycledChunks = %d, want >= %d", st.RecycledChunks, rounds/chunkSize-2)
	}
	if got := b.Size(0); got != 0 {
		t.Errorf("Size = %d, want 0", got)
	}
}

// TestChurnWithResidentItems keeps a fixed population of live items while
// churning many more through: live space must track the population, not
// the insert total.
func TestChurnWithResidentItems(t *testing.T) {
	const resident = 10
	const rounds = 30 * chunkSize
	b := New(2)
	for i := 0; i < resident; i++ {
		b.Insert(0, fmt.Sprintf("resident-%d", i))
	}
	for i := 0; i < rounds; i++ {
		b.Insert(i%2, "transient")
		if _, ok := b.Remove((i + 1) % 2); !ok {
			t.Fatalf("round %d: remove found the bag empty", i)
		}
	}
	if got := b.Size(0); got != resident {
		t.Fatalf("Size = %d, want %d", got, resident)
	}
	st := b.Stats(1)
	// The resident items pin their chunks; everything else recycles up to
	// per-process tails and fragmentation.
	limit := (resident + 2*2) * chunkSize
	if st.LiveCells > limit {
		t.Errorf("LiveCells = %d, want <= %d (%d residents should pin O(resident+tails) chunks)",
			st.LiveCells, limit, resident)
	}
	if st.RecycledChunks == 0 {
		t.Error("no chunks recycled despite heavy churn")
	}
}

// TestRecycledValuesNeverResurface drains a churned bag and checks every
// removed item is one that was inserted and never handed out twice —
// recycling must not let a TAS win land on a reused cell.
func TestRecycledValuesNeverResurface(t *testing.T) {
	const rounds = 10 * chunkSize
	b := New(1)
	seen := make(map[string]bool)
	for i := 0; i < rounds; i++ {
		v := fmt.Sprintf("item-%d", i)
		b.Insert(0, v)
		got, ok := b.Remove(0)
		if !ok {
			t.Fatalf("round %d: bag empty", i)
		}
		if seen[got] {
			t.Fatalf("round %d: item %q removed twice", i, got)
		}
		seen[got] = true
	}
	if len(seen) != rounds {
		t.Fatalf("removed %d distinct items, want %d", len(seen), rounds)
	}
}

// TestConcurrentChurnRecycling races removers and a sizer against inserting
// owners (run with -race): recycling sweeps run concurrently with walkers
// holding unlinked chunks, and every item must be removed exactly once.
func TestConcurrentChurnRecycling(t *testing.T) {
	const n = 4
	const perProc = 8 * chunkSize
	b := New(n)
	var wg sync.WaitGroup
	removed := make([][]string, n/2)

	// Two inserting owners, one remover, one sizer/stats walker.
	for p := 0; p < n/2; p++ {
		p := p
		wg.Add(2)
		go func() { // inserter on pid p
			defer wg.Done()
			for i := 0; i < perProc; i++ {
				b.Insert(p, fmt.Sprintf("p%d-%d", p, i))
			}
		}()
		go func() { // remover on pid n/2+p
			defer wg.Done()
			pid := n/2 + p
			for len(removed[p]) < perProc {
				if v, ok := b.Remove(pid); ok {
					removed[p] = append(removed[p], v)
				} else if pid == n-1 {
					b.Stats(pid) // exercise the stats walker under race too
				}
			}
		}()
	}
	wg.Wait()

	seen := make(map[string]bool)
	for _, batch := range removed {
		for _, v := range batch {
			if seen[v] {
				t.Fatalf("item %q removed twice", v)
			}
			seen[v] = true
		}
	}
	if len(seen) != n/2*perProc {
		t.Fatalf("removed %d distinct items, want %d", len(seen), n/2*perProc)
	}
	if got := b.Size(0); got != 0 {
		t.Errorf("Size = %d after draining, want 0", got)
	}
	// Insert-time sweeps stop with the last insert; an explicit Compact by
	// each idle producer reclaims everything except its open tail chunk.
	for p := 0; p < n/2; p++ {
		b.Compact(p)
	}
	st := b.Stats(0)
	if st.LiveCells > n/2*chunkSize {
		t.Errorf("LiveCells = %d after drain+compact, want <= %d (one tail chunk per producer)",
			st.LiveCells, n/2*chunkSize)
	}
	if st.RecycledChunks < (n/2)*(perProc/chunkSize-1) {
		t.Errorf("RecycledChunks = %d, want >= %d", st.RecycledChunks, (n/2)*(perProc/chunkSize-1))
	}
}

// TestStatsAccounting cross-checks Stats fields against a known sequence.
func TestStatsAccounting(t *testing.T) {
	b := New(2)
	for i := 0; i < 5; i++ {
		b.Insert(0, "a")
	}
	b.Insert(1, "b")
	st := b.Stats(0)
	if st.Published != 6 || st.LiveCells != 6 || st.LiveClaimed != 0 || st.RecycledChunks != 0 {
		t.Fatalf("after 6 inserts: %+v", st)
	}
	if st.LiveChunks != 2 {
		t.Fatalf("LiveChunks = %d, want 2 (one per inserting process)", st.LiveChunks)
	}
	if _, ok := b.Remove(0); !ok {
		t.Fatal("remove failed")
	}
	st = b.Stats(0)
	if st.LiveClaimed != 1 || st.LiveCells != 6 {
		t.Fatalf("after one remove: %+v", st)
	}
}

// claimFiat marks cell (c, i) claimed outside any Remove, standing in for a
// remover that happened to claim exactly that cell: the bag's invariants
// only require claimed bits to be monotone, never contiguous.
func claimFiat(t *testing.T, c *chunk, i int) {
	t.Helper()
	if !c.tas(i) {
		t.Fatalf("cell %d already claimed", i)
	}
}

// TestStragglerChunkMigratesAndUnlinks pins the fragmentation fix: a chunk
// left with a single unclaimed cell is migrated — the owner claims the
// straggler and republishes it at the tail — and then unlinks, instead of
// pinning chunkSize cells forever.
func TestStragglerChunkMigratesAndUnlinks(t *testing.T) {
	b := New(1)
	for i := 0; i < 2*chunkSize; i++ {
		b.Insert(0, fmt.Sprintf("item-%d", i))
	}
	// Strand one straggler: claim every cell of the head chunk except the
	// last. Before the fix this chunk could never recycle.
	head := b.logs[0].head.Load()
	for i := 0; i < chunkSize-1; i++ {
		claimFiat(t, head, i)
	}
	if freed := b.Compact(0); freed < 1 {
		t.Fatalf("Compact freed %d chunks, want >= 1 (straggler chunk should migrate and unlink)", freed)
	}
	st := b.Stats(0)
	if st.MigratedCells != 1 {
		t.Errorf("MigratedCells = %d, want 1", st.MigratedCells)
	}
	if st.RecycledChunks < 1 {
		t.Errorf("RecycledChunks = %d, want >= 1", st.RecycledChunks)
	}
	if b.logs[0].head.Load() == head {
		t.Error("straggler chunk still linked as head after Compact")
	}
	if tc := b.logs[0].transit.Load(); tc%2 != 0 {
		t.Errorf("transit counter = %d after Compact, want even", tc)
	}
	// The migrated item and the second chunk's items are all still here,
	// exactly once each.
	want := chunkSize + 1
	if got := b.Size(0); got != want {
		t.Fatalf("Size = %d after migration, want %d", got, want)
	}
	seen := make(map[string]bool)
	for i := 0; i < want; i++ {
		v, ok := b.Remove(0)
		if !ok {
			t.Fatalf("drain %d: bag empty early", i)
		}
		if seen[v] {
			t.Fatalf("item %q removed twice (migration duplicated it)", v)
		}
		seen[v] = true
	}
	if !seen[fmt.Sprintf("item-%d", chunkSize-1)] {
		t.Error("the migrated straggler was never removed")
	}
	if _, ok := b.Remove(0); ok {
		t.Error("bag should be empty after draining")
	}
}

// TestMigrationRacesRemovers races the owner's migrating Compact against a
// remover gunning for the same straggler cell (run with -race): exactly one
// of them wins the item, nothing is duplicated or lost, and the empty/size
// double collects never linearize against the half-moved item.
func TestMigrationRacesRemovers(t *testing.T) {
	iters := 200
	if testing.Short() {
		iters = 40
	}
	for it := 0; it < iters; it++ {
		b := New(2)
		for i := 0; i < chunkSize+1; i++ {
			b.Insert(0, fmt.Sprintf("item-%d", i))
		}
		head := b.logs[0].head.Load()
		for i := 0; i < chunkSize-1; i++ {
			claimFiat(t, head, i)
		}
		// Bag now holds the straggler and the one tail item.
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { // owner: migrating sweeps
			defer wg.Done()
			b.Compact(0)
			b.Compact(0)
		}()
		removed := make([]string, 0, 2)
		go func() { // remover: drain both items
			defer wg.Done()
			for len(removed) < 2 {
				if v, ok := b.Remove(1); ok {
					removed = append(removed, v)
				}
			}
		}()
		wg.Wait()
		if removed[0] == removed[1] {
			t.Fatalf("iter %d: item %q removed twice", it, removed[0])
		}
		if got := b.Size(0); got != 0 {
			t.Fatalf("iter %d: Size = %d after drain, want 0", it, got)
		}
		if tc := b.logs[0].transit.Load(); tc%2 != 0 {
			t.Fatalf("iter %d: transit counter = %d, want even", it, tc)
		}
		b.Compact(0)
		if st := b.Stats(0); st.LiveCells > chunkSize {
			t.Fatalf("iter %d: LiveCells = %d after drain+compact, want <= one tail chunk", it, st.LiveCells)
		}
	}
}

// TestChurnWithStragglersBoundedSpace drives churn that continually strands
// stragglers and checks migration keeps reachable space bounded: without
// it, every stranded chunk would stay live and space would grow with the
// churn total.
func TestChurnWithStragglersBoundedSpace(t *testing.T) {
	const rounds = 40
	b := New(1)
	next := 0
	for r := 0; r < rounds; r++ {
		// Fill two chunks, strand one straggler in the first by claiming
		// around it, drain the rest through Remove.
		for i := 0; i < 2*chunkSize; i++ {
			b.Insert(0, fmt.Sprintf("item-%d", next))
			next++
		}
		for i := 0; i < 2*chunkSize-1; i++ {
			if _, ok := b.Remove(0); !ok {
				t.Fatalf("round %d: bag empty early", r)
			}
		}
		// One item per round survives; migration must keep repacking the
		// survivors so live space tracks the survivor count, not rounds.
	}
	b.Compact(0)
	st := b.Stats(0)
	if got := b.Size(0); got != rounds {
		t.Fatalf("Size = %d, want %d survivors", got, rounds)
	}
	// rounds survivors fit in O(rounds/chunkSize) chunks once migrated;
	// allow generous slack for the open tail and not-yet-migrated chunks.
	limit := (rounds/chunkSize + 4) * chunkSize
	if st.LiveCells > limit {
		t.Errorf("LiveCells = %d, want <= %d (migration failed to repack stragglers)", st.LiveCells, limit)
	}
	if st.MigratedCells == 0 {
		t.Error("no cells migrated despite stranded survivors")
	}
}
