package bag

import (
	"fmt"
	"sync"
	"testing"
)

// TestChurnBoundedSpace pins the recycling bound: under sustained
// insert/remove churn the number of reachable cells stays bounded by a
// small constant, no matter how many items pass through the bag.
func TestChurnBoundedSpace(t *testing.T) {
	const rounds = 50 * chunkSize // ~3200 items through a 1-process bag
	b := New(1)
	for i := 0; i < rounds; i++ {
		b.Insert(0, "x")
		if _, ok := b.Remove(0); !ok {
			t.Fatalf("round %d: remove found the bag empty", i)
		}
	}
	st := b.Stats(0)
	if st.Published != rounds {
		t.Fatalf("Published = %d, want %d", st.Published, rounds)
	}
	// Everything removed: only the open tail chunk (and at most one
	// not-yet-compacted predecessor) may still be reachable.
	if st.LiveCells > 2*chunkSize {
		t.Errorf("LiveCells = %d after full churn, want <= %d (recycling failed to bound space)",
			st.LiveCells, 2*chunkSize)
	}
	if st.RecycledChunks < rounds/chunkSize-2 {
		t.Errorf("RecycledChunks = %d, want >= %d", st.RecycledChunks, rounds/chunkSize-2)
	}
	if got := b.Size(0); got != 0 {
		t.Errorf("Size = %d, want 0", got)
	}
}

// TestChurnWithResidentItems keeps a fixed population of live items while
// churning many more through: live space must track the population, not
// the insert total.
func TestChurnWithResidentItems(t *testing.T) {
	const resident = 10
	const rounds = 30 * chunkSize
	b := New(2)
	for i := 0; i < resident; i++ {
		b.Insert(0, fmt.Sprintf("resident-%d", i))
	}
	for i := 0; i < rounds; i++ {
		b.Insert(i%2, "transient")
		if _, ok := b.Remove((i + 1) % 2); !ok {
			t.Fatalf("round %d: remove found the bag empty", i)
		}
	}
	if got := b.Size(0); got != resident {
		t.Fatalf("Size = %d, want %d", got, resident)
	}
	st := b.Stats(1)
	// The resident items pin their chunks; everything else recycles up to
	// per-process tails and fragmentation.
	limit := (resident + 2*2) * chunkSize
	if st.LiveCells > limit {
		t.Errorf("LiveCells = %d, want <= %d (%d residents should pin O(resident+tails) chunks)",
			st.LiveCells, limit, resident)
	}
	if st.RecycledChunks == 0 {
		t.Error("no chunks recycled despite heavy churn")
	}
}

// TestRecycledValuesNeverResurface drains a churned bag and checks every
// removed item is one that was inserted and never handed out twice —
// recycling must not let a TAS win land on a reused cell.
func TestRecycledValuesNeverResurface(t *testing.T) {
	const rounds = 10 * chunkSize
	b := New(1)
	seen := make(map[string]bool)
	for i := 0; i < rounds; i++ {
		v := fmt.Sprintf("item-%d", i)
		b.Insert(0, v)
		got, ok := b.Remove(0)
		if !ok {
			t.Fatalf("round %d: bag empty", i)
		}
		if seen[got] {
			t.Fatalf("round %d: item %q removed twice", i, got)
		}
		seen[got] = true
	}
	if len(seen) != rounds {
		t.Fatalf("removed %d distinct items, want %d", len(seen), rounds)
	}
}

// TestConcurrentChurnRecycling races removers and a sizer against inserting
// owners (run with -race): recycling sweeps run concurrently with walkers
// holding unlinked chunks, and every item must be removed exactly once.
func TestConcurrentChurnRecycling(t *testing.T) {
	const n = 4
	const perProc = 8 * chunkSize
	b := New(n)
	var wg sync.WaitGroup
	removed := make([][]string, n/2)

	// Two inserting owners, one remover, one sizer/stats walker.
	for p := 0; p < n/2; p++ {
		p := p
		wg.Add(2)
		go func() { // inserter on pid p
			defer wg.Done()
			for i := 0; i < perProc; i++ {
				b.Insert(p, fmt.Sprintf("p%d-%d", p, i))
			}
		}()
		go func() { // remover on pid n/2+p
			defer wg.Done()
			pid := n/2 + p
			for len(removed[p]) < perProc {
				if v, ok := b.Remove(pid); ok {
					removed[p] = append(removed[p], v)
				} else if pid == n-1 {
					b.Stats(pid) // exercise the stats walker under race too
				}
			}
		}()
	}
	wg.Wait()

	seen := make(map[string]bool)
	for _, batch := range removed {
		for _, v := range batch {
			if seen[v] {
				t.Fatalf("item %q removed twice", v)
			}
			seen[v] = true
		}
	}
	if len(seen) != n/2*perProc {
		t.Fatalf("removed %d distinct items, want %d", len(seen), n/2*perProc)
	}
	if got := b.Size(0); got != 0 {
		t.Errorf("Size = %d after draining, want 0", got)
	}
	// Insert-time sweeps stop with the last insert; an explicit Compact by
	// each idle producer reclaims everything except its open tail chunk.
	for p := 0; p < n/2; p++ {
		b.Compact(p)
	}
	st := b.Stats(0)
	if st.LiveCells > n/2*chunkSize {
		t.Errorf("LiveCells = %d after drain+compact, want <= %d (one tail chunk per producer)",
			st.LiveCells, n/2*chunkSize)
	}
	if st.RecycledChunks < (n/2)*(perProc/chunkSize-1) {
		t.Errorf("RecycledChunks = %d, want >= %d", st.RecycledChunks, (n/2)*(perProc/chunkSize-1))
	}
}

// TestStatsAccounting cross-checks Stats fields against a known sequence.
func TestStatsAccounting(t *testing.T) {
	b := New(2)
	for i := 0; i < 5; i++ {
		b.Insert(0, "a")
	}
	b.Insert(1, "b")
	st := b.Stats(0)
	if st.Published != 6 || st.LiveCells != 6 || st.LiveClaimed != 0 || st.RecycledChunks != 0 {
		t.Fatalf("after 6 inserts: %+v", st)
	}
	if st.LiveChunks != 2 {
		t.Fatalf("LiveChunks = %d, want 2 (one per inserting process)", st.LiveChunks)
	}
	if _, ok := b.Remove(0); !ok {
		t.Fatal("remove failed")
	}
	st = b.Stats(0)
	if st.LiveClaimed != 1 || st.LiveCells != 6 {
		t.Fatalf("after one remove: %+v", st)
	}
}
