// These tests prove the acceptance criterion of the kind-driver redesign:
// the bag is served over HTTP — single ops, batches, introspection, stats —
// purely by having registered its driver (importing this package), with
// zero edits to internal/registry or internal/server. They therefore live
// here, next to the driver, not in the server package.
package bag_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"slmem/internal/bag"
	"slmem/internal/kind"
	"slmem/internal/registry"
	"slmem/internal/server"
)

func testServer(t *testing.T, procs int) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(server.New(registry.Options{Procs: procs, Shards: 4}))
	t.Cleanup(ts.Close)
	return ts
}

func post(t *testing.T, client *http.Client, url string, body any) (int, server.Response) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	res, err := client.Post(url, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var r server.Response
	if err := json.NewDecoder(res.Body).Decode(&r); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return res.StatusCode, r
}

func TestBagHTTPRoundTrip(t *testing.T) {
	ts := testServer(t, 4)
	client := ts.Client()

	for _, v := range []string{"x", "y"} {
		if code, r := post(t, client, ts.URL+"/v1/bag/jobs/insert", server.Request{Value: v}); code != 200 || !r.OK {
			t.Fatalf("insert %s: code=%d resp=%+v", v, code, r)
		}
	}
	code, r := post(t, client, ts.URL+"/v1/bag/jobs/size", nil)
	if code != 200 || r.Value != "2" {
		t.Fatalf("size: code=%d resp=%+v, want 2", code, r)
	}
	got := map[string]bool{}
	for i := 0; i < 2; i++ {
		code, r = post(t, client, ts.URL+"/v1/bag/jobs/remove", nil)
		if code != 200 || !r.OK {
			t.Fatalf("remove: code=%d resp=%+v", code, r)
		}
		got[r.Value] = true
	}
	if !got["x"] || !got["y"] {
		t.Fatalf("removed %v, want x and y", got)
	}
	code, r = post(t, client, ts.URL+"/v1/bag/jobs/remove", nil)
	if code != 200 || r.Value != bag.EmptyValue {
		t.Fatalf("empty remove: code=%d resp=%+v, want value %q", code, r, bag.EmptyValue)
	}
}

func TestBagHTTPErrorStatuses(t *testing.T) {
	ts := testServer(t, 2)
	client := ts.Client()
	cases := []struct {
		name string
		url  string
		body any
		want int
	}{
		{"unknown op", "/v1/bag/b/pop", nil, 404},
		{"empty insert value", "/v1/bag/b/insert", server.Request{}, 400},
		{"reserved insert value", "/v1/bag/b/insert", server.Request{Value: bag.EmptyValue}, 400},
	}
	for _, tc := range cases {
		code, r := post(t, client, ts.URL+tc.url, tc.body)
		if code != tc.want || r.OK || r.Error == "" {
			t.Errorf("%s: code=%d resp=%+v, want status %d with error", tc.name, code, r, tc.want)
		}
	}
	// Doomed requests must not have registered a bag.
	var st server.Stats
	res, err := client.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if err := json.NewDecoder(res.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Registry.Objects["bag"] != 0 {
		t.Errorf("doomed requests created %d bag(s)", st.Registry.Objects["bag"])
	}
}

func TestBagBatchMixedWithSharedKinds(t *testing.T) {
	ts := testServer(t, 4)
	entries := []server.BatchEntry{
		{Kind: "bag", Name: "jobs", Op: "insert", Value: "a"},
		{Kind: "counter", Name: "c", Op: "inc"},
		{Kind: "bag", Name: "jobs", Op: "insert", Value: "b"},
		{Kind: "bag", Name: "jobs", Op: "size"},
		{Kind: "bag", Name: "jobs", Op: "remove"},
		{Kind: "counter", Name: "c", Op: "read"},
	}
	body, err := json.Marshal(entries)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ts.Client().Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var r server.BatchResponse
	if err := json.NewDecoder(res.Body).Decode(&r); err != nil {
		t.Fatal(err)
	}
	if res.StatusCode != 200 || !r.OK {
		t.Fatalf("batch: code=%d resp=%+v", res.StatusCode, r)
	}
	if r.Results[3].Value != "2" {
		t.Errorf("bag size mid-batch = %q, want 2", r.Results[3].Value)
	}
	if v := r.Results[4].Value; v != "a" && v != "b" {
		t.Errorf("bag remove = %q, want a or b", v)
	}
	if r.Results[5].Value != "1" {
		t.Errorf("counter read = %q, want 1", r.Results[5].Value)
	}
	// One lease on the shared pool + one on the bag's dedicated pool.
	if r.Stats.Leases != 2 {
		t.Errorf("leases = %d, want 2 (shared + dedicated bag pool)", r.Stats.Leases)
	}

	var st server.Stats
	res2, err := ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer res2.Body.Close()
	if err := json.NewDecoder(res2.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	kp, ok := st.Registry.KindPools["bag"]
	if !ok {
		t.Fatalf("stats missing bag kind pool: %+v", st.Registry.KindPools)
	}
	if kp.Pool.Acquires != 1 || kp.PIDsInUse != 0 {
		t.Errorf("bag pool stats = %+v, want 1 acquire, 0 in use", kp)
	}
	if st.Ops["bag"] != 4 {
		t.Errorf("ops[bag] = %d, want 4", st.Ops["bag"])
	}
}

func TestBagListedInKinds(t *testing.T) {
	ts := testServer(t, 2)
	res, err := ts.Client().Get(ts.URL + "/v1/kinds")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var kr server.KindsResponse
	if err := json.NewDecoder(res.Body).Decode(&kr); err != nil {
		t.Fatal(err)
	}
	for _, info := range kr.Kinds {
		if info.Kind != "bag" {
			continue
		}
		if !info.DedicatedPool {
			t.Error("bag not marked dedicated_pool")
		}
		if len(info.Ops) != 3 {
			t.Errorf("bag ops = %+v, want insert/remove/size", info.Ops)
		}
		return
	}
	t.Fatalf("bag missing from /v1/kinds: %+v", kr.Kinds)
}

// TestBagRegistryAccess exercises the generic registry path the typed
// accessors do not cover: Get + Unwrap hands back the PooledBag, and a hot
// bag's operations lease from the dedicated pool, not the shared one.
func TestBagRegistryAccess(t *testing.T) {
	r := registry.New(registry.Options{Procs: 2})
	inst, pool, err := r.Get("bag", "jobs", kind.Request{Op: "size"})
	if err != nil {
		t.Fatal(err)
	}
	if pool == r.Pool() {
		t.Fatal("bag instance on the shared pool")
	}
	pb, ok := inst.(kind.Unwrapper).Unwrap().(*bag.PooledBag)
	if !ok {
		t.Fatalf("Unwrap returned %T", inst.(kind.Unwrapper).Unwrap())
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if err := pb.Insert(ctx, fmt.Sprintf("g%d-%d", g, i)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if n, err := pb.Size(ctx); err != nil || n != 160 {
		t.Fatalf("size = %d, %v; want 160", n, err)
	}
	if r.Pool().Stats().Acquires != 0 {
		t.Errorf("bag traffic leased %d times from the shared pool", r.Pool().Stats().Acquires)
	}
	if st := r.Stats(); st.KindPools["bag"].Pool.Acquires == 0 {
		t.Error("bag traffic did not lease from the dedicated pool")
	}
}
