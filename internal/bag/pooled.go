package bag

import (
	"context"

	"slmem"
)

// PooledBag is a Bag whose operations lease a pid per call, so any
// goroutine may use it without pid management. Each Insert, Remove, and
// Size is strongly linearizable: it runs as the leased process, and once
// linearized its position in the linearization order never changes (the
// lease itself adds no ordering between calls, as for every pooled wrapper
// in this repo).
type PooledBag struct {
	b    *Bag
	pids *slmem.PIDPool
}

// NewPooled constructs a bag for n processes with its own pid pool.
func NewPooled(n int) *PooledBag {
	return New(n).Pooled(slmem.NewPIDPool(n))
}

// Pooled binds the bag to a pid pool (sized for the same n).
func (b *Bag) Pooled(p *slmem.PIDPool) *PooledBag { return &PooledBag{b: b, pids: p} }

// Insert leases a pid and adds x to the bag.
func (p *PooledBag) Insert(ctx context.Context, x string) error {
	return p.pids.With(ctx, func(pid int) error {
		p.b.Insert(pid, x)
		return nil
	})
}

// Remove leases a pid and takes some item out of the bag; ok is false when
// the bag was observed empty.
func (p *PooledBag) Remove(ctx context.Context) (item string, ok bool, err error) {
	err = p.pids.With(ctx, func(pid int) error {
		item, ok = p.b.Remove(pid)
		return nil
	})
	return item, ok, err
}

// Size leases a pid and returns the number of items in the bag.
func (p *PooledBag) Size(ctx context.Context) (int, error) {
	var n int
	err := p.pids.With(ctx, func(pid int) error {
		n = p.b.Size(pid)
		return nil
	})
	return n, err
}

// Stats leases a pid and reports the bag's space counters.
func (p *PooledBag) Stats(ctx context.Context) (BagStats, error) {
	var st BagStats
	err := p.pids.With(ctx, func(pid int) error {
		st = p.b.Stats(pid)
		return nil
	})
	return st, err
}

// Unpooled returns the underlying Bag.
func (p *PooledBag) Unpooled() *Bag { return p.b }

// PIDs returns the pool of process ids backing this bag.
func (p *PooledBag) PIDs() *slmem.PIDPool { return p.pids }
