package server

import (
	"encoding/json"
	"strconv"
	"unicode/utf8"

	"slmem/internal/kind"
	"slmem/internal/registry"
)

// intern resolves b against the driver registry's vocabulary (kind names,
// op names, reserved introspection ops) without allocating, falling back to
// a fresh string for anything outside it. Batch bodies repeat kind and op
// in every entry, so this removes two allocations per entry on the common
// path.
func intern(b []byte) string {
	if s, ok := kind.Intern(b); ok {
		return s
	}
	return string(b)
}

// fastDecodeBatch decodes a JSON array of flat batch entries — objects whose
// keys and values are plain strings — without encoding/json's per-entry
// reflection, which would otherwise dominate the cost of a large batch
// (roughly 800ns of the ~1.4us a batched op costs end to end).
//
// It is deliberately partial: any input outside the fast shape — escaped
// strings, non-string values, unknown keys, nested structures, or malformed
// JSON — returns ok=false, and the caller falls back to encoding/json for
// identical semantics (including the error message on truly bad input). The
// fast path therefore never changes what the endpoint accepts; it only
// changes how fast the common shape parses.
//
// Decoding stops once more than max entries appear (tooMany=true): the
// entry cap must bound allocation during decoding, not just be checked
// after an unbounded slice was built.
func fastDecodeBatch(data []byte, max int) (entries []registry.BatchOp, ok, tooMany bool) {
	p := fastParser{buf: data}
	p.ws()
	if !p.eat('[') {
		return nil, false, false
	}
	p.ws()
	if p.eat(']') {
		p.ws()
		return entries, p.done(), false
	}
	for {
		if len(entries) >= max {
			return nil, false, true
		}
		p.ws()
		if !p.eat('{') {
			return nil, false, false
		}
		var e registry.BatchOp
		p.ws()
		if !p.eat('}') {
			for {
				key, kok := p.str()
				if !kok {
					return nil, false, false
				}
				p.ws()
				if !p.eat(':') {
					return nil, false, false
				}
				p.ws()
				val, vok := p.str()
				if !vok {
					return nil, false, false
				}
				// string(key) in a switch does not allocate.
				switch string(key) {
				case "kind":
					e.Kind = registry.Kind(intern(val))
				case "name":
					e.Name = string(val)
				case "op":
					e.Op = registry.Op(intern(val))
				case "value":
					e.Value = string(val)
				case "type":
					e.Type = string(val)
				case "invocation":
					e.Invocation = string(val)
				default:
					// Unknown key: its value might not even be a string;
					// let encoding/json decide what to do with it.
					return nil, false, false
				}
				p.ws()
				if p.eat(',') {
					p.ws()
					continue
				}
				if p.eat('}') {
					break
				}
				return nil, false, false
			}
		}
		entries = append(entries, e)
		p.ws()
		if p.eat(',') {
			continue
		}
		if p.eat(']') {
			break
		}
		return nil, false, false
	}
	p.ws()
	return entries, p.done(), false
}

// fastDecodeRequest decodes a single-operation request body — a flat JSON
// object whose keys and values are plain strings — without encoding/json's
// reflection, the same trick fastDecodeBatch plays for batch bodies (the
// ROADMAP follow-up from the batch PR). Like it, the fast path is
// deliberately partial: escapes, non-string values, unknown keys, nested
// structures, or malformed JSON return ok=false and the caller falls back
// to encoding/json for identical accept/reject semantics.
func fastDecodeRequest(data []byte) (req Request, ok bool) {
	p := fastParser{buf: data}
	p.ws()
	if !p.eat('{') {
		return Request{}, false
	}
	p.ws()
	if !p.eat('}') {
		for {
			key, kok := p.str()
			if !kok {
				return Request{}, false
			}
			p.ws()
			if !p.eat(':') {
				return Request{}, false
			}
			p.ws()
			val, vok := p.str()
			if !vok {
				return Request{}, false
			}
			// string(key) in a switch does not allocate.
			switch string(key) {
			case "value":
				req.Value = string(val)
			case "type":
				req.Type = string(val)
			case "invocation":
				req.Invocation = string(val)
			default:
				// Unknown key: its value might not even be a string; let
				// encoding/json decide what to do with it.
				return Request{}, false
			}
			p.ws()
			if p.eat(',') {
				p.ws()
				continue
			}
			if p.eat('}') {
				break
			}
			return Request{}, false
		}
	}
	p.ws()
	return req, p.done()
}

// --- Fast-path response encoding ---------------------------------------------

// appendJSONString appends s as a JSON string literal, byte-identical to
// encoding/json's output. The fast path covers ASCII needing no escapes;
// anything else — control characters, quotes, backslashes, the
// HTML-escaped set (<, >, &), non-ASCII — is delegated to json.Marshal so
// the escaping rules (including U+2028/U+2029 and invalid-UTF-8
// replacement) stay exactly encoding/json's.
func appendJSONString(buf []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c >= 0x80 || c == '"' || c == '\\' || c == '<' || c == '>' || c == '&' {
			enc, err := json.Marshal(s)
			if err != nil {
				// Marshaling a string cannot fail; keep the reply valid JSON
				// if it somehow does.
				return append(buf, `""`...)
			}
			return append(buf, enc...)
		}
	}
	buf = append(buf, '"')
	buf = append(buf, s...)
	return append(buf, '"')
}

// appendResponse appends the JSON encoding of one Response, byte-identical
// to encoding/json's (field order, omitempty semantics).
func appendResponse(buf []byte, r Response) []byte {
	if r.OK {
		buf = append(buf, `{"ok":true`...)
	} else {
		buf = append(buf, `{"ok":false`...)
	}
	if r.Value != "" {
		buf = append(buf, `,"value":`...)
		buf = appendJSONString(buf, r.Value)
	}
	if len(r.View) > 0 {
		buf = append(buf, `,"view":[`...)
		for i, v := range r.View {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = appendJSONString(buf, v)
		}
		buf = append(buf, ']')
	}
	if r.Error != "" {
		buf = append(buf, `,"error":`...)
		buf = appendJSONString(buf, r.Error)
	}
	return append(buf, '}')
}

// appendBatchResponse appends the JSON encoding of a BatchResponse,
// byte-identical to encoding/json's. A 64-entry batch reply costs one
// buffer instead of a reflective walk over 64 structs — the encode-side
// half of the batch fast path (fastDecodeBatch is the decode-side half).
func appendBatchResponse(buf []byte, r BatchResponse) []byte {
	if r.OK {
		buf = append(buf, `{"ok":true`...)
	} else {
		buf = append(buf, `{"ok":false`...)
	}
	if len(r.Results) > 0 {
		buf = append(buf, `,"results":[`...)
		for i, res := range r.Results {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = appendResponse(buf, res)
		}
		buf = append(buf, ']')
	}
	buf = append(buf, `,"stats":{"ops":`...)
	buf = appendInt(buf, int64(r.Stats.Ops))
	buf = append(buf, `,"failed":`...)
	buf = appendInt(buf, int64(r.Stats.Failed))
	buf = append(buf, `,"leases":`...)
	buf = appendInt(buf, int64(r.Stats.Leases))
	buf = append(buf, `,"elapsed_us":`...)
	buf = appendInt(buf, r.Stats.ElapsedUS)
	buf = append(buf, '}')
	if r.Error != "" {
		buf = append(buf, `,"error":`...)
		buf = appendJSONString(buf, r.Error)
	}
	return append(buf, '}')
}

// appendInt appends the decimal encoding of n.
func appendInt(buf []byte, n int64) []byte {
	return strconv.AppendInt(buf, n, 10)
}

// fastParser is a cursor over a JSON document supporting exactly the tokens
// fastDecodeBatch needs.
type fastParser struct {
	buf []byte
	pos int
}

// ws skips JSON whitespace.
func (p *fastParser) ws() {
	for p.pos < len(p.buf) {
		switch p.buf[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

// eat consumes c if it is the next byte.
func (p *fastParser) eat(c byte) bool {
	if p.pos < len(p.buf) && p.buf[p.pos] == c {
		p.pos++
		return true
	}
	return false
}

// done reports whether the whole document was consumed.
func (p *fastParser) done() bool { return p.pos == len(p.buf) }

// str consumes a string literal and returns its raw bytes. It reports false
// on anything that is not a simple string: escapes (backslash), control
// characters, and invalid UTF-8 bail out so the fallback path handles them
// with full encoding/json fidelity (which replaces invalid sequences with
// U+FFFD — the fast path must not decode the same bytes differently).
func (p *fastParser) str() ([]byte, bool) {
	if !p.eat('"') {
		return nil, false
	}
	start := p.pos
	nonASCII := false
	for p.pos < len(p.buf) {
		c := p.buf[p.pos]
		if c == '"' {
			s := p.buf[start:p.pos]
			p.pos++
			// The scan above already proved pure-ASCII strings valid; only
			// strings with high bytes need the full UTF-8 check.
			if nonASCII && !utf8.Valid(s) {
				return nil, false
			}
			return s, true
		}
		if c == '\\' || c < 0x20 {
			return nil, false
		}
		nonASCII = nonASCII || c >= 0x80
		p.pos++
	}
	return nil, false
}
