package server

import (
	"unicode/utf8"

	"slmem/internal/registry"
)

// fastDecodeBatch decodes a JSON array of flat batch entries — objects whose
// keys and values are plain strings — without encoding/json's per-entry
// reflection, which would otherwise dominate the cost of a large batch
// (roughly 800ns of the ~1.4us a batched op costs end to end).
//
// It is deliberately partial: any input outside the fast shape — escaped
// strings, non-string values, unknown keys, nested structures, or malformed
// JSON — returns ok=false, and the caller falls back to encoding/json for
// identical semantics (including the error message on truly bad input). The
// fast path therefore never changes what the endpoint accepts; it only
// changes how fast the common shape parses.
//
// Decoding stops once more than max entries appear (tooMany=true): the
// entry cap must bound allocation during decoding, not just be checked
// after an unbounded slice was built.
func fastDecodeBatch(data []byte, max int) (entries []registry.BatchOp, ok, tooMany bool) {
	p := fastParser{buf: data}
	p.ws()
	if !p.eat('[') {
		return nil, false, false
	}
	p.ws()
	if p.eat(']') {
		p.ws()
		return entries, p.done(), false
	}
	for {
		if len(entries) >= max {
			return nil, false, true
		}
		p.ws()
		if !p.eat('{') {
			return nil, false, false
		}
		var e registry.BatchOp
		p.ws()
		if !p.eat('}') {
			for {
				key, kok := p.str()
				if !kok {
					return nil, false, false
				}
				p.ws()
				if !p.eat(':') {
					return nil, false, false
				}
				p.ws()
				val, vok := p.str()
				if !vok {
					return nil, false, false
				}
				// string(key) in a switch does not allocate.
				switch string(key) {
				case "kind":
					e.Kind = registry.Kind(val)
				case "name":
					e.Name = string(val)
				case "op":
					e.Op = registry.Op(val)
				case "value":
					e.Value = string(val)
				case "type":
					e.Type = string(val)
				case "invocation":
					e.Invocation = string(val)
				default:
					// Unknown key: its value might not even be a string;
					// let encoding/json decide what to do with it.
					return nil, false, false
				}
				p.ws()
				if p.eat(',') {
					p.ws()
					continue
				}
				if p.eat('}') {
					break
				}
				return nil, false, false
			}
		}
		entries = append(entries, e)
		p.ws()
		if p.eat(',') {
			continue
		}
		if p.eat(']') {
			break
		}
		return nil, false, false
	}
	p.ws()
	return entries, p.done(), false
}

// fastParser is a cursor over a JSON document supporting exactly the tokens
// fastDecodeBatch needs.
type fastParser struct {
	buf []byte
	pos int
}

// ws skips JSON whitespace.
func (p *fastParser) ws() {
	for p.pos < len(p.buf) {
		switch p.buf[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

// eat consumes c if it is the next byte.
func (p *fastParser) eat(c byte) bool {
	if p.pos < len(p.buf) && p.buf[p.pos] == c {
		p.pos++
		return true
	}
	return false
}

// done reports whether the whole document was consumed.
func (p *fastParser) done() bool { return p.pos == len(p.buf) }

// str consumes a string literal and returns its raw bytes. It reports false
// on anything that is not a simple string: escapes (backslash), control
// characters, and invalid UTF-8 bail out so the fallback path handles them
// with full encoding/json fidelity (which replaces invalid sequences with
// U+FFFD — the fast path must not decode the same bytes differently).
func (p *fastParser) str() ([]byte, bool) {
	if !p.eat('"') {
		return nil, false
	}
	start := p.pos
	for p.pos < len(p.buf) {
		c := p.buf[p.pos]
		if c == '"' {
			s := p.buf[start:p.pos]
			p.pos++
			if !utf8.Valid(s) {
				return nil, false
			}
			return s, true
		}
		if c == '\\' || c < 0x20 {
			return nil, false
		}
		p.pos++
	}
	return nil, false
}
