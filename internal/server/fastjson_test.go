package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"reflect"
	"testing"
	"time"

	"slmem/internal/registry"
)

// TestFastDecodeBatchMatchesEncodingJSON differentially checks the fast
// decoder: on every input it accepts, it must produce exactly what
// encoding/json produces; inputs it rejects must be either handled by the
// fallback or rejected by it too. The corpus covers the canonical shape,
// whitespace, duplicate keys, and every bail-out condition.
func TestFastDecodeBatchMatchesEncodingJSON(t *testing.T) {
	accept := []string{
		`[]`,
		`[{}]`,
		`[{"kind":"counter","name":"c","op":"inc"}]`,
		`[{"kind":"counter","name":"c","op":"inc"},{"kind":"maxreg","name":"m","op":"write","value":"7"}]`,
		`[{"kind":"object","name":"o","op":"execute","type":"set","invocation":"add(3)"}]`,
		`  [ { "kind" : "counter" , "name" : "c" , "op" : "inc" } ]  `,
		"\t[\n{\"kind\":\"snapshot\",\"name\":\"s\",\"op\":\"update\",\"value\":\"x y z\"}\r]\n",
		`[{"name":"dup","name":"wins"}]`, // duplicate key: last wins, same as encoding/json
		`[{},{},{}]`,
		`[{"kind":"snapshot","name":"board","op":"update","value":"héllo €100 日本"}]`, // valid UTF-8 stays on the fast path
	}
	for _, in := range accept {
		got, ok, tooMany := fastDecodeBatch([]byte(in), 1<<20)
		if tooMany {
			t.Errorf("fast path reported tooMany for small input %q", in)
			continue
		}
		if !ok {
			t.Errorf("fast path rejected canonical input %q", in)
			continue
		}
		var want []registry.BatchOp
		if err := json.Unmarshal([]byte(in), &want); err != nil {
			t.Fatalf("corpus input %q is not valid JSON: %v", in, err)
		}
		// fastDecodeBatch returns nil for an empty array where
		// encoding/json returns an empty slice; both mean "no entries".
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("input %q:\nfast = %+v\njson = %+v", in, got, want)
		}
	}

	// Inputs the fast path must hand to the fallback. Each is either valid
	// JSON with features the fast path skips (escapes, non-string values,
	// unknown keys) or malformed JSON the fallback rejects with its own
	// error; in both cases semantics come from encoding/json.
	fallback := []string{
		`[{"name":"with \"escape\""}]`,
		`[{"name":"tab\tchar"}]`,
		"[{\"name\":\"bad-utf8-\xff\"}]",       // invalid UTF-8: json decodes U+FFFD
		"[{\"name\":\"trunc-\xe2\x82\"}]",      // truncated multi-byte sequence
		"[{\"name\":\"ok-\xe2\x82\xac\",42}]",  // valid UTF-8 but malformed JSON
		`[{"name":"euro-€","op":"inc"}]` + "x", // valid unicode, trailing garbage
		`[{"kind":"counter","weird":42}]`,
		`[{"kind":"counter","nested":{"a":1}}]`,
		`[{"kind":null}]`,
		`[{"kind":"counter"}`,
		`{"kind":"counter"}`,
		`[{"kind":"counter"},]`,
		`[42]`,
		`nope`,
		``,
		`null`,
		`[[]]`,
		`[{"kind" "counter"}]`,
		`[{"kind":"counter"}] trailing`,
	}
	for _, in := range fallback {
		got, ok, tooMany := fastDecodeBatch([]byte(in), 1<<20)
		if tooMany {
			t.Errorf("fast path reported tooMany for small input %q", in)
			continue
		}
		if ok {
			var want []registry.BatchOp
			err := json.Unmarshal([]byte(in), &want)
			if err != nil || !reflect.DeepEqual(got, want) {
				t.Errorf("fast path accepted %q with result %+v; encoding/json says err=%v want=%+v", in, got, err, want)
			}
		}
	}

	// Round trip: whatever the server marshals, the fast path must decode.
	entries := []BatchEntry{
		{Kind: registry.KindCounter, Name: "clicks", Op: registry.OpInc},
		{Kind: registry.KindMaxRegister, Name: "peak", Op: registry.OpWrite, Value: "12"},
		{Kind: registry.KindObject, Name: "bag", Op: registry.OpExecute, Type: "set", Invocation: "contains(7)"},
	}
	body, err := json.Marshal(entries)
	if err != nil {
		t.Fatal(err)
	}
	got, ok, _ := fastDecodeBatch(body, 1<<20)
	if !ok {
		t.Fatalf("fast path rejected marshaled entries %s", body)
	}
	if !reflect.DeepEqual(got, entries) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, entries)
	}
}

// TestFastDecodeRequestMatchesEncodingJSON differentially checks the
// single-operation fast decoder against encoding/json, the same contract
// the batch decoder carries: every accepted input must produce exactly what
// encoding/json produces, and every rejected input must be handled (or
// rejected) identically by the fallback in decodeRequest.
func TestFastDecodeRequestMatchesEncodingJSON(t *testing.T) {
	accept := []string{
		`{}`,
		`{"value":"7"}`,
		`{"value":"x y z","type":"set","invocation":"add(3)"}`,
		`  { "type" : "set" , "invocation" : "contains(7)" }  `,
		"\t{\n\"value\":\"multi line ws\"\r}\n",
		`{"value":"dup","value":"wins"}`, // duplicate key: last wins, same as encoding/json
		`{"value":"héllo €100 日本"}`,      // valid UTF-8 stays on the fast path
	}
	for _, in := range accept {
		got, ok := fastDecodeRequest([]byte(in))
		if !ok {
			t.Errorf("fast path rejected canonical input %q", in)
			continue
		}
		var want Request
		if err := json.Unmarshal([]byte(in), &want); err != nil {
			t.Fatalf("corpus input %q is not valid JSON: %v", in, err)
		}
		if got != want {
			t.Errorf("input %q:\nfast = %+v\njson = %+v", in, got, want)
		}
	}

	// Inputs the fast path must hand to the fallback: valid JSON with
	// features it skips, or malformed JSON the fallback rejects.
	fallback := []string{
		`{"value":"with \"escape\""}`,
		"{\"value\":\"bad-utf8-\xff\"}",
		`{"value":42}`,
		`{"weird":"key"}`,
		`{"value":{"nested":1}}`,
		`{"value":"v"`,
		`["not","an","object"]`,
		`null`,
		`{"value" "v"}`,
		`{"value":"v"} trailing`,
		`nope`,
	}
	for _, in := range fallback {
		got, ok := fastDecodeRequest([]byte(in))
		if ok {
			var want Request
			err := json.Unmarshal([]byte(in), &want)
			if err != nil || got != want {
				t.Errorf("fast path accepted %q with result %+v; encoding/json says err=%v want=%+v", in, got, err, want)
			}
		}
		// Whatever the fast path does, decodeRequest must agree with
		// encoding/json end to end.
		dec, decErr := decodeRequest([]byte(in))
		var want Request
		jsonErr := json.Unmarshal([]byte(in), &want)
		if (decErr == nil) != (jsonErr == nil) {
			t.Errorf("decodeRequest(%q) err=%v, encoding/json err=%v", in, decErr, jsonErr)
			continue
		}
		if decErr == nil && dec != want {
			t.Errorf("decodeRequest(%q) = %+v, want %+v", in, dec, want)
		}
	}

	// An empty body is the zero request (operation bodies are optional).
	if req, err := decodeRequest(nil); err != nil || req != (Request{}) {
		t.Errorf("decodeRequest(empty) = %+v, %v", req, err)
	}

	// Round trip: whatever a client marshals, the fast path must decode.
	in := Request{Value: "12", Type: "set", Invocation: "add(1)"}
	body, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := fastDecodeRequest(body)
	if !ok || got != in {
		t.Fatalf("round trip: ok=%v got=%+v want=%+v", ok, got, in)
	}
}

// TestAppendResponseMatchesEncodingJSON differentially checks the
// reflection-free response encoders: their output must be byte-identical to
// what json.NewEncoder(w).Encode(resp) wrote before they existed — same
// field order, omitempty semantics, HTML escaping, and invalid-UTF-8
// replacement — on a corpus covering every field combination and every
// escape class.
func TestAppendResponseMatchesEncodingJSON(t *testing.T) {
	strs := []string{
		"", "12", "plain ascii", "x y z",
		`with "quotes"`, `back\slash`, "tab\tchar", "new\nline", "ctrl\x01",
		"<script>&amp;</script>", // encoding/json HTML-escapes these
		"héllo €100 日本",          // multi-byte UTF-8
		"bad-utf8-\xff",          // invalid: json encodes U+FFFD
		"trunc-\xe2\x82",         // truncated multi-byte sequence
		"line-sep\u2028and\u2029",
	}
	var responses []Response
	for _, s := range strs {
		responses = append(responses,
			Response{OK: true, Value: s},
			Response{Error: s},
			Response{OK: true, View: []string{s, "", s + s}},
		)
	}
	responses = append(responses,
		Response{},
		Response{OK: true},
		Response{OK: true, View: []string{}}, // empty view: omitempty drops it
		Response{OK: true, Value: "v", View: []string{"a"}, Error: "e"},
	)

	jsonEncode := func(v any) string {
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(v); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	for _, r := range responses {
		got := string(append(appendResponse(nil, r), '\n'))
		if want := jsonEncode(r); got != want {
			t.Errorf("Response %+v:\nfast = %q\njson = %q", r, got, want)
		}
	}

	batches := []BatchResponse{
		{},
		{Error: "lease: context canceled"},
		{OK: true, Results: []Response{}, Stats: BatchStats{Ops: 1}}, // empty results: omitempty drops them
		{OK: true, Results: responses, Stats: BatchStats{Ops: len(responses), Failed: 3, Leases: 2, ElapsedUS: 1234567}},
		{OK: false, Results: responses[:5], Stats: BatchStats{Ops: 5, Failed: 5}, Error: ""},
		{OK: false, Stats: BatchStats{ElapsedUS: -1}, Error: "batch exceeds 4 entries"},
	}
	for _, b := range batches {
		got := string(append(appendBatchResponse(nil, b), '\n'))
		if want := jsonEncode(b); got != want {
			t.Errorf("BatchResponse %+v:\nfast = %q\njson = %q", b, got, want)
		}
	}
}

// TestDecodeBatchEntriesCap checks that the entry cap bounds work during
// decoding on both paths: the fast path and the streaming encoding/json
// fallback must reject an over-limit body without materializing it.
func TestDecodeBatchEntriesCap(t *testing.T) {
	fastBody := []byte(`[{"op":"inc"},{"op":"inc"},{"op":"inc"}]`)
	// The escaped quote in the first entry forces the fallback path.
	slowBody := []byte(`[{"name":"a\"b"},{"op":"inc"},{"op":"inc"}]`)

	for _, tc := range []struct {
		name string
		body []byte
	}{{"fast", fastBody}, {"fallback", slowBody}} {
		if _, err := decodeBatchEntries(tc.body, 3); err != nil {
			t.Errorf("%s: 3 entries rejected at cap 3: %v", tc.name, err)
		}
		if _, err := decodeBatchEntries(tc.body, 2); !errors.Is(err, errBatchTooMany) {
			t.Errorf("%s: 3 entries at cap 2: err = %v, want errBatchTooMany", tc.name, err)
		}
	}

	// Decoding must stop at the cap: with cap 2, at most 3 entries may ever
	// be decoded from a huge body, which this keeps fast even for ~1M
	// entries. (A correctness proxy for the allocation bound.)
	huge := bytes.Repeat([]byte("{},"), 1<<20)
	huge = append([]byte{'['}, huge...)
	huge = append(huge[:len(huge)-1], ']')
	start := time.Now()
	if _, err := decodeBatchEntries(huge, 2); !errors.Is(err, errBatchTooMany) {
		t.Fatalf("huge batch at cap 2: err = %v, want errBatchTooMany", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("capped decode of huge body took %v; cap is not bounding work", d)
	}
}
