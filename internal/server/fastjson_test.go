package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"reflect"
	"testing"
	"time"

	"slmem/internal/registry"
)

// TestFastDecodeBatchMatchesEncodingJSON differentially checks the fast
// decoder: on every input it accepts, it must produce exactly what
// encoding/json produces; inputs it rejects must be either handled by the
// fallback or rejected by it too. The corpus covers the canonical shape,
// whitespace, duplicate keys, and every bail-out condition.
func TestFastDecodeBatchMatchesEncodingJSON(t *testing.T) {
	accept := []string{
		`[]`,
		`[{}]`,
		`[{"kind":"counter","name":"c","op":"inc"}]`,
		`[{"kind":"counter","name":"c","op":"inc"},{"kind":"maxreg","name":"m","op":"write","value":"7"}]`,
		`[{"kind":"object","name":"o","op":"execute","type":"set","invocation":"add(3)"}]`,
		`  [ { "kind" : "counter" , "name" : "c" , "op" : "inc" } ]  `,
		"\t[\n{\"kind\":\"snapshot\",\"name\":\"s\",\"op\":\"update\",\"value\":\"x y z\"}\r]\n",
		`[{"name":"dup","name":"wins"}]`, // duplicate key: last wins, same as encoding/json
		`[{},{},{}]`,
		`[{"kind":"snapshot","name":"board","op":"update","value":"héllo €100 日本"}]`, // valid UTF-8 stays on the fast path
	}
	for _, in := range accept {
		got, ok, tooMany := fastDecodeBatch([]byte(in), 1<<20)
		if tooMany {
			t.Errorf("fast path reported tooMany for small input %q", in)
			continue
		}
		if !ok {
			t.Errorf("fast path rejected canonical input %q", in)
			continue
		}
		var want []registry.BatchOp
		if err := json.Unmarshal([]byte(in), &want); err != nil {
			t.Fatalf("corpus input %q is not valid JSON: %v", in, err)
		}
		// fastDecodeBatch returns nil for an empty array where
		// encoding/json returns an empty slice; both mean "no entries".
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("input %q:\nfast = %+v\njson = %+v", in, got, want)
		}
	}

	// Inputs the fast path must hand to the fallback. Each is either valid
	// JSON with features the fast path skips (escapes, non-string values,
	// unknown keys) or malformed JSON the fallback rejects with its own
	// error; in both cases semantics come from encoding/json.
	fallback := []string{
		`[{"name":"with \"escape\""}]`,
		`[{"name":"tab\tchar"}]`,
		"[{\"name\":\"bad-utf8-\xff\"}]",       // invalid UTF-8: json decodes U+FFFD
		"[{\"name\":\"trunc-\xe2\x82\"}]",      // truncated multi-byte sequence
		"[{\"name\":\"ok-\xe2\x82\xac\",42}]",  // valid UTF-8 but malformed JSON
		`[{"name":"euro-€","op":"inc"}]` + "x", // valid unicode, trailing garbage
		`[{"kind":"counter","weird":42}]`,
		`[{"kind":"counter","nested":{"a":1}}]`,
		`[{"kind":null}]`,
		`[{"kind":"counter"}`,
		`{"kind":"counter"}`,
		`[{"kind":"counter"},]`,
		`[42]`,
		`nope`,
		``,
		`null`,
		`[[]]`,
		`[{"kind" "counter"}]`,
		`[{"kind":"counter"}] trailing`,
	}
	for _, in := range fallback {
		got, ok, tooMany := fastDecodeBatch([]byte(in), 1<<20)
		if tooMany {
			t.Errorf("fast path reported tooMany for small input %q", in)
			continue
		}
		if ok {
			var want []registry.BatchOp
			err := json.Unmarshal([]byte(in), &want)
			if err != nil || !reflect.DeepEqual(got, want) {
				t.Errorf("fast path accepted %q with result %+v; encoding/json says err=%v want=%+v", in, got, err, want)
			}
		}
	}

	// Round trip: whatever the server marshals, the fast path must decode.
	entries := []BatchEntry{
		{Kind: registry.KindCounter, Name: "clicks", Op: registry.OpInc},
		{Kind: registry.KindMaxRegister, Name: "peak", Op: registry.OpWrite, Value: "12"},
		{Kind: registry.KindObject, Name: "bag", Op: registry.OpExecute, Type: "set", Invocation: "contains(7)"},
	}
	body, err := json.Marshal(entries)
	if err != nil {
		t.Fatal(err)
	}
	got, ok, _ := fastDecodeBatch(body, 1<<20)
	if !ok {
		t.Fatalf("fast path rejected marshaled entries %s", body)
	}
	if !reflect.DeepEqual(got, entries) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, entries)
	}
}

// TestDecodeBatchEntriesCap checks that the entry cap bounds work during
// decoding on both paths: the fast path and the streaming encoding/json
// fallback must reject an over-limit body without materializing it.
func TestDecodeBatchEntriesCap(t *testing.T) {
	fastBody := []byte(`[{"op":"inc"},{"op":"inc"},{"op":"inc"}]`)
	// The escaped quote in the first entry forces the fallback path.
	slowBody := []byte(`[{"name":"a\"b"},{"op":"inc"},{"op":"inc"}]`)

	for _, tc := range []struct {
		name string
		body []byte
	}{{"fast", fastBody}, {"fallback", slowBody}} {
		if _, err := decodeBatchEntries(tc.body, 3); err != nil {
			t.Errorf("%s: 3 entries rejected at cap 3: %v", tc.name, err)
		}
		if _, err := decodeBatchEntries(tc.body, 2); !errors.Is(err, errBatchTooMany) {
			t.Errorf("%s: 3 entries at cap 2: err = %v, want errBatchTooMany", tc.name, err)
		}
	}

	// Decoding must stop at the cap: with cap 2, at most 3 entries may ever
	// be decoded from a huge body, which this keeps fast even for ~1M
	// entries. (A correctness proxy for the allocation bound.)
	huge := bytes.Repeat([]byte("{},"), 1<<20)
	huge = append([]byte{'['}, huge...)
	huge = append(huge[:len(huge)-1], ']')
	start := time.Now()
	if _, err := decodeBatchEntries(huge, 2); !errors.Is(err, errBatchTooMany) {
		t.Fatalf("huge batch at cap 2: err = %v, want errBatchTooMany", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("capped decode of huge body took %v; cap is not bounding work", d)
	}
}
