package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"slmem/internal/registry"
)

// do issues one request against srv and returns the recorder.
func do(t *testing.T, srv *Server, method, path string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, bytes.NewReader(body))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec
}

func TestStatsEndpointCounts(t *testing.T) {
	srv := New(registry.Options{Procs: 4})
	for i := 0; i < 3; i++ {
		if rec := do(t, srv, "POST", "/v1/counter/c/inc", nil); rec.Code != 200 {
			t.Fatalf("inc: %d %s", rec.Code, rec.Body)
		}
	}
	if rec := do(t, srv, "POST", "/v1/counter/c/read", nil); rec.Code != 200 {
		t.Fatalf("read: %d %s", rec.Code, rec.Body)
	}
	batch, _ := json.Marshal([]BatchEntry{
		{Kind: registry.KindCounter, Name: "c", Op: registry.OpInc},
		{Kind: registry.KindCounter, Name: "c", Op: registry.OpInc},
	})
	if rec := do(t, srv, "POST", "/v1/batch", batch); rec.Code != 200 {
		t.Fatalf("batch: %d %s", rec.Code, rec.Body)
	}
	do(t, srv, "GET", "/v1/kinds", nil)
	do(t, srv, "POST", "/v1/nosuchkind/x/op", nil) // counted as "other"
	if rec := do(t, srv, "GET", "/v1/stats", nil); rec.Code != 200 {
		t.Fatalf("stats: %d %s", rec.Code, rec.Body)
	}

	st := srv.Stats()
	want := map[string]int64{
		"counter/inc":  3,
		"counter/read": 1,
		"batch":        1,
		"kinds":        1,
		"other":        1,
		"stats":        1,
	}
	for label, n := range want {
		if st.Endpoints[label] != n {
			t.Errorf("endpoints[%q] = %d, want %d (all: %v)", label, st.Endpoints[label], n, st.Endpoints)
		}
	}
	if st.MaxInFlight < 1 {
		t.Errorf("max_in_flight = %d, want >= 1", st.MaxInFlight)
	}
	if st.InFlight != 0 {
		t.Errorf("in_flight = %d after requests drained, want 0", st.InFlight)
	}
}

func TestStatsMaxInFlightTracksConcurrency(t *testing.T) {
	srv := New(registry.Options{Procs: 1})

	// Hold the only pid so an inc request parks inside the handler, making
	// the overlap deterministic instead of a scheduling race.
	release := make(chan struct{})
	held := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		err := srv.Registry().Pool().With(context.Background(), func(pid int) error {
			close(held)
			<-release
			return nil
		})
		if err != nil {
			t.Errorf("pid hold: %v", err)
		}
	}()
	<-held

	incDone := make(chan struct{})
	go func() {
		defer close(incDone)
		req := httptest.NewRequest("POST", "/v1/counter/mc/inc", nil)
		srv.ServeHTTP(httptest.NewRecorder(), req)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().InFlight < 1 {
		if time.Now().After(deadline) {
			t.Fatal("inc request never entered the handler")
		}
		time.Sleep(time.Millisecond)
	}
	// With the inc request parked in flight, a second request overlaps it.
	do(t, srv, "GET", "/v1/kinds", nil)
	close(release)
	<-incDone
	wg.Wait()

	st := srv.Stats()
	if st.MaxInFlight < 2 {
		t.Errorf("max_in_flight = %d with a parked request overlapped, want >= 2", st.MaxInFlight)
	}
	if st.InFlight != 0 {
		t.Errorf("in_flight = %d at rest, want 0", st.InFlight)
	}
}

func TestStatsEndpointsJSONShape(t *testing.T) {
	srv := New(registry.Options{Procs: 2})
	do(t, srv, "POST", "/v1/counter/c/inc", nil)
	rec := do(t, srv, "GET", "/v1/stats", nil)
	var doc struct {
		Endpoints   map[string]int64 `json:"endpoints"`
		InFlight    *int64           `json:"in_flight"`
		MaxInFlight *int64           `json:"max_in_flight"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("stats not JSON: %v", err)
	}
	if doc.Endpoints["counter/inc"] != 1 {
		t.Errorf("wire endpoints[counter/inc] = %d, want 1", doc.Endpoints["counter/inc"])
	}
	if doc.InFlight == nil || doc.MaxInFlight == nil {
		t.Error("in_flight/max_in_flight missing from the wire shape")
	}
}
