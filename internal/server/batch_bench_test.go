package server

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"testing"

	"slmem/internal/registry"
)

// Benchmarks for the batch pipeline's server phases. The request pair is
// the headline comparison (per-request vs batched per-op cost); the decode
// pair shows what the reflection-free fast path buys on a 64-entry body.

func batchBody(b *testing.B, size int) []byte {
	b.Helper()
	entries := make([]BatchEntry, size)
	for i := range entries {
		entries[i] = BatchEntry{Kind: registry.KindCounter, Name: "bench", Op: registry.OpInc}
	}
	body, err := json.Marshal(entries)
	if err != nil {
		b.Fatal(err)
	}
	return body
}

func BenchmarkBatchRequest(b *testing.B) {
	const size = 64
	body := batchBody(b, size)
	b.Run("perop", func(b *testing.B) {
		srv := New(registry.Options{Procs: 8})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			req := httptest.NewRequest("POST", "/v1/counter/bench/inc", nil)
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, req)
			if rec.Code != 200 {
				b.Fatal(rec.Body.String())
			}
		}
	})
	b.Run("batch64", func(b *testing.B) {
		srv := New(registry.Options{Procs: 8})
		b.ResetTimer()
		for done := 0; done < b.N; done += size {
			req := httptest.NewRequest("POST", "/v1/batch", bytes.NewReader(body))
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, req)
			if rec.Code != 200 {
				b.Fatal(rec.Body.String())
			}
		}
	})
}

func BenchmarkBatchDecode(b *testing.B) {
	body := batchBody(b, 64)
	b.Run("fast", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, ok, _ := fastDecodeBatch(body, MaxBatchOps); !ok {
				b.Fatal("fast path rejected canonical body")
			}
		}
	})
	b.Run("encoding-json", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var e []BatchEntry
			if err := json.Unmarshal(body, &e); err != nil {
				b.Fatal(err)
			}
		}
	})
}
