package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"time"

	"slmem/internal/kind"
	"slmem/internal/registry"
)

// Batch request limits. MaxBatchOps is the default cap on entries per batch
// (configurable via WithMaxBatchOps); maxBatchBytes caps the request body.
const (
	MaxBatchOps   = 1024
	maxBatchBytes = 8 << 20
)

// BatchEntry is one operation in a POST /v1/batch request body, which is a
// JSON array of these. It is the wire form of a registry.BatchOp: kind and
// name select the object, op the operation, value the operand (decimal for
// maxreg write, component text for snapshot update), and type + invocation
// drive object execute.
type BatchEntry = registry.BatchOp

// BatchStats aggregates a batch reply: how many ops ran, how many failed,
// and how many pid leases the whole batch cost (one per distinct pool its
// valid entries touch — 1 for shared-pool kinds, +1 per dedicated-pool kind
// mixed in, 0 when every entry failed validation or was introspection-only)
// — the amortization the endpoint exists for.
type BatchStats struct {
	Ops       int   `json:"ops"`
	Failed    int   `json:"failed"`
	Leases    int   `json:"leases"`
	ElapsedUS int64 `json:"elapsed_us"`
}

// BatchResponse is the JSON shape of POST /v1/batch replies. Results holds
// one Response per submitted entry, positionally; OK is true only when every
// entry succeeded. A whole-batch failure (malformed body, oversized batch,
// lease never acquired) carries Error and no Results.
type BatchResponse struct {
	OK      bool       `json:"ok"`
	Results []Response `json:"results,omitempty"`
	Stats   BatchStats `json:"stats"`
	Error   string     `json:"error,omitempty"`
}

// handleBatch serves POST /v1/batch: decode the entry array, run it through
// the registry under one pid lease, and report per-entry results plus
// aggregate stats. Per-entry failures do not fail the batch (partial-failure
// semantics); the HTTP status is non-200 only when the batch as a whole
// could not run.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.countEndpoint("batch")

	body, err := io.ReadAll(io.LimitReader(r.Body, maxBatchBytes+1))
	if err != nil {
		s.replyBatch(w, http.StatusBadRequest, BatchResponse{Error: "read request body: " + err.Error()})
		return
	}
	if len(body) > maxBatchBytes {
		s.replyBatch(w, http.StatusRequestEntityTooLarge,
			BatchResponse{Error: fmt.Sprintf("batch body exceeds %d bytes", maxBatchBytes)})
		return
	}
	entries, err := decodeBatchEntries(body, s.maxBatchOps)
	if errors.Is(err, errBatchTooMany) {
		s.replyBatch(w, http.StatusRequestEntityTooLarge,
			BatchResponse{Error: fmt.Sprintf("batch exceeds %d entries", s.maxBatchOps)})
		return
	}
	if err != nil {
		s.replyBatch(w, http.StatusBadRequest, BatchResponse{Error: err.Error()})
		return
	}
	if len(entries) == 0 {
		s.replyBatch(w, http.StatusBadRequest, BatchResponse{Error: "empty batch"})
		return
	}

	out, err := s.reg.BatchExecute(r.Context(), entries)
	if err != nil {
		// The lease was never acquired: the client went away (or timed out)
		// while the batch queued for a pid. Same mapping as single ops.
		s.replyBatch(w, http.StatusServiceUnavailable, BatchResponse{Error: err.Error()})
		return
	}

	results := make([]Response, len(out.Results))
	failed := 0
	for i, res := range out.Results {
		if res.Err != nil {
			results[i] = Response{Error: res.Err.Error()}
			failed++
			continue
		}
		results[i] = Response{OK: true, Value: res.Value, View: res.View}
	}
	// Count ops per kind by run length: batches are usually homogeneous, so
	// this is one counter update instead of one sync.Map hit per entry.
	var runKind string
	var run int64
	for i := range entries {
		k := string(entries[i].Kind)
		if _, known := kind.Lookup(k); !known {
			continue
		}
		if k != runKind {
			if run > 0 {
				s.countOps(runKind, run)
			}
			runKind, run = k, 0
		}
		run++
	}
	if run > 0 {
		s.countOps(runKind, run)
	}
	s.batches.Add(1)
	s.batchOps.Add(int64(len(entries)))

	s.replyBatch(w, http.StatusOK, BatchResponse{
		OK:      failed == 0,
		Results: results,
		Stats: BatchStats{
			Ops:       len(entries),
			Failed:    failed,
			Leases:    out.Leases,
			ElapsedUS: time.Since(start).Microseconds(),
		},
	})
}

// errBatchTooMany marks a batch rejected for exceeding the entry cap; both
// decode paths stop at the cap instead of materializing an unbounded slice
// first (an 8 MiB body can hold millions of "{}" entries).
var errBatchTooMany = errors.New("too many batch entries")

// decodeBatchEntries decodes the request body — a JSON array of entries —
// stopping as soon as more than max entries appear. The reflection-free
// fast path handles the common flat shape; anything else (escaped strings,
// unknown keys, malformed JSON) is re-decoded by an encoding/json streaming
// decoder for identical accept/reject semantics.
func decodeBatchEntries(body []byte, max int) ([]BatchEntry, error) {
	entries, ok, tooMany := fastDecodeBatch(body, max)
	if tooMany {
		return nil, errBatchTooMany
	}
	if ok {
		return entries, nil
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	tok, err := dec.Token()
	if err != nil {
		return nil, fmt.Errorf("bad batch body (want a JSON array of entries): %w", err)
	}
	if tok == nil {
		// JSON null decodes to no entries, as json.Unmarshal would.
		return nil, nil
	}
	if d, isDelim := tok.(json.Delim); !isDelim || d != '[' {
		return nil, fmt.Errorf("bad batch body: want a JSON array of entries, got %v", tok)
	}
	for dec.More() {
		if len(entries) >= max {
			return nil, errBatchTooMany
		}
		var e BatchEntry
		if err := dec.Decode(&e); err != nil {
			return nil, fmt.Errorf("bad batch entry %d: %w", len(entries), err)
		}
		entries = append(entries, e)
	}
	if _, err := dec.Token(); err != nil { // the closing ']'
		return nil, fmt.Errorf("bad batch body: %w", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return nil, fmt.Errorf("bad batch body: trailing data after the entry array")
	}
	return entries, nil
}

// replyBatch writes a batch reply, counting whole-batch and per-entry
// failures into the server failure metric. The body is built by the
// reflection-free encoder (appendBatchResponse), whose output is
// byte-identical to encoding/json's.
func (s *Server) replyBatch(w http.ResponseWriter, status int, resp BatchResponse) {
	if resp.Error != "" || resp.Stats.Failed > 0 {
		s.failures.Add(1)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	buf := appendBatchResponse(make([]byte, 0, 64+32*len(resp.Results)), resp)
	buf = append(buf, '\n')
	if _, err := w.Write(buf); err != nil {
		log.Printf("server: write batch response: %v", err)
	}
}
