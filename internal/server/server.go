// Package server is the HTTP/JSON front end over the named-object registry
// (internal/registry). cmd/slserve wires it to a listener and signals;
// examples/service embeds it in-process. Every operation endpoint leases a
// process id from the target kind's pool for the duration of the operation,
// so any number of HTTP clients can share the paper's fixed-n objects.
//
// Kinds and their ops are open: routes resolve through the driver API of
// internal/kind, so a newly registered kind (see internal/bag) is served
// with zero edits here. GET /v1/kinds lists what is registered.
//
// API (all operation endpoints are POST with an optional JSON body):
//
//	POST /v1/counter/{name}/inc                               -> {"ok":true}
//	POST /v1/counter/{name}/read                              -> {"ok":true,"value":"12"}
//	POST /v1/maxreg/{name}/write     {"value":"7"}            -> {"ok":true}
//	POST /v1/maxreg/{name}/read                               -> {"ok":true,"value":"7"}
//	POST /v1/snapshot/{name}/update  {"value":"x"}            -> {"ok":true}
//	POST /v1/snapshot/{name}/scan                             -> {"ok":true,"view":["x","",...]}
//	POST /v1/object/{name}/execute   {"type":"set","invocation":"add(3)"}
//	                                                          -> {"ok":true,"value":"ok"}
//	POST /v1/batch                   [{"kind":"counter","name":"c","op":"inc"},...]
//	                                                          -> {"ok":true,"results":[...],"stats":{...}}
//	GET  /v1/kinds                                            -> registered drivers and their ops
//	GET  /v1/stats                                            -> server and pool metrics
//
// Values travel as decimal strings so every endpoint shares one shape.
// /v1/batch runs every entry under a single pid lease per pool (see
// docs/API.md for the full reference and docs/ARCHITECTURE.md for the
// semantics).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"slmem/internal/kind"
	"slmem/internal/registry"
)

// Server is the HTTP front end over a registry. It is an http.Handler and
// carries the request-level metrics the registry cannot see.
type Server struct {
	mux         *http.ServeMux
	reg         *registry.Registry
	start       time.Time
	maxBatchOps int

	requests atomic.Int64
	failures atomic.Int64
	batches  atomic.Int64
	batchOps atomic.Int64
	// inFlight gauges requests currently inside ServeHTTP; maxInFlight is
	// the high-water mark, the server-side record of the deepest concurrency
	// a load run actually reached.
	inFlight    atomic.Int64
	maxInFlight atomic.Int64
	// opsByKind counts operations per kind name (*atomic.Int64 values);
	// open-ended because the kind set is.
	opsByKind sync.Map
	// endpoints counts requests per endpoint label (*atomic.Int64 values):
	// "kind/op" for single-operation endpoints with registered vocabulary,
	// "batch", "kinds", "stats", and "other" for everything unregistered —
	// bounded labels so hostile paths cannot grow the map.
	endpoints sync.Map
}

// Option configures a Server beyond its registry options.
type Option func(*Server)

// WithMaxBatchOps caps the number of entries accepted per /v1/batch request
// (default MaxBatchOps). Larger batches are rejected with 413.
func WithMaxBatchOps(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.maxBatchOps = n
		}
	}
}

// New constructs a server over a fresh registry.
func New(opts registry.Options, extra ...Option) *Server {
	s := &Server{
		mux:         http.NewServeMux(),
		reg:         registry.New(opts),
		start:       time.Now(),
		maxBatchOps: MaxBatchOps,
	}
	for _, opt := range extra {
		opt(s)
	}
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/{kind}/{name}/{op}", s.handleOp)
	s.mux.HandleFunc("GET /v1/kinds", s.handleKinds)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	return s
}

// Registry returns the registry backing this server.
func (s *Server) Registry() *registry.Registry { return s.reg }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	n := s.inFlight.Add(1)
	for {
		max := s.maxInFlight.Load()
		if n <= max || s.maxInFlight.CompareAndSwap(max, n) {
			break
		}
	}
	defer s.inFlight.Add(-1)
	s.mux.ServeHTTP(w, r)
}

// countEndpoint bumps the per-endpoint request counter.
func (s *Server) countEndpoint(label string) {
	c, ok := s.endpoints.Load(label)
	if !ok {
		c, _ = s.endpoints.LoadOrStore(label, new(atomic.Int64))
	}
	c.(*atomic.Int64).Add(1)
}

// endpointLabel maps a single-operation route to its bounded endpoint label:
// "kind/op" when both path segments are registered vocabulary, "other"
// otherwise (so arbitrary request paths cannot grow the stats map).
func endpointLabel(kindName, op string) string {
	if _, ok := kind.Lookup(kindName); !ok {
		return "other"
	}
	if _, ok := kind.Intern([]byte(op)); !ok {
		return "other"
	}
	return kindName + "/" + op
}

// Request is the JSON body accepted by every operation endpoint; fields are
// read only by the operations that need them.
type Request struct {
	// Value is the operand: the component text for snapshot update, a
	// decimal for maxreg write, the item for bag insert.
	Value string `json:"value"`
	// Type names the simple type for object endpoints (set, accumulator,
	// register, counter, maxreg).
	Type string `json:"type"`
	// Invocation is the operation string for object execute, e.g. "add(3)".
	Invocation string `json:"invocation"`
}

// Response is the JSON shape of every operation reply.
type Response struct {
	OK    bool     `json:"ok"`
	Value string   `json:"value,omitempty"`
	View  []string `json:"view,omitempty"`
	Error string   `json:"error,omitempty"`
}

// httpError carries a status code through the operation dispatch.
type httpError struct {
	status int
	msg    string
}

// Error implements the error interface.
func (e *httpError) Error() string { return e.msg }

func errBadRequest(format string, args ...any) error {
	return &httpError{http.StatusBadRequest, fmt.Sprintf(format, args...)}
}

// classify maps a driver-codec error to its HTTP status: unknown kinds and
// ops are 404, per-instance conflicts (object type mismatch) 409, and
// everything else — malformed operands, unknown types, bad invocations —
// 400.
func classify(err error) error {
	switch {
	case kind.IsNotFound(err):
		return &httpError{http.StatusNotFound, err.Error()}
	case kind.IsConflict(err):
		return &httpError{http.StatusConflict, err.Error()}
	}
	return &httpError{http.StatusBadRequest, err.Error()}
}

func (s *Server) handleOp(w http.ResponseWriter, r *http.Request) {
	kindName, name, op := r.PathValue("kind"), r.PathValue("name"), r.PathValue("op")
	s.countEndpoint(endpointLabel(kindName, op))

	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		s.reply(w, http.StatusBadRequest, Response{Error: "bad request body: " + err.Error()})
		return
	}
	req, err := decodeRequest(body)
	if err != nil {
		s.reply(w, http.StatusBadRequest, Response{Error: "bad request body: " + err.Error()})
		return
	}

	resp, err := s.dispatch(r.Context(), kindName, name, op, req)
	if err != nil {
		status := http.StatusInternalServerError
		var he *httpError
		switch {
		case errors.As(err, &he):
			status = he.status
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			// The client went away while the operation queued for a pid.
			status = http.StatusServiceUnavailable
		}
		s.reply(w, status, Response{Error: err.Error()})
		return
	}
	resp.OK = true
	s.reply(w, http.StatusOK, resp)
}

// decodeRequest parses a single-operation request body: the reflection-free
// fast path handles the common flat shape, and anything else falls back to
// encoding/json for identical accept/reject semantics. An empty body is the
// zero Request (operation endpoints allow omitting the body).
func decodeRequest(body []byte) (Request, error) {
	if len(body) == 0 {
		return Request{}, nil
	}
	if req, ok := fastDecodeRequest(body); ok {
		return req, nil
	}
	var req Request
	if err := json.Unmarshal(body, &req); err != nil {
		return Request{}, err
	}
	return req, nil
}

// countOp bumps the per-kind operation counter.
func (s *Server) countOp(kindName string) { s.countOps(kindName, 1) }

// countOps adds n to the per-kind operation counter.
func (s *Server) countOps(kindName string, n int64) {
	c, ok := s.opsByKind.Load(kindName)
	if !ok {
		c, _ = s.opsByKind.LoadOrStore(kindName, new(atomic.Int64))
	}
	c.(*atomic.Int64).Add(n)
}

// dispatch routes one operation through the kind's driver codec: look up
// the driver, validate the request (before the registry lookup — the
// registry has no eviction, so a request that can never succeed must not
// create an object), resolve the instance, compile, and run under a pid
// lease from the instance's pool. The request context flows into pid
// leasing, so a disconnected client stops waiting for a pid.
func (s *Server) dispatch(ctx context.Context, kindName, name, op string, req Request) (Response, error) {
	if name == "" {
		return Response{}, errBadRequest("empty object name")
	}
	d, ok := kind.Lookup(kindName)
	if !ok {
		return Response{}, classify(kind.UnknownKind(kindName))
	}
	s.countOp(kindName)
	kreq := kind.Request{Op: op, Value: req.Value, Type: req.Type, Invocation: req.Invocation}
	if err := d.Validate(kreq); err != nil {
		return Response{}, classify(err)
	}
	inst, pool, err := s.reg.Get(registry.Kind(kindName), name, kreq)
	if err != nil {
		return Response{}, classify(err)
	}
	compiled, err := inst.Compile(kreq)
	if err != nil {
		return Response{}, classify(err)
	}
	var out kind.Result
	err = pool.With(ctx, func(pid int) error {
		var runErr error
		out, runErr = compiled.Run(pid)
		return runErr
	})
	return Response{Value: out.Value, View: out.View}, err
}

func (s *Server) reply(w http.ResponseWriter, status int, resp Response) {
	if resp.Error != "" {
		s.failures.Add(1)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	buf := appendResponse(make([]byte, 0, 96), resp)
	buf = append(buf, '\n')
	if _, err := w.Write(buf); err != nil {
		log.Printf("server: write response: %v", err)
	}
}

// KindsResponse is the JSON shape of GET /v1/kinds: one record per
// registered driver, sorted by kind name.
type KindsResponse struct {
	// Kinds lists the registered drivers.
	Kinds []kind.Info `json:"kinds"`
}

// handleKinds serves GET /v1/kinds from the driver registry: the kinds this
// server can serve, their ops, and whether they lease from a dedicated
// pool.
func (s *Server) handleKinds(w http.ResponseWriter, r *http.Request) {
	s.countEndpoint("kinds")
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(KindsResponse{Kinds: kind.Describe()}); err != nil {
		log.Printf("server: encode kinds: %v", err)
	}
}

// Stats is the JSON shape of GET /v1/stats. Batches counts /v1/batch
// requests accepted for execution; BatchOps counts the entries they carried
// (each also appears in Ops under its kind).
type Stats struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Requests      int64   `json:"requests"`
	Failures      int64   `json:"failures"`
	Batches       int64   `json:"batches"`
	BatchOps      int64   `json:"batch_ops"`
	// InFlight is how many requests are inside the handler right now;
	// MaxInFlight is the deepest concurrency observed since start. Load
	// harnesses read MaxInFlight to confirm their offered concurrency
	// actually reached the server.
	InFlight    int64 `json:"in_flight"`
	MaxInFlight int64 `json:"max_in_flight"`
	// Endpoints counts requests per endpoint: "kind/op" for registered
	// single-operation routes, "batch"/"kinds"/"stats" for the fixed routes,
	// "other" for unregistered vocabulary.
	Endpoints map[string]int64 `json:"endpoints"`
	Ops       map[string]int64 `json:"ops"`
	Registry  registry.Stats   `json:"registry"`
}

// Stats returns a snapshot of server metrics.
func (s *Server) Stats() Stats {
	names := kind.Names()
	ops := make(map[string]int64, len(names))
	for _, n := range names {
		var count int64
		if c, ok := s.opsByKind.Load(n); ok {
			count = c.(*atomic.Int64).Load()
		}
		ops[n] = count
	}
	endpoints := make(map[string]int64)
	s.endpoints.Range(func(key, value any) bool {
		endpoints[key.(string)] = value.(*atomic.Int64).Load()
		return true
	})
	return Stats{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Requests:      s.requests.Load(),
		Failures:      s.failures.Load(),
		Batches:       s.batches.Load(),
		BatchOps:      s.batchOps.Load(),
		InFlight:      s.inFlight.Load(),
		MaxInFlight:   s.maxInFlight.Load(),
		Endpoints:     endpoints,
		Ops:           ops,
		Registry:      s.reg.Stats(),
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.countEndpoint("stats")
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(s.Stats()); err != nil {
		log.Printf("server: encode stats: %v", err)
	}
}
