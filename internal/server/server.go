// Package server is the HTTP/JSON front end over the named-object registry
// (internal/registry). cmd/slserve wires it to a listener and signals;
// examples/service embeds it in-process. Every operation endpoint leases a
// process id from the registry's fixed pool for the duration of the
// operation, so any number of HTTP clients can share the paper's fixed-n
// objects.
//
// API (all operation endpoints are POST with an optional JSON body):
//
//	POST /v1/counter/{name}/inc                               -> {"ok":true}
//	POST /v1/counter/{name}/read                              -> {"ok":true,"value":"12"}
//	POST /v1/maxreg/{name}/write     {"value":"7"}            -> {"ok":true}
//	POST /v1/maxreg/{name}/read                               -> {"ok":true,"value":"7"}
//	POST /v1/snapshot/{name}/update  {"value":"x"}            -> {"ok":true}
//	POST /v1/snapshot/{name}/scan                             -> {"ok":true,"view":["x","",...]}
//	POST /v1/object/{name}/execute   {"type":"set","invocation":"add(3)"}
//	                                                          -> {"ok":true,"value":"ok"}
//	POST /v1/batch                   [{"kind":"counter","name":"c","op":"inc"},...]
//	                                                          -> {"ok":true,"results":[...],"stats":{...}}
//	GET  /v1/stats                                            -> server and pool metrics
//
// Values travel as decimal strings so every endpoint shares one shape.
// /v1/batch runs every entry under a single pid lease (see docs/API.md for
// the full reference and docs/ARCHITECTURE.md for the semantics).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"slmem/internal/registry"
)

// Server is the HTTP front end over a registry. It is an http.Handler and
// carries the request-level metrics the registry cannot see.
type Server struct {
	mux         *http.ServeMux
	reg         *registry.Registry
	start       time.Time
	maxBatchOps int

	requests  atomic.Int64
	failures  atomic.Int64
	batches   atomic.Int64
	batchOps  atomic.Int64
	opsByKind [4]atomic.Int64
}

// Option configures a Server beyond its registry options.
type Option func(*Server)

// WithMaxBatchOps caps the number of entries accepted per /v1/batch request
// (default MaxBatchOps). Larger batches are rejected with 413.
func WithMaxBatchOps(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.maxBatchOps = n
		}
	}
}

// New constructs a server over a fresh registry.
func New(opts registry.Options, extra ...Option) *Server {
	s := &Server{
		mux:         http.NewServeMux(),
		reg:         registry.New(opts),
		start:       time.Now(),
		maxBatchOps: MaxBatchOps,
	}
	for _, opt := range extra {
		opt(s)
	}
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/{kind}/{name}/{op}", s.handleOp)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	return s
}

// Registry returns the registry backing this server.
func (s *Server) Registry() *registry.Registry { return s.reg }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	s.mux.ServeHTTP(w, r)
}

// Request is the JSON body accepted by every operation endpoint; fields are
// read only by the operations that need them.
type Request struct {
	// Value is the operand: the component text for snapshot update, a
	// decimal for maxreg write.
	Value string `json:"value"`
	// Type names the simple type for object endpoints (set, accumulator,
	// register, counter, maxreg).
	Type string `json:"type"`
	// Invocation is the operation string for object execute, e.g. "add(3)".
	Invocation string `json:"invocation"`
}

// Response is the JSON shape of every operation reply.
type Response struct {
	OK    bool     `json:"ok"`
	Value string   `json:"value,omitempty"`
	View  []string `json:"view,omitempty"`
	Error string   `json:"error,omitempty"`
}

// httpError carries a status code through the operation dispatch.
type httpError struct {
	status int
	msg    string
}

// Error implements the error interface.
func (e *httpError) Error() string { return e.msg }

func errBadRequest(format string, args ...any) error {
	return &httpError{http.StatusBadRequest, fmt.Sprintf(format, args...)}
}

func (s *Server) handleOp(w http.ResponseWriter, r *http.Request) {
	kind, name, op := r.PathValue("kind"), r.PathValue("name"), r.PathValue("op")

	var req Request
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err == nil && len(body) > 0 {
		err = json.Unmarshal(body, &req)
	}
	if err != nil {
		s.reply(w, http.StatusBadRequest, Response{Error: "bad request body: " + err.Error()})
		return
	}

	resp, err := s.dispatch(r.Context(), kind, name, op, req)
	if err != nil {
		status := http.StatusInternalServerError
		var he *httpError
		switch {
		case errors.As(err, &he):
			status = he.status
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			// The client went away while the operation queued for a pid.
			status = http.StatusServiceUnavailable
		}
		s.reply(w, status, Response{Error: err.Error()})
		return
	}
	resp.OK = true
	s.reply(w, http.StatusOK, resp)
}

// dispatch routes one operation to the registry. The request context flows
// into pid leasing, so a disconnected client stops waiting for a pid. The
// operation (and any operand) is validated before the registry lookup: the
// registry has no eviction, so a request that can never succeed must not
// create an object.
func (s *Server) dispatch(ctx context.Context, kind, name, op string, req Request) (Response, error) {
	if name == "" {
		return Response{}, errBadRequest("empty object name")
	}
	k := registry.Kind(kind)
	switch k {
	case registry.KindCounter:
		s.opsByKind[registry.KindIndex(k)].Add(1)
		switch op {
		case "inc":
			return Response{}, s.reg.Counter(name).Inc(ctx)
		case "read":
			v, err := s.reg.Counter(name).Read(ctx)
			return Response{Value: strconv.FormatUint(v, 10)}, err
		}
		return Response{}, &httpError{http.StatusNotFound, fmt.Sprintf("counter has no operation %q (want inc or read)", op)}

	case registry.KindMaxRegister:
		s.opsByKind[registry.KindIndex(k)].Add(1)
		switch op {
		case "write":
			v, err := strconv.ParseUint(req.Value, 10, 64)
			if err != nil {
				return Response{}, errBadRequest("maxreg write needs a decimal value: %v", err)
			}
			return Response{}, s.reg.MaxRegister(name).MaxWrite(ctx, v)
		case "read":
			v, err := s.reg.MaxRegister(name).MaxRead(ctx)
			return Response{Value: strconv.FormatUint(v, 10)}, err
		}
		return Response{}, &httpError{http.StatusNotFound, fmt.Sprintf("maxreg has no operation %q (want write or read)", op)}

	case registry.KindSnapshot:
		s.opsByKind[registry.KindIndex(k)].Add(1)
		switch op {
		case "update":
			return Response{}, s.reg.Snapshot(name).Update(ctx, req.Value)
		case "scan":
			view, err := s.reg.Snapshot(name).Scan(ctx)
			return Response{View: view}, err
		}
		return Response{}, &httpError{http.StatusNotFound, fmt.Sprintf("snapshot has no operation %q (want update or scan)", op)}

	case registry.KindObject:
		s.opsByKind[registry.KindIndex(k)].Add(1)
		if op != "execute" {
			return Response{}, &httpError{http.StatusNotFound, fmt.Sprintf("object has no operation %q (want execute)", op)}
		}
		// Reject unknown types and malformed invocations before the registry
		// lookup; a doomed request must not register an object.
		if err := registry.ValidateInvocation(req.Type, req.Invocation); err != nil {
			return Response{}, errBadRequest("%v", err)
		}
		// The remaining Object error is a type mismatch with an existing name.
		o, err := s.reg.Object(name, req.Type)
		if err != nil {
			return Response{}, &httpError{http.StatusConflict, err.Error()}
		}
		// Execute can now fail only on context cancellation (mapped to 503
		// by the caller) or a genuine internal error.
		res, err := o.Execute(ctx, req.Invocation)
		return Response{Value: res}, err
	}
	return Response{}, &httpError{http.StatusNotFound,
		fmt.Sprintf("unknown object kind %q (want counter, maxreg, snapshot, or object)", kind)}
}

func (s *Server) reply(w http.ResponseWriter, status int, resp Response) {
	if resp.Error != "" {
		s.failures.Add(1)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		log.Printf("server: encode response: %v", err)
	}
}

// Stats is the JSON shape of GET /v1/stats. Batches counts /v1/batch
// requests accepted for execution; BatchOps counts the entries they carried
// (each also appears in Ops under its kind).
type Stats struct {
	UptimeSeconds float64          `json:"uptime_seconds"`
	Requests      int64            `json:"requests"`
	Failures      int64            `json:"failures"`
	Batches       int64            `json:"batches"`
	BatchOps      int64            `json:"batch_ops"`
	Ops           map[string]int64 `json:"ops"`
	Registry      registry.Stats   `json:"registry"`
}

// Stats returns a snapshot of server metrics.
func (s *Server) Stats() Stats {
	ops := make(map[string]int64, 4)
	for _, k := range registry.Kinds() {
		ops[string(k)] = s.opsByKind[registry.KindIndex(k)].Load()
	}
	return Stats{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Requests:      s.requests.Load(),
		Failures:      s.failures.Load(),
		Batches:       s.batches.Load(),
		BatchOps:      s.batchOps.Load(),
		Ops:           ops,
		Registry:      s.reg.Stats(),
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(s.Stats()); err != nil {
		log.Printf("server: encode stats: %v", err)
	}
}
