package versioned

import (
	"fmt"
	"testing"
	"testing/quick"

	"slmem/internal/core"
	"slmem/internal/lincheck"
	"slmem/internal/memory"
	"slmem/internal/sched"
	"slmem/internal/spec"
)

func TestSequentialSemantics(t *testing.T) {
	var alloc memory.NativeAllocator
	s := New[string](&alloc, 3, spec.Bot)

	for i, v := range s.Scan(0) {
		if v != spec.Bot {
			t.Errorf("initial component %d = %q", i, v)
		}
	}
	s.Update(1, "x")
	s.Update(2, "y")
	s.Update(1, "z")
	if got := spec.FormatView(s.Scan(0)); got != "["+spec.Bot+" z y]" {
		t.Errorf("scan = %s", got)
	}
}

func TestSequentialRandomAgainstSpec(t *testing.T) {
	const n = 3
	f := func(script []uint8) bool {
		var alloc memory.NativeAllocator
		s := New[string](&alloc, n, spec.Bot)
		sp := spec.Snapshot{N: n}
		state := sp.Initial()
		for i, b := range script {
			pid := int(b) % n
			if b%2 == 0 {
				x := fmt.Sprintf("v%d", i)
				s.Update(pid, x)
				state, _, _ = sp.Apply(state, pid, spec.FormatInvocation("update", x))
			} else {
				got := spec.FormatView(s.Scan(pid))
				_, want, _ := sp.Apply(state, pid, "scan()")
				if got != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestScanReturnsCopy(t *testing.T) {
	var alloc memory.NativeAllocator
	s := New[string](&alloc, 2, spec.Bot)
	s.Update(0, "a")
	v := s.Scan(0)
	v[0] = "mutated"
	if s.Scan(0)[0] != "a" {
		t.Error("Scan result shares storage with the object")
	}
}

func simSystem(n, updates, scans int) sched.System {
	return sched.System{
		N: n,
		Setup: func(env *sched.Env) []sched.Program {
			s := New[string](env, n, spec.Bot)
			progs := make([]sched.Program, n)
			for pid := 0; pid < n; pid++ {
				pid := pid
				if pid%2 == 1 {
					progs[pid] = func(p *sched.Proc) {
						for i := 0; i < updates; i++ {
							x := fmt.Sprintf("u%d.%d", pid, i)
							p.Do(spec.FormatInvocation("update", x), func() string {
								s.Update(pid, x)
								return "ok"
							})
						}
					}
				} else {
					progs[pid] = func(p *sched.Proc) {
						for i := 0; i < scans; i++ {
							p.Do("scan()", func() string {
								return spec.FormatView(s.Scan(pid))
							})
						}
					}
				}
			}
			return progs
		},
	}
}

func TestLinearizableUnderRandomSchedules(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		res := sched.Run(simSystem(3, 2, 2), sched.NewSeeded(seed), sched.Options{})
		if !res.Completed() {
			t.Fatalf("seed %d: incomplete: %v", seed, res.Err)
		}
		chk, err := lincheck.CheckTranscript(res.T, spec.Snapshot{N: 3})
		if err != nil {
			t.Fatal(err)
		}
		if !chk.Ok {
			t.Fatalf("seed %d: not linearizable:\n%s", seed, res.T.Interpreted())
		}
	}
}

func TestStrongChainMonitor(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		res := sched.Run(simSystem(2, 2, 2), sched.NewSeeded(seed), sched.Options{})
		if !res.Completed() {
			t.Fatalf("seed %d: incomplete: %v", seed, res.Err)
		}
		chk, err := lincheck.CheckChain(res.T, spec.Snapshot{N: 2})
		if err != nil {
			t.Fatal(err)
		}
		if !chk.Ok {
			t.Fatalf("seed %d: chain check failed at %s", seed, chk.FailNode)
		}
	}
}

// TestSpaceGrowthVersusBounded is the heart of experiment E5: the versioned
// construction keeps allocating registers as updates accumulate, while the
// paper's Algorithm 3 snapshot stays at its construction-time footprint.
func TestSpaceGrowthVersusBounded(t *testing.T) {
	const n, rounds = 2, 50

	var allocV memory.NativeAllocator
	v := New[string](&allocV, n, spec.Bot)
	baseV := allocV.Registers()

	var allocB memory.NativeAllocator
	b := core.New[string](&allocB, n, spec.Bot)
	baseB := allocB.Registers()

	for i := 0; i < rounds; i++ {
		v.Update(0, fmt.Sprintf("x%d", i))
		b.Update(0, fmt.Sprintf("x%d", i))
	}

	growthV := allocV.Registers() - baseV
	growthB := allocB.Registers() - baseB
	if growthB != 0 {
		t.Errorf("Algorithm 3 allocated %d registers after construction; want 0 (bounded space)", growthB)
	}
	if growthV < rounds/2 {
		t.Errorf("versioned construction grew by only %d registers over %d updates; expected unbounded-style growth", growthV, rounds)
	}
	t.Logf("register growth over %d updates: versioned=+%d, algorithm3=+%d", rounds, growthV, growthB)
}
