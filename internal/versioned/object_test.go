package versioned

import (
	"strconv"
	"testing"
	"testing/quick"

	"slmem/internal/lincheck"
	"slmem/internal/memory"
	"slmem/internal/sched"
	"slmem/internal/spec"
)

func TestCounterSequential(t *testing.T) {
	var alloc memory.NativeAllocator
	c := NewCounter(&alloc, 3)
	if got := c.Read(0); got != 0 {
		t.Errorf("initial Read = %d", got)
	}
	c.Inc(0)
	c.Inc(1)
	c.Inc(2)
	c.Inc(0)
	if got := c.Read(1); got != 4 {
		t.Errorf("Read = %d, want 4", got)
	}
}

func TestCounterProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		var alloc memory.NativeAllocator
		c := NewCounter(&alloc, 3)
		for _, b := range raw {
			c.Inc(int(b) % 3)
		}
		return c.Read(0) == uint64(len(raw))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMaxRegisterSequential(t *testing.T) {
	var alloc memory.NativeAllocator
	m := NewMaxRegister(&alloc, 2)
	m.MaxWrite(0, 9)
	m.MaxWrite(1, 4) // below the max but above p1's own component
	if got := m.MaxRead(0); got != 9 {
		t.Errorf("MaxRead = %d, want 9", got)
	}
	m.MaxWrite(1, 12)
	if got := m.MaxRead(0); got != 12 {
		t.Errorf("MaxRead = %d, want 12", got)
	}
}

func TestCounterSimLinearizable(t *testing.T) {
	sys := sched.System{
		N: 3,
		Setup: func(env *sched.Env) []sched.Program {
			c := NewCounter(env, 3)
			progs := make([]sched.Program, 3)
			for pid := 0; pid < 3; pid++ {
				pid := pid
				progs[pid] = func(p *sched.Proc) {
					p.Do("inc()", func() string { c.Inc(pid); return "ok" })
					p.Do("read()", func() string {
						return strconv.FormatUint(c.Read(pid), 10)
					})
				}
			}
			return progs
		},
	}
	for seed := int64(0); seed < 15; seed++ {
		res := sched.Run(sys, sched.NewSeeded(seed), sched.Options{})
		if !res.Completed() {
			t.Fatalf("seed %d: incomplete: %v", seed, res.Err)
		}
		chk, err := lincheck.CheckTranscript(res.T, spec.Counter{})
		if err != nil {
			t.Fatal(err)
		}
		if !chk.Ok {
			t.Fatalf("seed %d: not linearizable:\n%s", seed, res.T.Interpreted())
		}
	}
}

func TestMaxRegisterSimLinearizable(t *testing.T) {
	sys := sched.System{
		N: 2,
		Setup: func(env *sched.Env) []sched.Program {
			m := NewMaxRegister(env, 2)
			return []sched.Program{
				func(p *sched.Proc) {
					for _, v := range []uint64{4, 2, 9} {
						v := v
						p.Do(spec.FormatInvocation("maxWrite", strconv.FormatUint(v, 10)), func() string {
							m.MaxWrite(0, v)
							return "ok"
						})
					}
				},
				func(p *sched.Proc) {
					for i := 0; i < 3; i++ {
						p.Do("maxRead()", func() string {
							return strconv.FormatUint(m.MaxRead(1), 10)
						})
					}
				},
			}
		},
	}
	for seed := int64(0); seed < 15; seed++ {
		res := sched.Run(sys, sched.NewSeeded(seed), sched.Options{})
		if !res.Completed() {
			t.Fatalf("seed %d: incomplete: %v", seed, res.Err)
		}
		chk, err := lincheck.CheckTranscript(res.T, spec.MaxRegister{})
		if err != nil {
			t.Fatal(err)
		}
		if !chk.Ok {
			t.Fatalf("seed %d: not linearizable:\n%s", seed, res.T.Interpreted())
		}
	}
}

func TestCounterChainMonitor(t *testing.T) {
	sys := sched.System{
		N: 2,
		Setup: func(env *sched.Env) []sched.Program {
			c := NewCounter(env, 2)
			return []sched.Program{
				func(p *sched.Proc) {
					p.Do("inc()", func() string { c.Inc(0); return "ok" })
					p.Do("read()", func() string { return strconv.FormatUint(c.Read(0), 10) })
				},
				func(p *sched.Proc) {
					p.Do("inc()", func() string { c.Inc(1); return "ok" })
					p.Do("read()", func() string { return strconv.FormatUint(c.Read(1), 10) })
				},
			}
		},
	}
	for seed := int64(0); seed < 10; seed++ {
		res := sched.Run(sys, sched.NewSeeded(seed), sched.Options{})
		if !res.Completed() {
			t.Fatalf("seed %d: incomplete: %v", seed, res.Err)
		}
		chk, err := lincheck.CheckChain(res.T, spec.Counter{})
		if err != nil {
			t.Fatal(err)
		}
		if !chk.Ok {
			t.Fatalf("seed %d: chain check failed at %s", seed, chk.FailNode)
		}
	}
}

// TestCounterSpaceGrows: the construction's defining limitation — registers
// accumulate with increments (contrast with core.NewCounter's fixed
// footprint, paper Section 4.5).
func TestCounterSpaceGrows(t *testing.T) {
	var alloc memory.NativeAllocator
	c := NewCounter(&alloc, 2)
	base := alloc.Registers()
	for i := 0; i < 64; i++ {
		c.Inc(i % 2)
	}
	if got := alloc.Registers(); got <= base+32 {
		t.Errorf("registers grew only %d -> %d; expected unbounded-style growth", base, got)
	}
}
