package versioned

import (
	"fmt"

	"slmem/internal/maxreg"
	"slmem/internal/memory"
	"slmem/internal/snapshot"
)

// Inner is a linearizable versioned object (paper Section 4.1): updates
// increase its version number, and reads return the state together with the
// version. The versioned double-collect snapshot is the canonical instance;
// any state machine whose state is a function of the snapshot contents can
// be layered on it.
type Inner[St any] interface {
	// Apply performs an update as process pid.
	Apply(pid int, arg St)
	// ReadVersioned returns the current state and version as process pid.
	ReadVersioned(pid int) (St, uint64)
}

// Object is the generic Denysyuk–Woelfel construction: a strongly
// linearizable object built from a linearizable versioned object and an
// augmented max-register. It is lock-free and its space grows with the
// number of updates (the limitation the paper's Algorithm 3 removes for
// snapshots).
type Object[St any] struct {
	inner Inner[St]
	r     *maxreg.Bounded[St]
}

// NewObject wraps a linearizable versioned object; initial is the state
// returned before any update.
func NewObject[St any](alloc memory.Allocator, inner Inner[St], initial St) *Object[St] {
	return &Object[St]{
		inner: inner,
		r:     maxreg.NewUnbounded[St](alloc, initial),
	}
}

// Update applies an update and publishes the resulting (version, state)
// pair, as process pid.
func (o *Object[St]) Update(pid int, arg St) {
	o.inner.Apply(pid, arg)
	state, version := o.inner.ReadVersioned(pid)
	if err := o.r.MaxWrite(pid, version, state); err != nil {
		// Unreachable: versions are uint64 and the register spans uint64.
		panic(fmt.Sprintf("versioned: %v", err))
	}
}

// Read returns the state attached to the highest published version, as
// process pid.
func (o *Object[St]) Read(pid int) St {
	_, state := o.r.MaxRead(pid)
	return state
}

// --- Versioned counter -----------------------------------------------------------

// counterInner is a linearizable versioned counter over the versioned
// snapshot: component p holds process p's increment count; the state is the
// total and the version is the snapshot version (which increases with every
// increment).
type counterInner struct {
	s *snapshot.DoubleCollect[uint64]
	// local per-process counts (single writer per component)
	count []uint64
}

var _ Inner[uint64] = (*counterInner)(nil)

func (c *counterInner) Apply(pid int, delta uint64) {
	c.count[pid] += delta
	c.s.Update(pid, c.count[pid])
}

func (c *counterInner) ReadVersioned(pid int) (uint64, uint64) {
	view, version := c.s.ScanVersioned(pid)
	var sum uint64
	for _, v := range view {
		sum += v
	}
	return sum, version
}

// Counter is a lock-free strongly linearizable counter built with the
// Section 4.1 construction — the unbounded-space baseline for the bounded
// counter of internal/core (paper Section 4.5).
type Counter struct {
	obj *Object[uint64]
}

// NewCounter constructs the counter for n processes.
func NewCounter(alloc memory.Allocator, n int) *Counter {
	inner := &counterInner{
		s:     snapshot.NewDoubleCollect[uint64](alloc, n, 0),
		count: make([]uint64, n),
	}
	return &Counter{obj: NewObject[uint64](alloc, inner, 0)}
}

// Inc increments the counter as process pid.
func (c *Counter) Inc(pid int) { c.obj.Update(pid, 1) }

// Read returns the current count as process pid.
func (c *Counter) Read(pid int) uint64 { return c.obj.Read(pid) }

// --- Versioned max-register --------------------------------------------------------

// maxInner is a linearizable versioned max-register over the versioned
// snapshot: component p holds the largest value process p wrote; the state
// is the global maximum.
type maxInner struct {
	s     *snapshot.DoubleCollect[uint64]
	local []uint64
}

var _ Inner[uint64] = (*maxInner)(nil)

func (m *maxInner) Apply(pid int, v uint64) {
	if v > m.local[pid] {
		m.local[pid] = v
		m.s.Update(pid, v)
	}
}

func (m *maxInner) ReadVersioned(pid int) (uint64, uint64) {
	view, version := m.s.ScanVersioned(pid)
	var max uint64
	for _, v := range view {
		if v > max {
			max = v
		}
	}
	return max, version
}

// MaxRegister is a lock-free strongly linearizable max-register built with
// the Section 4.1 construction.
type MaxRegister struct {
	obj *Object[uint64]
}

// NewMaxRegister constructs the max-register for n processes, initially 0.
func NewMaxRegister(alloc memory.Allocator, n int) *MaxRegister {
	inner := &maxInner{
		s:     snapshot.NewDoubleCollect[uint64](alloc, n, 0),
		local: make([]uint64, n),
	}
	return &MaxRegister{obj: NewObject[uint64](alloc, inner, 0)}
}

// MaxWrite raises the register to v, as process pid.
func (m *MaxRegister) MaxWrite(pid int, v uint64) { m.obj.Update(pid, v) }

// MaxRead returns the largest value written, as process pid.
func (m *MaxRegister) MaxRead(pid int) uint64 { return m.obj.Read(pid) }
