// Package versioned implements the Denysyuk–Woelfel lock-free strongly
// linearizable construction for versioned objects (paper Section 4.1) —
// the unbounded-space predecessor that the paper's Algorithm 3 improves on.
//
// A versioned object pairs each state with a version number that increases
// with every update. The construction composes:
//
//   - a versioned linearizable snapshot S (the double-collect snapshot with
//     per-component sequence numbers; its version is their sum), and
//   - an augmented strongly linearizable max-register R storing
//     (version, state) pairs.
//
// Update(x): S.update(x); read (state, v) from S; R.maxWrite(v, state).
// Read(): R.maxRead() and return the payload state.
//
// Because the version grows forever, R needs unboundedly many registers —
// this growth is measurable through the allocator and is the baseline side
// of experiment E5 (bounded vs. unbounded space), contrasted with
// internal/core's O(n)-register snapshot.
package versioned

import (
	"fmt"

	"slmem/internal/maxreg"
	"slmem/internal/memory"
	"slmem/internal/snapshot"
)

// Snapshot is a strongly linearizable single-writer snapshot built with the
// Denysyuk–Woelfel versioned-object construction. It is lock-free but uses
// space that grows with the number of updates.
//
// Methods take the calling process id.
type Snapshot[V any] struct {
	n int
	s *snapshot.DoubleCollect[V]
	r *maxreg.Bounded[[]V]
}

// New constructs the versioned snapshot for n processes, with every
// component initialized to initial.
func New[V any](alloc memory.Allocator, n int, initial V) *Snapshot[V] {
	if n < 1 {
		panic(fmt.Sprintf("versioned: n = %d, need at least 1 process", n))
	}
	initView := make([]V, n)
	for i := range initView {
		initView[i] = initial
	}
	return &Snapshot[V]{
		n: n,
		s: snapshot.NewDoubleCollect[V](alloc, n, initial),
		r: maxreg.NewUnbounded[[]V](alloc, initView),
	}
}

// N returns the number of components.
func (o *Snapshot[V]) N() int { return o.n }

// Update sets component p to x, as process p: an S.update, a versioned
// S.scan, and an R.maxWrite of (version, state).
func (o *Snapshot[V]) Update(p int, x V) {
	o.s.Update(p, x)
	state, version := o.s.ScanVersioned(p)
	// The max-register ignores stale versions; equal versions denote equal
	// states (two scans with the same version saw the same writes).
	if err := o.r.MaxWrite(p, version, state); err != nil {
		// Unreachable: versions are sums of uint64 sequence numbers and the
		// register spans the full uint64 range.
		panic(fmt.Sprintf("versioned: %v", err))
	}
}

// Scan returns the state attached to the highest version in R, as process p.
func (o *Snapshot[V]) Scan(p int) []V {
	_, state := o.r.MaxRead(p)
	out := make([]V, len(state))
	copy(out, state)
	return out
}
