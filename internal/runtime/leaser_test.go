package runtime

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestLeaserHandsOutDistinctPids(t *testing.T) {
	l := NewLeaser(8)
	seen := make(map[int]bool)
	for i := 0; i < 8; i++ {
		pid, ok := l.TryAcquire()
		if !ok {
			t.Fatalf("TryAcquire %d failed with %d free", i, 8-i)
		}
		if pid < 0 || pid >= 8 {
			t.Fatalf("pid %d out of range", pid)
		}
		if seen[pid] {
			t.Fatalf("pid %d handed out twice", pid)
		}
		seen[pid] = true
	}
	if _, ok := l.TryAcquire(); ok {
		t.Fatal("TryAcquire succeeded with pool exhausted")
	}
	if got := l.InUse(); got != 8 {
		t.Fatalf("InUse = %d, want 8", got)
	}
	for pid := range seen {
		l.Release(pid)
	}
	if got := l.InUse(); got != 0 {
		t.Fatalf("InUse after releases = %d, want 0", got)
	}
	if held := l.Held(); len(held) != 0 {
		t.Fatalf("Held after releases = %v, want empty", held)
	}
}

func TestLeaserAcquireBlocksUntilRelease(t *testing.T) {
	l := NewLeaser(1)
	pid, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	got := make(chan int)
	go func() {
		p, err := l.Acquire(context.Background())
		if err != nil {
			t.Error(err)
		}
		got <- p
	}()

	select {
	case p := <-got:
		t.Fatalf("second Acquire returned %d before release", p)
	case <-time.After(20 * time.Millisecond):
	}

	l.Release(pid)
	select {
	case p := <-got:
		if p != pid {
			t.Fatalf("handed pid %d, want %d", p, pid)
		}
		l.Release(p)
	case <-time.After(2 * time.Second):
		t.Fatal("blocked Acquire never woke after Release")
	}
}

func TestLeaserAcquireRespectsContext(t *testing.T) {
	l := NewLeaser(1)
	pid, _ := l.TryAcquire()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := l.Acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Acquire error = %v, want DeadlineExceeded", err)
	}

	l.Release(pid)
	// The cancelled waiter must not have consumed the release.
	if p, ok := l.TryAcquire(); !ok {
		t.Fatal("pid lost after cancelled Acquire")
	} else {
		l.Release(p)
	}
}

func TestLeaserFIFOWakeup(t *testing.T) {
	l := NewLeaser(1)
	pid, _ := l.TryAcquire()

	const waiters = 4
	order := make(chan int, waiters)
	var started sync.WaitGroup
	for i := 0; i < waiters; i++ {
		i := i
		started.Add(1)
		go func() {
			// Stagger queueing so the FIFO order is deterministic.
			time.Sleep(time.Duration(i+1) * 20 * time.Millisecond)
			started.Done()
			p, err := l.Acquire(context.Background())
			if err != nil {
				t.Error(err)
				return
			}
			order <- i
			l.Release(p)
		}()
	}
	started.Wait()
	time.Sleep(120 * time.Millisecond) // let every waiter enqueue
	l.Release(pid)
	for want := 0; want < waiters; want++ {
		select {
		case got := <-order:
			if got != want {
				t.Fatalf("waiter %d woke before waiter %d", got, want)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("waiter %d never woke", want)
		}
	}
}

func TestLeaserDoubleReleasePanics(t *testing.T) {
	l := NewLeaser(2)
	pid, _ := l.TryAcquire()
	l.Release(pid)
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	l.Release(pid)
}

func TestLeaserReleaseOutOfRangePanics(t *testing.T) {
	l := NewLeaser(2)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range release did not panic")
		}
	}()
	l.Release(7)
}

func TestLeaserWithReleasesOnPanic(t *testing.T) {
	l := NewLeaser(1)
	func() {
		defer func() { recover() }()
		_ = l.With(context.Background(), func(pid int) error {
			panic("boom")
		})
	}()
	if got := l.InUse(); got != 0 {
		t.Fatalf("InUse after panicking With = %d, want 0", got)
	}
}

func TestLeaserStripeCounts(t *testing.T) {
	for _, tc := range []struct{ n, stripes int }{
		{1, 0}, {2, 0}, {3, 0}, {7, 5}, {64, 0}, {200, 0}, {5, 100},
	} {
		l := NewLeaserStripes(tc.n, tc.stripes)
		if got := l.Size(); got != tc.n {
			t.Fatalf("Size = %d, want %d", got, tc.n)
		}
		free := 0
		for i := range l.stripes {
			free += len(l.stripes[i].free)
		}
		if free != tc.n {
			t.Fatalf("n=%d stripes=%d: %d ids dealt, want %d", tc.n, tc.stripes, free, tc.n)
		}
	}
}

// TestLeaserSoakChurn is the race-detector soak: far more goroutines than
// pids, each repeatedly leasing, doing a little work, and releasing, with a
// fraction abandoning acquisition via context cancellation. It checks the
// ownership invariant directly (two holders of one pid would trip the
// per-pid CAS panic and usually the race detector too) and that no pid leaks.
func TestLeaserSoakChurn(t *testing.T) {
	const pids = 8
	goroutines, rounds := 64, 200
	if testing.Short() {
		goroutines, rounds = 32, 50
	}
	l := NewLeaser(pids)
	owners := make([]atomic.Int32, pids) // goroutine id + 1, for the invariant check

	var wg sync.WaitGroup
	var granted, cancelled atomic.Int64
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				ctx := context.Background()
				cancel := context.CancelFunc(func() {})
				if r%8 == 7 {
					// Contended cancellation: a deadline short enough to
					// fire while queued, sometimes racing the handoff.
					ctx, cancel = context.WithTimeout(ctx, time.Duration(r%3)*time.Microsecond)
				}
				pid, err := l.Acquire(ctx)
				cancel()
				if err != nil {
					cancelled.Add(1)
					continue
				}
				if !owners[pid].CompareAndSwap(0, int32(g)+1) {
					t.Errorf("pid %d acquired by %d while owned by %d", pid, g, owners[pid].Load()-1)
					l.Release(pid)
					return
				}
				granted.Add(1)
				if !owners[pid].CompareAndSwap(int32(g)+1, 0) {
					t.Errorf("pid %d stolen from %d mid-lease", pid, g)
					return
				}
				l.Release(pid)
			}
		}()
	}
	wg.Wait()

	if held := l.Held(); len(held) != 0 {
		t.Fatalf("leaked pids after soak: %v", held)
	}
	if got := l.InUse(); got != 0 {
		t.Fatalf("InUse after soak = %d, want 0", got)
	}
	st := l.Stats()
	if st.Acquires < granted.Load() {
		t.Fatalf("stats.Acquires = %d < %d grants observed", st.Acquires, granted.Load())
	}
	t.Logf("soak: %d grants, %d cancels, stats=%+v", granted.Load(), cancelled.Load(), st)
}

func TestLeaserHolds(t *testing.T) {
	l := NewLeaser(4)
	if l.Holds(0) || l.Holds(3) {
		t.Fatal("fresh leaser holds pids")
	}
	if l.Holds(-1) || l.Holds(4) {
		t.Fatal("Holds reported an id outside [0, n) as leased")
	}
	pid, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !l.Holds(pid) {
		t.Fatalf("Holds(%d) = false while leased", pid)
	}
	// A batch-style caller reuses the lease across many operations; Holds
	// must stay true throughout and flip only on Release.
	for i := 0; i < 100; i++ {
		if !l.Holds(pid) {
			t.Fatalf("Holds(%d) flipped mid-reuse at op %d", pid, i)
		}
	}
	l.Release(pid)
	if l.Holds(pid) {
		t.Fatalf("Holds(%d) = true after release", pid)
	}
}

func TestLeaserHoldsDuringHandoff(t *testing.T) {
	// When a release hands the pid directly to a FIFO waiter, the id never
	// becomes free: Holds must remain true across the ownership transfer.
	l := NewLeaser(1)
	pid, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan int)
	go func() {
		p, err := l.Acquire(context.Background())
		if err != nil {
			t.Error(err)
			close(got)
			return
		}
		got <- p
	}()
	// Wait for the second acquirer to queue, then hand off.
	for i := 0; l.Stats().Blocks == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	l.Release(pid)
	p := <-got
	if !l.Holds(p) {
		t.Fatalf("Holds(%d) = false after direct handoff", p)
	}
	l.Release(p)
	if l.Holds(p) {
		t.Fatalf("Holds(%d) = true after final release", p)
	}
}
