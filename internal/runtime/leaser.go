// Package runtime bridges the paper's fixed-process model to ordinary Go
// programs. Every object in this module follows the paper's concurrency
// model: n processes with pre-assigned ids 0..n-1, each id used by at most
// one thread at a time. Go services have no such processes — goroutines come
// and go — so the Leaser manages short-lived leases of ids from the fixed
// pool: a goroutine acquires a pid, performs operations as that process, and
// releases it.
//
// The design goals, in order: correctness of the ownership invariant (a pid
// is held by at most one goroutine between Acquire and Release), a cheap
// uncontended fast path (striped free lists with per-P affinity via
// sync.Pool hints), and well-behaved saturation (FIFO blocking with context
// cancellation instead of spinning).
package runtime

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
)

// Leaser hands out leases of process ids 0..n-1.
//
// Free ids live in stripes, each guarded by its own mutex, so concurrent
// acquirers on different Ps rarely touch the same cache line. A sync.Pool of
// stripe hints gives each P a sticky home stripe: sync.Pool's per-P caching
// means a goroutine usually gets back the hint last used on its P, keeping a
// pid close to the core that last used it. When every stripe is empty,
// acquirers queue FIFO and releases hand ids directly to the oldest waiter.
type Leaser struct {
	n       int
	stripes []stripe

	// holders tracks the ownership invariant: holders[pid] is 1 exactly while
	// pid is leased. Transitions are CASed so misuse (double release, release
	// of a never-acquired pid) fails loudly instead of corrupting per-process
	// state of the objects above.
	holders []atomic.Int32
	inUse   atomic.Int64

	qmu     sync.Mutex
	waiters waiterQueue

	hints    sync.Pool
	hintSeed atomic.Uint32

	stats LeaserStats
}

// stripe is one shard of the free list; the trailing pad keeps neighbouring
// stripes off one cache line.
type stripe struct {
	mu   sync.Mutex
	free []int
	_    [40]byte
}

type waiter struct {
	ch   chan int
	next *waiter
}

// waiterQueue is an intrusive FIFO list of blocked acquirers.
type waiterQueue struct {
	head, tail *waiter
}

func (q *waiterQueue) push(w *waiter) {
	if q.tail == nil {
		q.head, q.tail = w, w
		return
	}
	q.tail.next = w
	q.tail = w
}

func (q *waiterQueue) pop() *waiter {
	w := q.head
	if w == nil {
		return nil
	}
	q.head = w.next
	if q.head == nil {
		q.tail = nil
	}
	w.next = nil
	return w
}

func (q *waiterQueue) remove(target *waiter) bool {
	var prev *waiter
	for w := q.head; w != nil; w = w.next {
		if w == target {
			if prev == nil {
				q.head = w.next
			} else {
				prev.next = w.next
			}
			if q.tail == w {
				q.tail = prev
			}
			w.next = nil
			return true
		}
		prev = w
	}
	return false
}

// LeaserStats are monotone counters exposed for monitoring. Read them with
// Stats; they are updated atomically and individually, so a snapshot is not
// a consistent cut (fine for metrics).
type LeaserStats struct {
	// Acquires counts successful lease acquisitions.
	Acquires atomic.Int64
	// FastPath counts acquisitions satisfied by the acquirer's home stripe.
	FastPath atomic.Int64
	// Steals counts acquisitions satisfied by scanning another stripe.
	Steals atomic.Int64
	// Blocks counts acquisitions that had to queue behind an empty pool.
	Blocks atomic.Int64
	// Cancels counts acquisitions abandoned via context.
	Cancels atomic.Int64
}

// StatsSnapshot is a plain-value copy of LeaserStats.
type StatsSnapshot struct {
	Acquires, FastPath, Steals, Blocks, Cancels int64
}

// NewLeaser constructs a leaser over ids 0..n-1 with a stripe count scaled
// to the pool size (next power of two, capped at 64). n must be positive.
func NewLeaser(n int) *Leaser {
	return NewLeaserStripes(n, 0)
}

// NewLeaserStripes is NewLeaser with an explicit stripe count (0 means
// automatic). More stripes reduce contention but slow the empty-pool scan.
func NewLeaserStripes(n, stripes int) *Leaser {
	if n <= 0 {
		panic(fmt.Sprintf("runtime: leaser needs n > 0, got %d", n))
	}
	if stripes <= 0 {
		stripes = defaultStripes(n)
	}
	if stripes > n {
		stripes = n
	}
	l := &Leaser{
		n:       n,
		stripes: make([]stripe, stripes),
		holders: make([]atomic.Int32, n),
	}
	l.hints.New = func() any {
		h := new(uint32)
		*h = l.hintSeed.Add(1) - 1
		return h
	}
	// Deal ids round-robin so every stripe starts non-empty.
	for pid := n - 1; pid >= 0; pid-- {
		s := &l.stripes[pid%stripes]
		s.free = append(s.free, pid)
	}
	return l
}

func defaultStripes(n int) int {
	s := 1
	for s < n && s < 64 {
		s <<= 1
	}
	if s > n {
		s >>= 1
	}
	if s < 1 {
		s = 1
	}
	return s
}

// Size returns the number of process ids managed.
func (l *Leaser) Size() int { return l.n }

// InUse returns the number of ids currently leased.
func (l *Leaser) InUse() int { return int(l.inUse.Load()) }

// Holds reports whether pid is currently leased. Callers that reuse one
// lease across many operations (batch execution) assert this between
// operations to catch a step that released — or handed off — the pid it was
// given: continuing after that would break the ownership invariant and
// corrupt per-process state. Ids outside [0, n) are never held.
func (l *Leaser) Holds(pid int) bool {
	if pid < 0 || pid >= l.n {
		return false
	}
	return l.holders[pid].Load() == 1
}

// Held returns the ids currently leased, in ascending order. Intended for
// leak detection in tests and for diagnostics; the result is a snapshot and
// may be stale by the time it returns.
func (l *Leaser) Held() []int {
	var held []int
	for pid := range l.holders {
		if l.holders[pid].Load() == 1 {
			held = append(held, pid)
		}
	}
	return held
}

// Stats returns a copy of the monotone counters.
func (l *Leaser) Stats() StatsSnapshot {
	return StatsSnapshot{
		Acquires: l.stats.Acquires.Load(),
		FastPath: l.stats.FastPath.Load(),
		Steals:   l.stats.Steals.Load(),
		Blocks:   l.stats.Blocks.Load(),
		Cancels:  l.stats.Cancels.Load(),
	}
}

// TryAcquire leases an id without blocking. It reports false when every id
// is leased.
func (l *Leaser) TryAcquire() (int, bool) {
	hint := l.hints.Get().(*uint32)
	pid, home := l.scan(*hint)
	*hint = home
	l.hints.Put(hint)
	if pid < 0 {
		return 0, false
	}
	l.lease(pid)
	return pid, true
}

// scan pops a free id starting from stripe hint, returning the id (or -1)
// and the stripe it came from (to refresh the hint).
func (l *Leaser) scan(hint uint32) (int, uint32) {
	ns := uint32(len(l.stripes))
	for i := uint32(0); i < ns; i++ {
		idx := (hint + i) % ns
		s := &l.stripes[idx]
		s.mu.Lock()
		if k := len(s.free); k > 0 {
			pid := s.free[k-1]
			s.free = s.free[:k-1]
			s.mu.Unlock()
			if i == 0 {
				l.stats.FastPath.Add(1)
			} else {
				l.stats.Steals.Add(1)
			}
			return pid, idx
		}
		s.mu.Unlock()
	}
	return -1, hint
}

// Acquire leases an id, blocking while all ids are leased. It returns
// ctx.Err() if the context is cancelled first. Waiters are served FIFO, so
// acquisition is starvation-free as long as leases are released.
func (l *Leaser) Acquire(ctx context.Context) (int, error) {
	if pid, ok := l.TryAcquire(); ok {
		return pid, nil
	}
	// Slow path: queue, then re-scan once under the queue lock. The re-scan
	// closes the race where every stripe emptied before we queued but a
	// Release ran in between (releases check the queue first, so a release
	// after we enqueue will find us).
	w := &waiter{ch: make(chan int, 1)}
	l.qmu.Lock()
	l.waiters.push(w)
	l.qmu.Unlock()
	if pid, ok := l.TryAcquire(); ok {
		if l.dequeue(w) {
			return pid, nil
		}
		// A release already handed us an id through the channel; keep that
		// one and give the scanned one back (through Release, so it reaches
		// the next waiter if one is queued).
		l.Release(pid)
		return <-w.ch, nil
	}
	l.stats.Blocks.Add(1)

	select {
	case pid := <-w.ch:
		// The releasing goroutine transferred ownership directly: holders
		// bookkeeping stayed leased throughout, only the holder changed.
		l.stats.Acquires.Add(1)
		return pid, nil
	case <-ctx.Done():
		if l.dequeue(w) {
			l.stats.Cancels.Add(1)
			return 0, ctx.Err()
		}
		// Lost the race: a release delivered an id while we were cancelling.
		// Take it and put it back so it is not leaked.
		l.Release(<-w.ch)
		l.stats.Cancels.Add(1)
		return 0, ctx.Err()
	}
}

// dequeue removes w from the wait queue, reporting whether it was still
// queued (false means a release already picked it and will send on w.ch).
func (l *Leaser) dequeue(w *waiter) bool {
	l.qmu.Lock()
	defer l.qmu.Unlock()
	return l.waiters.remove(w)
}

// Release returns a leased id to the pool. Releasing an id that is not
// currently leased panics: it means two goroutines believed they owned the
// same pid, which would have corrupted per-process state above.
func (l *Leaser) Release(pid int) {
	if pid < 0 || pid >= l.n {
		panic(fmt.Sprintf("runtime: release of pid %d outside [0,%d)", pid, l.n))
	}
	// Hand off to a waiter first: ownership transfers without the id ever
	// becoming free, so a TryAcquire cannot jump the queue.
	l.qmu.Lock()
	w := l.waiters.pop()
	l.qmu.Unlock()
	if w != nil {
		w.ch <- pid
		return
	}
	l.release(pid)
}

// release marks pid free and pushes it on its home stripe.
func (l *Leaser) release(pid int) {
	if !l.holders[pid].CompareAndSwap(1, 0) {
		panic(fmt.Sprintf("runtime: pid %d released while not leased", pid))
	}
	l.inUse.Add(-1)
	s := &l.stripes[pid%len(l.stripes)]
	s.mu.Lock()
	s.free = append(s.free, pid)
	s.mu.Unlock()
}

// lease marks pid held after it was popped from a stripe.
func (l *Leaser) lease(pid int) {
	if !l.holders[pid].CompareAndSwap(0, 1) {
		panic(fmt.Sprintf("runtime: pid %d acquired while already leased", pid))
	}
	l.inUse.Add(1)
	l.stats.Acquires.Add(1)
}

// With acquires an id, runs fn as that process, and releases the id even if
// fn panics.
func (l *Leaser) With(ctx context.Context, fn func(pid int) error) error {
	pid, err := l.Acquire(ctx)
	if err != nil {
		return err
	}
	defer l.Release(pid)
	return fn(pid)
}
