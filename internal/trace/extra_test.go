package trace

import (
	"strings"
	"testing"
)

func TestTranscriptString(t *testing.T) {
	tr := sampleTranscript()
	out := tr.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != tr.Len() {
		t.Fatalf("String has %d lines, want %d", len(lines), tr.Len())
	}
	if !strings.Contains(lines[0], "inv") || !strings.Contains(lines[0], "write(1)") {
		t.Errorf("first line = %q", lines[0])
	}
	// Indices must be present and ordered.
	if !strings.HasPrefix(strings.TrimSpace(lines[3]), "3") {
		t.Errorf("line 3 = %q, want index prefix 3", lines[3])
	}
}

func TestHistoryString(t *testing.T) {
	h := sampleTranscript().Interpreted()
	out := h.String()
	if !strings.Contains(out, "#1 p0 write(1) -> ok") {
		t.Errorf("missing completed op rendering:\n%s", out)
	}
	if !strings.Contains(out, "(pending)") {
		t.Errorf("missing pending op rendering:\n%s", out)
	}
}

func TestOperationString(t *testing.T) {
	op := Operation{OpID: 9, PID: 2, Desc: "scan()", Res: "[a]", Inv: 0, Ret: 5}
	if got := op.String(); got != "#9 p2 scan() -> [a]" {
		t.Errorf("String = %q", got)
	}
	op.Ret = -1
	if got := op.String(); got != "#9 p2 scan() -> (pending)" {
		t.Errorf("pending String = %q", got)
	}
}

func TestEventKindString(t *testing.T) {
	tests := map[EventKind]string{
		KindInvoke:    "inv",
		KindReturn:    "ret",
		KindRead:      "read",
		KindWrite:     "write",
		KindAnnotate:  "note",
		EventKind(99): "EventKind(99)",
	}
	for k, want := range tests {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestUnknownEventString(t *testing.T) {
	e := Event{Kind: EventKind(42), PID: 1}
	if got := e.String(); !strings.Contains(got, "?kind=42") {
		t.Errorf("String = %q", got)
	}
}

func TestInterpretedIgnoresUnmatchedReturn(t *testing.T) {
	tr := &Transcript{}
	tr.Append(Event{Kind: KindReturn, PID: 0, OpID: 77, Res: "ok"})
	h := tr.Interpreted()
	if len(h.Ops) != 0 {
		t.Errorf("unmatched return produced %d ops", len(h.Ops))
	}
}

func TestInterpretedIgnoresAnnotations(t *testing.T) {
	tr := &Transcript{}
	tr.Append(Event{Kind: KindInvoke, PID: 0, OpID: 1, Desc: "op()"})
	tr.Append(Event{Kind: KindAnnotate, PID: 0, OpID: 1, Desc: "hint"})
	tr.Append(Event{Kind: KindReturn, PID: 0, OpID: 1, Res: "ok"})
	h := tr.Interpreted()
	if len(h.Ops) != 1 || !h.Ops[0].Complete() {
		t.Fatalf("ops = %v", h.Ops)
	}
}

func TestEmptyTranscript(t *testing.T) {
	tr := &Transcript{}
	if tr.Len() != 0 {
		t.Error("empty transcript has nonzero length")
	}
	if !tr.IsPrefixOf(sampleTranscript()) {
		t.Error("empty transcript must prefix everything")
	}
	h := tr.Interpreted()
	if len(h.Ops) != 0 || !h.Complete() {
		t.Error("empty history must be complete with no ops")
	}
	if got := tr.Clone().Len(); got != 0 {
		t.Errorf("clone of empty = %d events", got)
	}
}

func TestProjectRegExcludesHighLevel(t *testing.T) {
	tr := sampleTranscript()
	// Project onto a register that does not exist.
	if got := tr.ProjectReg("nope").Len(); got != 0 {
		t.Errorf("projection onto unknown register has %d events", got)
	}
}

func TestAppendReturnsIndex(t *testing.T) {
	tr := &Transcript{}
	for i := 0; i < 5; i++ {
		if got := tr.Append(Event{Kind: KindRead, PID: 0}); got != i {
			t.Fatalf("Append returned %d, want %d", got, i)
		}
	}
}
