// Package trace defines the execution model of the paper's Section 2:
// transcripts made of invocation events, response events, and base-object
// steps; interpreted histories Γ(T); and the happens-before order.
//
// A transcript is the ground truth recorded by the simulator
// (internal/sched). The linearizability and strong-linearizability checkers
// (internal/lincheck) work on interpreted histories extracted from
// transcripts.
package trace

import (
	"fmt"
	"strings"
)

// EventKind discriminates transcript events.
type EventKind int

// Event kinds. Invoke/Return are the "high-level" steps of operations on the
// implemented object; Read/Write are steps on base registers; Annotate
// carries auxiliary implementation annotations (e.g. linearization-point
// hints) and is ignored by Γ.
const (
	KindInvoke EventKind = iota + 1
	KindReturn
	KindRead
	KindWrite
	KindAnnotate
)

// String returns a short human-readable name for the event kind.
func (k EventKind) String() string {
	switch k {
	case KindInvoke:
		return "inv"
	case KindReturn:
		return "ret"
	case KindRead:
		return "read"
	case KindWrite:
		return "write"
	case KindAnnotate:
		return "note"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is a single step of a transcript.
type Event struct {
	Kind EventKind
	// PID is the process performing the step.
	PID int
	// OpID identifies the operation instance this step belongs to. It pairs
	// invocations with responses (the paper's matching integer id).
	OpID int
	// Desc is the invocation description for Invoke events, e.g. "DWrite(5)",
	// and the annotation text for Annotate events.
	Desc string
	// Res is the response encoding for Return events, e.g. "(5,true)".
	Res string
	// Reg is the register name for Read/Write events.
	Reg string
	// Val is a string rendering of the value read or written.
	Val string
}

// String renders the event compactly, for counterexample output.
func (e Event) String() string {
	switch e.Kind {
	case KindInvoke:
		return fmt.Sprintf("p%d inv  #%d %s", e.PID, e.OpID, e.Desc)
	case KindReturn:
		return fmt.Sprintf("p%d ret  #%d -> %s", e.PID, e.OpID, e.Res)
	case KindRead:
		return fmt.Sprintf("p%d read %s = %s", e.PID, e.Reg, e.Val)
	case KindWrite:
		return fmt.Sprintf("p%d write %s := %s", e.PID, e.Reg, e.Val)
	case KindAnnotate:
		return fmt.Sprintf("p%d note %s", e.PID, e.Desc)
	default:
		return fmt.Sprintf("p%d ?kind=%d", e.PID, int(e.Kind))
	}
}

// Transcript is a finite sequence of events. The zero value is an empty
// transcript ready to use.
type Transcript struct {
	Events []Event
}

// Append adds an event and returns its index (its "time" in the paper's
// sense).
func (t *Transcript) Append(e Event) int {
	t.Events = append(t.Events, e)
	return len(t.Events) - 1
}

// Len returns the number of events.
func (t *Transcript) Len() int { return len(t.Events) }

// Clone returns a deep copy of the transcript.
func (t *Transcript) Clone() *Transcript {
	events := make([]Event, len(t.Events))
	copy(events, t.Events)
	return &Transcript{Events: events}
}

// Prefix returns a copy of the first k events as a transcript.
func (t *Transcript) Prefix(k int) *Transcript {
	if k > len(t.Events) {
		k = len(t.Events)
	}
	events := make([]Event, k)
	copy(events, t.Events[:k])
	return &Transcript{Events: events}
}

// IsPrefixOf reports whether t is a prefix of u.
func (t *Transcript) IsPrefixOf(u *Transcript) bool {
	if len(t.Events) > len(u.Events) {
		return false
	}
	for i, e := range t.Events {
		if u.Events[i] != e {
			return false
		}
	}
	return true
}

// ProjectPID returns the subsequence of events performed by process pid
// (the paper's T|p).
func (t *Transcript) ProjectPID(pid int) *Transcript {
	out := &Transcript{}
	for _, e := range t.Events {
		if e.PID == pid {
			out.Events = append(out.Events, e)
		}
	}
	return out
}

// ProjectReg returns the subsequence of base steps on the named register
// (the paper's T|O for a base object O).
func (t *Transcript) ProjectReg(reg string) *Transcript {
	out := &Transcript{}
	for _, e := range t.Events {
		if (e.Kind == KindRead || e.Kind == KindWrite) && e.Reg == reg {
			out.Events = append(out.Events, e)
		}
	}
	return out
}

// String renders the transcript one event per line.
func (t *Transcript) String() string {
	var b strings.Builder
	for i, e := range t.Events {
		fmt.Fprintf(&b, "%4d  %s\n", i, e.String())
	}
	return b.String()
}

// Operation is a "high-level" operation extracted from a transcript: an
// invocation and (if complete) its matching response.
type Operation struct {
	OpID int
	PID  int
	// Desc is the invocation description, e.g. "update(3)".
	Desc string
	// Res is the recorded response; meaningful only when Complete.
	Res string
	// Inv and Ret are event indices in the source transcript; Ret is -1 for
	// pending operations.
	Inv int
	Ret int
}

// Complete reports whether the operation has responded.
func (o Operation) Complete() bool { return o.Ret >= 0 }

// String renders the operation for counterexample output.
func (o Operation) String() string {
	if o.Complete() {
		return fmt.Sprintf("#%d p%d %s -> %s", o.OpID, o.PID, o.Desc, o.Res)
	}
	return fmt.Sprintf("#%d p%d %s -> (pending)", o.OpID, o.PID, o.Desc)
}

// History is an interpreted history Γ(T): the high-level operations of a
// transcript in invocation order, with real-time (happens-before) structure
// recoverable from the Inv/Ret indices.
type History struct {
	Ops []Operation
}

// Interpreted computes Γ(t): one Operation per Invoke event, completed if a
// matching Return exists.
func (t *Transcript) Interpreted() *History {
	h := &History{}
	byID := make(map[int]int) // OpID -> index in h.Ops
	for i, e := range t.Events {
		switch e.Kind {
		case KindInvoke:
			byID[e.OpID] = len(h.Ops)
			h.Ops = append(h.Ops, Operation{
				OpID: e.OpID,
				PID:  e.PID,
				Desc: e.Desc,
				Inv:  i,
				Ret:  -1,
			})
		case KindReturn:
			idx, ok := byID[e.OpID]
			if !ok {
				// A response without a recorded invocation would violate
				// well-formedness; ignore defensively.
				continue
			}
			h.Ops[idx].Ret = i
			h.Ops[idx].Res = e.Res
		}
	}
	return h
}

// HappensBefore reports whether a happens before b: a's response precedes
// b's invocation.
func (h *History) HappensBefore(a, b Operation) bool {
	return a.Ret >= 0 && a.Ret < b.Inv
}

// Complete reports whether every operation in the history is complete.
func (h *History) Complete() bool {
	for _, op := range h.Ops {
		if !op.Complete() {
			return false
		}
	}
	return true
}

// Pending returns the pending operations.
func (h *History) Pending() []Operation {
	var out []Operation
	for _, op := range h.Ops {
		if !op.Complete() {
			out = append(out, op)
		}
	}
	return out
}

// ByID returns the operation with the given OpID, if present.
func (h *History) ByID(id int) (Operation, bool) {
	for _, op := range h.Ops {
		if op.OpID == id {
			return op, true
		}
	}
	return Operation{}, false
}

// String renders the history one operation per line.
func (h *History) String() string {
	var b strings.Builder
	for _, op := range h.Ops {
		b.WriteString(op.String())
		b.WriteByte('\n')
	}
	return b.String()
}
