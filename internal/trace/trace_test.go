package trace

import (
	"testing"
	"testing/quick"
)

func sampleTranscript() *Transcript {
	t := &Transcript{}
	t.Append(Event{Kind: KindInvoke, PID: 0, OpID: 1, Desc: "write(1)"})
	t.Append(Event{Kind: KindWrite, PID: 0, OpID: 1, Reg: "X", Val: "1"})
	t.Append(Event{Kind: KindInvoke, PID: 1, OpID: 2, Desc: "read()"})
	t.Append(Event{Kind: KindReturn, PID: 0, OpID: 1, Res: "ok"})
	t.Append(Event{Kind: KindRead, PID: 1, OpID: 2, Reg: "X", Val: "1"})
	t.Append(Event{Kind: KindReturn, PID: 1, OpID: 2, Res: "1"})
	t.Append(Event{Kind: KindInvoke, PID: 0, OpID: 3, Desc: "write(2)"})
	return t
}

func TestInterpreted(t *testing.T) {
	tr := sampleTranscript()
	h := tr.Interpreted()
	if len(h.Ops) != 3 {
		t.Fatalf("got %d ops, want 3", len(h.Ops))
	}

	op1, op2, op3 := h.Ops[0], h.Ops[1], h.Ops[2]
	if !op1.Complete() || op1.Res != "ok" || op1.Desc != "write(1)" {
		t.Errorf("op1 = %+v, want complete write(1)->ok", op1)
	}
	if !op2.Complete() || op2.Res != "1" {
		t.Errorf("op2 = %+v, want complete read->1", op2)
	}
	if op3.Complete() {
		t.Errorf("op3 = %+v, want pending", op3)
	}
	if h.Complete() {
		t.Error("history reported complete with a pending op")
	}
	if got := len(h.Pending()); got != 1 {
		t.Errorf("pending count = %d, want 1", got)
	}
}

func TestHappensBefore(t *testing.T) {
	tr := sampleTranscript()
	h := tr.Interpreted()
	op1, op2, op3 := h.Ops[0], h.Ops[1], h.Ops[2]

	tests := []struct {
		name string
		a, b Operation
		want bool
	}{
		{"op1 before op3", op1, op3, true},
		{"op2 before op3", op2, op3, true},
		{"op1 concurrent op2 (overlap)", op1, op2, false},
		{"op2 not before op1", op2, op1, false},
		{"pending op3 before nothing", op3, op1, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := h.HappensBefore(tc.a, tc.b); got != tc.want {
				t.Errorf("HappensBefore(#%d,#%d) = %t, want %t", tc.a.OpID, tc.b.OpID, got, tc.want)
			}
		})
	}
}

func TestProjections(t *testing.T) {
	tr := sampleTranscript()
	p0 := tr.ProjectPID(0)
	if p0.Len() != 4 {
		t.Errorf("T|p0 has %d events, want 4", p0.Len())
	}
	for _, e := range p0.Events {
		if e.PID != 0 {
			t.Errorf("T|p0 contains event by p%d", e.PID)
		}
	}
	rx := tr.ProjectReg("X")
	if rx.Len() != 2 {
		t.Errorf("T|X has %d events, want 2", rx.Len())
	}
	for _, e := range rx.Events {
		if e.Kind != KindRead && e.Kind != KindWrite {
			t.Errorf("T|X contains non-base event %v", e)
		}
	}
}

func TestPrefixRelation(t *testing.T) {
	tr := sampleTranscript()
	for k := 0; k <= tr.Len(); k++ {
		p := tr.Prefix(k)
		if p.Len() != k {
			t.Fatalf("Prefix(%d).Len() = %d", k, p.Len())
		}
		if !p.IsPrefixOf(tr) {
			t.Fatalf("Prefix(%d) not a prefix of original", k)
		}
	}
	if tr.Prefix(3).IsPrefixOf(tr.Prefix(2)) {
		t.Error("longer transcript reported as prefix of shorter")
	}
	other := sampleTranscript()
	other.Events[0].PID = 5
	if other.Prefix(1).IsPrefixOf(tr) {
		t.Error("diverging transcript reported as prefix")
	}
}

func TestPrefixOverflowClamped(t *testing.T) {
	tr := sampleTranscript()
	if got := tr.Prefix(1000).Len(); got != tr.Len() {
		t.Errorf("Prefix beyond length = %d events, want %d", got, tr.Len())
	}
}

func TestCloneIndependent(t *testing.T) {
	tr := sampleTranscript()
	cl := tr.Clone()
	cl.Events[0].Desc = "mutated"
	if tr.Events[0].Desc == "mutated" {
		t.Error("Clone shares storage with original")
	}
}

// Property: for any split point, interpreting a prefix yields operations
// whose Inv index is within the prefix, and every complete op in the prefix
// stays complete in the full interpretation.
func TestInterpretedPrefixMonotone(t *testing.T) {
	tr := sampleTranscript()
	full := tr.Interpreted()
	f := func(kRaw uint8) bool {
		k := int(kRaw) % (tr.Len() + 1)
		h := tr.Prefix(k).Interpreted()
		for _, op := range h.Ops {
			if op.Inv >= k {
				return false
			}
			if op.Complete() {
				fop, found := full.ByID(op.OpID)
				if !found || !fop.Complete() || fop.Res != op.Res {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEventString(t *testing.T) {
	tests := []struct {
		e    Event
		want string
	}{
		{Event{Kind: KindInvoke, PID: 1, OpID: 7, Desc: "scan()"}, "p1 inv  #7 scan()"},
		{Event{Kind: KindReturn, PID: 2, OpID: 7, Res: "[1 2]"}, "p2 ret  #7 -> [1 2]"},
		{Event{Kind: KindRead, PID: 0, Reg: "X", Val: "3"}, "p0 read X = 3"},
		{Event{Kind: KindWrite, PID: 0, Reg: "X", Val: "4"}, "p0 write X := 4"},
		{Event{Kind: KindAnnotate, PID: 3, Desc: "lin"}, "p3 note lin"},
	}
	for _, tc := range tests {
		if got := tc.e.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

func TestByID(t *testing.T) {
	h := sampleTranscript().Interpreted()
	if _, ok := h.ByID(2); !ok {
		t.Error("ByID(2) not found")
	}
	if _, ok := h.ByID(99); ok {
		t.Error("ByID(99) unexpectedly found")
	}
}
