package load

import (
	"context"
	"math"
	"testing"
	"time"
)

// fakeClock is a single-goroutine simulated clock: Sleep advances virtual
// time instantly, so a simulated multi-second pacing run completes in
// microseconds of real time.
type fakeClock struct {
	now time.Time
}

func (c *fakeClock) Now() time.Time { return c.now }
func (c *fakeClock) Sleep(d time.Duration) {
	if d > 0 {
		c.now = c.now.Add(d)
	}
}

// offeredRate runs Pace for a simulated window and returns arrivals/second.
func offeredRate(t *testing.T, rate float64, poisson bool, window time.Duration) float64 {
	t.Helper()
	clk := &fakeClock{now: time.Unix(0, 0)}
	n := Pace(context.Background(), clk, NewPacer(rate, poisson, 77), window, func(time.Time) bool { return true })
	return float64(n) / window.Seconds()
}

// TestPacerOfferedRate verifies the open-loop pacer's offered rate lands
// within 5% of the target under a simulated clock, for fixed and Poisson
// arrivals across three decades of rate.
func TestPacerOfferedRate(t *testing.T) {
	const window = 10 * time.Second // simulated
	for _, rate := range []float64{100, 1000, 20000} {
		for _, poisson := range []bool{false, true} {
			got := offeredRate(t, rate, poisson, window)
			if relErr := math.Abs(got-rate) / rate; relErr > 0.05 {
				t.Errorf("rate=%g poisson=%v: offered %.1f/s (rel err %.3f > 0.05)", rate, poisson, got, relErr)
			}
		}
	}
}

func TestPacerScheduledTimesMonotonic(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	var prev time.Time
	Pace(context.Background(), clk, NewPacer(5000, true, 3), time.Second, func(scheduled time.Time) bool {
		if !prev.IsZero() && scheduled.Before(prev) {
			t.Fatalf("scheduled arrival %v before predecessor %v", scheduled, prev)
		}
		if scheduled.After(clk.Now()) {
			t.Fatalf("emit at clock %v ahead of scheduled %v", clk.Now(), scheduled)
		}
		prev = scheduled
		return true
	})
}

func TestPacerDeterministicSchedule(t *testing.T) {
	collect := func() []time.Time {
		clk := &fakeClock{now: time.Unix(0, 0)}
		var out []time.Time
		Pace(context.Background(), clk, NewPacer(1000, true, 9), time.Second, func(s time.Time) bool {
			out = append(out, s)
			return true
		})
		return out
	}
	a, b := collect(), collect()
	if len(a) != len(b) {
		t.Fatalf("same seed produced %d vs %d arrivals", len(a), len(b))
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("same seed diverged at arrival %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestPaceStopsOnContextAndEmitFalse(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if n := Pace(ctx, clk, NewPacer(1000, false, 0), time.Second, func(time.Time) bool { return true }); n != 0 {
		t.Errorf("cancelled context still emitted %d arrivals", n)
	}
	clk = &fakeClock{now: time.Unix(0, 0)}
	var calls int
	Pace(context.Background(), clk, NewPacer(1000, false, 0), time.Second, func(time.Time) bool {
		calls++
		return calls < 3
	})
	if calls != 3 {
		t.Errorf("emit=false stopped after %d calls, want 3", calls)
	}
}
