// Package load is the load-generation subsystem behind cmd/slload: the
// instrument that turns "faster" claims into tail-latency evidence. Where
// cmd/slbench measures *means* of hot paths in a tight loop, this package
// measures *quantiles* (p50/p95/p99) of a configurable workload — skewed key
// distributions, open-loop (arrival-paced) or closed-loop (worker-paced)
// request generation, warmup/measure phasing, and graceful drain — against
// whatever operation the caller supplies (in-process registry dispatch, live
// HTTP, anything with the Op signature).
//
// The pieces:
//
//   - KeySpec / KeyGen (keys.go): deterministic key-index generators —
//     uniform, hot-key (a small hot set absorbs a configured fraction of
//     traffic), and zipfian — seeded explicitly so runs replay the same key
//     sequence byte-for-byte.
//   - Pacer / Pace (pacer.go): open-loop arrival schedules, fixed-rate or
//     Poisson, driven through a Clock so tests can verify offered rate under
//     a simulated clock.
//   - Reservoir (reservoir.go): fixed-capacity per-worker latency sampling
//     (algorithm R) with weighted cross-worker quantile merging, bounding
//     allocations no matter how long the run is.
//   - Config / Run (runner.go): the run controller — warmup, measure, drain —
//     producing a Result with quantiles, throughput, and error counts.
//   - Summary (summary.go): the one-line machine-readable record (schema
//     slload/v5) cmd/slload emits, the BENCH_NNNN artifact unit.
//
// Open loop vs closed loop, in one paragraph: a closed-loop run has W
// workers each issuing the next request as soon as the previous one
// completes, so the offered load adapts to the system — a slow server is
// politely offered less, which hides queueing collapse. An open-loop run
// schedules arrivals on a clock at a fixed offered rate regardless of
// completions, and measures latency from the *scheduled arrival* (not
// dispatch), so time spent queued behind a stalled server counts — the
// coordinated-omission-free number production p99s are made of. Both modes
// matter: closed-loop gives peak sustainable throughput, open-loop gives
// honest latency at a given rate.
package load

import (
	"fmt"
	"math/rand"
)

// Dist names a key distribution.
type Dist string

// Supported key distributions.
const (
	// DistUniform draws keys uniformly over the keyspace.
	DistUniform Dist = "uniform"
	// DistHotKey sends HotFrac of the traffic to the first HotKeys keys and
	// spreads the rest uniformly over the remainder.
	DistHotKey Dist = "hotkey"
	// DistZipf draws keys from a zipfian distribution with exponent ZipfS
	// (rank 0 hottest).
	DistZipf Dist = "zipfian"
)

// Dists lists the supported distributions in stable order.
func Dists() []Dist { return []Dist{DistUniform, DistHotKey, DistZipf} }

// KeyGen produces a deterministic stream of key indices in [0, Keys). It is
// not safe for concurrent use: each worker owns one generator, derived from
// the run seed and the worker index, so the per-worker key sequence is
// reproducible regardless of scheduling.
type KeyGen interface {
	// Next returns the next key index.
	Next() int
}

// KeySpec describes a key distribution over a finite keyspace.
type KeySpec struct {
	// Dist selects the distribution.
	Dist Dist
	// Keys is the keyspace size; indices are 0..Keys-1.
	Keys int
	// HotFrac is the fraction of draws landing in the hot set (hotkey only).
	// Defaults to 0.9.
	HotFrac float64
	// HotKeys is the hot-set size (hotkey only). Defaults to 1.
	HotKeys int
	// ZipfS is the zipfian exponent s > 1 (zipfian only). Defaults to 1.1.
	ZipfS float64
}

// withDefaults returns the spec with zero fields replaced by defaults.
func (s KeySpec) withDefaults() KeySpec {
	if s.HotFrac == 0 {
		s.HotFrac = 0.9
	}
	if s.HotKeys == 0 {
		s.HotKeys = 1
	}
	if s.ZipfS == 0 {
		s.ZipfS = 1.1
	}
	return s
}

// Validate reports whether the spec is well-formed.
func (s KeySpec) Validate() error {
	s = s.withDefaults()
	if s.Keys <= 0 {
		return fmt.Errorf("load: keyspace must be positive, got %d", s.Keys)
	}
	switch s.Dist {
	case DistUniform:
	case DistHotKey:
		if s.HotFrac < 0 || s.HotFrac > 1 {
			return fmt.Errorf("load: hot fraction must be in [0,1], got %g", s.HotFrac)
		}
		if s.HotKeys < 1 || s.HotKeys > s.Keys {
			return fmt.Errorf("load: hot-set size must be in [1,%d], got %d", s.Keys, s.HotKeys)
		}
	case DistZipf:
		if s.ZipfS <= 1 {
			return fmt.Errorf("load: zipf exponent must be > 1, got %g", s.ZipfS)
		}
	default:
		return fmt.Errorf("load: unknown distribution %q (supported: %v)", s.Dist, Dists())
	}
	return nil
}

// New builds a generator for the spec, deterministic in seed.
func (s KeySpec) New(seed int64) (KeyGen, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	s = s.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	switch s.Dist {
	case DistUniform:
		return &uniformGen{rng: rng, keys: s.Keys}, nil
	case DistHotKey:
		return &hotKeyGen{rng: rng, keys: s.Keys, hotFrac: s.HotFrac, hotKeys: s.HotKeys}, nil
	case DistZipf:
		return &zipfGen{z: rand.NewZipf(rng, s.ZipfS, 1, uint64(s.Keys-1))}, nil
	}
	panic("unreachable: Validate admitted unknown distribution")
}

// uniformGen draws uniformly over [0, keys).
type uniformGen struct {
	rng  *rand.Rand
	keys int
}

// Next implements KeyGen.
func (g *uniformGen) Next() int { return g.rng.Intn(g.keys) }

// hotKeyGen sends hotFrac of draws to keys [0, hotKeys) and the rest
// uniformly to [hotKeys, keys); with hotKeys == keys every draw is "hot" and
// the distribution degenerates to uniform.
type hotKeyGen struct {
	rng     *rand.Rand
	keys    int
	hotFrac float64
	hotKeys int
}

// Next implements KeyGen.
func (g *hotKeyGen) Next() int {
	if g.hotKeys == g.keys || g.rng.Float64() < g.hotFrac {
		return g.rng.Intn(g.hotKeys)
	}
	return g.hotKeys + g.rng.Intn(g.keys-g.hotKeys)
}

// zipfGen draws zipfian-ranked keys: key 0 is the hottest.
type zipfGen struct {
	z *rand.Zipf
}

// Next implements KeyGen.
func (g *zipfGen) Next() int { return int(g.z.Uint64()) }
