package load

import (
	"math/rand"
	"sort"
)

// Reservoir is a fixed-capacity uniform sample of a latency stream
// (algorithm R): the first cap values are kept verbatim, after which each
// new value replaces a random slot with probability cap/seen. Memory is
// bounded at cap values no matter how long the run is — the property that
// lets a multi-hour soak keep per-worker sampling allocation-free after
// startup. Deterministic in its seed; not safe for concurrent use (each
// worker owns one reservoir and they are merged after the run).
type Reservoir struct {
	cap     int
	seen    int64
	samples []int64
	rng     *rand.Rand
}

// NewReservoir returns a reservoir keeping at most cap samples,
// deterministic in seed. cap must be positive.
func NewReservoir(cap int, seed int64) *Reservoir {
	if cap <= 0 {
		panic("load: reservoir capacity must be positive")
	}
	return &Reservoir{cap: cap, samples: make([]int64, 0, cap), rng: rand.New(rand.NewSource(seed))}
}

// Add offers one value to the sample.
func (r *Reservoir) Add(v int64) {
	r.seen++
	if len(r.samples) < r.cap {
		r.samples = append(r.samples, v)
		return
	}
	if j := r.rng.Int63n(r.seen); j < int64(r.cap) {
		r.samples[j] = v
	}
}

// Seen returns how many values were offered.
func (r *Reservoir) Seen() int64 { return r.seen }

// Len returns how many samples are held.
func (r *Reservoir) Len() int { return len(r.samples) }

// Quantile returns the q-quantile (0 < q <= 1) of the held samples by the
// nearest-rank method, or 0 when the reservoir is empty.
func (r *Reservoir) Quantile(q float64) int64 {
	if len(r.samples) == 0 {
		return 0
	}
	sorted := append([]int64(nil), r.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return nearestRank(sorted, q)
}

// nearestRank returns the q-quantile of sorted by the nearest-rank method.
func nearestRank(sorted []int64, q float64) int64 {
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// weightedSample is one sample with the stream mass it represents.
type weightedSample struct {
	v int64
	w float64
}

// MergedQuantiles estimates quantiles over the union of the reservoirs'
// streams. Each reservoir's samples stand for seen/len(samples) stream
// values apiece, so the merge weights samples by that ratio instead of
// concatenating — concatenation would over-represent workers whose streams
// were short (their reservoirs sample densely). Returns one value per
// requested quantile, plus the overall maximum sample; all zeros when every
// reservoir is empty.
func MergedQuantiles(rs []*Reservoir, qs []float64) (vals []int64, max int64) {
	var all []weightedSample
	for _, r := range rs {
		if r == nil || len(r.samples) == 0 {
			continue
		}
		w := float64(r.seen) / float64(len(r.samples))
		for _, v := range r.samples {
			all = append(all, weightedSample{v, w})
			if v > max {
				max = v
			}
		}
	}
	vals = make([]int64, len(qs))
	if len(all) == 0 {
		return vals, 0
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })
	var total float64
	for _, s := range all {
		total += s.w
	}
	for i, q := range qs {
		target := q * total
		var cum float64
		vals[i] = all[len(all)-1].v
		for _, s := range all {
			cum += s.w
			if cum >= target {
				vals[i] = s.v
				break
			}
		}
	}
	return vals, max
}
