package load

import (
	"testing"
)

// drawN draws n keys from a fresh generator of spec with the given seed.
func drawN(t *testing.T, spec KeySpec, seed int64, n int) []int {
	t.Helper()
	g, err := spec.New(seed)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	out := make([]int, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

func TestKeyGenDeterministic(t *testing.T) {
	specs := []KeySpec{
		{Dist: DistUniform, Keys: 100},
		{Dist: DistHotKey, Keys: 100, HotFrac: 0.8, HotKeys: 3},
		{Dist: DistZipf, Keys: 100, ZipfS: 1.2},
	}
	for _, spec := range specs {
		a := drawN(t, spec, 42, 5000)
		b := drawN(t, spec, 42, 5000)
		c := drawN(t, spec, 43, 5000)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: same seed diverged at draw %d: %d vs %d", spec.Dist, i, a[i], b[i])
			}
		}
		diff := 0
		for i := range a {
			if a[i] != c[i] {
				diff++
			}
		}
		if diff == 0 {
			t.Errorf("%s: different seeds produced identical streams", spec.Dist)
		}
	}
}

func TestKeyGenBounds(t *testing.T) {
	for _, spec := range []KeySpec{
		{Dist: DistUniform, Keys: 7},
		{Dist: DistHotKey, Keys: 7, HotFrac: 0.5, HotKeys: 2},
		{Dist: DistZipf, Keys: 7, ZipfS: 1.5},
	} {
		for _, k := range drawN(t, spec, 1, 10000) {
			if k < 0 || k >= spec.Keys {
				t.Fatalf("%s: key %d outside [0,%d)", spec.Dist, k, spec.Keys)
			}
		}
	}
}

func TestHotKeyFraction(t *testing.T) {
	const n = 100000
	spec := KeySpec{Dist: DistHotKey, Keys: 1000, HotFrac: 0.9, HotKeys: 10}
	hot := 0
	for _, k := range drawN(t, spec, 7, n) {
		if k < spec.HotKeys {
			hot++
		}
	}
	got := float64(hot) / n
	// 0.9 of draws land in the hot set directly; the uniform remainder adds
	// ~0.1*10/990 more. 2% tolerance over 100k draws is > 10 sigma.
	if got < 0.88 || got > 0.92 {
		t.Errorf("hot fraction = %.3f, want ~0.90", got)
	}
}

func TestZipfSkew(t *testing.T) {
	const n = 100000
	spec := KeySpec{Dist: DistZipf, Keys: 1000, ZipfS: 1.2}
	counts := make([]int, spec.Keys)
	for _, k := range drawN(t, spec, 11, n) {
		counts[k]++
	}
	// Rank 0 must dominate: strictly hotter than rank 10, and the top-10
	// ranks must absorb a clear majority of the traffic.
	if counts[0] <= counts[10] {
		t.Errorf("zipf not skewed: count[0]=%d <= count[10]=%d", counts[0], counts[10])
	}
	top := 0
	for _, c := range counts[:10] {
		top += c
	}
	if frac := float64(top) / n; frac < 0.5 {
		t.Errorf("top-10 zipf ranks got %.3f of traffic, want > 0.5", frac)
	}
}

func TestKeySpecValidate(t *testing.T) {
	bad := []KeySpec{
		{Dist: DistUniform, Keys: 0},
		{Dist: DistHotKey, Keys: 10, HotFrac: 1.5},
		{Dist: DistHotKey, Keys: 10, HotKeys: 11},
		{Dist: DistZipf, Keys: 10, ZipfS: 1.0},
		{Dist: "pareto", Keys: 10},
	}
	for _, spec := range bad {
		if err := spec.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted an invalid spec", spec)
		}
	}
	if err := (KeySpec{Dist: DistHotKey, Keys: 10}).Validate(); err != nil {
		t.Errorf("defaulted hotkey spec rejected: %v", err)
	}
}
