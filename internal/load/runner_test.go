package load

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunClosedLoop(t *testing.T) {
	var total atomic.Int64
	cfg := Config{
		Mode:    ModeClosed,
		Workers: 4,
		Warmup:  20 * time.Millisecond,
		Measure: 100 * time.Millisecond,
		Keys:    KeySpec{Dist: DistUniform, Keys: 16},
		Seed:    1,
	}
	res, err := Run(context.Background(), cfg, func(ctx context.Context, keys []int) error {
		total.Add(1)
		time.Sleep(100 * time.Microsecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Calls == 0 || res.Ops != res.Calls {
		t.Errorf("calls=%d ops=%d, want nonzero and equal at batch 1", res.Calls, res.Ops)
	}
	if res.TotalCalls < res.Calls {
		t.Errorf("total calls %d < measured calls %d", res.TotalCalls, res.Calls)
	}
	if res.Errors != 0 {
		t.Errorf("errors = %d, want 0", res.Errors)
	}
	if res.P50 <= 0 || res.P99 < res.P95 || res.P95 < res.P50 || res.Max < res.P99 {
		t.Errorf("quantiles disordered: p50=%v p95=%v p99=%v max=%v", res.P50, res.P95, res.P99, res.Max)
	}
	if res.Throughput <= 0 {
		t.Errorf("throughput = %g, want > 0", res.Throughput)
	}
}

func TestRunOpenLoop(t *testing.T) {
	cfg := Config{
		Mode:    ModeOpen,
		Workers: 4,
		Rate:    2000,
		Warmup:  20 * time.Millisecond,
		Measure: 200 * time.Millisecond,
		Keys:    KeySpec{Dist: DistHotKey, Keys: 16},
		Seed:    1,
	}
	res, err := Run(context.Background(), cfg, func(ctx context.Context, keys []int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	// 2000/s over a 200ms window is ~400 measured calls; allow wide margin
	// for CI scheduling but demand the right order of magnitude.
	if res.Calls < 100 || res.Calls > 800 {
		t.Errorf("open-loop measured %d calls at 2000/s over 200ms, want ~400", res.Calls)
	}
	if res.Overflows != 0 {
		t.Errorf("overflows = %d for a trivial op, want 0", res.Overflows)
	}
}

func TestRunCountsErrors(t *testing.T) {
	errBoom := errors.New("boom")
	var n atomic.Int64
	cfg := Config{
		Mode:    ModeClosed,
		Workers: 2,
		Measure: 50 * time.Millisecond,
		Keys:    KeySpec{Dist: DistUniform, Keys: 4},
	}
	res, err := Run(context.Background(), cfg, func(ctx context.Context, keys []int) error {
		time.Sleep(50 * time.Microsecond)
		if n.Add(1)%2 == 0 {
			return errBoom
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors == 0 {
		t.Error("alternating failures recorded zero errors")
	}
	if res.Errors > res.Calls {
		t.Errorf("errors %d > calls %d", res.Errors, res.Calls)
	}
}

func TestRunBatchCountsOps(t *testing.T) {
	cfg := Config{
		Mode:       ModeClosed,
		Workers:    2,
		Measure:    50 * time.Millisecond,
		Keys:       KeySpec{Dist: DistUniform, Keys: 8},
		OpsPerCall: 16,
	}
	res, err := Run(context.Background(), cfg, func(ctx context.Context, keys []int) error {
		if len(keys) != 16 {
			t.Errorf("len(keys) = %d, want 16", len(keys))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != res.Calls*16 {
		t.Errorf("ops = %d, want calls*16 = %d", res.Ops, res.Calls*16)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	op := func(ctx context.Context, keys []int) error { return nil }
	cases := []Config{
		{Mode: ModeClosed, Keys: KeySpec{Dist: DistUniform, Keys: 4}},                          // no measure window
		{Mode: ModeOpen, Measure: time.Millisecond, Keys: KeySpec{Dist: DistUniform, Keys: 4}}, // no rate
		{Mode: "hybrid", Measure: time.Millisecond, Keys: KeySpec{Dist: DistUniform, Keys: 4}}, // bad mode
		{Mode: ModeClosed, Measure: time.Millisecond, Keys: KeySpec{Dist: "bad", Keys: 4}},     // bad dist
	}
	for i, cfg := range cases {
		if _, err := Run(context.Background(), cfg, op); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}
