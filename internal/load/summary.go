package load

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"
)

// SummarySchema is the schema tag of the Summary line. It continues the
// BENCH_NNNN artifact numbering (slbench stopped at v4): v5 is the first
// tail-latency schema.
const SummarySchema = "slload/v5"

// Summary is the one-line machine-readable record of one load run — the
// unit cmd/slload prints, benchmarks/sweep.sh consolidates into TSV, and
// BENCH_NNNN.json files archive. Field names are the schema; CI's p99 gate
// and the sweep parser read them by name.
type Summary struct {
	// Schema identifies the document format (SummarySchema).
	Schema string `json:"schema"`
	// Mode is the load mode: "open" or "closed".
	Mode string `json:"mode"`
	// Distribution is the key distribution: uniform, hotkey, or zipfian.
	Distribution string `json:"distribution"`
	// Target names what was driven: "inproc", "self", or the base URL.
	Target string `json:"target"`
	// Kind and Op name the workload operation, e.g. counter/inc.
	Kind string `json:"kind"`
	// Op is the operation name within Kind.
	Op string `json:"op"`
	// Batch is the operations per call (1 = single-op requests).
	Batch int `json:"batch"`
	// Workers is the configured concurrency.
	Workers int `json:"workers"`
	// RateOpsS is the open-loop offered rate in ops/s (0 in closed mode).
	RateOpsS float64 `json:"rate_ops_s"`
	// Poisson reports exponential open-loop inter-arrival gaps.
	Poisson bool `json:"poisson,omitempty"`
	// Keys is the keyspace size.
	Keys int `json:"keys"`
	// Seed is the run's deterministic seed.
	Seed int64 `json:"seed"`
	// WarmupMs and MeasureMs are the phase lengths in milliseconds.
	WarmupMs int64 `json:"warmup_ms"`
	// MeasureMs is the measurement window in milliseconds.
	MeasureMs int64 `json:"measure_ms"`
	// Ops is how many operations the measurement window completed.
	Ops int64 `json:"ops"`
	// Calls is how many Op calls that took (Ops/Batch).
	Calls int64 `json:"calls"`
	// ErrorCount is how many measured calls failed.
	ErrorCount int64 `json:"error_count"`
	// Overflows is how many open-loop arrivals the bounded queue dropped.
	Overflows int64 `json:"overflows,omitempty"`
	// ThroughputOpsS is measured operations per second.
	ThroughputOpsS float64 `json:"throughput_ops_s"`
	// P50Ns, P95Ns, P99Ns, MaxNs are the latency quantiles in nanoseconds.
	P50Ns int64 `json:"p50_ns"`
	// P95Ns is the 95th-percentile latency in nanoseconds.
	P95Ns int64 `json:"p95_ns"`
	// P99Ns is the 99th-percentile latency in nanoseconds.
	P99Ns int64 `json:"p99_ns"`
	// MaxNs is the maximum sampled latency in nanoseconds.
	MaxNs int64 `json:"max_ns"`
	// Samples is how many latency samples the quantiles were computed over.
	Samples int `json:"samples"`
	// ServerOpsDelta is how many operations of Kind the server's /v1/stats
	// counted during the run (self and HTTP targets only): the server-side
	// confirmation that the offered load was actually seen.
	ServerOpsDelta int64 `json:"server_ops_delta,omitempty"`
	// Go is the toolchain version.
	Go string `json:"go"`
	// GOMAXPROCS is the scheduler width of the run.
	GOMAXPROCS int `json:"gomaxprocs"`
}

// NewSummary assembles a Summary from a run's config and result.
func NewSummary(cfg Config, res Result, target, kindName, opName string) Summary {
	cfg = cfg.withDefaults()
	return Summary{
		Schema:         SummarySchema,
		Mode:           string(cfg.Mode),
		Distribution:   string(cfg.Keys.Dist),
		Target:         target,
		Kind:           kindName,
		Op:             opName,
		Batch:          cfg.OpsPerCall,
		Workers:        cfg.Workers,
		RateOpsS:       cfg.Rate,
		Poisson:        cfg.Poisson,
		Keys:           cfg.Keys.Keys,
		Seed:           cfg.Seed,
		WarmupMs:       cfg.Warmup.Milliseconds(),
		MeasureMs:      cfg.Measure.Milliseconds(),
		Ops:            res.Ops,
		Calls:          res.Calls,
		ErrorCount:     res.Errors,
		Overflows:      res.Overflows,
		ThroughputOpsS: res.Throughput,
		P50Ns:          int64(res.P50),
		P95Ns:          int64(res.P95),
		P99Ns:          int64(res.P99),
		MaxNs:          int64(res.Max),
		Samples:        res.Samples,
		Go:             runtime.Version(),
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
	}
}

// Emit writes the Summary as one JSON line.
func (s Summary) Emit(w io.Writer) error {
	enc, err := json.Marshal(s)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintln(w, string(enc))
	return err
}

// Human returns a one-line human-readable digest of the Summary.
func (s Summary) Human() string {
	return fmt.Sprintf("%s/%s %s %s/%s batch=%d workers=%d: %d ops (%d errors) %.0f ops/s, p50=%v p95=%v p99=%v max=%v",
		s.Mode, s.Distribution, s.Target, s.Kind, s.Op, s.Batch, s.Workers,
		s.Ops, s.ErrorCount, s.ThroughputOpsS,
		time.Duration(s.P50Ns), time.Duration(s.P95Ns), time.Duration(s.P99Ns), time.Duration(s.MaxNs))
}
