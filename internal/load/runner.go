package load

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Mode selects how load is offered.
type Mode string

// Supported load modes.
const (
	// ModeClosed runs Workers loops, each issuing its next call as soon as
	// the previous one completes: offered load adapts to the system, which
	// measures peak sustainable throughput but hides queueing delay.
	ModeClosed Mode = "closed"
	// ModeOpen schedules call arrivals on a clock at a fixed offered rate
	// regardless of completions; latency is measured from the scheduled
	// arrival, so queueing behind a slow server counts (no coordinated
	// omission).
	ModeOpen Mode = "open"
)

// Op executes one call of the workload: keys holds the key indices the call
// targets (length Config.OpsPerCall — one for single-op workloads, the batch
// size for batched ones). Implementations must honor ctx so a drain timeout
// can abort stuck calls, and must be safe for concurrent use by Workers
// goroutines.
type Op func(ctx context.Context, keys []int) error

// Config parameterizes one load run.
type Config struct {
	// Mode is open or closed loop. Defaults to closed.
	Mode Mode
	// Workers is the concurrency: loop count in closed mode, executor pool
	// size in open mode. Defaults to 8.
	Workers int
	// Rate is the open-loop offered rate in operations/second (calls are
	// offered at Rate/OpsPerCall). Required in open mode.
	Rate float64
	// Poisson selects exponential open-loop inter-arrival gaps instead of
	// fixed ones.
	Poisson bool
	// Warmup is how long to run before measuring (samples and errors
	// discarded). Defaults to zero.
	Warmup time.Duration
	// Measure is the measurement window. Required.
	Measure time.Duration
	// Keys describes the key distribution.
	Keys KeySpec
	// Seed makes key sequences and open-loop schedules deterministic.
	Seed int64
	// OpsPerCall is how many operations one Op call performs (the batch
	// size); throughput counts operations, latency is per call. Defaults
	// to 1.
	OpsPerCall int
	// SampleCap bounds each worker's latency reservoir. Defaults to 4096.
	SampleCap int
	// QueueCap bounds the open-loop arrival queue; arrivals offered while it
	// is full are dropped and counted in Result.Overflows (the server was
	// offered load it could not even queue). Defaults to 1<<15.
	QueueCap int
	// DrainTimeout bounds the post-window drain: calls still in flight are
	// cancelled after it. Defaults to 10s.
	DrainTimeout time.Duration
	// Clock abstracts time; nil means the wall clock.
	Clock Clock
	// OnMeasureStart, when non-nil, runs as the measurement window opens
	// (cmd/slload starts its CPU profile here).
	OnMeasureStart func()
	// OnMeasureEnd, when non-nil, runs as the measurement window closes.
	OnMeasureEnd func()
}

// withDefaults returns the config with zero fields replaced by defaults.
func (c Config) withDefaults() Config {
	if c.Mode == "" {
		c.Mode = ModeClosed
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.OpsPerCall <= 0 {
		c.OpsPerCall = 1
	}
	if c.SampleCap <= 0 {
		c.SampleCap = 4096
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 1 << 15
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.Clock == nil {
		c.Clock = RealClock()
	}
	return c
}

// Result is what one load run measured.
type Result struct {
	// Calls is how many Op calls completed inside the measurement window's
	// offered load (their latencies feed the quantiles).
	Calls int64
	// Ops is Calls times OpsPerCall.
	Ops int64
	// Errors is how many measured calls returned an error.
	Errors int64
	// Overflows is how many open-loop arrivals were dropped because the
	// arrival queue was full.
	Overflows int64
	// TotalCalls counts every Op call across warmup, measurement, and drain —
	// what the target system actually saw (cmd/slload checks it against
	// /v1/stats).
	TotalCalls int64
	// Elapsed is the span from measurement start to the last measured call's
	// completion (at least the measurement window when nothing completed).
	Elapsed time.Duration
	// P50, P95, P99, Max are latency quantiles over measured calls: per-call
	// wall time in closed mode, scheduled-arrival-to-completion in open mode.
	P50, P95, P99, Max time.Duration
	// Samples is how many latency samples the merged reservoirs held.
	Samples int
	// Throughput is measured operations per second: Ops over Elapsed.
	Throughput float64
}

// runState is the shared mutable state of one run.
type runState struct {
	cfg        Config
	op         Op
	phase      atomic.Int32 // 0 warmup, 1 measure, 2 done
	mStart     time.Time
	calls      atomic.Int64
	errors     atomic.Int64
	overflows  atomic.Int64
	totalCalls atomic.Int64
	lastDoneNs atomic.Int64 // completion offset of the latest measured call
	reservoirs []*Reservoir
}

// Phases of a run.
const (
	phaseWarmup int32 = iota
	phaseMeasure
	phaseDone
)

// record accounts one completed measured call.
func (s *runState) record(worker int, latNs int64, err error) {
	s.reservoirs[worker].Add(latNs)
	s.calls.Add(1)
	if err != nil {
		s.errors.Add(1)
	}
	done := int64(s.cfg.Clock.Now().Sub(s.mStart))
	for {
		prev := s.lastDoneNs.Load()
		if done <= prev || s.lastDoneNs.CompareAndSwap(prev, done) {
			return
		}
	}
}

// Run executes one load run: warmup, measure, graceful drain. The returned
// Result covers only the measurement window. Run returns an error for
// invalid configuration or when in-flight calls ignore cancellation past the
// drain timeout; per-call failures are counted, not returned.
func Run(ctx context.Context, cfg Config, op Op) (Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Measure <= 0 {
		return Result{}, fmt.Errorf("load: measurement window must be positive, got %v", cfg.Measure)
	}
	if cfg.Mode != ModeClosed && cfg.Mode != ModeOpen {
		return Result{}, fmt.Errorf("load: unknown mode %q (supported: %s, %s)", cfg.Mode, ModeClosed, ModeOpen)
	}
	if cfg.Mode == ModeOpen && cfg.Rate <= 0 {
		return Result{}, fmt.Errorf("load: open-loop mode requires a positive -rate, got %g", cfg.Rate)
	}
	if err := cfg.Keys.Validate(); err != nil {
		return Result{}, err
	}

	s := &runState{cfg: cfg, op: op, reservoirs: make([]*Reservoir, cfg.Workers)}
	for i := range s.reservoirs {
		s.reservoirs[i] = NewReservoir(cfg.SampleCap, cfg.Seed^int64(i+1)<<20)
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var runErr error
	switch cfg.Mode {
	case ModeClosed:
		runErr = runClosed(runCtx, cancel, s)
	case ModeOpen:
		runErr = runOpen(runCtx, cancel, s)
	}
	if runErr != nil {
		return Result{}, runErr
	}

	res := Result{
		Calls:      s.calls.Load(),
		Errors:     s.errors.Load(),
		Overflows:  s.overflows.Load(),
		TotalCalls: s.totalCalls.Load(),
	}
	res.Ops = res.Calls * int64(cfg.OpsPerCall)
	res.Elapsed = time.Duration(s.lastDoneNs.Load())
	if res.Elapsed < cfg.Measure {
		res.Elapsed = cfg.Measure
	}
	qs, max := MergedQuantiles(s.reservoirs, []float64{0.50, 0.95, 0.99})
	res.P50, res.P95, res.P99 = time.Duration(qs[0]), time.Duration(qs[1]), time.Duration(qs[2])
	res.Max = time.Duration(max)
	for _, r := range s.reservoirs {
		res.Samples += r.Len()
	}
	res.Throughput = float64(res.Ops) / res.Elapsed.Seconds()
	return res, nil
}

// drain waits for the workers (wg) to finish, cancelling in-flight calls
// after the drain timeout; it errors only when calls ignore cancellation.
func drain(cancel context.CancelFunc, wg *sync.WaitGroup, timeout time.Duration) error {
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-time.After(timeout):
		cancel()
	}
	select {
	case <-done:
		return nil
	case <-time.After(timeout):
		return fmt.Errorf("load: %d-second drain timed out twice: an Op ignores cancellation", int(timeout.Seconds()))
	}
}

// runClosed runs the closed-loop mode: Workers goroutines, each owning a key
// generator and issuing calls back-to-back, with a timer goroutine flipping
// warmup -> measure -> done.
func runClosed(ctx context.Context, cancel context.CancelFunc, s *runState) error {
	cfg := s.cfg
	gens := make([]KeyGen, cfg.Workers)
	for i := range gens {
		g, err := cfg.Keys.New(cfg.Seed + int64(i)*1000003)
		if err != nil {
			return err
		}
		gens[i] = g
	}

	var wg sync.WaitGroup
	for i := 0; i < cfg.Workers; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			gen := gens[worker]
			buf := make([]int, cfg.OpsPerCall)
			for s.phase.Load() != phaseDone && ctx.Err() == nil {
				for j := range buf {
					buf[j] = gen.Next()
				}
				ph := s.phase.Load()
				t0 := cfg.Clock.Now()
				err := s.op(ctx, buf)
				s.totalCalls.Add(1)
				if ph == phaseMeasure {
					s.record(worker, int64(cfg.Clock.Now().Sub(t0)), err)
				}
			}
		}(i)
	}

	// Phase timer: the workers read s.phase before each call, so a call
	// straddling a boundary is attributed to the phase it started in.
	cfg.Clock.Sleep(cfg.Warmup)
	s.mStart = cfg.Clock.Now()
	s.phase.Store(phaseMeasure)
	if cfg.OnMeasureStart != nil {
		cfg.OnMeasureStart()
	}
	cfg.Clock.Sleep(cfg.Measure)
	s.phase.Store(phaseDone)
	if cfg.OnMeasureEnd != nil {
		cfg.OnMeasureEnd()
	}
	return drain(cancel, &wg, cfg.DrainTimeout)
}

// arrival is one open-loop scheduled call.
type arrival struct {
	scheduled time.Time
	keys      []int
	measured  bool
}

// runOpen runs the open-loop mode: one dispatcher paces arrivals onto a
// bounded queue (dropping to Overflows when full), Workers executors drain
// it. Whether an arrival is measured is decided by its scheduled time, so
// the measured set is a deterministic function of the seed.
func runOpen(ctx context.Context, cancel context.CancelFunc, s *runState) error {
	cfg := s.cfg
	gen, err := cfg.Keys.New(cfg.Seed)
	if err != nil {
		return err
	}
	callRate := cfg.Rate / float64(cfg.OpsPerCall)
	pacer := NewPacer(callRate, cfg.Poisson, cfg.Seed+1)
	queue := make(chan arrival, cfg.QueueCap)

	var wg sync.WaitGroup
	for i := 0; i < cfg.Workers; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for a := range queue {
				err := s.op(ctx, a.keys)
				s.totalCalls.Add(1)
				if a.measured {
					// Latency from the scheduled arrival: queueing delay
					// (including time spent in our own arrival queue) counts.
					s.record(worker, int64(cfg.Clock.Now().Sub(a.scheduled)), err)
				}
			}
		}(i)
	}

	start := cfg.Clock.Now()
	mStart := start.Add(cfg.Warmup)
	s.mStart = mStart
	measureStarted := false
	Pace(ctx, cfg.Clock, pacer, cfg.Warmup+cfg.Measure, func(scheduled time.Time) bool {
		if !measureStarted && !scheduled.Before(mStart) {
			measureStarted = true
			s.phase.Store(phaseMeasure)
			if cfg.OnMeasureStart != nil {
				cfg.OnMeasureStart()
			}
		}
		keys := make([]int, cfg.OpsPerCall)
		for j := range keys {
			keys[j] = gen.Next()
		}
		select {
		case queue <- arrival{scheduled: scheduled, keys: keys, measured: measureStarted}:
		default:
			if measureStarted {
				s.overflows.Add(1)
			}
		}
		return true
	})
	s.phase.Store(phaseDone)
	if cfg.OnMeasureEnd != nil {
		cfg.OnMeasureEnd()
	}
	close(queue)
	return drain(cancel, &wg, cfg.DrainTimeout)
}
