package load

import (
	"context"
	"math/rand"
	"time"
)

// Clock abstracts time for the pacer and run controller so tests can drive a
// simulated clock: Pace's offered rate is verified against a fake clock whose
// Sleep advances virtual time instantly.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Sleep blocks for d (d <= 0 returns immediately).
	Sleep(d time.Duration)
}

// realClock is the wall-clock Clock.
type realClock struct{}

func (realClock) Now() time.Time        { return time.Now() }
func (realClock) Sleep(d time.Duration) { time.Sleep(d) }

// RealClock returns the wall-clock Clock used outside tests.
func RealClock() Clock { return realClock{} }

// Pacer generates inter-arrival gaps for an open-loop schedule: fixed
// (every gap exactly 1/rate) or Poisson (exponential gaps with mean 1/rate,
// modeling memoryless arrivals — the bursty shape real traffic has, which
// fixed pacing flatters). Deterministic in its seed; not safe for concurrent
// use (one dispatcher owns it).
type Pacer struct {
	fixed time.Duration
	rate  float64
	rng   *rand.Rand // nil for fixed pacing
}

// NewPacer returns a pacer offering rate arrivals per second. poisson
// selects exponential gaps; seed makes the Poisson schedule reproducible.
// rate must be positive.
func NewPacer(rate float64, poisson bool, seed int64) *Pacer {
	p := &Pacer{rate: rate, fixed: time.Duration(float64(time.Second) / rate)}
	if poisson {
		p.rng = rand.New(rand.NewSource(seed))
	}
	return p
}

// Gap returns the next inter-arrival interval.
func (p *Pacer) Gap() time.Duration {
	if p.rng == nil {
		return p.fixed
	}
	return time.Duration(p.rng.ExpFloat64() / p.rate * float64(time.Second))
}

// Pace runs an open-loop arrival schedule on clk for duration d: it draws
// gaps from p, sleeps until each scheduled arrival, and calls emit with the
// *scheduled* (not actual) arrival time — latency measured from that instant
// includes any queueing the consumer imposes, which is what makes open-loop
// numbers immune to coordinated omission. Arrivals scheduled past the window
// end are not emitted. Returns the number of arrivals emitted; stops early
// when ctx is done or emit returns false.
func Pace(ctx context.Context, clk Clock, p *Pacer, d time.Duration, emit func(scheduled time.Time) bool) int64 {
	start := clk.Now()
	end := start.Add(d)
	next := start
	var n int64
	for {
		next = next.Add(p.Gap())
		if next.After(end) {
			return n
		}
		select {
		case <-ctx.Done():
			return n
		default:
		}
		if wait := next.Sub(clk.Now()); wait > 0 {
			clk.Sleep(wait)
		}
		if !emit(next) {
			return n
		}
		n++
	}
}
