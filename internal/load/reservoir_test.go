package load

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// exactQuantile computes the nearest-rank quantile over the full stream.
func exactQuantile(stream []int64, q float64) int64 {
	sorted := append([]int64(nil), stream...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return nearestRank(sorted, q)
}

func TestReservoirExactWhenUnderCap(t *testing.T) {
	r := NewReservoir(1000, 1)
	stream := make([]int64, 500)
	rng := rand.New(rand.NewSource(3))
	for i := range stream {
		stream[i] = rng.Int63n(1 << 20)
		r.Add(stream[i])
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if got, want := r.Quantile(q), exactQuantile(stream, q); got != want {
			t.Errorf("q=%.2f: reservoir %d != exact %d (under cap must be exact)", q, got, want)
		}
	}
}

// TestReservoirQuantileAccuracy compares sampled quantiles against the exact
// sorted-stream quantiles on known distributions: a linear ramp (uniform,
// exact quantiles analytic) and a two-mode latency-like distribution with a
// heavy tail. A 4096-sample reservoir over a 200k stream must land within a
// few percent of the exact value at p50/p95, and within the tail's local
// resolution at p99.
func TestReservoirQuantileAccuracy(t *testing.T) {
	const n = 200000
	streams := map[string][]int64{}

	ramp := make([]int64, n) // values 1..n shuffled: exact q-quantile = q*n
	for i := range ramp {
		ramp[i] = int64(i + 1)
	}
	rand.New(rand.NewSource(5)).Shuffle(n, func(i, j int) { ramp[i], ramp[j] = ramp[j], ramp[i] })
	streams["ramp"] = ramp

	bimodal := make([]int64, n) // 95% fast mode ~1000, 5% slow tail ~100000
	rng := rand.New(rand.NewSource(6))
	for i := range bimodal {
		if rng.Float64() < 0.95 {
			bimodal[i] = 900 + rng.Int63n(200)
		} else {
			bimodal[i] = 80000 + rng.Int63n(40000)
		}
	}
	streams["bimodal"] = bimodal

	for name, stream := range streams {
		r := NewReservoir(4096, 9)
		for _, v := range stream {
			r.Add(v)
		}
		for _, q := range []float64{0.5, 0.95, 0.99} {
			got := float64(r.Quantile(q))
			want := float64(exactQuantile(stream, q))
			relErr := math.Abs(got-want) / want
			// Sampling error at quantile q with k samples is ~sqrt(q(1-q)/k)
			// in rank space; 4096 samples put the rank within ~1% at p50 and
			// well under that at p99. Value-space tolerance of 5% is
			// generous for the ramp and absorbs the bimodal tail's width.
			if relErr > 0.05 {
				t.Errorf("%s q=%.2f: reservoir %v vs exact %v (rel err %.3f > 0.05)", name, q, got, want, relErr)
			}
		}
	}
}

func TestMergedQuantilesWeighting(t *testing.T) {
	// Worker A saw 90k values around 1000; worker B saw 10k values around
	// 100000. Both reservoirs hold the same sample count, so an unweighted
	// concatenation would put the median between the modes; the weighted
	// merge must keep p50 in A's mode and p95 in B's.
	a := NewReservoir(1024, 1)
	for i := 0; i < 90000; i++ {
		a.Add(1000 + int64(i%100))
	}
	b := NewReservoir(1024, 2)
	for i := 0; i < 10000; i++ {
		b.Add(100000 + int64(i%100))
	}
	qs, max := MergedQuantiles([]*Reservoir{a, b}, []float64{0.5, 0.95})
	if qs[0] > 2000 {
		t.Errorf("weighted p50 = %d, want in the fast mode (~1000)", qs[0])
	}
	if qs[1] < 100000 {
		t.Errorf("weighted p95 = %d, want in the slow mode (~100000)", qs[1])
	}
	if max < 100000 {
		t.Errorf("max = %d, want >= 100000", max)
	}
}

func TestMergedQuantilesEmpty(t *testing.T) {
	qs, max := MergedQuantiles([]*Reservoir{NewReservoir(8, 1), nil}, []float64{0.5, 0.99})
	if qs[0] != 0 || qs[1] != 0 || max != 0 {
		t.Errorf("empty merge = %v max %d, want zeros", qs, max)
	}
}

func TestReservoirBoundedMemory(t *testing.T) {
	r := NewReservoir(64, 4)
	for i := 0; i < 100000; i++ {
		r.Add(int64(i))
	}
	if r.Len() != 64 {
		t.Errorf("reservoir holds %d samples, want 64", r.Len())
	}
	if r.Seen() != 100000 {
		t.Errorf("seen = %d, want 100000", r.Seen())
	}
}
