package maxreg

import (
	"errors"
	"strconv"
	"testing"
	"testing/quick"

	"slmem/internal/lincheck"
	"slmem/internal/memory"
	"slmem/internal/sched"
	"slmem/internal/spec"
)

func TestSequentialBasics(t *testing.T) {
	var alloc memory.NativeAllocator
	m := NewBounded[string](&alloc, 4, "init")

	if v, pl := m.MaxRead(0); v != 0 || pl != "init" {
		t.Errorf("initial MaxRead = (%d,%q)", v, pl)
	}
	if err := m.MaxWrite(0, 5, "five"); err != nil {
		t.Fatal(err)
	}
	if v, pl := m.MaxRead(1); v != 5 || pl != "five" {
		t.Errorf("MaxRead = (%d,%q), want (5,five)", v, pl)
	}
	// Lower write: ignored, payload discarded.
	if err := m.MaxWrite(1, 3, "three"); err != nil {
		t.Fatal(err)
	}
	if v, pl := m.MaxRead(0); v != 5 || pl != "five" {
		t.Errorf("MaxRead after lower write = (%d,%q), want (5,five)", v, pl)
	}
	if err := m.MaxWrite(0, 15, "fifteen"); err != nil {
		t.Fatal(err)
	}
	if v, pl := m.MaxRead(0); v != 15 || pl != "fifteen" {
		t.Errorf("MaxRead = (%d,%q), want (15,fifteen)", v, pl)
	}
}

func TestOutOfRange(t *testing.T) {
	var alloc memory.NativeAllocator
	m := NewBounded[string](&alloc, 3, "")
	if err := m.MaxWrite(0, 8, "x"); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("MaxWrite(8) err = %v, want ErrOutOfRange", err)
	}
	if err := m.MaxWrite(0, 7, "x"); err != nil {
		t.Errorf("MaxWrite(7) err = %v", err)
	}
}

func TestCapacity(t *testing.T) {
	var alloc memory.NativeAllocator
	tests := []struct {
		k    int
		want uint64
	}{
		{0, 1}, {1, 2}, {8, 256}, {64, ^uint64(0)},
	}
	for _, tc := range tests {
		m := NewBounded[struct{}](&alloc, tc.k, struct{}{})
		if got := m.Capacity(); got != tc.want {
			t.Errorf("Capacity(k=%d) = %d, want %d", tc.k, got, tc.want)
		}
	}
}

func TestMonotoneProperty(t *testing.T) {
	f := func(vals []uint16) bool {
		var alloc memory.NativeAllocator
		m := NewBounded[string](&alloc, 16, "")
		var max uint64
		for _, raw := range vals {
			v := uint64(raw)
			if err := m.MaxWrite(0, v, strconv.FormatUint(v, 10)); err != nil {
				return false
			}
			if v > max {
				max = v
			}
			got, pl := m.MaxRead(0)
			if got != max {
				return false
			}
			if max > 0 && pl != strconv.FormatUint(max, 10) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestUnbounded(t *testing.T) {
	var alloc memory.NativeAllocator
	m := NewUnbounded[string](&alloc, "init")
	big := uint64(1) << 62
	if err := m.MaxWrite(0, big, "big"); err != nil {
		t.Fatal(err)
	}
	if v, pl := m.MaxRead(0); v != big || pl != "big" {
		t.Errorf("MaxRead = (%d,%q)", v, pl)
	}
}

func TestLazyAllocationGrowth(t *testing.T) {
	// The unbounded trie allocates registers as new values are written:
	// space grows without bound with the written range (experiment E5's
	// mechanism). Monotonically increasing versions force fresh paths.
	var alloc memory.NativeAllocator
	m := NewUnbounded[string](&alloc, "")
	prev := alloc.Registers()
	grew := 0
	for v := uint64(1); v <= 64; v++ {
		if err := m.MaxWrite(0, v, "s"); err != nil {
			t.Fatal(err)
		}
		cur := alloc.Registers()
		if cur > prev {
			grew++
		}
		prev = cur
	}
	if grew < 32 {
		t.Errorf("register count grew on only %d/64 writes; lazy allocation broken?", grew)
	}
}

func TestStepBounds(t *testing.T) {
	// Reads and writes take at most k+1 shared steps.
	const k = 10
	counter := memory.NewStepCounter(1)
	alloc := &memory.CountingAllocator{Inner: &memory.NativeAllocator{}, Counter: counter}
	m := NewBounded[struct{}](alloc, k, struct{}{})

	before := counter.Steps(0)
	if err := m.MaxWrite(0, 1023, struct{}{}); err != nil {
		t.Fatal(err)
	}
	if steps := counter.Steps(0) - before; steps > k+1 {
		t.Errorf("MaxWrite took %d steps, want <= %d", steps, k+1)
	}
	before = counter.Steps(0)
	m.MaxRead(0)
	if steps := counter.Steps(0) - before; steps > k+1 {
		t.Errorf("MaxRead took %d steps, want <= %d", steps, k+1)
	}
}

// simSystem: writers issue maxWrites, readers issue maxReads.
func simSystem(n int, writes [][]uint64, reads int) sched.System {
	return sched.System{
		N: n,
		Setup: func(env *sched.Env) []sched.Program {
			m := NewBounded[string](env, 5, "")
			progs := make([]sched.Program, n)
			for pid := 0; pid < n; pid++ {
				pid := pid
				if pid < len(writes) && writes[pid] != nil {
					vals := writes[pid]
					progs[pid] = func(p *sched.Proc) {
						for _, v := range vals {
							v := v
							p.Do(spec.FormatInvocation("maxWrite", strconv.FormatUint(v, 10)), func() string {
								if err := m.MaxWrite(pid, v, "s"+strconv.FormatUint(v, 10)); err != nil {
									return "err"
								}
								return "ok"
							})
						}
					}
				} else {
					progs[pid] = func(p *sched.Proc) {
						for i := 0; i < reads; i++ {
							p.Do("maxRead()", func() string {
								v, _ := m.MaxRead(pid)
								return strconv.FormatUint(v, 10)
							})
						}
					}
				}
			}
			return progs
		},
	}
}

func TestLinearizableUnderRandomSchedules(t *testing.T) {
	sys := simSystem(3, [][]uint64{{3, 9, 5}, {7, 2}}, 3)
	for seed := int64(0); seed < 30; seed++ {
		res := sched.Run(sys, sched.NewSeeded(seed), sched.Options{})
		if !res.Completed() {
			t.Fatalf("seed %d: incomplete: %v", seed, res.Err)
		}
		chk, err := lincheck.CheckTranscript(res.T, spec.MaxRegister{})
		if err != nil {
			t.Fatal(err)
		}
		if !chk.Ok {
			t.Fatalf("seed %d: not linearizable:\n%s", seed, res.T.Interpreted())
		}
	}
}

func TestStrongChainMonitor(t *testing.T) {
	// The trie construction is strongly linearizable (Helmi–Higham–Woelfel);
	// every single run must admit a monotone linearization.
	sys := simSystem(2, [][]uint64{{3, 9}}, 3)
	for seed := int64(0); seed < 20; seed++ {
		res := sched.Run(sys, sched.NewSeeded(seed), sched.Options{})
		if !res.Completed() {
			t.Fatalf("seed %d: incomplete: %v", seed, res.Err)
		}
		chk, err := lincheck.CheckChain(res.T, spec.MaxRegister{})
		if err != nil {
			t.Fatal(err)
		}
		if !chk.Ok {
			t.Fatalf("seed %d: chain check failed at %s", seed, chk.FailNode)
		}
	}
}

func TestStrongBranchingTrees(t *testing.T) {
	sys := simSystem(2, [][]uint64{{3, 9}}, 2)
	for seed := int64(0); seed < 10; seed++ {
		probe := sched.Run(sys, sched.NewSeeded(seed), sched.Options{})
		prefix := probe.Schedule
		if len(prefix) > 9 {
			prefix = prefix[:9]
		}
		conts := make([][]int, 0, 3)
		for f := 0; f < 3; f++ {
			adv := sched.NewChain(sched.NewScript(prefix...), sched.NewSeeded(seed*77+int64(f)))
			res := sched.Run(sys, adv, sched.Options{})
			if res.Err != nil {
				t.Fatal(res.Err)
			}
			conts = append(conts, res.Schedule[len(prefix):])
		}
		tree, err := sched.PrefixTree(sys, prefix, conts, sched.Options{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := lincheck.CheckStrong(lincheck.FromSchedTree(tree), spec.MaxRegister{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Ok {
			t.Fatalf("seed %d: strong tree check failed at %s", seed, res.FailNode)
		}
	}
}

func TestPayloadConsistencyUnderConcurrency(t *testing.T) {
	// Each value carries a canonical payload; a read must never pair value v
	// with a payload of a different value (sim, all interleavings random).
	sys := sched.System{
		N: 3,
		Setup: func(env *sched.Env) []sched.Program {
			m := NewBounded[string](env, 5, "p0")
			progs := make([]sched.Program, 3)
			for pid := 0; pid < 2; pid++ {
				pid := pid
				vals := [][]uint64{{4, 11, 20}, {9, 13, 27}}[pid]
				progs[pid] = func(p *sched.Proc) {
					for _, v := range vals {
						v := v
						p.Do("w", func() string {
							_ = m.MaxWrite(pid, v, "p"+strconv.FormatUint(v, 10))
							return "ok"
						})
					}
				}
			}
			progs[2] = func(p *sched.Proc) {
				for i := 0; i < 6; i++ {
					p.Do("r", func() string {
						v, pl := m.MaxRead(2)
						if pl != "p"+strconv.FormatUint(v, 10) {
							return "MISMATCH:" + strconv.FormatUint(v, 10) + "/" + pl
						}
						return "ok"
					})
				}
			}
			return progs
		},
	}
	for seed := int64(0); seed < 40; seed++ {
		res := sched.Run(sys, sched.NewSeeded(seed), sched.Options{})
		if !res.Completed() {
			t.Fatalf("seed %d: incomplete: %v", seed, res.Err)
		}
		for _, op := range res.T.Interpreted().Ops {
			if op.Complete() && len(op.Res) > 2 && op.Res[:2] == "MI" {
				t.Fatalf("seed %d: payload mismatch: %s", seed, op.Res)
			}
		}
	}
}
