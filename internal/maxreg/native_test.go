package maxreg

import (
	"strconv"
	"sync"
	"testing"

	"slmem/internal/memory"
)

// TestNativeConcurrentMonotone drives the trie with real goroutines (run
// with -race): the observed maximum must never decrease, values read must
// have been written, and payloads must match their values.
func TestNativeConcurrentMonotone(t *testing.T) {
	const writers, writes = 4, 300
	var alloc memory.NativeAllocator
	m := NewUnbounded[string](&alloc, "p0")

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 1; i <= writes; i++ {
				v := uint64(i*writers + w)
				if err := m.MaxWrite(w, v, "p"+strconv.FormatUint(v, 10)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}

	// A reader validates monotonicity and payload consistency concurrently.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var last uint64
		for i := 0; i < 2000; i++ {
			v, pl := m.MaxRead(writers)
			if v < last {
				t.Errorf("max regressed %d -> %d", last, v)
				return
			}
			if v > 0 && pl != "p"+strconv.FormatUint(v, 10) {
				t.Errorf("payload mismatch: value %d carries %q", v, pl)
				return
			}
			last = v
		}
	}()
	wg.Wait()

	want := uint64(writes*writers + writers - 1)
	if got, _ := m.MaxRead(0); got != want {
		t.Errorf("final max = %d, want %d", got, want)
	}
}

// TestNativeConcurrentSamePayloadValue: concurrent writes of the SAME value
// carry the same payload (the versioned-construction invariant), so reads
// can never observe a torn (value, payload) pair.
func TestNativeConcurrentSamePayloadValue(t *testing.T) {
	const procs = 4
	var alloc memory.NativeAllocator
	m := NewBounded[string](&alloc, 12, "init")
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for v := uint64(1); v <= 500; v++ {
				if err := m.MaxWrite(p, v, "s"+strconv.FormatUint(v, 10)); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	v, pl := m.MaxRead(0)
	if v != 500 || pl != "s500" {
		t.Errorf("final = (%d,%q), want (500,s500)", v, pl)
	}
}
