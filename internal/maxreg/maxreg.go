// Package maxreg implements max-registers from atomic registers.
//
// Bounded is the binary-trie construction of Aspnes, Attiya, and Censor,
// which Helmi, Higham, and Woelfel proved wait-free strongly linearizable
// (paper Section 1.1/4.1): a register trie over the value range [0, 2^k)
// where a write marks the path to its leaf bottom-up and a read descends the
// marked switches to the current maximum.
//
// Bounded is augmented (as in the paper's Section 4.1) to carry a payload
// with every value: maxWrite(v, payload) attaches payload to v, and maxRead
// returns the payload of the maximum. The Denysyuk–Woelfel unbounded
// versioned-object construction (internal/versioned) stores object states as
// payloads keyed by version numbers.
//
// NewUnbounded returns a trie over the full uint64 range with lazily
// allocated nodes: the paper's unbounded max-register needs unboundedly many
// registers, and the lazy trie makes that growth measurable (experiment E5).
// The substitution — uint64 domain instead of unbounded integers — is
// documented in DESIGN.md.
package maxreg

import (
	"errors"
	"fmt"
	"sync/atomic"

	"slmem/internal/memory"
)

// ErrOutOfRange is returned when a written value exceeds the register's
// capacity.
var ErrOutOfRange = errors.New("maxreg: value out of range")

// node is one trie node covering a value range of size 2^level. Children
// are created lazily; creating a node allocates its switch register (and, at
// leaves, the payload register). The CAS on the child pointer only
// publishes the lazily materialized register — conceptually the whole trie
// pre-exists, and materialization is not a shared-memory step.
type node[P any] struct {
	sw      memory.Reg[bool] // non-leaf: set iff the right half contains a write
	payload memory.Reg[P]    // leaf only
	left    atomic.Pointer[node[P]]
	right   atomic.Pointer[node[P]]
}

// Bounded is a wait-free strongly linearizable bounded max-register over
// [0, 2^k), carrying a payload of type P with each value.
//
// Methods take the calling process id.
type Bounded[P any] struct {
	alloc memory.Allocator
	k     int
	root  *node[P]
	init  P
}

// NewBounded constructs a max-register over [0, 2^k). Its initial value is 0
// with payload initPayload.
func NewBounded[P any](alloc memory.Allocator, k int, initPayload P) *Bounded[P] {
	if k < 0 || k > 64 {
		panic(fmt.Sprintf("maxreg: k = %d, want 0 <= k <= 64", k))
	}
	b := &Bounded[P]{alloc: alloc, k: k, init: initPayload}
	b.root = b.newNode(k, "mr")
	return b
}

// NewUnbounded constructs a max-register over the full uint64 range with
// lazily allocated nodes (the paper's unbounded max-register, with the
// domain capped at 64-bit values).
func NewUnbounded[P any](alloc memory.Allocator, initPayload P) *Bounded[P] {
	return NewBounded(alloc, 64, initPayload)
}

// Capacity returns the exclusive upper bound of writable values
// (2^k; returned as ^uint64(0) for k = 64).
func (b *Bounded[P]) Capacity() uint64 {
	if b.k >= 64 {
		return ^uint64(0)
	}
	return uint64(1) << uint(b.k)
}

func (b *Bounded[P]) newNode(level int, name string) *node[P] {
	n := &node[P]{}
	if level == 0 {
		n.payload = memory.NewReg(b.alloc, name+".leaf", b.init)
	} else {
		n.sw = memory.NewReg(b.alloc, name+".sw", false)
	}
	return n
}

func (b *Bounded[P]) child(n *node[P], level int, right bool) *node[P] {
	ptr := &n.left
	name := "mr.l"
	if right {
		ptr = &n.right
		name = "mr.r"
	}
	if c := ptr.Load(); c != nil {
		return c
	}
	fresh := b.newNode(level-1, name)
	if ptr.CompareAndSwap(nil, fresh) {
		return fresh
	}
	return ptr.Load()
}

// MaxWrite raises the register to v with the given payload, as process p.
// Writes of values not exceeding the current maximum have no effect (their
// payload is discarded). At most k+1 shared steps.
func (b *Bounded[P]) MaxWrite(p int, v uint64, payload P) error {
	if b.k < 64 && v >= uint64(1)<<uint(b.k) {
		return fmt.Errorf("%w: %d >= 2^%d", ErrOutOfRange, v, b.k)
	}
	b.write(p, b.root, b.k, v, payload)
	return nil
}

func (b *Bounded[P]) write(p int, n *node[P], level int, v uint64, payload P) {
	if level == 0 {
		n.payload.Write(p, payload)
		return
	}
	half := uint64(1) << uint(level-1)
	if v >= half {
		// Write the right subtree fully, then set the switch: a reader that
		// sees the switch finds a completed write behind it.
		b.write(p, b.child(n, level, true), level-1, v-half, payload)
		n.sw.Write(p, true)
		return
	}
	// A set switch means some value >= half is present; the write is
	// obsolete and must not proceed (it could otherwise overwrite a newer
	// payload on the left).
	if n.sw.Read(p) {
		return
	}
	b.write(p, b.child(n, level, false), level-1, v, payload)
}

// MaxRead returns the current maximum and its payload, as process p. At
// most k+1 shared steps.
func (b *Bounded[P]) MaxRead(p int) (uint64, P) {
	return b.read(p, b.root, b.k)
}

func (b *Bounded[P]) read(p int, n *node[P], level int) (uint64, P) {
	if level == 0 {
		return 0, n.payload.Read(p)
	}
	half := uint64(1) << uint(level-1)
	if n.sw.Read(p) {
		v, pl := b.read(p, b.child(n, level, true), level-1)
		return half + v, pl
	}
	return b.read(p, b.child(n, level, false), level-1)
}
