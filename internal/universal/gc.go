// gc.go bounds the construction's memory with a shared low-watermark
// protocol. The precedence graph of Algorithm 5 keeps every node forever;
// the replay cache (cache-aware Execute) bounded time per operation, and
// this file is its memory analogue.
//
// # Protocol
//
// After every operation, process p publishes a watermark: a copy of the
// per-process index prefix it just linearized (its anchor — exactly what
// remember caches) in a single-writer padded register, plus the version of
// the truncation root the operation executed against. The hot path never
// reads another process's watermark; only the amortized truncation pass
// does, so no shared steps are added to Execute (the registers live outside
// the simulated shared memory, invisible to the sched adversary — GC-on and
// GC-off runs take byte-identical schedules).
//
// Every Window operations a process attempts a truncation pass (one
// TryLock'd collector at a time). The pass reads all n watermarks, takes
// their pointwise minimum M, and lowers M to a fixpoint where every
// reachable node outside the prefix {(q,i) : i <= M[q]} covers M — its
// scanned view includes every node of the prefix. The fixpoint terminates
// at or above the current root: every live node covers the current root by
// induction, and M only decreases toward views that themselves cover it.
//
// The fixpoint only examines nodes reachable from the collector's scan,
// and the watermarks are read after that scan, so process q may have
// published operations the scan cannot see. The freshness gate makes those
// safe sight unseen: the pass proceeds only if each watermark's own index
// W_q[q] is at most one past the scan's view of q, so every unseen node of
// q has index at least W_q[q]. Operation W_q[q]'s view is W_q minus its
// own component and M is pointwise at most W_q (M starts at the minimum
// and is only lowered), so it covers M; per-process scans are pointwise
// monotone and own indexes only grow, so by induction every later
// operation of q — already published or still in the future — covers M
// too. Without the gate, an operation that scanned a stale view and
// published between the collector's scan and its watermark reads, its
// process then raising the watermark past it with further operations,
// would be examined by neither rule; committing a cut it does not cover
// would wedge every subsequent extraction against the root.
//
// Why truncation at such an M preserves strong linearizability:
//
//   - Published nodes reachable from the scan and outside the prefix cover
//     M by the fixpoint; unseen and future nodes cover M by the freshness
//     gate argument above.
//   - A covering node is forced after the whole prefix in every
//     linearization: through the per-process chains its view reaches every
//     prefix node, so precedence orders it after the prefix, and lingraph's
//     dominance edges skip pairs already ordered by precedence, so no edge
//     can invert it. The prefix is therefore an exact prefix of every
//     future linearization — replacing it by its replayed, checkpointed
//     sequential state changes no response and reorders nothing, which is
//     precisely prefix preservation.
//
// The pass publishes the new root {cut M, checkpointed base state, version}
// in one atomic pointer. Physical reclamation is deferred: the boundary
// nodes (index exactly M[q]) keep their preceding views until every
// process's watermark records a root version at or past the truncation —
// from then on no replay floor can fall below M, nobody follows pointers
// into the prefix again (extraction never reads the view of a node at or
// below its floor), and the collector severs the boundary views so the Go
// runtime can free the prefix. The ordering argument is the watermark
// store/load pair: the last potential reader published its watermark
// (release) before the collector observed quiescence (acquire) and cut.
//
// Liveness caveat: truncation needs a watermark from all n processes, so a
// process that never executes pins the graph (its watermark never
// advances). The bound on live nodes is therefore the number of operations
// executed between the slowest process's consecutive operations, plus the
// Window between collector passes — flat under steady traffic from every
// process, the churn soak's assertion.
package universal

import (
	"sync"
	"sync/atomic"

	"slmem/internal/spec"
)

// DefaultGCWindow is the operations-per-process between truncation attempts
// when GCOptions.Window is not set.
const DefaultGCWindow = 256

// GCOptions configures precedence-graph garbage collection.
type GCOptions struct {
	// Window is the number of operations a process executes between
	// truncation attempts; 0 or negative selects DefaultGCWindow. Smaller
	// windows truncate sooner and bound live nodes tighter at the cost of
	// more frequent collector passes.
	Window int
}

// GCStats describes the garbage collector's progress.
type GCStats struct {
	// LiveNodes is the number of precedence-graph nodes reachable past the
	// truncation root, from one root scan. With GC disabled it is the full
	// history size.
	LiveNodes int
	// Truncations counts completed truncation passes that advanced the root.
	Truncations int64
	// TruncatedNodes counts operations folded into the checkpointed root
	// across all truncations.
	TruncatedNodes int64
	// RootVersion is the current truncation root's version; 0 is the
	// initial, empty root.
	RootVersion int64
	// PendingTrims counts truncations whose boundary pointers are still
	// awaiting quiescence before being cut.
	PendingTrims int64
	// CoverageFailures counts extractions that found a reachable node not
	// covering the truncation root. The truncation invariant rules this
	// out; a nonzero count means the invariant broke — Execute returns
	// errors and LiveNodes may undercount — so the breakage is observable
	// here instead of masked.
	CoverageFailures int64
	// ReplayFailures counts truncation passes abandoned because the
	// truncated prefix failed to replay onto the checkpointed base. A
	// persistent failure stops the root from ever advancing; this counter
	// distinguishes that from normal non-advancement.
	ReplayFailures int64
}

// gcState is one truncation root, published as a whole via one atomic
// pointer and immutable afterwards.
type gcState struct {
	// cut[q] is the highest truncated operation index of process q, -1 for
	// none: nodes at or below the cut are (logically, then physically) gone.
	cut []int
	// base is the checkpointed sequential state reached by replaying the
	// truncated prefix; replay floors at the cut start from it.
	base string
	// version numbers the roots monotonically.
	version int64
}

// watermarkRec is one published watermark: an immutable anchor copy plus
// the root version the publishing operation executed against.
type watermarkRec struct {
	anchor  []int
	version int64
}

// watermark is a single-writer padded register: rec is stored only by the
// owning process and loaded by collector passes; ops is owner-local
// bookkeeping for the collection cadence.
type watermark struct {
	rec atomic.Pointer[watermarkRec]
	ops int
	_   [48]byte // pad to a cache line
}

// pendingTrim queues one truncation's boundary nodes for pointer cuts once
// every process has executed past its root version.
type pendingTrim struct {
	version  int64
	boundary []*node
}

// gcInfo is the per-object collector state.
type gcInfo struct {
	window      int
	state       atomic.Pointer[gcState]
	marks       []watermark
	mu          sync.Mutex // serializes collector passes; guards pending
	pending     []pendingTrim
	truncations atomic.Int64
	truncated   atomic.Int64
	trims       atomic.Int64
	coverFails  atomic.Int64
	replayFails atomic.Int64
}

// SetGC enables precedence-graph garbage collection. Like SetCaching it
// must not be called concurrently with Execute; unlike caching, GC cannot
// be disabled once enabled — after the first pointer cuts the untruncated
// history no longer exists. Calling SetGC again only retunes the window.
func (o *Object) SetGC(opts GCOptions) {
	window := opts.Window
	if window <= 0 {
		window = DefaultGCWindow
	}
	if o.gc != nil {
		o.gc.window = window
		return
	}
	g := &gcInfo{window: window, marks: make([]watermark, o.n)}
	cut := make([]int, o.n)
	for q := range cut {
		cut[q] = -1
	}
	g.state.Store(&gcState{cut: cut, base: o.sp.Initial(), version: 0})
	o.gc = g
}

// GCEnabled reports whether SetGC has enabled truncation.
func (o *Object) GCEnabled() bool { return o.gc != nil }

// GCStats returns collector progress, as process p (one root scan, same
// pid ownership rules as Execute). With GC disabled only LiveNodes is set,
// to the full history size.
func (o *Object) GCStats(p int) GCStats {
	if o.gc == nil {
		return GCStats{LiveNodes: o.HistorySize(p)}
	}
	g := o.gc
	gs := g.state.Load()
	delta, ok := deltaNodes(gs.cut, o.root.Scan(p))
	if !ok {
		// A reachable node does not cover the root: the truncation
		// invariant is broken and the extraction (hence LiveNodes) is
		// partial. Count it so the breakage surfaces in the stats.
		g.coverFails.Add(1)
	}
	return GCStats{
		LiveNodes:        len(delta),
		Truncations:      g.truncations.Load(),
		TruncatedNodes:   g.truncated.Load(),
		RootVersion:      gs.version,
		PendingTrims:     g.truncations.Load() - g.trims.Load(),
		CoverageFailures: g.coverFails.Load(),
		ReplayFailures:   g.replayFails.Load(),
	}
}

// afterOp publishes process p's watermark for the operation that just
// completed (node e over view, executed against root gs) and runs the
// amortized collector every window operations.
func (g *gcInfo) afterOp(o *Object, p int, view []*node, e *node, gs *gcState) {
	rec := &watermarkRec{anchor: make([]int, o.n), version: gs.version}
	for q, nd := range view {
		if nd == nil {
			rec.anchor[q] = -1
		} else {
			rec.anchor[q] = nd.index
		}
	}
	rec.anchor[e.pid] = e.index
	w := &g.marks[p]
	w.rec.Store(rec)

	w.ops++
	if w.ops < g.window {
		return
	}
	w.ops = 0
	if g.mu.TryLock() {
		o.collect(view)
		g.mu.Unlock()
	}
}

// collect is one truncation pass, run with g.mu held. It reuses the
// caller's root scan (view) so the pass adds no shared steps of its own.
func (o *Object) collect(view []*node) {
	g := o.gc
	cur := g.state.Load()

	// Read every process's watermark. One unpublished mark pins everything:
	// a process that has never executed could still linearize an operation
	// anywhere, so nothing is safely below it.
	minVer := int64(-1)
	m := make([]int, o.n)
	own := make([]int, o.n) // own[q]: q's last completed operation per its watermark
	for q := range g.marks {
		rec := g.marks[q].rec.Load()
		if rec == nil {
			return
		}
		own[q] = rec.anchor[q]
		if minVer < 0 || rec.version < minVer {
			minVer = rec.version
		}
		for r, idx := range rec.anchor {
			if q == 0 || idx < m[r] {
				m[r] = idx
			}
		}
	}

	// Cut boundary pointers of truncations every process has executed past.
	g.trimQuiesced(minVer)

	// Freshness gate: the watermarks were read after the scan, so process q
	// may have completed operations the scan cannot see. Operations at or
	// past own[q] are safe unseen — operation own[q]'s view is q's watermark
	// anchor minus its own component, the cut never exceeds that anchor, and
	// later scans of q are pointwise at least it — but an operation strictly
	// between the scan's top of q and own[q] carries a view this pass never
	// examines: it published after the scan and q's watermark already moved
	// past it. Truncating across such a gap is unsound (the node may not
	// cover the cut, wedging later extractions), so wait for a fresher scan.
	for q, k := range own {
		vi := -1
		if view[q] != nil {
			vi = view[q].index
		}
		if k > vi+1 {
			return
		}
	}

	// Clamp the candidate into [cur.cut, view]: monotone above the current
	// root, and within what this scan reached — the watermarks were read
	// after the scan, so they may run ahead of it. A scan older than the
	// current root (another process truncated since) waits for a fresher one.
	advanced := false
	for q := range m {
		if m[q] < cur.cut[q] {
			m[q] = cur.cut[q]
		}
		vi := -1
		if view[q] != nil {
			vi = view[q].index
		}
		if m[q] > vi {
			m[q] = vi
		}
		if m[q] < cur.cut[q] {
			return
		}
		if m[q] > cur.cut[q] {
			advanced = true
		}
	}
	if !advanced {
		return
	}

	delta, ok := deltaNodes(cur.cut, view)
	if !ok {
		g.coverFails.Add(1)
		return // unreachable: every live node covers the current root
	}

	// Lower m to the covering fixpoint: every node left outside the prefix
	// must cover it. A violating node's own view caps the prefix — nodes it
	// did not scan might linearize after it.
	for changed := true; changed; {
		changed = false
		for _, nd := range delta {
			if anchored(m, nd) || covers(nd.preceding, m) {
				continue
			}
			for q, prev := range nd.preceding {
				idx := -1
				if prev != nil {
					idx = prev.index
				}
				if idx < m[q] {
					m[q] = idx
					changed = true
				}
			}
		}
	}
	advanced = false
	for q := range m {
		if m[q] < cur.cut[q] {
			return // unreachable: live nodes' views cover the current root
		}
		if m[q] > cur.cut[q] {
			advanced = true
		}
	}
	if !advanced {
		return
	}

	// Replay the newly truncated prefix onto the current base. By the
	// covering fixpoint the prefix nodes form an exact prefix of the
	// linearization (prefix-first), checked defensively before committing.
	prefixLen := 0
	for _, nd := range delta {
		if anchored(m, nd) {
			prefixLen++
		}
	}
	state := cur.base
	count := 0
	for _, nd := range o.linearize(deltaGraph(cur.cut, delta)) {
		if !anchored(m, nd) {
			break
		}
		next, _, err := o.sp.Apply(state, nd.pid, nd.invocation)
		if err != nil {
			// Leave the graph untruncated, but observably: a persistent
			// replay failure would otherwise disable GC forever while
			// looking like normal non-advancement.
			g.replayFails.Add(1)
			return
		}
		state = next
		count++
	}
	if count != prefixLen {
		g.replayFails.Add(1)
		return // unreachable: prefix-first order violated
	}

	g.state.Store(&gcState{cut: m, base: spec.Checkpoint(o.sp, state), version: cur.version + 1})
	g.truncations.Add(1)
	g.truncated.Add(int64(count))

	// Queue the boundary nodes — index exactly m[q]; live nodes cover m, so
	// nothing live points below them — for pointer cuts at quiescence.
	var boundary []*node
	for _, nd := range delta {
		if nd.index == m[nd.pid] {
			boundary = append(boundary, nd)
		}
	}
	g.pending = append(g.pending, pendingTrim{version: cur.version + 1, boundary: boundary})
}

// trimQuiesced severs the boundary views of truncations whose root version
// every watermark has reached: from then on no process's replay floor can
// fall below that cut, extraction never follows a pointer into it again,
// and the store/load ordering through the watermarks makes the cut safe.
func (g *gcInfo) trimQuiesced(minVer int64) {
	for len(g.pending) > 0 && g.pending[0].version <= minVer {
		for _, nd := range g.pending[0].boundary {
			nd.preceding = nil
		}
		g.pending[0].boundary = nil
		g.pending = g.pending[1:]
		g.trims.Add(1)
	}
}
