package universal

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"slmem/internal/lincheck"
	"slmem/internal/memory"
	"slmem/internal/sched"
	"slmem/internal/spec"
)

// orFlagType is a custom simple type built with FuncType: a boolean OR flag.
// set() raises it (sets commute and are idempotent: they mutually
// overwrite); get() returns it and is overwritten by everything.
func orFlagType() FuncType {
	return FuncType{
		TypeName: "orflag",
		Sequential: FuncSpec{
			SpecName:     "orflag",
			InitialState: "false",
			ApplyFn: func(state string, _ int, desc string) (string, string, error) {
				name, _, err := spec.ParseInvocation(desc)
				if err != nil {
					return "", "", err
				}
				switch name {
				case "set":
					return "true", "ok", nil
				case "get":
					return state, state, nil
				default:
					return "", "", fmt.Errorf("orflag: unknown %q", desc)
				}
			},
		},
		CommutesFn: func(a string, _ int, b string, _ int) bool {
			return strings.HasPrefix(a, "set") == strings.HasPrefix(b, "set")
		},
		OverwritesFn: func(a string, _ int, b string, _ int) bool {
			// Everything overwrites get; set overwrites set (idempotent).
			return strings.HasPrefix(b, "get") || strings.HasPrefix(a, "set") && strings.HasPrefix(b, "set")
		},
	}
}

func TestFuncTypeIsSimple(t *testing.T) {
	if err := ValidateSimple(orFlagType(), []string{"set()", "get()"}, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
}

func TestFuncTypeSequential(t *testing.T) {
	var alloc memory.NativeAllocator
	o := New(&alloc, orFlagType(), 2)
	if got := mustExecute(t, o, 0, "get()"); got != "false" {
		t.Errorf("initial get = %q", got)
	}
	mustExecute(t, o, 1, "set()")
	if got := mustExecute(t, o, 0, "get()"); got != "true" {
		t.Errorf("get after set = %q", got)
	}
}

func TestFuncTypeLinearizableUnderRandomSchedules(t *testing.T) {
	typ := orFlagType()
	scripts := [][]string{{"set()", "get()"}, {"get()", "set()"}}
	for seed := int64(0); seed < 20; seed++ {
		res := sched.Run(simSystem(typ, scripts), sched.NewSeeded(seed), sched.Options{})
		if !res.Completed() {
			t.Fatalf("seed %d: incomplete: %v", seed, res.Err)
		}
		chk, err := lincheck.CheckTranscript(res.T, typ.Sequential)
		if err != nil {
			t.Fatal(err)
		}
		if !chk.Ok {
			t.Fatalf("seed %d: not linearizable:\n%s", seed, res.T.Interpreted())
		}
	}
}

func TestFuncTypeNilCommutes(t *testing.T) {
	// A type whose invocations all mutually overwrite needs no CommutesFn.
	typ := FuncType{
		TypeName:   "lastwins",
		Sequential: spec.Register{},
		OverwritesFn: func(string, int, string, int) bool {
			return true
		},
	}
	if typ.Commutes("write(1)", 0, "write(2)", 1) {
		t.Error("nil CommutesFn should report false")
	}
	if err := ValidateSimple(typ, []string{"write(1)", "read()"}, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	var alloc memory.NativeAllocator
	o := New(&alloc, typ, 2)
	mustExecute(t, o, 0, "write(7)")
	if got := mustExecute(t, o, 1, "read()"); got != "7" {
		t.Errorf("read = %q", got)
	}
}

// TestFuncTypeBoundedCounter implements a mod-k counter as a custom type
// and cross-checks it against a reference while concurrent.
func TestFuncTypeBoundedCounter(t *testing.T) {
	const k = 5
	typ := FuncType{
		TypeName: "modcounter",
		Sequential: FuncSpec{
			SpecName:     "modcounter",
			InitialState: "0",
			ApplyFn: func(state string, _ int, desc string) (string, string, error) {
				cur, err := strconv.Atoi(state)
				if err != nil {
					return "", "", err
				}
				name, _, err := spec.ParseInvocation(desc)
				if err != nil {
					return "", "", err
				}
				switch name {
				case "inc":
					return strconv.Itoa((cur + 1) % k), "ok", nil
				case "read":
					return state, state, nil
				default:
					return "", "", fmt.Errorf("modcounter: unknown %q", desc)
				}
			},
		},
		CommutesFn: func(a string, _ int, b string, _ int) bool {
			return strings.HasPrefix(a, strings.Split(b, "(")[0])
		},
		OverwritesFn: func(a string, _ int, b string, _ int) bool {
			return strings.HasPrefix(b, "read")
		},
	}
	var alloc memory.NativeAllocator
	o := New(&alloc, typ, 2)
	for i := 0; i < 12; i++ {
		mustExecute(t, o, i%2, "inc()")
	}
	if got := mustExecute(t, o, 0, "read()"); got != strconv.Itoa(12%k) {
		t.Errorf("read = %q, want %d", got, 12%k)
	}
}
