package universal

import (
	"testing"
	"testing/quick"

	"slmem/internal/lincheck"
	"slmem/internal/memory"
	"slmem/internal/sched"
	"slmem/internal/spec"
)

func TestProvidedTypesAreSimple(t *testing.T) {
	pids := []int{0, 1, 2}
	tests := []struct {
		typ   Type
		descs []string
	}{
		{CounterType{}, []string{"inc()", "read()"}},
		{SetType{}, []string{"add(a)", "add(b)", "contains(a)", "contains(b)"}},
		{AccumulatorType{}, []string{"addTo(1)", "addTo(-2)", "read()"}},
		{MaxRegType{}, []string{"maxWrite(3)", "maxWrite(7)", "maxRead()"}},
		{RegisterType{}, []string{"write(a)", "write(b)", "read()"}},
		{SnapshotType{N: 3}, []string{"update(a)", "update(b)", "scan()"}},
	}
	for _, tc := range tests {
		t.Run(tc.typ.Name(), func(t *testing.T) {
			if err := ValidateSimple(tc.typ, tc.descs, pids); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestDominanceAntisymmetric(t *testing.T) {
	types := []struct {
		typ   Type
		descs []string
	}{
		{CounterType{}, []string{"inc()", "read()"}},
		{SetType{}, []string{"add(a)", "contains(a)", "add(b)"}},
		{MaxRegType{}, []string{"maxWrite(3)", "maxWrite(7)", "maxRead()"}},
		{RegisterType{}, []string{"write(a)", "write(b)", "read()"}},
		{SnapshotType{N: 2}, []string{"update(a)", "scan()"}},
	}
	for _, tc := range types {
		for _, a := range tc.descs {
			for _, b := range tc.descs {
				for pa := 0; pa < 2; pa++ {
					for pb := 0; pb < 2; pb++ {
						if a == b && pa == pb {
							continue
						}
						if Dominates(tc.typ, a, pa, b, pb) && Dominates(tc.typ, b, pb, a, pa) {
							t.Errorf("%s: dominance not antisymmetric for %s(p%d) / %s(p%d)",
								tc.typ.Name(), a, pa, b, pb)
						}
					}
				}
			}
		}
	}
}

func mustExecute(t *testing.T, o *Object, p int, invoke string) string {
	t.Helper()
	resp, err := o.Execute(p, invoke)
	if err != nil {
		t.Fatalf("Execute(%d, %s): %v", p, invoke, err)
	}
	return resp
}

func TestCounterSequential(t *testing.T) {
	var alloc memory.NativeAllocator
	o := New(&alloc, CounterType{}, 3)
	if got := mustExecute(t, o, 0, "read()"); got != "0" {
		t.Errorf("initial read = %q", got)
	}
	mustExecute(t, o, 0, "inc()")
	mustExecute(t, o, 1, "inc()")
	mustExecute(t, o, 2, "inc()")
	if got := mustExecute(t, o, 1, "read()"); got != "3" {
		t.Errorf("read = %q, want 3", got)
	}
}

func TestSetSequential(t *testing.T) {
	var alloc memory.NativeAllocator
	o := New(&alloc, SetType{}, 2)
	if got := mustExecute(t, o, 0, "contains(x)"); got != "false" {
		t.Errorf("contains on empty = %q", got)
	}
	mustExecute(t, o, 0, "add(x)")
	mustExecute(t, o, 1, "add(y)")
	if got := mustExecute(t, o, 1, "contains(x)"); got != "true" {
		t.Errorf("contains(x) = %q", got)
	}
	if got := mustExecute(t, o, 0, "contains(z)"); got != "false" {
		t.Errorf("contains(z) = %q", got)
	}
}

func TestRegisterSequential(t *testing.T) {
	var alloc memory.NativeAllocator
	o := New(&alloc, RegisterType{}, 2)
	mustExecute(t, o, 0, "write(a)")
	mustExecute(t, o, 1, "write(b)")
	if got := mustExecute(t, o, 0, "read()"); got != "b" {
		t.Errorf("read = %q, want b (last write)", got)
	}
}

func TestExecuteRejectsBadInvocation(t *testing.T) {
	var alloc memory.NativeAllocator
	o := New(&alloc, CounterType{}, 1)
	if _, err := o.Execute(0, "frobnicate()"); err == nil {
		t.Error("bad invocation accepted")
	}
}

func TestSequentialRandomAgainstSpec(t *testing.T) {
	const n = 3
	builders := map[string]struct {
		typ Type
		ops []string
		sp  spec.Spec
	}{
		"counter":     {CounterType{}, []string{"inc()", "read()"}, spec.Counter{}},
		"set":         {SetType{}, []string{"add(a)", "add(b)", "contains(a)", "contains(b)"}, spec.Set{}},
		"accumulator": {AccumulatorType{}, []string{"addTo(2)", "addTo(-1)", "read()"}, spec.Accumulator{}},
		"maxreg":      {MaxRegType{}, []string{"maxWrite(3)", "maxWrite(9)", "maxRead()"}, spec.MaxRegister{}},
	}
	for name, b := range builders {
		b := b
		t.Run(name, func(t *testing.T) {
			f := func(script []uint8) bool {
				var alloc memory.NativeAllocator
				o := New(&alloc, b.typ, n)
				state := b.sp.Initial()
				for _, raw := range script {
					pid := int(raw) % n
					desc := b.ops[int(raw/3)%len(b.ops)]
					got, err := o.Execute(pid, desc)
					if err != nil {
						return false
					}
					next, want, err := b.sp.Apply(state, pid, desc)
					if err != nil {
						return false
					}
					if got != want {
						t.Logf("%s by p%d: got %q, want %q", desc, pid, got, want)
						return false
					}
					state = next
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
				t.Error(err)
			}
		})
	}
}

// simSystem builds a simulated system executing the given per-process
// invocation scripts against a universal object of the given type.
func simSystem(typ Type, scripts [][]string) sched.System {
	n := len(scripts)
	return sched.System{
		N: n,
		Setup: func(env *sched.Env) []sched.Program {
			o := New(env, typ, n)
			progs := make([]sched.Program, n)
			for pid := range scripts {
				pid := pid
				progs[pid] = func(p *sched.Proc) {
					for _, desc := range scripts[pid] {
						desc := desc
						p.Do(desc, func() string {
							resp, err := o.Execute(pid, desc)
							if err != nil {
								return "ERR:" + err.Error()
							}
							return resp
						})
					}
				}
			}
			return progs
		},
	}
}

func TestLinearizableUnderRandomSchedules(t *testing.T) {
	cases := []struct {
		name    string
		typ     Type
		scripts [][]string
		sp      spec.Spec
	}{
		{"counter", CounterType{}, [][]string{{"inc()", "read()"}, {"inc()", "read()"}, {"inc()"}}, spec.Counter{}},
		{"set", SetType{}, [][]string{{"add(a)", "contains(b)"}, {"add(b)", "contains(a)"}}, spec.Set{}},
		{"register", RegisterType{}, [][]string{{"write(a)", "read()"}, {"write(b)", "read()"}}, spec.Register{}},
		{"maxreg", MaxRegType{}, [][]string{{"maxWrite(5)", "maxRead()"}, {"maxWrite(3)", "maxRead()"}}, spec.MaxRegister{}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < 20; seed++ {
				res := sched.Run(simSystem(tc.typ, tc.scripts), sched.NewSeeded(seed), sched.Options{})
				if !res.Completed() {
					t.Fatalf("seed %d: incomplete: %v", seed, res.Err)
				}
				chk, err := lincheck.CheckTranscript(res.T, tc.sp)
				if err != nil {
					t.Fatal(err)
				}
				if !chk.Ok {
					t.Fatalf("seed %d: not linearizable:\n%s", seed, res.T.Interpreted())
				}
			}
		})
	}
}

func TestStrongChainMonitor(t *testing.T) {
	scripts := [][]string{{"inc()", "read()"}, {"inc()", "read()"}}
	for seed := int64(0); seed < 10; seed++ {
		res := sched.Run(simSystem(CounterType{}, scripts), sched.NewSeeded(seed), sched.Options{})
		if !res.Completed() {
			t.Fatalf("seed %d: incomplete: %v", seed, res.Err)
		}
		chk, err := lincheck.CheckChain(res.T, spec.Counter{})
		if err != nil {
			t.Fatal(err)
		}
		if !chk.Ok {
			t.Fatalf("seed %d: chain check failed at %s", seed, chk.FailNode)
		}
	}
}

func TestStrongBranchingTrees(t *testing.T) {
	sys := simSystem(CounterType{}, [][]string{{"inc()", "read()"}, {"inc()", "read()"}})
	for seed := int64(0); seed < 6; seed++ {
		probe := sched.Run(sys, sched.NewSeeded(seed), sched.Options{})
		prefix := probe.Schedule
		if len(prefix) > 12 {
			prefix = prefix[:12]
		}
		conts := make([][]int, 0, 3)
		for f := 0; f < 3; f++ {
			adv := sched.NewChain(sched.NewScript(prefix...), sched.NewSeeded(seed*57+int64(f)))
			res := sched.Run(sys, adv, sched.Options{})
			if res.Err != nil {
				t.Fatal(res.Err)
			}
			conts = append(conts, res.Schedule[len(prefix):])
		}
		tree, err := sched.PrefixTree(sys, prefix, conts, sched.Options{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := lincheck.CheckStrong(lincheck.FromSchedTree(tree), spec.Counter{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Ok {
			t.Fatalf("seed %d: strong tree check failed at %s", seed, res.FailNode)
		}
	}
}

func TestHistoryGrowth(t *testing.T) {
	// The shared precedence graph keeps every operation (the construction is
	// not bounded wait-free; Section 5.3). HistorySize must track the total
	// number of executed operations.
	var alloc memory.NativeAllocator
	o := New(&alloc, CounterType{}, 2)
	for i := 1; i <= 10; i++ {
		mustExecute(t, o, i%2, "inc()")
		if got := o.HistorySize(0); got != i {
			t.Fatalf("after %d ops HistorySize = %d", i, got)
		}
	}
}

func TestDeterministicLinearization(t *testing.T) {
	// Two processes observing the same root view must compute identical
	// histories; otherwise responses would diverge. Exercised by running the
	// same mixed workload twice and comparing all responses.
	run := func() []string {
		var alloc memory.NativeAllocator
		o := New(&alloc, SetType{}, 3)
		var out []string
		script := []struct {
			pid  int
			desc string
		}{
			{0, "add(a)"}, {1, "contains(a)"}, {2, "add(b)"},
			{0, "contains(b)"}, {1, "add(a)"}, {2, "contains(a)"},
		}
		for _, s := range script {
			resp, err := o.Execute(s.pid, s.desc)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, resp)
		}
		return out
	}
	r1, r2 := run(), run()
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Errorf("response %d differs across identical runs: %q vs %q", i, r1[i], r2[i])
		}
	}
}

func TestPrecgraphStructure(t *testing.T) {
	// White box: after sequential ops by two processes, the precedence graph
	// must contain a path between every pair of non-concurrent ops.
	var alloc memory.NativeAllocator
	o := New(&alloc, CounterType{}, 2)
	mustExecute(t, o, 0, "inc()")
	mustExecute(t, o, 1, "inc()")
	mustExecute(t, o, 0, "read()")

	g := precgraph(o.root.Scan(0))
	if len(g.nodes) != 3 {
		t.Fatalf("graph has %d nodes, want 3", len(g.nodes))
	}
	// Sequential execution: op1 -> op2 -> op3 must all be connected.
	order := g.topoSort()
	if len(order) != 3 {
		t.Fatalf("topoSort returned %d nodes", len(order))
	}
	for i := 0; i < len(order)-1; i++ {
		if !g.reaches(order[i], order[i+1]) {
			t.Errorf("no path between sequential ops %d and %d", i, i+1)
		}
	}
}

func TestValidateSimpleRejectsNonSimple(t *testing.T) {
	if err := ValidateSimple(stickyBitType{}, []string{"write0()", "write1()"}, []int{0, 1}); err == nil {
		t.Error("sticky bit accepted as simple")
	}
}

// stickyBitType is a deliberately non-simple type: write0 and write1 neither
// commute nor overwrite (a sticky bit keeps its first value, and has
// consensus number 2 — Definition 33 excludes it).
type stickyBitType struct{}

func (stickyBitType) Name() string    { return "stickybit" }
func (stickyBitType) Spec() spec.Spec { return spec.Register{} }
func (stickyBitType) Commutes(a string, _ int, b string, _ int) bool {
	return a == b
}
func (stickyBitType) Overwrites(a string, _ int, b string, _ int) bool {
	return false
}
