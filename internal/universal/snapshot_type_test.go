package universal

import (
	"testing"

	"slmem/internal/lincheck"
	"slmem/internal/memory"
	"slmem/internal/sched"
	"slmem/internal/spec"
)

// TestSnapshotTypeViaConstruction closes the circle: the snapshot type
// itself is simple, so the universal construction (which is built ON a
// snapshot) can implement snapshots. The result must be linearizable against
// the snapshot specification.
func TestSnapshotTypeViaConstruction(t *testing.T) {
	const n = 2
	typ := SnapshotType{N: n}
	scripts := [][]string{
		{"update(a)", "scan()"},
		{"update(b)", "scan()"},
	}
	for seed := int64(0); seed < 20; seed++ {
		res := sched.Run(simSystem(typ, scripts), sched.NewSeeded(seed), sched.Options{})
		if !res.Completed() {
			t.Fatalf("seed %d: incomplete: %v", seed, res.Err)
		}
		chk, err := lincheck.CheckTranscript(res.T, spec.Snapshot{N: n})
		if err != nil {
			t.Fatal(err)
		}
		if !chk.Ok {
			t.Fatalf("seed %d: snapshot-via-construction not linearizable:\n%s", seed, res.T.Interpreted())
		}
	}
}

func TestSnapshotTypeSequential(t *testing.T) {
	var alloc memory.NativeAllocator
	o := New(&alloc, SnapshotType{N: 3}, 3)
	mustExecute(t, o, 0, "update(x)")
	mustExecute(t, o, 2, "update(z)")
	got := mustExecute(t, o, 1, "scan()")
	want := "[x " + spec.Bot + " z]"
	if got != want {
		t.Errorf("scan = %q, want %q", got, want)
	}
	// Single-writer: p0 overwrites only its own component.
	mustExecute(t, o, 0, "update(w)")
	if got := mustExecute(t, o, 0, "scan()"); got != "[w "+spec.Bot+" z]" {
		t.Errorf("scan = %q", got)
	}
}

// TestSnapshotTypeChainMonitor: prefix preservation along runs for the
// snapshot-via-construction (Theorem 3 instantiated on the snapshot type).
func TestSnapshotTypeChainMonitor(t *testing.T) {
	typ := SnapshotType{N: 2}
	scripts := [][]string{{"update(a)", "scan()"}, {"update(b)"}}
	for seed := int64(0); seed < 8; seed++ {
		res := sched.Run(simSystem(typ, scripts), sched.NewSeeded(seed), sched.Options{})
		if !res.Completed() {
			t.Fatalf("seed %d: incomplete: %v", seed, res.Err)
		}
		chk, err := lincheck.CheckChain(res.T, spec.Snapshot{N: 2})
		if err != nil {
			t.Fatal(err)
		}
		if !chk.Ok {
			t.Fatalf("seed %d: chain check failed at %s", seed, chk.FailNode)
		}
	}
}
