package universal

import (
	"fmt"
	"math/rand"
	"strconv"
	"testing"

	"slmem/internal/lincheck"
	"slmem/internal/memory"
	"slmem/internal/sched"
	"slmem/internal/spec"
)

// cachedSimSystem builds a simulated system like simSystem, but exposes the
// object (for cache stats) and lets tests disable the replay cache.
func cachedSimSystem(typ Type, scripts [][]string, caching bool, obj **Object) sched.System {
	n := len(scripts)
	return sched.System{
		N: n,
		Setup: func(env *sched.Env) []sched.Program {
			o := New(env, typ, n)
			o.SetCaching(caching)
			if obj != nil {
				*obj = o
			}
			progs := make([]sched.Program, n)
			for pid := range scripts {
				pid := pid
				progs[pid] = func(p *sched.Proc) {
					for _, desc := range scripts[pid] {
						desc := desc
						p.Do(desc, func() string {
							resp, err := o.Execute(pid, desc)
							if err != nil {
								return "ERR:" + err.Error()
							}
							return resp
						})
					}
				}
			}
			return progs
		},
	}
}

// counterScripts builds per-process scripts long enough that later
// operations run against a non-trivial history (so the replay cache is
// genuinely exercised, hits and fallbacks both).
func counterScripts(n, opsPerProc int) [][]string {
	scripts := make([][]string, n)
	for p := range scripts {
		for i := 0; i < opsPerProc; i++ {
			if i%3 == 2 {
				scripts[p] = append(scripts[p], "read()")
			} else {
				scripts[p] = append(scripts[p], "inc()")
			}
		}
	}
	return scripts
}

// TestReplayCacheDifferentialNative replays identical randomized invocation
// interleavings against a cached and an uncached object: every response must
// be byte-identical (the cache computes the same function of each scanned
// view, just incrementally).
func TestReplayCacheDifferentialNative(t *testing.T) {
	types := map[string]struct {
		typ Type
		ops []string
	}{
		"counter":     {CounterType{}, []string{"inc()", "read()"}},
		"set":         {SetType{}, []string{"add(a)", "add(b)", "add(c)", "contains(a)", "contains(c)"}},
		"accumulator": {AccumulatorType{}, []string{"addTo(3)", "addTo(-1)", "read()"}},
		"register":    {RegisterType{}, []string{"write(x)", "write(y)", "read()"}},
	}
	const n, ops = 3, 120
	for name, tc := range types {
		tc := tc
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 5; seed++ {
				rng := rand.New(rand.NewSource(seed))
				type step struct {
					pid  int
					desc string
				}
				script := make([]step, ops)
				for i := range script {
					script[i] = step{pid: rng.Intn(n), desc: tc.ops[rng.Intn(len(tc.ops))]}
				}

				var alloc1, alloc2 memory.NativeAllocator
				cached := New(&alloc1, tc.typ, n)
				uncached := New(&alloc2, tc.typ, n)
				uncached.SetCaching(false)
				for i, s := range script {
					got, err := cached.Execute(s.pid, s.desc)
					if err != nil {
						t.Fatalf("seed %d cached op %d: %v", seed, i, err)
					}
					want, err := uncached.Execute(s.pid, s.desc)
					if err != nil {
						t.Fatalf("seed %d uncached op %d: %v", seed, i, err)
					}
					if got != want {
						t.Fatalf("seed %d: op %d %s by p%d diverges: cached %q, uncached %q",
							seed, i, s.desc, s.pid, got, want)
					}
				}
				st := cached.CacheStats()
				if st.Hits == 0 {
					t.Errorf("seed %d: cached run recorded no cache hits", seed)
				}
				if un := uncached.CacheStats(); un.Hits != 0 || un.Misses != 0 {
					t.Errorf("seed %d: uncached object touched the cache: %+v", seed, un)
				}
			}
		})
	}
}

// TestReplayCacheDifferentialSched runs the same adversarial schedule against
// a cached and an uncached system. The cache performs no shared-memory steps
// of its own, so the same seed yields the same schedule — and the interpreted
// histories (invocations, responses, interleaving) must match byte for byte.
// (Raw transcripts render node pointer addresses, so they are compared at the
// operation level.)
func TestReplayCacheDifferentialSched(t *testing.T) {
	scripts := counterScripts(3, 6)
	for seed := int64(0); seed < 25; seed++ {
		var cachedObj *Object
		resCached := sched.Run(cachedSimSystem(CounterType{}, scripts, true, &cachedObj), sched.NewSeeded(seed), sched.Options{})
		resPlain := sched.Run(cachedSimSystem(CounterType{}, scripts, false, nil), sched.NewSeeded(seed), sched.Options{})
		if !resCached.Completed() || !resPlain.Completed() {
			t.Fatalf("seed %d: incomplete run: %v / %v", seed, resCached.Err, resPlain.Err)
		}
		if got, want := len(resCached.Schedule), len(resPlain.Schedule); got != want {
			t.Fatalf("seed %d: schedules diverge: %d vs %d steps (cache must add no shared steps)", seed, got, want)
		}
		for i := range resCached.Schedule {
			if resCached.Schedule[i] != resPlain.Schedule[i] {
				t.Fatalf("seed %d: schedules diverge at step %d", seed, i)
			}
		}
		if got, want := resCached.T.Interpreted().String(), resPlain.T.Interpreted().String(); got != want {
			t.Fatalf("seed %d: cached and uncached histories diverge:\n--- cached ---\n%s\n--- uncached ---\n%s",
				seed, got, want)
		}
		if st := cachedObj.CacheStats(); st.Hits+st.Misses == 0 {
			t.Fatalf("seed %d: cache never consulted", seed)
		}
	}
}

// TestReplayCacheFallbackUnderAdversary checks the miss path: under heavily
// interleaved schedules some operations must observe non-covering stragglers
// and fall back to full replay, and the histories must stay linearizable.
func TestReplayCacheFallbackUnderAdversary(t *testing.T) {
	scripts := counterScripts(4, 5)
	var totalMisses int64
	for seed := int64(0); seed < 40; seed++ {
		var obj *Object
		res := sched.Run(cachedSimSystem(CounterType{}, scripts, true, &obj), sched.NewSeeded(seed), sched.Options{})
		if !res.Completed() {
			t.Fatalf("seed %d: incomplete: %v", seed, res.Err)
		}
		chk, err := lincheck.CheckTranscript(res.T, spec.Counter{})
		if err != nil {
			t.Fatal(err)
		}
		if !chk.Ok {
			t.Fatalf("seed %d: cached history not linearizable:\n%s", seed, res.T.Interpreted())
		}
		totalMisses += obj.CacheStats().Misses
	}
	if totalMisses == 0 {
		t.Error("no schedule exercised the fallback (miss) path; widen the adversary")
	}
}

// TestReplayCacheStrongPrefixTrees runs the strong-linearizability prefix
// tree check over cached-path histories: branch several adversarial
// continuations off shared prefixes and verify a prefix-preserving
// linearization order exists (the paper's strong-linearizability witness).
func TestReplayCacheStrongPrefixTrees(t *testing.T) {
	sys := cachedSimSystem(CounterType{}, counterScripts(2, 3), true, nil)
	for seed := int64(0); seed < 6; seed++ {
		probe := sched.Run(sys, sched.NewSeeded(seed), sched.Options{})
		if !probe.Completed() {
			t.Fatalf("seed %d: probe incomplete: %v", seed, probe.Err)
		}
		prefix := probe.Schedule
		if len(prefix) > 16 {
			prefix = prefix[:16]
		}
		conts := make([][]int, 0, 3)
		for f := 0; f < 3; f++ {
			adv := sched.NewChain(sched.NewScript(prefix...), sched.NewSeeded(seed*131+int64(f)))
			res := sched.Run(sys, adv, sched.Options{})
			if res.Err != nil {
				t.Fatal(res.Err)
			}
			conts = append(conts, res.Schedule[len(prefix):])
		}
		tree, err := sched.PrefixTree(sys, prefix, conts, sched.Options{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := lincheck.CheckStrong(lincheck.FromSchedTree(tree), spec.Counter{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Ok {
			t.Fatalf("seed %d: strong prefix-tree check failed at %s", seed, res.FailNode)
		}
	}
}

// TestReplayCacheSteadyStateHits checks the amortization claim: once warm,
// a sequential workload (any number of processes taking turns) never misses,
// because every new node's view covers every earlier anchor.
func TestReplayCacheSteadyStateHits(t *testing.T) {
	var alloc memory.NativeAllocator
	o := New(&alloc, CounterType{}, 4)
	const ops = 400
	for i := 0; i < ops; i++ {
		if _, err := o.Execute(i%4, "inc()"); err != nil {
			t.Fatal(err)
		}
	}
	st := o.CacheStats()
	if st.Misses != 0 {
		t.Errorf("sequential workload recorded %d misses, want 0", st.Misses)
	}
	if st.Hits < ops-4 {
		t.Errorf("hits = %d, want >= %d (every op after each process's first)", st.Hits, ops-4)
	}
	if got := o.HistorySize(0); got != ops {
		t.Errorf("HistorySize = %d, want %d (cache must not drop history)", got, ops)
	}
	if got, err := o.Execute(0, "read()"); err != nil || got != strconv.Itoa(ops) {
		t.Errorf("read() = %q, %v; want %d", got, err, ops)
	}
}

// TestReplayCacheDisableEnable checks SetCaching round trips: anchors
// describe closed history prefixes, so a cache that sat disabled while
// operations executed resumes correctly.
func TestReplayCacheDisableEnable(t *testing.T) {
	var alloc1, alloc2 memory.NativeAllocator
	o := New(&alloc1, CounterType{}, 2)
	ref := New(&alloc2, CounterType{}, 2)
	ref.SetCaching(false)
	run := func(pid int, desc string) {
		t.Helper()
		got, err := o.Execute(pid, desc)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.Execute(pid, desc)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("%s by p%d: got %q, want %q", desc, pid, got, want)
		}
	}
	for i := 0; i < 10; i++ {
		run(i%2, "inc()")
	}
	o.SetCaching(false)
	for i := 0; i < 10; i++ {
		run(i%2, "inc()")
	}
	o.SetCaching(true) // stale anchor: 10 ops behind
	for i := 0; i < 10; i++ {
		run(i%2, "inc()")
	}
	run(0, "read()")
}

// checkpointSpy wraps a Spec and counts Checkpoint calls, proving Execute
// routes cached states through the spec.Checkpointer hook.
type checkpointSpy struct {
	spec.Spec
	calls int
}

func (s *checkpointSpy) Checkpoint(state string) string {
	s.calls++
	return state
}

type spyType struct {
	CounterType
	sp *checkpointSpy
}

func (t spyType) Spec() spec.Spec { return t.sp }

func TestReplayCacheUsesCheckpointHook(t *testing.T) {
	spy := &checkpointSpy{Spec: spec.Counter{}}
	var alloc memory.NativeAllocator
	o := New(&alloc, spyType{sp: spy}, 2)
	const ops = 8
	for i := 0; i < ops; i++ {
		if _, err := o.Execute(i%2, "inc()"); err != nil {
			t.Fatal(err)
		}
	}
	if spy.calls != ops {
		t.Errorf("Checkpoint called %d times, want %d (once per cached operation)", spy.calls, ops)
	}
	o.SetCaching(false)
	before := spy.calls
	if _, err := o.Execute(0, "inc()"); err != nil {
		t.Fatal(err)
	}
	if spy.calls != before {
		t.Errorf("Checkpoint called on the uncached path")
	}
}

// TestDeltaNodesCovering pins the covering rule at the unit level: a node
// whose scanned view misses an anchored node forces ok=false.
func TestDeltaNodesCovering(t *testing.T) {
	// Two processes. Anchor: p0 up to index 1, p1 none.
	a := &node{pid: 0, index: 0, invocation: "inc()"}
	b := &node{pid: 0, index: 1, invocation: "inc()", preceding: []*node{a, nil}}
	anchor := []int{1, -1}

	covering := &node{pid: 1, index: 0, invocation: "inc()", preceding: []*node{b, nil}}
	nodes, ok := deltaNodes(anchor, []*node{b, covering})
	if !ok || len(nodes) != 1 || nodes[0] != covering {
		t.Fatalf("covering node: nodes=%v ok=%v, want exactly the new node", nodes, ok)
	}

	straggler := &node{pid: 1, index: 0, invocation: "inc()", preceding: []*node{a, nil}}
	if _, ok := deltaNodes(anchor, []*node{b, straggler}); ok {
		t.Fatal("straggler whose view misses anchored node b must force a fallback")
	}

	blind := &node{pid: 1, index: 0, invocation: "inc()", preceding: []*node{nil, nil}}
	if _, ok := deltaNodes(anchor, []*node{b, blind}); ok {
		t.Fatal("node with an empty view must force a fallback against a non-empty anchor")
	}
}

// TestCacheStatsString keeps fmt coverage honest for the exported struct.
func TestCacheStatsString(t *testing.T) {
	st := CacheStats{Hits: 2, Misses: 1, Anchors: 3}
	if s := fmt.Sprintf("%+v", st); s != "{Hits:2 Misses:1 Anchors:3}" {
		t.Errorf("unexpected CacheStats rendering %q", s)
	}
}
