// Package universal implements the Aspnes–Herlihy wait-free construction of
// arbitrary simple types from a snapshot object (paper Section 5,
// Algorithms 5 and 6), which the paper proves strongly linearizable
// (Theorem 54). With the strongly linearizable snapshot of internal/core as
// its root, every simple type has a lock-free strongly linearizable
// implementation from registers (Theorem 3).
//
// A simple type is one where every pair of invocation descriptions either
// commutes or one overwrites the other (Definition 33). Each operation:
//
//  1. scans the root snapshot for the latest nodes of all processes,
//  2. extracts the precedence graph reachable from them (Algorithm 6),
//  3. builds the linearization graph by adding dominance edges between
//     concurrent operations (Algorithm 5, lingraph),
//  4. computes its response from a topological sort of that graph, and
//  5. appends its own node, pointing at the scanned nodes, to the root.
//
// As the paper notes (Section 5.3/6), the construction keeps every node
// forever: it is wait-free but not bounded wait-free. Executed naively,
// steps 2-4 re-extract and re-sort the whole history, so per-operation cost
// grows with history length — measured by experiment E6.
//
// # Replay cache
//
// This implementation amortizes that cost to O(Δ) in the number of
// operations since the calling process's previous operation, using a purely
// process-local replay cache. After an operation, process p remembers an
// anchor — the per-process operation-index prefix {(q, i) : i <= anchor[q]}
// it just linearized — together with the sequential state reached by
// replaying that prefix (checkpointed through spec.Checkpoint). The next
// operation extracts only nodes beyond the anchor and replays them onto the
// cached state, provided every extracted node covers the anchor: its own
// scanned view includes every anchored node. Covering nodes are forced
// after the whole anchored prefix in the linearization — by precedence
// (their view reaches every anchored node through the per-process chains)
// and therefore also by the dominance rules, whose edges toward already
// preceding nodes are skipped — so the cached prefix is exactly a prefix of
// the full linearization, node orders and responses byte-identical to an
// uncached run (the differential tests check this). A non-covering node
// (a genuinely concurrent straggler that might linearize inside the cached
// prefix) forces a fallback to full re-extraction, after which the cache
// re-anchors.
//
// Strong linearizability is untouched: the cache reads nothing but what a
// legal root scan returns, writes nothing shared, and computes the same
// response function of the scanned view as the uncached algorithm.
package universal

import (
	"fmt"
	"sort"
	"sync/atomic"

	"slmem/internal/core"
	"slmem/internal/memory"
	"slmem/internal/spec"
)

// Type describes a simple type: its sequential specification plus the
// commute/overwrite calculus over invocation descriptions (which, per the
// paper's Section 2, include the invoking process id).
type Type interface {
	// Name identifies the type.
	Name() string
	// Spec returns the sequential specification used to compute responses.
	Spec() spec.Spec
	// Commutes reports whether invocations a and b commute: executing them
	// in either order yields valid, equivalent histories.
	Commutes(descA string, pidA int, descB string, pidB int) bool
	// Overwrites reports whether invocation a overwrites invocation b:
	// H ∘ b ∘ a is always valid and equivalent to H ∘ a.
	Overwrites(descA string, pidA int, descB string, pidB int) bool
}

// Dominates implements the paper's Definition 34: a dominates b if a
// overwrites b but not vice versa, or they overwrite each other and a's
// process id is larger.
func Dominates(t Type, descA string, pidA int, descB string, pidB int) bool {
	ab := t.Overwrites(descA, pidA, descB, pidB)
	ba := t.Overwrites(descB, pidB, descA, pidA)
	switch {
	case ab && !ba:
		return true
	case ab && ba:
		return pidA > pidB
	default:
		return false
	}
}

// ValidateSimple checks Definition 33 over a set of invocation samples:
// every pair must commute or overwrite one way. It returns the first
// offending pair, if any.
func ValidateSimple(t Type, descs []string, pids []int) error {
	for i, a := range descs {
		for j, b := range descs {
			pa, pb := pids[i%len(pids)], pids[j%len(pids)]
			if t.Commutes(a, pa, b, pb) || t.Overwrites(a, pa, b, pb) || t.Overwrites(b, pb, a, pa) {
				continue
			}
			return fmt.Errorf("universal: %s is not simple: %s(p%d) and %s(p%d) neither commute nor overwrite",
				t.Name(), a, pa, b, pb)
		}
	}
	return nil
}

// node is the struct of Algorithm 5: an operation record stored in the
// shared precedence-graph representation. Nodes are immutable once written
// to the root.
type node struct {
	invocation string
	response   string
	pid        int
	index      int     // per-process operation index: (pid,index) is unique
	preceding  []*node // view[i] at this operation's scan; nil = ⊥
}

func (nd *node) less(other *node) bool {
	if nd.pid != other.pid {
		return nd.pid < other.pid
	}
	return nd.index < other.index
}

// Root is the snapshot interface the construction needs. Theorem 3 requires
// a strongly linearizable implementation (internal/core); a merely
// linearizable one still yields a linearizable object (Aspnes–Herlihy).
type Root interface {
	Update(pid int, x *node)
	Scan(pid int) []*node
}

// pcache is one process's replay-cache entry, written only by the goroutine
// driving that pid (the counters are atomic so CacheStats may read them
// concurrently). Padded so adjacent entries do not false-share — which is
// also why the hit/miss counters live here per-process rather than as one
// shared pair the hot path would contend on.
type pcache struct {
	// anchor[q] is the highest operation index of process q in the cached
	// linearized prefix, -1 for none; a nil slice means no anchor yet.
	anchor []int
	// state is the sequential state after replaying the anchored prefix.
	state string
	// deferred marks batch mode: remember keeps the rolling anchor and raw
	// state but postpones the checkpoint (the durable re-anchor) to EndBatch.
	deferred bool
	// dirty reports a deferred remember that EndBatch still has to checkpoint.
	dirty bool
	// hits and misses count this process's cache outcomes; anchors counts
	// durable re-anchors (checkpoints written).
	hits    atomic.Int64
	misses  atomic.Int64
	anchors atomic.Int64
	_       [56]byte // pad to two cache lines (72 bytes above)
}

// CacheStats counts replay-cache outcomes across all processes.
type CacheStats struct {
	// Hits counts operations that replayed only the delta beyond their
	// process's anchor.
	Hits int64
	// Misses counts operations that fell back to a full history replay
	// because some extracted node did not cover the anchor.
	Misses int64
	// Anchors counts durable re-anchors: checkpoints written to the cache.
	// Outside batch mode every cached operation re-anchors once; within a
	// BeginBatch/EndBatch window the whole batch re-anchors once at the end.
	Anchors int64
}

// Object is an implementation of a simple type from a snapshot object.
// Methods take the calling process id; at most one goroutine may drive a
// given pid at a time.
type Object struct {
	t       Type
	sp      spec.Spec
	n       int
	root    Root
	index   []int // per-process count of executed operations
	caching bool
	cache   []pcache
	gc      *gcInfo // nil until SetGC enables truncation
}

// New constructs the object over the strongly linearizable snapshot of
// internal/core, yielding a lock-free strongly linearizable implementation
// (Theorem 3).
func New(alloc memory.Allocator, t Type, n int) *Object {
	return NewWithRoot(t, n, core.New[*node](alloc, n, nil))
}

// NewWithRoot constructs the object over an explicit root snapshot.
func NewWithRoot(t Type, n int, root Root) *Object {
	if n < 1 {
		panic(fmt.Sprintf("universal: n = %d, need at least 1 process", n))
	}
	return &Object{
		t:       t,
		sp:      t.Spec(),
		n:       n,
		root:    root,
		index:   make([]int, n),
		caching: true,
		cache:   make([]pcache, n),
	}
}

// SetCaching enables or disables the replay cache (enabled by default).
// Disabling forces every Execute through the full O(history) extract-and-
// replay path; it exists for differential tests and growth measurements.
// It must not be called concurrently with Execute. Cached anchors survive a
// disable/enable cycle — an anchor describes a closed history prefix, which
// stays valid no matter how many operations elapse.
func (o *Object) SetCaching(on bool) { o.caching = on }

// CacheStats returns the replay-cache hit/miss counters, summed over all
// processes.
func (o *Object) CacheStats() CacheStats {
	var st CacheStats
	for p := range o.cache {
		st.Hits += o.cache[p].hits.Load()
		st.Misses += o.cache[p].misses.Load()
		st.Anchors += o.cache[p].anchors.Load()
	}
	return st
}

// Execute performs the invocation as process p (Algorithm 5, execute):
// it computes the response the history demands, publishes the operation's
// node, and returns the response. With the replay cache warm it extracts,
// sorts, and replays only the nodes beyond process p's anchor; with GC
// enabled the replay floor never drops below the truncation root, whose
// checkpointed state stands in for the truncated prefix.
func (o *Object) Execute(p int, invoke string) (string, error) {
	var gs *gcState
	if o.gc != nil {
		gs = o.gc.state.Load()
	}
	view := o.root.Scan(p) // line 81

	anchor, state, fromCache := o.floor(p, gs)
	delta, ok := deltaNodes(anchor, view) // line 82, restricted past the floor
	switch {
	case !ok && fromCache:
		// Some extracted node does not cover the anchor and may linearize
		// inside the cached prefix: fall back. With GC enabled the fallback
		// floor is the truncation root — the history below it may already be
		// trimmed — replayed from the checkpointed root state; without GC it
		// is the full extraction.
		o.cache[p].misses.Add(1)
		if gs != nil {
			anchor, state = gs.cut, gs.base
		} else {
			anchor, state = nil, o.sp.Initial()
		}
		delta, ok = deltaNodes(anchor, view)
		if !ok {
			o.gc.coverFails.Add(1)
			return "", fmt.Errorf("universal: extracted node does not cover truncation root v%d", gs.version)
		}
	case !ok:
		// The floor was the truncation root itself; every reachable node
		// covers it (the truncation invariant), so this cannot happen. A nil
		// floor never fails extraction at all.
		ver := int64(-1)
		if gs != nil {
			ver = gs.version
			o.gc.coverFails.Add(1)
		}
		return "", fmt.Errorf("universal: extracted node does not cover truncation root v%d", ver)
	case fromCache:
		o.cache[p].hits.Add(1)
	}
	g := deltaGraph(anchor, delta)
	h := o.linearize(g) // line 83: topological sort of lingraph(G)

	// Lines 84-87: compute the response valid after H. With a warm cache, H
	// is only the suffix past the anchored prefix, replayed onto its state.
	var err error
	for _, nd := range h {
		state, _, err = o.sp.Apply(state, nd.pid, nd.invocation)
		if err != nil {
			return "", fmt.Errorf("universal: replaying %s: %w", nd.invocation, err)
		}
	}
	next, resp, err := o.sp.Apply(state, p, invoke)
	if err != nil {
		return "", fmt.Errorf("universal: %s: %w", invoke, err)
	}

	e := &node{
		invocation: invoke,
		response:   resp,
		pid:        p,
		index:      o.index[p],
		preceding:  view, // lines 88-90 (Scan already returned a fresh copy)
	}
	o.index[p]++
	o.root.Update(p, e) // line 91
	if o.caching {
		o.remember(p, view, e, next)
	}
	if o.gc != nil {
		o.gc.afterOp(o, p, view, e, gs)
	}
	return resp, nil
}

// floor picks process p's replay floor: its cache anchor when one exists and
// still covers the truncation root, else the truncation root itself (a
// checkpoint replay), else nothing (the full extraction). A cache anchor
// below the root — stale since before a truncation, e.g. after a caching
// toggle — is simply unusable, never an error: the root state subsumes it.
func (o *Object) floor(p int, gs *gcState) (anchor []int, state string, fromCache bool) {
	if o.caching {
		if a := o.cache[p].anchor; a != nil && (gs == nil || atOrAbove(a, gs.cut)) {
			return a, o.cache[p].state, true
		}
	}
	if gs != nil {
		return gs.cut, gs.base, false
	}
	return nil, o.sp.Initial(), false
}

// atOrAbove reports whether anchor a includes the cut pointwise.
func atOrAbove(a, cut []int) bool {
	for q, c := range cut {
		if a[q] < c {
			return false
		}
	}
	return true
}

// remember re-anchors process p's cache at the view it just linearized plus
// its own freshly published node, with the sequential state that includes
// its own operation. In batch mode the checkpoint — the durable re-anchor —
// is deferred to EndBatch; the rolling anchor and raw state still advance so
// every batch entry replays only its own delta.
func (o *Object) remember(p int, view []*node, e *node, state string) {
	pc := &o.cache[p]
	if pc.anchor == nil {
		pc.anchor = make([]int, o.n)
	}
	for q, nd := range view {
		if nd == nil {
			pc.anchor[q] = -1
		} else {
			pc.anchor[q] = nd.index
		}
	}
	pc.anchor[e.pid] = e.index
	if pc.deferred {
		pc.state = state
		pc.dirty = true
		return
	}
	pc.state = spec.Checkpoint(o.sp, state)
	pc.anchors.Add(1)
}

// BeginBatch puts process p's replay cache into deferred-anchor mode: the
// operations that follow keep a rolling anchor but write one durable
// checkpoint for the whole batch, at EndBatch, instead of one per
// operation. Must be paired with EndBatch under the same pid ownership
// rules as Execute.
func (o *Object) BeginBatch(p int) { o.cache[p].deferred = true }

// EndBatch leaves deferred-anchor mode, re-anchoring process p's cache once
// for the whole batch.
func (o *Object) EndBatch(p int) {
	pc := &o.cache[p]
	pc.deferred = false
	if pc.dirty {
		pc.dirty = false
		pc.state = spec.Checkpoint(o.sp, pc.state)
		pc.anchors.Add(1)
	}
}

// HistorySize returns the number of operations currently reachable in the
// shared precedence graph, as observed by process p (for growth
// measurements; one root scan). With GC enabled it reports the live nodes
// past the truncation root — the truncated prefix survives only as the
// root's checkpointed state.
func (o *Object) HistorySize(p int) int {
	view := o.root.Scan(p)
	if o.gc != nil {
		delta, ok := deltaNodes(o.gc.state.Load().cut, view)
		if !ok {
			// Broken truncation invariant: the count is partial; surface it
			// through the stats counter rather than silently under-report.
			o.gc.coverFails.Add(1)
		}
		return len(delta)
	}
	return len(precgraph(view).nodes)
}

// graph is a precedence/linearization graph over operation nodes.
// Successors are kept in deterministic order so every process derives the
// same topological sorts from the same view.
type graph struct {
	nodes []*node           // canonical order: (pid, index)
	succ  map[*node][]*node // u -> nodes that must come after u
	edges map[[2]*node]bool // membership for dedup and reachability
}

func newGraph(nodes []*node) *graph {
	return &graph{
		nodes: nodes,
		succ:  make(map[*node][]*node, len(nodes)),
		edges: make(map[[2]*node]bool),
	}
}

func (g *graph) addEdge(u, v *node) {
	key := [2]*node{u, v}
	if g.edges[key] {
		return
	}
	g.edges[key] = true
	g.succ[u] = append(g.succ[u], v)
}

// reaches reports whether v is reachable from u by a path of length >= 1.
func (g *graph) reaches(u, v *node) bool {
	seen := make(map[*node]bool, len(g.nodes))
	stack := append([]*node(nil), g.succ[u]...)
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur == v {
			return true
		}
		if seen[cur] {
			continue
		}
		seen[cur] = true
		stack = append(stack, g.succ[cur]...)
	}
	return false
}

// topoSort returns the deterministic minimal topological order: among ready
// nodes, the canonical-smallest (pid, index) goes first.
func (g *graph) topoSort() []*node {
	indeg := make(map[*node]int, len(g.nodes))
	for _, u := range g.nodes {
		for _, v := range g.succ[u] {
			indeg[v]++
		}
	}
	// ready is kept sorted; nodes start in canonical order.
	var ready []*node
	for _, u := range g.nodes {
		if indeg[u] == 0 {
			ready = append(ready, u)
		}
	}
	out := make([]*node, 0, len(g.nodes))
	for len(ready) > 0 {
		u := ready[0]
		ready = ready[1:]
		out = append(out, u)
		changed := false
		for _, v := range g.succ[u] {
			indeg[v]--
			if indeg[v] == 0 {
				ready = append(ready, v)
				changed = true
			}
		}
		if changed {
			sort.Slice(ready, func(i, j int) bool { return ready[i].less(ready[j]) })
		}
	}
	return out
}

// anchored reports whether nd is inside the anchored prefix. The anchored
// prefix is per-process index-closed: process q's nodes 0..anchor[q] and
// nothing else are reachable at or below the anchor (each process's nodes
// form a preceding chain, and scans of q's component are monotone).
func anchored(anchor []int, nd *node) bool {
	return anchor != nil && nd.index <= anchor[nd.pid]
}

// covers reports whether a scanned view includes every anchored node: for
// each process q with an anchored operation, the view holds q's node with at
// least the anchored index.
func covers(view []*node, anchor []int) bool {
	for q, idx := range anchor {
		if idx < 0 {
			continue
		}
		if q >= len(view) || view[q] == nil || view[q].index < idx {
			return false
		}
	}
	return true
}

// deltaNodes implements Algorithm 6 restricted past an anchor: extract, in
// canonical order, the nodes reachable from a root view whose operations are
// not already in the anchored prefix (a nil anchor extracts everything —
// the original algorithm). It reports ok=false when some extracted node does
// not cover the anchor; such a node may linearize inside the anchored
// prefix, so the caller must re-extract with a nil anchor. On failure the
// nodes extracted so far are still returned (unsorted) so counting callers
// can report a partial size instead of zero.
func deltaNodes(anchor []int, view []*node) (nodes []*node, ok bool) {
	visited := make(map[*node]bool)
	var queue []*node
	push := func(nd *node) {
		if nd != nil && !visited[nd] && !anchored(anchor, nd) {
			visited[nd] = true
			queue = append(queue, nd)
		}
	}
	for _, nd := range view { // lines 108-114
		push(nd)
	}
	for len(queue) > 0 { // lines 115-124
		nd := queue[0]
		queue = queue[1:]
		nodes = append(nodes, nd)
		if anchor != nil && !covers(nd.preceding, anchor) {
			return nodes, false
		}
		for _, prev := range nd.preceding {
			push(prev)
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].less(nodes[j]) })
	return nodes, true
}

// deltaGraph builds the precedence graph over extracted nodes (lines
// 117-118), keeping only edges between nodes past the anchor. Edges from
// anchored nodes are redundant for ordering the delta: every anchored node
// precedes every delta node (delta nodes cover the anchor), so they are
// emitted first unconditionally.
func deltaGraph(anchor []int, nodes []*node) *graph {
	g := newGraph(nodes)
	for _, nd := range nodes {
		for _, prev := range nd.preceding {
			if prev != nil && !anchored(anchor, prev) {
				g.addEdge(prev, nd)
			}
		}
	}
	return g
}

// precgraph implements Algorithm 6: extract the precedence graph reachable
// from a root view by following preceding pointers.
func precgraph(view []*node) *graph {
	nodes, _ := deltaNodes(nil, view)
	return deltaGraph(nil, nodes)
}

// linearize implements Algorithm 5's lingraph (lines 68-80) followed by the
// final topological sort (line 83).
func (o *Object) linearize(g *graph) []*node {
	ordered := g.topoSort() // line 68

	l := newGraph(g.nodes) // line 69: L <- G
	for _, u := range g.nodes {
		for _, v := range g.succ[u] {
			l.addEdge(u, v)
		}
	}

	for i := 0; i < len(ordered); i++ { // lines 70-79
		for j := i + 1; j < len(ordered); j++ {
			oi, oj := ordered[i], ordered[j]
			if Dominates(o.t, oi.invocation, oi.pid, oj.invocation, oj.pid) {
				// oi dominates oj: edge from dominated oj to dominating oi.
				if !l.edges[[2]*node{oj, oi}] && !l.reaches(oi, oj) {
					l.addEdge(oj, oi)
				}
			} else if Dominates(o.t, oj.invocation, oj.pid, oi.invocation, oi.pid) {
				if !l.edges[[2]*node{oi, oj}] && !l.reaches(oj, oi) {
					l.addEdge(oi, oj)
				}
			}
		}
	}
	return l.topoSort() // line 83
}
