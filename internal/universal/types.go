package universal

import (
	"strconv"

	"slmem/internal/spec"
)

// invName extracts the invocation name, tolerating malformed input (the
// construction validates invocations against the spec when executing).
func invName(desc string) string {
	name, _, err := spec.ParseInvocation(desc)
	if err != nil {
		return desc
	}
	return name
}

func invArg(desc string) string {
	_, args, err := spec.ParseInvocation(desc)
	if err != nil || len(args) != 1 {
		return ""
	}
	return args[0]
}

// CounterType is the counter as a simple type: inc() operations commute,
// read() operations mutually overwrite (and commute), and inc() overwrites
// read().
type CounterType struct{}

var _ Type = CounterType{}

// Name implements Type.
func (CounterType) Name() string { return "counter" }

// Spec implements Type.
func (CounterType) Spec() spec.Spec { return spec.Counter{} }

// Commutes implements Type.
func (CounterType) Commutes(a string, _ int, b string, _ int) bool {
	return invName(a) == invName(b)
}

// Overwrites implements Type: H∘b∘a ≡ H∘a for all H.
func (CounterType) Overwrites(a string, _ int, b string, _ int) bool {
	// inc overwrites read (read leaves no trace); read overwrites read.
	return invName(b) == "read"
}

// SetType is the grow-only set as a simple type: adds commute, contains
// mutually overwrite, add(x) overwrites any contains and add(x) overwrites
// add(x) (idempotence).
type SetType struct{}

var _ Type = SetType{}

// Name implements Type.
func (SetType) Name() string { return "set" }

// Spec implements Type.
func (SetType) Spec() spec.Spec { return spec.Set{} }

// Commutes implements Type.
func (SetType) Commutes(a string, _ int, b string, _ int) bool {
	na, nb := invName(a), invName(b)
	switch {
	case na == "add" && nb == "add":
		return true
	case na == "contains" && nb == "contains":
		return true
	default:
		// add(x) and contains(y) commute iff x != y (a contains whose answer
		// cannot change).
		return invArg(a) != invArg(b)
	}
}

// Overwrites implements Type.
func (SetType) Overwrites(a string, _ int, b string, _ int) bool {
	na, nb := invName(a), invName(b)
	switch {
	case nb == "contains":
		// Anything after a contains erases it: contains has no effect.
		return true
	case na == "add" && nb == "add":
		// add(x) overwrites add(x) by idempotence, but not add(y), y != x.
		return invArg(a) == invArg(b)
	default:
		// contains never overwrites an add.
		return false
	}
}

// AccumulatorType is the commutative accumulator as a simple type: addTo
// operations commute, reads mutually overwrite, addTo overwrites read.
type AccumulatorType struct{}

var _ Type = AccumulatorType{}

// Name implements Type.
func (AccumulatorType) Name() string { return "accumulator" }

// Spec implements Type.
func (AccumulatorType) Spec() spec.Spec { return spec.Accumulator{} }

// Commutes implements Type.
func (AccumulatorType) Commutes(a string, _ int, b string, _ int) bool {
	return invName(a) == invName(b)
}

// Overwrites implements Type.
func (AccumulatorType) Overwrites(a string, _ int, b string, _ int) bool {
	if invName(b) != "read" {
		return false
	}
	return true
}

// MaxRegType is the max-register as a simple type: maxWrites commute, reads
// mutually overwrite, maxWrite overwrites read, and maxWrite(x) overwrites
// maxWrite(y) when x >= y.
type MaxRegType struct{}

var _ Type = MaxRegType{}

// Name implements Type.
func (MaxRegType) Name() string { return "maxreg" }

// Spec implements Type.
func (MaxRegType) Spec() spec.Spec { return spec.MaxRegister{} }

// Commutes implements Type.
func (MaxRegType) Commutes(a string, _ int, b string, _ int) bool {
	return invName(a) == invName(b)
}

// Overwrites implements Type.
func (MaxRegType) Overwrites(a string, _ int, b string, _ int) bool {
	if invName(b) == "maxRead" {
		return true
	}
	if invName(a) != "maxWrite" || invName(b) != "maxWrite" {
		return false
	}
	x, errX := strconv.ParseUint(invArg(a), 10, 64)
	y, errY := strconv.ParseUint(invArg(b), 10, 64)
	if errX != nil || errY != nil {
		return false
	}
	return x >= y
}

// RegisterType is the multi-writer register as a simple type: writes
// mutually overwrite (ties broken by process id), reads mutually overwrite
// (and commute), and writes overwrite reads.
type RegisterType struct{}

var _ Type = RegisterType{}

// Name implements Type.
func (RegisterType) Name() string { return "register" }

// Spec implements Type.
func (RegisterType) Spec() spec.Spec { return spec.Register{} }

// Commutes implements Type.
func (RegisterType) Commutes(a string, _ int, b string, _ int) bool {
	if invName(a) == "read" && invName(b) == "read" {
		return true
	}
	// Writes of the same value commute too.
	if invName(a) == "write" && invName(b) == "write" {
		return invArg(a) == invArg(b)
	}
	return false
}

// Overwrites implements Type.
func (RegisterType) Overwrites(a string, _ int, b string, _ int) bool {
	switch {
	case invName(b) == "read":
		return true
	case invName(a) == "write" && invName(b) == "write":
		return true
	default:
		return false
	}
}

// SnapshotType is the single-writer snapshot itself as a simple type:
// updates by different processes commute, updates by the same process
// overwrite each other, scans mutually overwrite, updates overwrite scans.
type SnapshotType struct {
	// N is the number of processes.
	N int
}

var _ Type = SnapshotType{}

// Name implements Type.
func (SnapshotType) Name() string { return "snapshot" }

// Spec implements Type.
func (t SnapshotType) Spec() spec.Spec { return spec.Snapshot{N: t.N} }

// Commutes implements Type.
func (SnapshotType) Commutes(a string, pa int, b string, pb int) bool {
	na, nb := invName(a), invName(b)
	switch {
	case na == "scan" && nb == "scan":
		return true
	case na == "update" && nb == "update":
		return pa != pb || invArg(a) == invArg(b)
	default:
		return false
	}
}

// Overwrites implements Type.
func (SnapshotType) Overwrites(a string, pa int, b string, pb int) bool {
	na, nb := invName(a), invName(b)
	switch {
	case nb == "scan":
		return true
	case na == "update" && nb == "update":
		return pa == pb
	default:
		return false
	}
}
