package universal

import "slmem/internal/spec"

// FuncType builds a simple type from closures, for types without a
// predefined implementation. The commute/overwrite relations must satisfy
// Definition 33 (check with ValidateSimple); CommutesFn may be nil when
// OverwritesFn already relates every pair of invocations one way or the
// other.
type FuncType struct {
	// TypeName identifies the type.
	TypeName string
	// Sequential is the sequential specification.
	Sequential spec.Spec
	// CommutesFn reports whether two invocations commute (optional).
	CommutesFn func(descA string, pidA int, descB string, pidB int) bool
	// OverwritesFn reports whether invocation A overwrites invocation B.
	OverwritesFn func(descA string, pidA int, descB string, pidB int) bool
}

var _ Type = FuncType{}

// Name implements Type.
func (t FuncType) Name() string { return t.TypeName }

// Spec implements Type.
func (t FuncType) Spec() spec.Spec { return t.Sequential }

// Commutes implements Type.
func (t FuncType) Commutes(descA string, pidA int, descB string, pidB int) bool {
	if t.CommutesFn == nil {
		return false
	}
	return t.CommutesFn(descA, pidA, descB, pidB)
}

// Overwrites implements Type.
func (t FuncType) Overwrites(descA string, pidA int, descB string, pidB int) bool {
	if t.OverwritesFn == nil {
		return false
	}
	return t.OverwritesFn(descA, pidA, descB, pidB)
}

// FuncSpec builds a spec.Spec from closures, pairing with FuncType for
// fully custom simple types.
type FuncSpec struct {
	// SpecName identifies the type.
	SpecName string
	// InitialState is the canonical initial state s0.
	InitialState string
	// ApplyFn is the transition function δ.
	ApplyFn func(state string, pid int, desc string) (next, response string, err error)
}

var _ spec.Spec = FuncSpec{}

// Name implements spec.Spec.
func (s FuncSpec) Name() string { return s.SpecName }

// Initial implements spec.Spec.
func (s FuncSpec) Initial() string { return s.InitialState }

// Apply implements spec.Spec.
func (s FuncSpec) Apply(state string, pid int, desc string) (string, string, error) {
	return s.ApplyFn(state, pid, desc)
}
