package universal

import (
	"math/rand"
	"runtime"
	"strconv"
	"testing"

	"slmem/internal/lincheck"
	"slmem/internal/memory"
	"slmem/internal/sched"
	"slmem/internal/spec"
)

// gcSimSystem builds a simulated system like cachedSimSystem, with
// truncation enabled at the given window.
func gcSimSystem(typ Type, scripts [][]string, window int, obj **Object) sched.System {
	n := len(scripts)
	return sched.System{
		N: n,
		Setup: func(env *sched.Env) []sched.Program {
			o := New(env, typ, n)
			o.SetGC(GCOptions{Window: window})
			if obj != nil {
				*obj = o
			}
			progs := make([]sched.Program, n)
			for pid := range scripts {
				pid := pid
				progs[pid] = func(p *sched.Proc) {
					for _, desc := range scripts[pid] {
						desc := desc
						p.Do(desc, func() string {
							resp, err := o.Execute(pid, desc)
							if err != nil {
								return "ERR:" + err.Error()
							}
							return resp
						})
					}
				}
			}
			return progs
		},
	}
}

// TestGCDifferentialNative replays identical randomized interleavings
// against a truncating and an unbounded object: every response must be
// byte-identical. The window is tiny so the truncating run collects many
// times mid-script, and the unbounded run proves the graph would otherwise
// keep every node.
func TestGCDifferentialNative(t *testing.T) {
	types := map[string]struct {
		typ Type
		ops []string
	}{
		"counter":     {CounterType{}, []string{"inc()", "read()"}},
		"set":         {SetType{}, []string{"add(a)", "add(b)", "add(c)", "contains(a)", "contains(c)"}},
		"accumulator": {AccumulatorType{}, []string{"addTo(3)", "addTo(-1)", "read()"}},
		"register":    {RegisterType{}, []string{"write(x)", "write(y)", "read()"}},
	}
	const n, ops = 3, 150
	for name, tc := range types {
		tc := tc
		t.Run(name, func(t *testing.T) {
			var truncated int64
			for seed := int64(0); seed < 5; seed++ {
				rng := rand.New(rand.NewSource(seed))
				type step struct {
					pid  int
					desc string
				}
				script := make([]step, ops)
				for i := range script {
					script[i] = step{pid: rng.Intn(n), desc: tc.ops[rng.Intn(len(tc.ops))]}
				}

				var alloc1, alloc2 memory.NativeAllocator
				gcObj := New(&alloc1, tc.typ, n)
				gcObj.SetGC(GCOptions{Window: 4})
				unbounded := New(&alloc2, tc.typ, n)
				for i, s := range script {
					got, err := gcObj.Execute(s.pid, s.desc)
					if err != nil {
						t.Fatalf("seed %d gc op %d: %v", seed, i, err)
					}
					want, err := unbounded.Execute(s.pid, s.desc)
					if err != nil {
						t.Fatalf("seed %d unbounded op %d: %v", seed, i, err)
					}
					if got != want {
						t.Fatalf("seed %d: op %d %s by p%d diverges: gc %q, unbounded %q",
							seed, i, s.desc, s.pid, got, want)
					}
				}
				st := gcObj.GCStats(0)
				truncated += st.TruncatedNodes
				if st.LiveNodes+int(st.TruncatedNodes) != ops {
					t.Errorf("seed %d: live %d + truncated %d != %d ops",
						seed, st.LiveNodes, st.TruncatedNodes, ops)
				}
				if got := unbounded.GCStats(0); got.LiveNodes != ops {
					t.Errorf("seed %d: unbounded object lost nodes: %d != %d", seed, got.LiveNodes, ops)
				}
			}
			if truncated == 0 {
				t.Error("no seed triggered a truncation; shrink the window")
			}
		})
	}
}

// TestGCDifferentialSched runs the same adversarial schedule against a
// truncating and an unbounded system. The collector performs no
// shared-memory steps of its own — it reuses the triggering operation's
// scan and keeps watermarks outside the simulated memory — so the same
// seed must yield byte-identical schedules and interpreted histories.
func TestGCDifferentialSched(t *testing.T) {
	scripts := counterScripts(3, 6)
	var truncations int64
	for seed := int64(0); seed < 25; seed++ {
		var gcObj *Object
		resGC := sched.Run(gcSimSystem(CounterType{}, scripts, 1, &gcObj), sched.NewSeeded(seed), sched.Options{})
		resPlain := sched.Run(cachedSimSystem(CounterType{}, scripts, true, nil), sched.NewSeeded(seed), sched.Options{})
		if !resGC.Completed() || !resPlain.Completed() {
			t.Fatalf("seed %d: incomplete run: %v / %v", seed, resGC.Err, resPlain.Err)
		}
		if got, want := len(resGC.Schedule), len(resPlain.Schedule); got != want {
			t.Fatalf("seed %d: schedules diverge: %d vs %d steps (GC must add no shared steps)", seed, got, want)
		}
		for i := range resGC.Schedule {
			if resGC.Schedule[i] != resPlain.Schedule[i] {
				t.Fatalf("seed %d: schedules diverge at step %d", seed, i)
			}
		}
		if got, want := resGC.T.Interpreted().String(), resPlain.T.Interpreted().String(); got != want {
			t.Fatalf("seed %d: truncated and unbounded histories diverge:\n--- gc ---\n%s\n--- unbounded ---\n%s",
				seed, got, want)
		}
		truncations += gcObj.gc.truncations.Load() // no GCStats: its scan would block outside the simulation
	}
	if truncations == 0 {
		t.Error("no adversarial schedule triggered a truncation")
	}
}

// TestGCFallbackUnderAdversary checks the miss path with truncation live:
// under heavily interleaved schedules operations observe non-covering
// stragglers and fall back — now to the truncation root's checkpoint, not
// the (possibly trimmed) full history — and every history must stay
// linearizable.
func TestGCFallbackUnderAdversary(t *testing.T) {
	scripts := counterScripts(4, 5)
	var totalMisses, truncations int64
	for seed := int64(0); seed < 40; seed++ {
		var obj *Object
		res := sched.Run(gcSimSystem(CounterType{}, scripts, 1, &obj), sched.NewSeeded(seed), sched.Options{})
		if !res.Completed() {
			t.Fatalf("seed %d: incomplete: %v", seed, res.Err)
		}
		chk, err := lincheck.CheckTranscript(res.T, spec.Counter{})
		if err != nil {
			t.Fatal(err)
		}
		if !chk.Ok {
			t.Fatalf("seed %d: truncated history not linearizable:\n%s", seed, res.T.Interpreted())
		}
		totalMisses += obj.CacheStats().Misses
		truncations += obj.gc.truncations.Load()
	}
	if totalMisses == 0 {
		t.Error("no schedule exercised the fallback (miss) path; widen the adversary")
	}
	if truncations == 0 {
		t.Error("no schedule triggered a truncation")
	}
}

// TestGCStrongPrefixTrees runs the strong-linearizability prefix-tree check
// over truncated histories: branch several adversarial continuations off
// shared prefixes of a GC-enabled system and verify a prefix-preserving
// linearization order exists. This is the Attiya–Castañeda–Enea point that
// reclamation must be validated against prefix-preserving checks, not plain
// linearizability.
func TestGCStrongPrefixTrees(t *testing.T) {
	sys := gcSimSystem(CounterType{}, counterScripts(2, 4), 1, nil)
	for seed := int64(0); seed < 6; seed++ {
		probe := sched.Run(sys, sched.NewSeeded(seed), sched.Options{})
		if !probe.Completed() {
			t.Fatalf("seed %d: probe incomplete: %v", seed, probe.Err)
		}
		prefix := probe.Schedule
		if len(prefix) > 16 {
			prefix = prefix[:16]
		}
		conts := make([][]int, 0, 3)
		for f := 0; f < 3; f++ {
			adv := sched.NewChain(sched.NewScript(prefix...), sched.NewSeeded(seed*131+int64(f)))
			res := sched.Run(sys, adv, sched.Options{})
			if res.Err != nil {
				t.Fatal(res.Err)
			}
			conts = append(conts, res.Schedule[len(prefix):])
		}
		tree, err := sched.PrefixTree(sys, prefix, conts, sched.Options{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := lincheck.CheckStrong(lincheck.FromSchedTree(tree), spec.Counter{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Ok {
			t.Fatalf("seed %d: strong prefix-tree check failed at %s", seed, res.FailNode)
		}
	}
}

// TestGCTruncationRules pins the truncation rules at the unit level,
// mirroring TestDeltaNodesCovering: the covering fixpoint must refuse a cut
// some published node does not cover, and accept (and correctly replay) one
// that every node covers.
func TestGCTruncationRules(t *testing.T) {
	build := func() (*Object, []*node) {
		var alloc memory.NativeAllocator
		o := New(&alloc, CounterType{}, 2)
		o.SetGC(GCOptions{Window: 1 << 30}) // collect only when driven by hand
		// p1 executes first with an empty view: its node covers nothing.
		if _, err := o.Execute(1, "inc()"); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 6; i++ {
			if _, err := o.Execute(0, "inc()"); err != nil {
				t.Fatal(err)
			}
		}
		return o, o.root.Scan(0)
	}

	t.Run("refuses-uncovered-cut", func(t *testing.T) {
		o, view := build()
		g := o.gc
		// Fabricate watermarks claiming p0's prefix is anchored while p1's
		// node — whose view covers neither — stays outside the cut. The
		// fixpoint must walk the cut back to nothing.
		g.marks[0].rec.Store(&watermarkRec{anchor: []int{5, -1}, version: 0})
		g.marks[1].rec.Store(&watermarkRec{anchor: []int{5, -1}, version: 0})
		g.mu.Lock()
		o.collect(view)
		g.mu.Unlock()
		if st := o.GCStats(0); st.Truncations != 0 || st.RootVersion != 0 || st.LiveNodes != 7 {
			t.Fatalf("unsafe cut was accepted: %+v", st)
		}
	})

	t.Run("accepts-covered-cut", func(t *testing.T) {
		o, view := build()
		g := o.gc
		// With p1's node inside the cut the remaining nodes all cover it.
		g.marks[0].rec.Store(&watermarkRec{anchor: []int{5, 0}, version: 0})
		g.marks[1].rec.Store(&watermarkRec{anchor: []int{5, 0}, version: 0})
		g.mu.Lock()
		o.collect(view)
		g.mu.Unlock()
		st := o.GCStats(0)
		if st.Truncations != 1 || st.RootVersion != 1 || st.TruncatedNodes != 7 {
			t.Fatalf("covered cut not applied: %+v", st)
		}
		if st.LiveNodes != 0 {
			t.Fatalf("live nodes after full truncation = %d, want 0", st.LiveNodes)
		}
		// The checkpointed root must carry all seven increments.
		if got, err := o.Execute(0, "read()"); err != nil || got != "7" {
			t.Fatalf("read() after truncation = %q, %v; want \"7\"", got, err)
		}
	})
}

// TestGCScanWatermarkGap is the regression test for the scan-to-watermark
// race: an operation that scanned a stale view publishes its node after the
// collector's scan but before the collector reads the watermarks, and its
// process raises its watermark past it with a further operation. The
// covering fixpoint never examines the node (it is unreachable from the
// collector's scan) and it is not a future node either (it published
// before the reads) — without the freshness gate the collector commits a
// cut the node does not cover, and every later extraction against the root
// fails, wedging the object permanently.
func TestGCScanWatermarkGap(t *testing.T) {
	var alloc memory.NativeAllocator
	o := New(&alloc, CounterType{}, 2)
	o.SetGC(GCOptions{Window: 1 << 30}) // collect only when driven by hand
	for i := 0; i < 4; i++ {
		if _, err := o.Execute(0, "inc()"); err != nil {
			t.Fatal(err)
		}
	}
	// The collector's scan: p1 has published nothing yet.
	view := o.root.Scan(0)

	// p1's slow first operation: it scanned at time zero (empty view),
	// stalled, and publishes only now — after the collector's scan.
	slow := &node{invocation: "inc()", response: "1", pid: 1, index: 0, preceding: make([]*node, 2)}
	o.root.Update(1, slow)
	o.index[1] = 1
	// p1 then completes a second operation with a fresh scan, raising its
	// watermark past the slow node before the collector reads it.
	if _, err := o.Execute(1, "inc()"); err != nil {
		t.Fatal(err)
	}
	// p0's watermark predates p1 entirely, so the candidate cut leaves the
	// slow node outside the prefix while truncating p0's operations — which
	// the slow node's empty view does not cover.
	g := o.gc
	g.marks[0].rec.Store(&watermarkRec{anchor: []int{3, -1}, version: 0})

	g.mu.Lock()
	o.collect(view)
	g.mu.Unlock()

	if st := o.GCStats(0); st.Truncations != 0 {
		t.Fatalf("collector committed a cut across the scan-to-watermark gap: %+v", st)
	}
	// The object must not be wedged: extraction still succeeds and the
	// count reflects all six increments (slow one included).
	if got, err := o.Execute(0, "read()"); err != nil || got != "6" {
		t.Fatalf("read() after refused pass = %q, %v; want \"6\"", got, err)
	}
	// Liveness: a pass whose scan has caught up truncates normally.
	if _, err := o.Execute(1, "inc()"); err != nil {
		t.Fatal(err)
	}
	view = o.root.Scan(0)
	g.mu.Lock()
	o.collect(view)
	g.mu.Unlock()
	st := o.GCStats(0)
	if st.Truncations != 1 || st.CoverageFailures != 0 || st.ReplayFailures != 0 {
		t.Fatalf("fresh pass after the refused one did not truncate cleanly: %+v", st)
	}
	if got, err := o.Execute(0, "read()"); err != nil || got != "7" {
		t.Fatalf("read() after truncation = %q, %v; want \"7\"", got, err)
	}
}

// TestGCReplayFailureSurfaced pins the observability of an abandoned
// truncation: a prefix that fails to replay onto the checkpointed base
// leaves the graph untruncated, but the failure must show up in GCStats
// rather than masquerade as normal non-advancement.
func TestGCReplayFailureSurfaced(t *testing.T) {
	var alloc memory.NativeAllocator
	o := New(&alloc, CounterType{}, 2)
	o.SetGC(GCOptions{Window: 1 << 30})
	for i := 0; i < 3; i++ {
		if _, err := o.Execute(0, "inc()"); err != nil {
			t.Fatal(err)
		}
	}
	// A fabricated node whose invocation the spec rejects: any truncation
	// prefix containing it fails to replay.
	bogus := &node{invocation: "bogus()", pid: 1, index: 0, preceding: o.root.Scan(1)}
	o.root.Update(1, bogus)
	o.index[1] = 1
	view := o.root.Scan(0)
	g := o.gc
	g.marks[0].rec.Store(&watermarkRec{anchor: []int{2, 0}, version: 0})
	g.marks[1].rec.Store(&watermarkRec{anchor: []int{2, 0}, version: 0})
	g.mu.Lock()
	o.collect(view)
	g.mu.Unlock()
	st := o.GCStats(0)
	if st.Truncations != 0 {
		t.Fatalf("unreplayable prefix was truncated: %+v", st)
	}
	if st.ReplayFailures != 1 {
		t.Fatalf("abandoned replay not surfaced: %+v", st)
	}
}

// TestGCCoverageFailureSurfaced pins the observability of a broken
// truncation invariant: if a reachable node does not cover the root,
// Execute errors and both GCStats and HistorySize must count the failure
// instead of silently under-reporting the live set.
func TestGCCoverageFailureSurfaced(t *testing.T) {
	var alloc memory.NativeAllocator
	o := New(&alloc, CounterType{}, 2)
	o.SetGC(GCOptions{Window: 4})
	const ops = 64
	for i := 0; i < ops; i++ {
		if _, err := o.Execute(i%2, "inc()"); err != nil {
			t.Fatal(err)
		}
	}
	if cut := o.gc.state.Load().cut; cut[0] < 0 && cut[1] < 0 {
		t.Fatal("no truncation happened; the violation needs a non-trivial root")
	}
	// Fabricate the violation: a node above the cut whose view covers
	// nothing.
	bad := &node{invocation: "inc()", pid: 1, index: o.index[1], preceding: make([]*node, 2)}
	o.root.Update(1, bad)
	o.index[1]++

	if _, err := o.Execute(0, "read()"); err == nil {
		t.Fatal("Execute succeeded against a node that does not cover the root")
	}
	st := o.GCStats(0)
	if st.CoverageFailures == 0 {
		t.Fatalf("broken truncation invariant not surfaced: %+v", st)
	}
	if o.HistorySize(0) == 0 {
		t.Error("partial extraction reported zero live nodes")
	}
}

// TestGCStaleAnchorFallback is the GC/replay-cache interaction contract: a
// cache anchor stranded below the truncation root (e.g. after a caching
// toggle across truncations) must fall back to the checkpointed root —
// never panic, never resurrect the poisoned cache state.
func TestGCStaleAnchorFallback(t *testing.T) {
	var alloc memory.NativeAllocator
	o := New(&alloc, CounterType{}, 2)
	o.SetGC(GCOptions{Window: 4})
	const ops = 64
	for i := 0; i < ops; i++ {
		if _, err := o.Execute(i%2, "inc()"); err != nil {
			t.Fatal(err)
		}
	}
	cut := o.gc.state.Load().cut
	if cut[0] < 0 && cut[1] < 0 {
		t.Fatal("no truncation happened; stale-anchor case needs a non-trivial root")
	}
	// Strand p0's anchor below the root and poison its cached state: the
	// floor must reject the anchor and replay from the root checkpoint.
	o.cache[0].anchor = []int{-1, -1}
	o.cache[0].state = "POISON"
	got, err := o.Execute(0, "read()")
	if err != nil {
		t.Fatalf("stale-anchor Execute failed: %v", err)
	}
	if got != strconv.Itoa(ops) {
		t.Fatalf("read() with stale anchor = %q, want %d", got, ops)
	}
}

// TestGCStaleAnchorUnderAdversary drives the same stale-anchor fallback
// through adversarial schedules: each process strands its own cache anchor
// mid-script (its cache entry is process-local, so self-poisoning between
// operations is legal), and every resulting history must stay linearizable
// with truncation live.
func TestGCStaleAnchorUnderAdversary(t *testing.T) {
	const n = 3
	scripts := counterScripts(n, 6)
	system := func(obj **Object) sched.System {
		return sched.System{
			N: n,
			Setup: func(env *sched.Env) []sched.Program {
				o := New(env, CounterType{}, n)
				o.SetGC(GCOptions{Window: 1})
				if obj != nil {
					*obj = o
				}
				progs := make([]sched.Program, n)
				for pid := range scripts {
					pid := pid
					progs[pid] = func(p *sched.Proc) {
						for i, desc := range scripts[pid] {
							if i == len(scripts[pid])-1 {
								// Strand this process's own anchor below the
								// cut — meaningful only once a truncation
								// advanced the root; an all-(-1) anchor equals
								// the trivial cut and would be legally used,
								// poisoned state and all.
								if cut := o.gc.state.Load().cut; cut[0] >= 0 || cut[1] >= 0 || cut[2] >= 0 {
									o.cache[pid].anchor = []int{-1, -1, -1}
									o.cache[pid].state = "POISON"
								}
							}
							desc := desc
							p.Do(desc, func() string {
								resp, err := o.Execute(pid, desc)
								if err != nil {
									return "ERR:" + err.Error()
								}
								return resp
							})
						}
					}
				}
				return progs
			},
		}
	}
	var truncations int64
	for seed := int64(0); seed < 20; seed++ {
		var obj *Object
		res := sched.Run(system(&obj), sched.NewSeeded(seed), sched.Options{})
		if !res.Completed() {
			t.Fatalf("seed %d: incomplete: %v", seed, res.Err)
		}
		chk, err := lincheck.CheckTranscript(res.T, spec.Counter{})
		if err != nil {
			t.Fatal(err)
		}
		if !chk.Ok {
			t.Fatalf("seed %d: stale-anchor history not linearizable:\n%s", seed, res.T.Interpreted())
		}
		truncations += obj.gc.truncations.Load()
	}
	if truncations == 0 {
		t.Error("no schedule triggered a truncation under the stale-anchor workload")
	}
}

// TestGCChurnSoak is the acceptance soak: over >= 100k operations the
// truncating object's live-node count stays flat — within 2x of the
// collection period (window x processes) — while the unbounded object grows
// linearly with every operation.
func TestGCChurnSoak(t *testing.T) {
	const n, window = 4, 256
	ops := 100_000
	if testing.Short() {
		ops = 20_000
	}

	var alloc1, alloc2 memory.NativeAllocator
	bounded := New(&alloc1, CounterType{}, n)
	bounded.SetGC(GCOptions{Window: window})
	unbounded := New(&alloc2, CounterType{}, n)

	bound := 2 * n * window
	maxLive := 0
	for i := 0; i < ops; i++ {
		if _, err := bounded.Execute(i%n, "inc()"); err != nil {
			t.Fatal(err)
		}
		if i%1000 == 999 {
			if live := bounded.GCStats(i % n).LiveNodes; live > maxLive {
				maxLive = live
			}
		}
	}
	if maxLive == 0 || maxLive > bound {
		t.Errorf("bounded live nodes peaked at %d, want within (0, %d]", maxLive, bound)
	}

	st := bounded.GCStats(0)
	if st.LiveNodes+int(st.TruncatedNodes) != ops {
		t.Errorf("live %d + truncated %d != %d ops", st.LiveNodes, st.TruncatedNodes, ops)
	}
	if st.Truncations < int64(ops/(4*n*window)) {
		t.Errorf("only %d truncations over %d ops (window %d)", st.Truncations, ops, window)
	}
	if st.Truncations-st.PendingTrims <= 0 {
		t.Errorf("no boundary pointers were ever cut: %+v", st)
	}
	// Physical truncation: an unrestricted walk from a fresh scan must stop
	// at the severed boundaries, reaching far fewer nodes than executed.
	// (Quiescent now, so reading trimmed views is safe.)
	if reachable := len(precgraph(bounded.root.Scan(0)).nodes); reachable >= ops/10 {
		t.Errorf("unrestricted walk still reaches %d of %d nodes; boundary views not cut", reachable, ops)
	}

	// The unbounded control grows linearly: every op stays reachable.
	ubOps := ops / 10 // keep the control cheap; linearity is exact, not statistical
	for i := 0; i < ubOps; i++ {
		if _, err := unbounded.Execute(i%n, "inc()"); err != nil {
			t.Fatal(err)
		}
	}
	if got := unbounded.HistorySize(0); got != ubOps {
		t.Errorf("unbounded history = %d after %d ops, want exact linear growth", got, ubOps)
	}
}

// TestGCConcurrentChurn runs truncation under real goroutine concurrency
// (the race detector patrols the deferred boundary cuts) and checks no
// operation is lost or duplicated through any truncation: the final count
// equals the operations executed.
func TestGCConcurrentChurn(t *testing.T) {
	const n = 4
	perProc := 5000
	if testing.Short() {
		perProc = 1000
	}
	var alloc memory.NativeAllocator
	o := New(&alloc, CounterType{}, n)
	o.SetCaching(true) // production config: without it a pinned collector makes ops O(history)
	o.SetGC(GCOptions{Window: 64})

	// Interleave for real: on one CPU the goroutines otherwise run in
	// staggered bursts — the first finishes before the last starts — and a
	// process that has not yet published a watermark pins the collector
	// (the documented idle-process caveat), degrading the whole run to the
	// unbounded path. The barrier plus a per-op yield keeps all n watermarks
	// advancing, which is the scenario this test exists to exercise.
	start := make(chan struct{})
	done := make(chan error, n)
	for p := 0; p < n; p++ {
		go func(pid int) {
			<-start
			for i := 0; i < perProc; i++ {
				if _, err := o.Execute(pid, "inc()"); err != nil {
					done <- err
					return
				}
				if i%512 == 511 {
					_ = o.GCStats(pid) // concurrent stats reads race-patrol the collector
				}
				runtime.Gosched()
			}
			done <- nil
		}(p)
	}
	close(start)
	for p := 0; p < n; p++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	got, err := o.Execute(0, "read()")
	if err != nil {
		t.Fatal(err)
	}
	if want := strconv.Itoa(n * perProc); got != want {
		t.Fatalf("final count %q, want %q: truncation lost or duplicated operations", got, want)
	}
	if st := o.GCStats(0); st.Truncations == 0 {
		t.Error("concurrent churn never truncated")
	}
}

// TestGCBatchAnchoring checks the deferred-anchor batch mode: a 64-entry
// batch re-anchors its process once, not 64 times, while every entry still
// replays incrementally and responses match an unbatched reference.
func TestGCBatchAnchoring(t *testing.T) {
	var alloc1, alloc2 memory.NativeAllocator
	o := New(&alloc1, CounterType{}, 2)
	ref := New(&alloc2, CounterType{}, 2)

	// Warm both with an op from each process.
	for p := 0; p < 2; p++ {
		if _, err := o.Execute(p, "inc()"); err != nil {
			t.Fatal(err)
		}
		if _, err := ref.Execute(p, "inc()"); err != nil {
			t.Fatal(err)
		}
	}
	before := o.CacheStats().Anchors

	o.BeginBatch(0)
	for i := 0; i < 64; i++ {
		got, err := o.Execute(0, "inc()")
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.Execute(0, "inc()")
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("batch entry %d diverges: %q vs %q", i, got, want)
		}
	}
	o.EndBatch(0)

	if got := o.CacheStats().Anchors - before; got != 1 {
		t.Errorf("batch of 64 re-anchored %d times, want 1", got)
	}
	if st := o.CacheStats(); st.Misses != 0 {
		t.Errorf("batch mode caused %d cache misses, want 0 (rolling anchor must advance)", st.Misses)
	}
	// The deferred checkpoint must be durable: the next op hits the cache.
	hitsBefore := o.CacheStats().Hits
	if got, err := o.Execute(0, "read()"); err != nil || got != "66" {
		t.Fatalf("read() after batch = %q, %v; want \"66\"", got, err)
	}
	if o.CacheStats().Hits != hitsBefore+1 {
		t.Error("op after EndBatch missed the cache; deferred checkpoint not written")
	}
}

// FuzzGCWatermarkOrder fuzzes the order processes advance their watermarks:
// each input byte selects the next process and operation, so the byte
// stream drives watermark publication and collection cadence through
// arbitrary interleavings. The truncating object must agree with the
// unbounded reference on every response, and its node accounting must
// balance.
func FuzzGCWatermarkOrder(f *testing.F) {
	f.Add([]byte{0, 1, 2, 0, 1, 2, 0, 1, 2, 3, 4, 5})
	f.Add([]byte("\x00\x00\x00\x01\x02\x03\x04\x05\x06\a\b\t\n\v\f\r"))
	f.Add([]byte{5, 4, 3, 2, 1, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		const n = 3
		ops := []string{"inc()", "read()"}
		var alloc1, alloc2 memory.NativeAllocator
		gcObj := New(&alloc1, CounterType{}, n)
		gcObj.SetGC(GCOptions{Window: 2})
		ref := New(&alloc2, CounterType{}, n)
		total := 0
		for i, b := range data {
			pid := int(b) % n
			desc := ops[(int(b)/n)%len(ops)]
			got, err := gcObj.Execute(pid, desc)
			if err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
			want, err := ref.Execute(pid, desc)
			if err != nil {
				t.Fatalf("ref op %d: %v", i, err)
			}
			if got != want {
				t.Fatalf("op %d (%s by p%d): gc %q, unbounded %q", i, desc, pid, got, want)
			}
			total++
		}
		if st := gcObj.GCStats(0); st.LiveNodes+int(st.TruncatedNodes) != total {
			t.Fatalf("node accounting broken: live %d + truncated %d != %d ops",
				st.LiveNodes, st.TruncatedNodes, total)
		}
	})
}

// TestGCRetune pins the SetGC contract: enabling is sticky, re-calling only
// retunes the window.
func TestGCRetune(t *testing.T) {
	var alloc memory.NativeAllocator
	o := New(&alloc, CounterType{}, 1)
	if o.GCEnabled() {
		t.Fatal("GC enabled before SetGC")
	}
	o.SetGC(GCOptions{})
	if !o.GCEnabled() || o.gc.window != DefaultGCWindow {
		t.Fatalf("default window = %d, want %d", o.gc.window, DefaultGCWindow)
	}
	first := o.gc
	o.SetGC(GCOptions{Window: 8})
	if o.gc != first || o.gc.window != 8 {
		t.Fatal("SetGC retune replaced the collector state")
	}
	for i := 0; i < 64; i++ {
		if _, err := o.Execute(0, "inc()"); err != nil {
			t.Fatal(err)
		}
	}
	if st := o.GCStats(0); st.Truncations == 0 || st.LiveNodes+int(st.TruncatedNodes) != 64 {
		t.Fatalf("single-process truncation broken: %+v", st)
	}
	if got, err := o.Execute(0, "read()"); err != nil || got != "64" {
		t.Fatalf("read() = %q, %v; want \"64\"", got, err)
	}
}
