package registry

import (
	"context"
	"errors"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestBatchExecuteMixedKinds(t *testing.T) {
	r := New(Options{Procs: 4})
	ctx := context.Background()
	before := r.Pool().Stats().Acquires

	ops := []BatchOp{
		{Kind: KindCounter, Name: "c", Op: OpInc},
		{Kind: KindCounter, Name: "c", Op: OpInc},
		{Kind: KindCounter, Name: "c", Op: OpRead},
		{Kind: KindMaxRegister, Name: "m", Op: OpWrite, Value: "41"},
		{Kind: KindMaxRegister, Name: "m", Op: OpWrite, Value: "7"},
		{Kind: KindMaxRegister, Name: "m", Op: OpRead},
		{Kind: KindSnapshot, Name: "s", Op: OpUpdate, Value: "hello"},
		{Kind: KindSnapshot, Name: "s", Op: OpScan},
		{Kind: KindObject, Name: "bag", Op: OpExecute, Type: "set", Invocation: "add(3)"},
		{Kind: KindObject, Name: "bag", Op: OpExecute, Type: "set", Invocation: "contains(3)"},
	}
	out, err := r.BatchExecute(ctx, ops)
	if err != nil {
		t.Fatal(err)
	}
	results := out.Results
	if len(results) != len(ops) {
		t.Fatalf("got %d results for %d ops", len(results), len(ops))
	}
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("op %d failed: %v", i, res.Err)
		}
	}
	if results[2].Value != "2" {
		t.Errorf("counter read = %q, want 2", results[2].Value)
	}
	if results[5].Value != "41" {
		t.Errorf("maxreg read = %q, want 41", results[5].Value)
	}
	if len(results[7].View) != 4 {
		t.Errorf("scan view has %d components, want 4", len(results[7].View))
	}
	seen := false
	for _, v := range results[7].View {
		seen = seen || v == "hello"
	}
	if !seen {
		t.Errorf("update not visible in scan view %v", results[7].View)
	}
	if results[9].Value != "true" {
		t.Errorf("contains(3) = %q, want true", results[9].Value)
	}

	// The whole batch must have cost exactly one lease.
	if got := r.Pool().Stats().Acquires - before; got != 1 {
		t.Errorf("batch used %d lease acquisitions, want 1", got)
	}
	if r.Stats().PIDsInUse != 0 {
		t.Errorf("pids leaked after batch: %d in use", r.Stats().PIDsInUse)
	}
}

func TestBatchExecutePartialFailure(t *testing.T) {
	r := New(Options{Procs: 2})
	ctx := context.Background()

	ops := []BatchOp{
		{Kind: KindCounter, Name: "c", Op: OpInc},
		{Kind: "stack", Name: "s", Op: "push"},                                            // unknown kind
		{Kind: KindCounter, Name: "c", Op: "dec"},                                         // unknown op
		{Kind: KindMaxRegister, Name: "m", Op: OpWrite, Value: "seven"},                   // bad operand
		{Kind: KindCounter, Name: "", Op: OpInc},                                          // empty name
		{Kind: KindObject, Name: "o", Op: OpExecute, Type: "queue", Invocation: "x()"},    // unknown type
		{Kind: KindObject, Name: "o2", Op: OpExecute, Type: "set", Invocation: "frob(1)"}, // bad invocation
		{Kind: KindCounter, Name: "c", Op: OpRead},
	}
	out, err := r.BatchExecute(ctx, ops)
	if err != nil {
		t.Fatal(err)
	}
	results := out.Results
	for _, i := range []int{1, 2, 3, 4, 5, 6} {
		if results[i].Err == nil {
			t.Errorf("op %d should have failed", i)
		}
	}
	if results[0].Err != nil || results[7].Err != nil {
		t.Fatalf("valid ops failed: %v / %v", results[0].Err, results[7].Err)
	}
	if results[7].Value != "1" {
		t.Errorf("read after partial failure = %q, want 1", results[7].Value)
	}

	// Doomed ops must not have registered objects: only the counter exists.
	st := r.Stats()
	for kind, count := range st.Objects {
		want := int64(0)
		if kind == string(KindCounter) {
			want = 1
		}
		if count != want {
			t.Errorf("created %d %s object(s), want %d", count, kind, want)
		}
	}
}

func TestBatchExecuteObjectTypeConflictWithinBatch(t *testing.T) {
	r := New(Options{Procs: 2})
	ops := []BatchOp{
		{Kind: KindObject, Name: "x", Op: OpExecute, Type: "set", Invocation: "add(1)"},
		{Kind: KindObject, Name: "x", Op: OpExecute, Type: "register", Invocation: "read()"},
	}
	out, err := r.BatchExecute(context.Background(), ops)
	if err != nil {
		t.Fatal(err)
	}
	results := out.Results
	if results[0].Err != nil {
		t.Fatalf("first op failed: %v", results[0].Err)
	}
	if results[1].Err == nil || !strings.Contains(results[1].Err.Error(), "already exists") {
		t.Fatalf("type conflict inside one batch not rejected: %v", results[1].Err)
	}
}

func TestBatchExecuteAllInvalidSkipsLease(t *testing.T) {
	r := New(Options{Procs: 2})
	out, err := r.BatchExecute(context.Background(), []BatchOp{
		{Kind: "stack", Name: "s", Op: "push"},
		{Kind: KindCounter, Name: "c", Op: "dec"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Leased {
		t.Error("all-invalid batch reported a lease")
	}
	results := out.Results
	for i, res := range results {
		if res.Err == nil {
			t.Errorf("op %d should have failed", i)
		}
	}
	if got := r.Pool().Stats().Acquires; got != 0 {
		t.Errorf("all-invalid batch acquired %d leases, want 0", got)
	}
}

func TestBatchExecuteEmpty(t *testing.T) {
	r := New(Options{Procs: 2})
	out, err := r.BatchExecute(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 0 {
		t.Fatalf("empty batch returned %d results", len(out.Results))
	}
	if out.Leased {
		t.Error("empty batch reported a lease")
	}
}

func TestBatchExecuteCancelledBeforeLease(t *testing.T) {
	r := New(Options{Procs: 1})
	ctx := context.Background()

	// Hold the only pid so the batch must queue, then cancel it.
	pid, err := r.Pool().Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithCancel(ctx)
	done := make(chan error, 1)
	go func() {
		_, err := r.BatchExecute(cctx, []BatchOp{{Kind: KindCounter, Name: "c", Op: OpInc}})
		done <- err
	}()
	cancel()
	if err := <-done; err == nil {
		t.Fatal("batch with cancelled lease wait returned nil error")
	}
	r.Pool().Release(pid)

	// The counter must not have been incremented.
	v, err := r.Counter("c").Read(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Fatalf("cancelled batch incremented counter to %d", v)
	}
}

// trippingContext reports cancellation after its Err method has been polled
// a fixed number of times, making "the context gets cancelled mid-batch"
// deterministic: BatchExecute polls Err once on entry (before compiling)
// and once before each op.
type trippingContext struct {
	context.Context
	polls  atomic.Int32
	budget int32
}

func (c *trippingContext) Err() error {
	if c.polls.Add(1) > c.budget {
		return context.Canceled
	}
	return nil
}

func TestBatchExecuteCancelledMidBatch(t *testing.T) {
	r := New(Options{Procs: 2})
	// Budget 3: one poll for the entry check, then ops 0 and 1 pass;
	// ops 2 and 3 see the cancellation.
	ctx := &trippingContext{Context: context.Background(), budget: 3}

	ops := []BatchOp{
		{Kind: KindCounter, Name: "c", Op: OpInc},
		{Kind: KindCounter, Name: "c", Op: OpRead},
		{Kind: KindCounter, Name: "c", Op: OpInc},
		{Kind: KindCounter, Name: "c", Op: OpRead},
	}
	out, err := r.BatchExecute(ctx, ops)
	if err != nil {
		t.Fatal(err)
	}
	results := out.Results
	if results[0].Err != nil || results[1].Err != nil {
		t.Fatalf("pre-cancellation ops failed: %v / %v", results[0].Err, results[1].Err)
	}
	if results[1].Value != "1" {
		t.Errorf("read before cancellation = %q, want 1", results[1].Value)
	}
	for _, i := range []int{2, 3} {
		if results[i].Err == nil || !errors.Is(results[i].Err, context.Canceled) {
			t.Errorf("op %d after cancellation: err = %v, want context.Canceled", i, results[i].Err)
		}
	}

	// Earlier results stand; later ops never ran.
	v, err := r.Counter("c").Read(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Fatalf("counter = %d after mid-batch cancellation, want 1", v)
	}
	if r.Stats().PIDsInUse != 0 {
		t.Fatalf("pids leaked after cancelled batch: %d in use", r.Stats().PIDsInUse)
	}
}

func TestBatchExecuteConcurrentBatches(t *testing.T) {
	r := New(Options{Procs: 4})
	ctx := context.Background()
	const (
		goroutines = 8
		batches    = 10
		incsPer    = 16
	)
	ops := make([]BatchOp, incsPer)
	for i := range ops {
		ops[i] = BatchOp{Kind: KindCounter, Name: "shared", Op: OpInc}
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				out, err := r.BatchExecute(ctx, ops)
				if err != nil {
					t.Error(err)
					return
				}
				for _, res := range out.Results {
					if res.Err != nil {
						t.Error(res.Err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()

	v, err := r.Counter("shared").Read(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(goroutines * batches * incsPer); v != want {
		t.Fatalf("counter = %d, want %d (lost increments across concurrent batches)", v, want)
	}
	if r.Stats().PIDsInUse != 0 {
		t.Fatalf("pids leaked: %d in use", r.Stats().PIDsInUse)
	}
}

// --- per-op vs batched dispatch cost -----------------------------------------

func benchOps(size int) []BatchOp {
	ops := make([]BatchOp, size)
	for i := range ops {
		ops[i] = BatchOp{Kind: KindCounter, Name: "bench", Op: OpInc}
	}
	return ops
}

func BenchmarkRegistryPerOp(b *testing.B) {
	// The registry lookup stays inside the loop: the per-request server path
	// resolves the named object on every request, so the per-op baseline
	// must pay it too.
	r := New(Options{Procs: 8})
	ctx := context.Background()
	r.Counter("bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Counter("bench").Inc(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRegistryBatch(b *testing.B) {
	for _, size := range []int{1, 8, 64} {
		b.Run("size-"+strconv.Itoa(size), func(b *testing.B) {
			r := New(Options{Procs: 8})
			ctx := context.Background()
			ops := benchOps(size)
			b.ResetTimer()
			for done := 0; done < b.N; done += size {
				if _, err := r.BatchExecute(ctx, ops); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func TestBatchExecuteDeadContextCreatesNoObjects(t *testing.T) {
	// The registry has no eviction, so a batch from an already-dead client
	// must fail before compilation — lazily creating objects for it would
	// leak them forever.
	r := New(Options{Procs: 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := r.BatchExecute(ctx, []BatchOp{
		{Kind: KindCounter, Name: "ghost", Op: OpInc},
		{Kind: KindSnapshot, Name: "ghost", Op: OpUpdate, Value: "x"},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("dead-context batch error = %v, want context.Canceled", err)
	}
	st := r.Stats()
	for kind, count := range st.Objects {
		if count != 0 {
			t.Errorf("dead-context batch created %d %s object(s)", count, kind)
		}
	}
	if st.Pool.Acquires != 0 {
		t.Errorf("dead-context batch acquired %d leases, want 0", st.Pool.Acquires)
	}
}

func TestBatchExecuteAnchorsOncePerPid(t *testing.T) {
	r := New(Options{Procs: 4})
	ctx := context.Background()

	// Warm the object so creation cost is out of the picture, then settle
	// its anchor counter.
	warm := []BatchOp{{Kind: KindObject, Name: "acc", Op: OpExecute, Type: "accumulator", Invocation: "addTo(1)"}}
	if _, err := r.BatchExecute(ctx, warm); err != nil {
		t.Fatal(err)
	}
	pooled, err := r.Object("acc", "accumulator")
	if err != nil {
		t.Fatal(err)
	}
	obj := pooled.Unpooled()
	if !obj.GCEnabled() {
		t.Fatal("registry-created universal object should have GC enabled by its driver options")
	}
	before := obj.CacheStats().Anchors

	// One batch of 64 executes runs as one leased pid; the Batcher bracket
	// must fold its 64 would-be re-anchors into one durable checkpoint.
	ops := make([]BatchOp, 64)
	for i := range ops {
		ops[i] = BatchOp{Kind: KindObject, Name: "acc", Op: OpExecute, Type: "accumulator", Invocation: "addTo(1)"}
	}
	out, err := r.BatchExecute(ctx, ops)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range out.Results {
		if res.Err != nil {
			t.Fatalf("op %d failed: %v", i, res.Err)
		}
	}
	if out.Leases != 1 {
		t.Fatalf("batch took %d leases, want 1", out.Leases)
	}
	if got := obj.CacheStats().Anchors - before; got > 1 {
		t.Errorf("batch of 64 executes re-anchored %d times, want at most 1 per leased pid", got)
	}

	// The deferred anchor must still be durable: the next single op reads
	// the batched state correctly.
	read := []BatchOp{{Kind: KindObject, Name: "acc", Op: OpExecute, Type: "accumulator", Invocation: "read()"}}
	out, err = r.BatchExecute(ctx, read)
	if err != nil {
		t.Fatal(err)
	}
	if res := out.Results[0]; res.Err != nil || res.Value != "65" {
		t.Fatalf("read after batch = (%q, %v), want 65", res.Value, res.Err)
	}
}
