package registry

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"slmem/internal/kind"
)

// gaugeDriver is a test driver whose instances count op executions; it
// requests a dedicated per-kind pool so the multi-pool batch path is
// exercised without importing any real kind.
type gaugeDriver struct{}

func (gaugeDriver) Kind() string { return "testgauge" }
func (gaugeDriver) Doc() string  { return "test gauge" }
func (gaugeDriver) Ops() []kind.OpInfo {
	return []kind.OpInfo{{Name: "bump", Doc: "bump the gauge"}}
}
func (gaugeDriver) Options() kind.Options { return kind.Options{DedicatedPool: true} }
func (gaugeDriver) Validate(req kind.Request) error {
	if req.Op != "bump" {
		return kind.NotFound("testgauge has no operation %q (want bump)", req.Op)
	}
	return nil
}
func (gaugeDriver) New(env kind.Env) (kind.Instance, error) {
	return &gaugeInstance{}, nil
}

type gaugeInstance struct{ bumps atomic.Int64 }

func (g *gaugeInstance) Compile(req kind.Request) (kind.Compiled, error) {
	if req.Op != "bump" {
		return nil, kind.NotFound("testgauge has no operation %q (want bump)", req.Op)
	}
	return gaugeBump{g}, nil
}

type gaugeBump struct{ g *gaugeInstance }

func (b gaugeBump) Run(pid int) (kind.Result, error) {
	b.g.bumps.Add(1)
	return kind.Result{Value: "bumped"}, nil
}

var registerGauge sync.Once

func gaugeKind(t *testing.T) Kind {
	t.Helper()
	registerGauge.Do(func() { kind.Register(gaugeDriver{}) })
	return "testgauge"
}

func TestGetDedicatedPool(t *testing.T) {
	k := gaugeKind(t)
	r := New(Options{Procs: 3})
	_, pool, err := r.Get(k, "g1", kind.Request{Op: "bump"})
	if err != nil {
		t.Fatal(err)
	}
	if pool == r.Pool() {
		t.Fatal("dedicated-pool driver got the shared pool")
	}
	if pool.Size() != 3 {
		t.Fatalf("dedicated pool size = %d, want Procs=3", pool.Size())
	}
	// A second instance of the same kind shares the kind pool.
	_, pool2, err := r.Get(k, "g2", kind.Request{Op: "bump"})
	if err != nil {
		t.Fatal(err)
	}
	if pool2 != pool {
		t.Fatal("two instances of one dedicated-pool kind got different pools")
	}
	// A shared-pool kind still gets the shared pool.
	_, cpool, err := r.Get(KindCounter, "c", kind.Request{Op: "inc"})
	if err != nil {
		t.Fatal(err)
	}
	if cpool != r.Pool() {
		t.Fatal("builtin kind not on the shared pool")
	}
	st := r.Stats()
	kp, ok := st.KindPools["testgauge"]
	if !ok {
		t.Fatalf("stats missing dedicated pool: %+v", st.KindPools)
	}
	if kp.Procs != 3 || kp.PIDsInUse != 0 {
		t.Fatalf("kind pool stats = %+v", kp)
	}
}

func TestBatchMixedPoolsOneLeaseEach(t *testing.T) {
	k := gaugeKind(t)
	r := New(Options{Procs: 2})
	ctx := context.Background()

	ops := []BatchOp{
		{Kind: KindCounter, Name: "c", Op: OpInc},
		{Kind: k, Name: "g", Op: "bump"},
		{Kind: KindCounter, Name: "c", Op: OpRead},
		{Kind: k, Name: "g", Op: "bump"},
	}
	out, err := r.BatchExecute(ctx, ops)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range out.Results {
		if res.Err != nil {
			t.Fatalf("op %d failed: %v", i, res.Err)
		}
	}
	if out.Results[1].Value != "bumped" || out.Results[2].Value != "1" {
		t.Fatalf("results = %+v", out.Results)
	}
	if out.Leases != 2 || !out.Leased {
		t.Fatalf("leases = %d (leased=%v), want 2 (one per pool)", out.Leases, out.Leased)
	}
	if got := r.Pool().Stats().Acquires; got != 1 {
		t.Errorf("shared pool acquires = %d, want 1", got)
	}
	st := r.Stats()
	if kp := st.KindPools["testgauge"]; kp.Pool.Acquires != 1 {
		t.Errorf("kind pool acquires = %d, want 1", kp.Pool.Acquires)
	}
	if st.PIDsInUse != 0 {
		t.Errorf("shared pids leaked: %d", st.PIDsInUse)
	}
	if kp := st.KindPools["testgauge"]; kp.PIDsInUse != 0 {
		t.Errorf("kind pids leaked: %d", kp.PIDsInUse)
	}
}

func TestBatchIntrospectionEntries(t *testing.T) {
	r := New(Options{Procs: 2})
	ctx := context.Background()
	before := r.Pool().Stats().Acquires

	// Introspection-only batches lease nothing.
	out, err := r.BatchExecute(ctx, []BatchOp{
		{Kind: KindCounter, Op: OpNames},
		{Op: OpStats},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Leased || out.Leases != 0 {
		t.Errorf("introspection-only batch leased: %+v", out)
	}
	if len(out.Results[0].View) != 0 {
		t.Errorf("names of empty registry = %v", out.Results[0].View)
	}
	var st Stats
	if err := json.Unmarshal([]byte(out.Results[1].Value), &st); err != nil {
		t.Fatalf("stats entry is not JSON: %v\n%s", err, out.Results[1].Value)
	}
	if st.Procs != 2 {
		t.Errorf("stats procs = %d, want 2", st.Procs)
	}
	if got := r.Pool().Stats().Acquires - before; got != 0 {
		t.Errorf("introspection batch acquired %d leases", got)
	}

	// Mixed: introspection sees the effects of earlier ops in the batch.
	out, err = r.BatchExecute(ctx, []BatchOp{
		{Kind: KindCounter, Name: "c1", Op: OpInc},
		{Kind: KindCounter, Name: "c2", Op: OpInc},
		{Kind: KindCounter, Op: OpNames},
		{Op: OpStats},
		{Kind: "nope", Op: OpNames}, // unknown kind is a per-entry error
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Results[2].View; len(got) != 2 || got[0] != "c1" || got[1] != "c2" {
		t.Errorf("names mid-batch = %v, want [c1 c2]", got)
	}
	if err := json.Unmarshal([]byte(out.Results[3].Value), &st); err != nil {
		t.Fatal(err)
	}
	if st.Objects["counter"] != 2 {
		t.Errorf("stats mid-batch counted %d counters, want 2", st.Objects["counter"])
	}
	if out.Results[4].Err == nil || !strings.Contains(out.Results[4].Err.Error(), "unknown object kind") {
		t.Errorf("names of unknown kind: err = %v", out.Results[4].Err)
	}
	if out.Leases != 1 {
		t.Errorf("mixed batch leases = %d, want 1", out.Leases)
	}
}

// TestGetConcurrentFirstUse races first-use creation through the generic
// driver path (run under -race): all goroutines must agree on one instance
// and the created counter must see exactly one creation.
func TestGetConcurrentFirstUse(t *testing.T) {
	k := gaugeKind(t)
	r := New(Options{Procs: 2, Shards: 2})
	const goroutines = 32
	insts := make(chan kind.Instance, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			inst, _, err := r.Get(k, "hot", kind.Request{Op: "bump"})
			if err != nil {
				t.Error(err)
				return
			}
			insts <- inst
		}()
	}
	wg.Wait()
	close(insts)
	first := <-insts
	for inst := range insts {
		if inst != first {
			t.Fatal("concurrent first use created distinct instances")
		}
	}
	if n := r.Stats().Objects["testgauge"]; n != 1 {
		t.Fatalf("created %d instances, want 1", n)
	}
}
