package registry

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"slmem"
	"slmem/internal/kind"
)

// Op names an operation in a batch, matching the final path segment of the
// server's single-operation endpoints. The op space is open — any op a
// registered driver declares is valid for its kind — plus the reserved
// registry-level introspection ops OpNames and OpStats.
type Op string

// Ops of the built-in kinds, as constants for compile-time checked callers:
// counters accept inc/read, max-registers write/read, snapshots update/scan,
// and universal objects execute. Other kinds (e.g. the bag) define their op
// names in their drivers.
const (
	OpInc     Op = "inc"
	OpRead    Op = "read"
	OpWrite   Op = "write"
	OpUpdate  Op = "update"
	OpScan    Op = "scan"
	OpExecute Op = "execute"
)

// Reserved registry-level introspection ops, valid in batches for any
// registered kind (kind.ReservedOps keeps drivers from claiming them).
const (
	// OpNames lists the registered names of the entry's kind in View.
	OpNames Op = "names"
	// OpStats reports registry stats as a JSON document in Value.
	OpStats Op = "stats"
)

// BatchOp is one typed operation in a batch: an operation Op against the
// named object of the given kind. Value is the operand where the operation
// takes one (a decimal for maxreg write, the component text for snapshot
// update, the item for bag insert); Type and Invocation are used only by
// object execute.
type BatchOp struct {
	Kind       Kind   `json:"kind"`
	Name       string `json:"name"`
	Op         Op     `json:"op"`
	Value      string `json:"value,omitempty"`
	Type       string `json:"type,omitempty"`
	Invocation string `json:"invocation,omitempty"`
}

// BatchResult is the outcome of one BatchOp. Exactly one of the payload
// fields is populated on success, mirroring the single-operation responses:
// Value for reads and execute, View for scans, neither for writes. Err is
// non-nil when the op was rejected during validation, failed during
// execution, or was skipped because the batch's context was cancelled before
// it ran.
type BatchResult struct {
	Value string
	View  []string
	Err   error
}

// stepKind classifies a compiled batch entry.
type stepKind uint8

const (
	stepInvalid stepKind = iota
	stepRun              // a driver op: run compiled as the pool's leased pid
	stepNames            // registry introspection: names of a kind
	stepStats            // registry introspection: stats document
)

// step is a validated BatchOp with its target resolved and operand parsed,
// so the leased execution loop is a tight dispatch with no map lookups or
// parsing.
type step struct {
	kind stepKind
	run  kind.Compiled
	pool *slmem.PIDPool // pool run leases from (stepRun only)
	k    Kind           // kind operand (stepNames only)
}

// memoKey identifies a resolved object within one batch without allocating
// a concatenated string key per op.
type memoKey struct {
	kind Kind
	name string
}

// resolvedEntry memoizes one registry resolution within a batch.
type resolvedEntry struct {
	inst kind.Instance
	pool *slmem.PIDPool
}

// BatchOutcome is what BatchExecute returns: one result per op,
// positionally, plus the aggregate facts the ops cannot express.
type BatchOutcome struct {
	// Results holds one BatchResult per submitted op, in submission order.
	Results []BatchResult
	// Leases is how many pid leases the batch acquired: one per distinct
	// pool its valid driver ops touch — 1 for a batch confined to
	// shared-pool kinds, +1 per dedicated-pool kind mixed in, 0 when every
	// op failed validation or was introspection-only.
	Leases int
	// Leased reports whether the batch acquired any pid lease (Leases > 0).
	Leased bool
}

// BatchExecute runs the ops in order, amortizing pid-lease acquisition (and,
// for HTTP callers, the request round trip) over the whole slice: it leases
// one pid per distinct pool the batch's valid ops touch, for the duration of
// the batch. It returns one BatchResult per op, positionally.
//
// Semantics:
//
//   - One lease per pool, one process each: every op runs as the leased pid
//     of its kind's pool, so a batch confined to shared-pool kinds is one
//     process's operation sequence in the paper's model. Each op is
//     individually strongly linearizable; the batch as a whole is NOT
//     atomic — other processes' operations may linearize between ops.
//   - Pools are acquired in a global deterministic order (the shared pool
//     first, then dedicated kind pools by kind name), so concurrent batches
//     over mixed kinds cannot deadlock.
//   - Partial failure: an op that fails validation (unknown kind or op, bad
//     operand, object type conflict) gets an Err in its slot and the
//     remaining ops still run. Doomed ops never register an object.
//   - Introspection: OpNames and OpStats entries read registry state at
//     their position in the batch without leasing; a batch of only
//     introspection ops costs zero leases.
//   - Cancellation: the context is checked between ops; once it is
//     cancelled, every remaining op's slot reports the cancellation error
//     while earlier results stand.
//
// The returned error is non-nil only when the batch as a whole could not
// run: the context was already cancelled on entry, or it was cancelled
// while queueing for a pid lease. In either case no op has executed. A
// batch that is dead on entry creates no objects at all; one cancelled
// while queueing may already have lazily created the objects its valid ops
// named during validation (the client was still connected then).
func (r *Registry) BatchExecute(ctx context.Context, ops []BatchOp) (BatchOutcome, error) {
	// A context that is already dead fails the batch before any work. This
	// must precede compilation, not just leasing: compiling lazily creates
	// the named objects, and the registry has no eviction — a disconnected
	// client's batch must not leave objects behind. (The lease fast path
	// does not poll the context, so without this check a cancelled client
	// could even burn a lease.)
	if err := ctx.Err(); err != nil {
		return BatchOutcome{}, err
	}

	results := make([]BatchResult, len(ops))
	steps := make([]step, len(ops))

	// Phase 1, before leasing: validate every op through its driver codec,
	// resolve its target instance, and compile its operand, so the leased
	// phase below is a tight dispatch loop. Resolution is memoized per
	// batch — repeated ops against one hot object pay the registry lookup
	// once.
	resolved := make(map[memoKey]resolvedEntry)
	valid := 0
	for i := range ops {
		st, err := r.compile(&ops[i], resolved)
		if err != nil {
			results[i].Err = err
			continue
		}
		steps[i] = st
		valid++
	}
	if valid == 0 {
		return BatchOutcome{Results: results}, nil
	}

	// Phase 2: one lease per distinct pool among the valid driver ops, in
	// deterministic order (shared pool first, then kind pools by name) so
	// concurrent mixed-kind batches cannot deadlock. Introspection steps
	// need no pool; a batch without driver ops skips leasing entirely.
	pools := batchPools(steps)
	pids := make(map[*slmem.PIDPool]int, len(pools))
	for acquired, pool := range pools {
		pid, err := pool.Acquire(ctx)
		if err != nil {
			// Cancelled while queueing: release what we hold; no op has run.
			for j := acquired - 1; j >= 0; j-- {
				pools[j].Release(pids[pools[j]])
			}
			return BatchOutcome{}, err
		}
		pids[pool] = pid
	}
	defer func() {
		for j := len(pools) - 1; j >= 0; j-- {
			pools[j].Release(pids[pools[j]])
		}
	}()

	// Instances that can defer per-op bookkeeping get one batch bracket per
	// leased pid (the universal object re-anchors its replay cache once for
	// the whole batch instead of per op). Registered after the release defer
	// so every EndBatch runs while its pid is still held.
	for _, re := range resolved {
		b, ok := re.inst.(kind.Batcher)
		if !ok {
			continue
		}
		pid, leased := pids[re.pool]
		if !leased {
			continue // every op of this instance failed validation
		}
		b.BeginBatch(pid)
		defer b.EndBatch(pid)
	}

	for i := range steps {
		st := &steps[i]
		if st.kind == stepInvalid {
			continue
		}
		if err := ctx.Err(); err != nil {
			results[i].Err = fmt.Errorf("batch cancelled before op %d: %w", i, err)
			continue
		}
		switch st.kind {
		case stepNames:
			results[i].View = r.Names(st.k)
		case stepStats:
			doc, err := json.Marshal(r.Stats())
			results[i] = BatchResult{Value: string(doc), Err: err}
		case stepRun:
			pid := pids[st.pool]
			res, err := st.run.Run(pid)
			results[i] = BatchResult{Value: res.Value, View: res.View, Err: err}
			// Lease-reuse assertion: the pid must survive every step. A step
			// that released it would let another goroutine lease the same id
			// and corrupt per-process state on the next iteration.
			if !st.pool.Holds(pid) {
				panic(fmt.Sprintf("registry: batch op %d released pid %d mid-batch", i, pid))
			}
		}
	}
	return BatchOutcome{Results: results, Leases: len(pools), Leased: len(pools) > 0}, nil
}

// batchPools collects the distinct pools of the batch's valid driver steps
// in global acquisition order: the shared registry pool first, then
// dedicated kind pools sorted by the kind name that owns them. Step pools
// are per-kind, so ordering by first-use kind name under a per-kind
// uniqueness invariant is equivalent to sorting by name.
func batchPools(steps []step) []*slmem.PIDPool {
	var shared *slmem.PIDPool
	type kindPool struct {
		k    Kind
		pool *slmem.PIDPool
	}
	var dedicated []kindPool
	seen := make(map[*slmem.PIDPool]bool)
	for i := range steps {
		st := &steps[i]
		if st.kind != stepRun || seen[st.pool] {
			continue
		}
		seen[st.pool] = true
		if d, ok := kind.Lookup(string(st.k)); ok && d.Options().DedicatedPool {
			dedicated = append(dedicated, kindPool{st.k, st.pool})
		} else {
			shared = st.pool
		}
	}
	sort.Slice(dedicated, func(i, j int) bool { return dedicated[i].k < dedicated[j].k })
	pools := make([]*slmem.PIDPool, 0, 1+len(dedicated))
	if shared != nil {
		pools = append(pools, shared)
	}
	for _, kp := range dedicated {
		pools = append(pools, kp.pool)
	}
	return pools
}

// compile validates op through its kind's driver and returns its executable
// step, resolving (and lazily creating) the target instance through the
// memo map. A non-nil error means the op can never succeed; no object is
// created for it.
func (r *Registry) compile(op *BatchOp, resolved map[memoKey]resolvedEntry) (step, error) {
	// Reserved introspection ops resolve against the registry itself.
	switch op.Op {
	case OpNames:
		if _, ok := kind.Lookup(string(op.Kind)); !ok {
			return step{}, kind.UnknownKind(string(op.Kind))
		}
		return step{kind: stepNames, k: op.Kind}, nil
	case OpStats:
		return step{kind: stepStats}, nil
	}

	d, ok := kind.Lookup(string(op.Kind))
	if !ok {
		return step{}, kind.UnknownKind(string(op.Kind))
	}
	if op.Name == "" {
		return step{}, errors.New("empty object name")
	}
	req := kind.Request{Op: string(op.Op), Value: op.Value, Type: op.Type, Invocation: op.Invocation}
	// Reject unknown ops and malformed operands before the registry lookup;
	// a doomed op must not register an object.
	if err := d.Validate(req); err != nil {
		return step{}, err
	}
	key := memoKey{op.Kind, op.Name}
	re, hit := resolved[key]
	if !hit {
		inst, pool, err := r.Get(op.Kind, op.Name, req)
		if err != nil {
			return step{}, err
		}
		re = resolvedEntry{inst: inst, pool: pool}
		resolved[key] = re
	}
	// Compile carries the per-instance checks (e.g. the universal object's
	// type-conflict detection), which must also fire between two ops of one
	// batch that name the same object differently.
	compiled, err := re.inst.Compile(req)
	if err != nil {
		return step{}, err
	}
	return step{kind: stepRun, run: compiled, pool: re.pool, k: op.Kind}, nil
}
