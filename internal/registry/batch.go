package registry

import (
	"context"
	"fmt"
	"strconv"

	"slmem"
)

// Op names the operations BatchExecute can run, matching the final path
// segment of the server's single-operation endpoints.
type Op string

// Supported batch operations. Which ops are valid depends on the kind:
// counters accept inc/read, max-registers write/read, snapshots update/scan,
// and universal objects execute.
const (
	OpInc     Op = "inc"
	OpRead    Op = "read"
	OpWrite   Op = "write"
	OpUpdate  Op = "update"
	OpScan    Op = "scan"
	OpExecute Op = "execute"
)

// BatchOp is one typed operation in a batch: an operation Op against the
// named object of the given kind. Value is the operand where the operation
// takes one (a decimal for maxreg write, the component text for snapshot
// update); Type and Invocation are used only by object execute.
type BatchOp struct {
	Kind       Kind   `json:"kind"`
	Name       string `json:"name"`
	Op         Op     `json:"op"`
	Value      string `json:"value,omitempty"`
	Type       string `json:"type,omitempty"`
	Invocation string `json:"invocation,omitempty"`
}

// BatchResult is the outcome of one BatchOp. Exactly one of the payload
// fields is populated on success, mirroring the single-operation responses:
// Value for reads and execute, View for scans, neither for writes. Err is
// non-nil when the op was rejected during validation, failed during
// execution, or was skipped because the batch's context was cancelled before
// it ran.
type BatchResult struct {
	Value string
	View  []string
	Err   error
}

// opCode is the dense dispatch code a BatchOp compiles to.
type opCode uint8

const (
	opInvalid opCode = iota
	opCounterInc
	opCounterRead
	opMaxWrite
	opMaxRead
	opSnapUpdate
	opSnapScan
	opObjExecute
)

// compiledOp is a validated BatchOp with its target resolved and operand
// parsed, so the leased execution loop is a plain switch with no map
// lookups, parsing, or closure calls.
type compiledOp struct {
	code    opCode
	counter *slmem.Counter
	maxreg  *slmem.MaxRegister
	snap    *slmem.Snapshot[string]
	object  *slmem.Object
	u64     uint64
	str     string
}

// memoKey identifies a resolved object within one batch without allocating
// a concatenated string key per op.
type memoKey struct {
	kind Kind
	name string
}

// BatchOutcome is what BatchExecute returns: one result per op,
// positionally, plus the aggregate facts the ops cannot express.
type BatchOutcome struct {
	// Results holds one BatchResult per submitted op, in submission order.
	Results []BatchResult
	// Leased reports whether the batch acquired a pid lease: true exactly
	// when at least one op passed validation. A batch of doomed ops never
	// touches the pool.
	Leased bool
}

// BatchExecute runs the ops in order under a single pid lease, amortizing
// the lease acquisition (and, for HTTP callers, the request round trip) over
// the whole slice. It returns one BatchResult per op, positionally.
//
// Semantics:
//
//   - One lease, one process: every op runs as the same leased pid, so the
//     batch is one process's operation sequence in the paper's model. Each op
//     is individually strongly linearizable; the batch as a whole is NOT
//     atomic — other processes' operations may linearize between ops.
//   - Partial failure: an op that fails validation (unknown kind or op, bad
//     operand, object type conflict) gets an Err in its slot and the
//     remaining ops still run. Doomed ops never register an object.
//   - Cancellation: the context is checked between ops; once it is
//     cancelled, every remaining op's slot reports the cancellation error
//     while earlier results stand.
//
// The returned error is non-nil only when the batch as a whole could not
// run: the context was already cancelled on entry, or it was cancelled
// while queueing for the pid lease. In either case no op has executed. A
// batch that is dead on entry creates no objects at all; one cancelled
// while queueing may already have lazily created the objects its valid ops
// named during validation (the client was still connected then).
func (r *Registry) BatchExecute(ctx context.Context, ops []BatchOp) (BatchOutcome, error) {
	// A context that is already dead fails the batch before any work. This
	// must precede compilation, not just leasing: compiling lazily creates
	// the named objects, and the registry has no eviction — a disconnected
	// client's batch must not leave objects behind. (The lease fast path
	// does not poll the context, so without this check a cancelled client
	// could even burn a lease.)
	if err := ctx.Err(); err != nil {
		return BatchOutcome{}, err
	}

	results := make([]BatchResult, len(ops))
	steps := make([]compiledOp, len(ops))

	// Phase 1, before leasing: validate every op, resolve its target object,
	// and parse its operand, so the leased phase below is a tight dispatch
	// loop. Resolution is memoized per batch — repeated ops against one hot
	// object pay the registry lookup once.
	resolved := make(map[memoKey]any)
	valid := 0
	for i := range ops {
		step, err := r.compile(&ops[i], resolved)
		if err != nil {
			results[i].Err = err
			continue
		}
		steps[i] = step
		valid++
	}
	if valid == 0 {
		return BatchOutcome{Results: results}, nil
	}

	// Phase 2: one lease for every valid op.
	err := r.pool.With(ctx, func(pid int) error {
		for i := range steps {
			step := &steps[i]
			if step.code == opInvalid {
				continue
			}
			if err := ctx.Err(); err != nil {
				results[i].Err = fmt.Errorf("batch cancelled before op %d: %w", i, err)
				continue
			}
			switch step.code {
			case opCounterInc:
				step.counter.Inc(pid)
			case opCounterRead:
				results[i].Value = strconv.FormatUint(step.counter.Read(pid), 10)
			case opMaxWrite:
				step.maxreg.MaxWrite(pid, step.u64)
			case opMaxRead:
				results[i].Value = strconv.FormatUint(step.maxreg.MaxRead(pid), 10)
			case opSnapUpdate:
				step.snap.Update(pid, step.str)
			case opSnapScan:
				results[i].View = step.snap.Scan(pid)
			case opObjExecute:
				v, err := step.object.Execute(pid, step.str)
				results[i] = BatchResult{Value: v, Err: err}
			}
			// Lease-reuse assertion: the pid must survive every step. A step
			// that released it would let another goroutine lease the same id
			// and corrupt per-process state on the next iteration.
			if !r.pool.Holds(pid) {
				panic(fmt.Sprintf("registry: batch op %d released pid %d mid-batch", i, pid))
			}
		}
		return nil
	})
	if err != nil {
		return BatchOutcome{}, err
	}
	return BatchOutcome{Results: results, Leased: true}, nil
}

// compile validates op and returns its executable form, resolving (and
// lazily creating) the target object through the memo map. A non-nil error
// means the op can never succeed; no object is created for it.
func (r *Registry) compile(op *BatchOp, resolved map[memoKey]any) (compiledOp, error) {
	if op.Name == "" {
		return compiledOp{}, fmt.Errorf("empty object name")
	}
	key := memoKey{op.Kind, op.Name}

	switch op.Kind {
	case KindCounter:
		var code opCode
		switch op.Op {
		case OpInc:
			code = opCounterInc
		case OpRead:
			code = opCounterRead
		default:
			return compiledOp{}, fmt.Errorf("counter has no operation %q (want inc or read)", op.Op)
		}
		c, ok := resolved[key].(*slmem.Counter)
		if !ok {
			c = r.Counter(op.Name).Unpooled()
			resolved[key] = c
		}
		return compiledOp{code: code, counter: c}, nil

	case KindMaxRegister:
		var code opCode
		var v uint64
		switch op.Op {
		case OpWrite:
			var err error
			if v, err = strconv.ParseUint(op.Value, 10, 64); err != nil {
				return compiledOp{}, fmt.Errorf("maxreg write needs a decimal value: %v", err)
			}
			code = opMaxWrite
		case OpRead:
			code = opMaxRead
		default:
			return compiledOp{}, fmt.Errorf("maxreg has no operation %q (want write or read)", op.Op)
		}
		m, ok := resolved[key].(*slmem.MaxRegister)
		if !ok {
			m = r.MaxRegister(op.Name).Unpooled()
			resolved[key] = m
		}
		return compiledOp{code: code, maxreg: m, u64: v}, nil

	case KindSnapshot:
		var code opCode
		switch op.Op {
		case OpUpdate:
			code = opSnapUpdate
		case OpScan:
			code = opSnapScan
		default:
			return compiledOp{}, fmt.Errorf("snapshot has no operation %q (want update or scan)", op.Op)
		}
		s, ok := resolved[key].(*slmem.Snapshot[string])
		if !ok {
			s = r.Snapshot(op.Name).Unpooled()
			resolved[key] = s
		}
		return compiledOp{code: code, snap: s, str: op.Value}, nil

	case KindObject:
		if op.Op != OpExecute {
			return compiledOp{}, fmt.Errorf("object has no operation %q (want execute)", op.Op)
		}
		// Reject unknown types and malformed invocations before the registry
		// lookup; a doomed op must not register an object.
		if err := ValidateInvocation(op.Type, op.Invocation); err != nil {
			return compiledOp{}, err
		}
		// Objects are deliberately not memoized: Object's own lookup carries
		// the type-conflict check, which must also fire between two ops of
		// one batch that name the same object with different types. Its cost
		// is a shard read-lock map hit — noise next to a universal-
		// construction Execute.
		po, err := r.Object(op.Name, op.Type)
		if err != nil {
			return compiledOp{}, err
		}
		return compiledOp{code: opObjExecute, object: po.Unpooled(), str: op.Invocation}, nil
	}
	return compiledOp{}, fmt.Errorf("unknown object kind %q (want counter, maxreg, snapshot, or object)", op.Kind)
}
