// Package registry provides a named-object registry: a concurrent,
// sharded map from (kind, name) to lazily created strongly linearizable
// objects, all leasing process ids from one shared pool. It is the state
// layer of cmd/slserve — callers name an object ("counter/clicks",
// "snapshot/board") and get back a pooled handle any goroutine can use.
package registry

import (
	"fmt"
	"hash/maphash"
	"sort"
	"sync"
	"sync/atomic"

	"slmem"
)

// Kind names the object kinds the registry can create.
type Kind string

// Supported object kinds.
const (
	KindCounter     Kind = "counter"
	KindMaxRegister Kind = "maxreg"
	KindSnapshot    Kind = "snapshot"
	KindObject      Kind = "object"
)

// Kinds lists the supported kinds in stable order.
func Kinds() []Kind {
	return []Kind{KindCounter, KindMaxRegister, KindSnapshot, KindObject}
}

// objectType maps the type names accepted by Object to their simple types.
// Counter-like and max-register-like workloads also have dedicated kinds
// with cheaper snapshot-derived implementations; the universal construction
// carries the rest.
func objectType(typeName string) (slmem.SimpleType, error) {
	switch typeName {
	case "set":
		return slmem.SetType{}, nil
	case "accumulator":
		return slmem.AccumulatorType{}, nil
	case "register":
		return slmem.RegisterType{}, nil
	case "counter":
		return slmem.CounterType{}, nil
	case "maxreg":
		return slmem.MaxRegType{}, nil
	default:
		return nil, fmt.Errorf("registry: unknown object type %q (want set, accumulator, register, counter, or maxreg)", typeName)
	}
}

// ObjectTypeNames lists the type names accepted by Object.
func ObjectTypeNames() []string {
	return []string{"accumulator", "counter", "maxreg", "register", "set"}
}

// ValidateInvocation checks that invocation is well-formed for the named
// object type by dry-running it against the type's sequential specification
// from its initial state, without creating or touching any object. The
// provided simple types accept or reject an invocation independent of
// state, so this predicts exactly what Execute would say. It lets callers
// reject doomed requests before lazily registering an object for them.
func ValidateInvocation(typeName, invocation string) error {
	t, err := objectType(typeName)
	if err != nil {
		return err
	}
	sp := t.Spec()
	if _, _, err := sp.Apply(sp.Initial(), 0, invocation); err != nil {
		return err
	}
	return nil
}

// Options configure a Registry.
type Options struct {
	// Procs is the size n of the process pool shared by every object. It
	// bounds the number of concurrently executing operations. Defaults to 16.
	Procs int
	// Shards is the number of map shards. Defaults to 16.
	Shards int
}

// Registry is a concurrent map from (kind, name) to pooled strongly
// linearizable objects, created lazily on first use. All objects share one
// PIDPool of Procs ids, so the registry as a whole admits at most Procs
// concurrent operations — the paper's fixed-n model surfaces as a natural
// admission limit.
type Registry struct {
	procs  int
	pool   *slmem.PIDPool
	seed   maphash.Seed
	shards []shard

	created [4]atomic.Int64 // objects created, indexed by kindIndex
}

type shard struct {
	mu sync.RWMutex
	m  map[string]any
}

// New constructs a registry.
func New(opts Options) *Registry {
	if opts.Procs <= 0 {
		opts.Procs = 16
	}
	if opts.Shards <= 0 {
		opts.Shards = 16
	}
	r := &Registry{
		procs:  opts.Procs,
		pool:   slmem.NewPIDPool(opts.Procs),
		seed:   maphash.MakeSeed(),
		shards: make([]shard, opts.Shards),
	}
	for i := range r.shards {
		r.shards[i].m = make(map[string]any)
	}
	return r
}

// Procs returns the size of the shared process pool.
func (r *Registry) Procs() int { return r.procs }

// Pool returns the shared pid pool (for metrics and direct leasing).
func (r *Registry) Pool() *slmem.PIDPool { return r.pool }

// KindIndex maps a kind to a dense index in [0, len(Kinds())), for
// fixed-size per-kind counters here and in callers.
func KindIndex(k Kind) int {
	switch k {
	case KindCounter:
		return 0
	case KindMaxRegister:
		return 1
	case KindSnapshot:
		return 2
	default:
		return 3
	}
}

func (r *Registry) shard(key string) *shard {
	h := maphash.String(r.seed, key)
	return &r.shards[h%uint64(len(r.shards))]
}

// get returns the object stored under key, lazily creating it with mk. The
// fast path is a shard read-lock; creation double-checks under the write
// lock so concurrent first uses agree on one object.
func (r *Registry) get(kind Kind, name string, mk func() any) any {
	key := string(kind) + "/" + name
	s := r.shard(key)
	s.mu.RLock()
	obj, ok := s.m[key]
	s.mu.RUnlock()
	if ok {
		return obj
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if obj, ok := s.m[key]; ok {
		return obj
	}
	obj = mk()
	s.m[key] = obj
	r.created[KindIndex(kind)].Add(1)
	return obj
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *slmem.PooledCounter {
	return r.get(KindCounter, name, func() any {
		return slmem.NewCounter(r.procs).Pooled(r.pool)
	}).(*slmem.PooledCounter)
}

// MaxRegister returns the named max-register, creating it on first use.
func (r *Registry) MaxRegister(name string) *slmem.PooledMaxRegister {
	return r.get(KindMaxRegister, name, func() any {
		return slmem.NewMaxRegister(r.procs).Pooled(r.pool)
	}).(*slmem.PooledMaxRegister)
}

// Snapshot returns the named snapshot of string components, creating it on
// first use. Its components number Procs: one slot per process id.
func (r *Registry) Snapshot(name string) *slmem.Pool[string] {
	return r.get(KindSnapshot, name, func() any {
		return slmem.NewSnapshot[string](r.procs, "").Pooled(r.pool)
	}).(*slmem.Pool[string])
}

// Object returns the named universal-construction object of the given
// simple type, creating it on first use. Subsequent calls must name the
// same type.
func (r *Registry) Object(name, typeName string) (*slmem.PooledObject, error) {
	t, err := objectType(typeName)
	if err != nil {
		return nil, err
	}
	type typed struct {
		typeName string
		obj      *slmem.PooledObject
	}
	got := r.get(KindObject, name, func() any {
		return typed{typeName, slmem.NewObject(t, r.procs).Pooled(r.pool)}
	}).(typed)
	if got.typeName != typeName {
		return nil, fmt.Errorf("registry: object %q already exists with type %q, not %q", name, got.typeName, typeName)
	}
	return got.obj, nil
}

// Names returns the names registered under kind, sorted.
func (r *Registry) Names(kind Kind) []string {
	prefix := string(kind) + "/"
	var names []string
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		for key := range s.m {
			if len(key) > len(prefix) && key[:len(prefix)] == prefix {
				names = append(names, key[len(prefix):])
			}
		}
		s.mu.RUnlock()
	}
	sort.Strings(names)
	return names
}

// Stats is a point-in-time summary of the registry.
type Stats struct {
	// Procs is the shared pool size.
	Procs int `json:"procs"`
	// PIDsInUse is how many process ids are leased right now.
	PIDsInUse int `json:"pids_in_use"`
	// Objects counts created objects by kind.
	Objects map[string]int64 `json:"objects"`
	// Pool reports how lease acquisitions were served.
	Pool slmem.PoolStats `json:"pool"`
}

// Stats returns a snapshot of registry-wide metrics.
func (r *Registry) Stats() Stats {
	objects := make(map[string]int64, 4)
	for _, k := range Kinds() {
		objects[string(k)] = r.created[KindIndex(k)].Load()
	}
	return Stats{
		Procs:     r.procs,
		PIDsInUse: r.pool.InUse(),
		Objects:   objects,
		Pool:      r.pool.Stats(),
	}
}
