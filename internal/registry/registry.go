// Package registry provides a named-object registry: a concurrent,
// sharded map from (kind, name) to lazily created strongly linearizable
// objects, leasing process ids from a shared pool (or a per-kind pool when
// the kind's driver requests one). It is the state layer of cmd/slserve —
// callers name an object ("counter/clicks", "snapshot/board") and get back
// a pooled handle any goroutine can use.
//
// Kinds are open: the registry resolves them through the driver API of
// internal/kind, so a new type (see internal/bag) plugs in by registering a
// driver — no registry edits. The four paper kinds are registered by
// internal/kind/builtin, imported here so every registry serves them.
package registry

import (
	"fmt"
	"hash/maphash"
	"sort"
	"sync"
	"sync/atomic"

	"slmem"
	"slmem/internal/kind"
	"slmem/internal/kind/builtin"
)

// Kind names an object kind. The set of valid kinds is open — any name
// with a registered driver (kind.Register) resolves.
type Kind string

// Kind names of the built-in drivers (internal/kind/builtin), kept as
// constants for compile-time checked callers; Kinds() reports the full
// registered set.
const (
	KindCounter     Kind = "counter"
	KindMaxRegister Kind = "maxreg"
	KindSnapshot    Kind = "snapshot"
	KindObject      Kind = "object"
)

// Kinds lists the registered kinds, sorted.
func Kinds() []Kind {
	names := kind.Names()
	kinds := make([]Kind, len(names))
	for i, n := range names {
		kinds[i] = Kind(n)
	}
	return kinds
}

// ObjectTypeNames lists the type names accepted by the universal-object
// kind.
func ObjectTypeNames() []string { return builtin.ObjectTypeNames() }

// ValidateInvocation checks that invocation is well-formed for the named
// universal-object type, without creating or touching any object. It lets
// callers reject doomed requests before lazily registering an object for
// them.
func ValidateInvocation(typeName, invocation string) error {
	return builtin.ValidateInvocation(typeName, invocation)
}

// Options configure a Registry.
type Options struct {
	// Procs is the size n of the process pool shared by every object. It
	// bounds the number of concurrently executing operations. Defaults to 16.
	Procs int
	// Shards is the number of map shards. Defaults to 16.
	Shards int
}

// Registry is a concurrent map from (kind, name) to driver-created
// instances, created lazily on first use. Objects share one PIDPool of
// Procs ids — so the registry as a whole admits at most Procs concurrent
// operations, the paper's fixed-n model surfacing as a natural admission
// limit — except for kinds whose driver requests a dedicated pool, which
// lease from their own pool of Procs ids instead.
type Registry struct {
	procs  int
	pool   *slmem.PIDPool
	seed   maphash.Seed
	shards []shard

	// created counts instances per kind name (*atomic.Int64 values).
	created sync.Map
	// kindPools holds lazily created dedicated pools per kind name
	// (*slmem.PIDPool values), for drivers whose Options request one.
	kindPools sync.Map
}

type shard struct {
	mu sync.RWMutex
	m  map[string]entry
}

// entry is one registered instance with the pool its operations lease from.
type entry struct {
	inst kind.Instance
	pool *slmem.PIDPool
}

// New constructs a registry.
func New(opts Options) *Registry {
	if opts.Procs <= 0 {
		opts.Procs = 16
	}
	if opts.Shards <= 0 {
		opts.Shards = 16
	}
	r := &Registry{
		procs:  opts.Procs,
		pool:   slmem.NewPIDPool(opts.Procs),
		seed:   maphash.MakeSeed(),
		shards: make([]shard, opts.Shards),
	}
	for i := range r.shards {
		r.shards[i].m = make(map[string]entry)
	}
	return r
}

// Procs returns the size of the shared process pool.
func (r *Registry) Procs() int { return r.procs }

// Pool returns the shared pid pool (for metrics and direct leasing).
func (r *Registry) Pool() *slmem.PIDPool { return r.pool }

func (r *Registry) shard(key string) *shard {
	h := maphash.String(r.seed, key)
	return &r.shards[h%uint64(len(r.shards))]
}

// poolFor returns the pool instances of driver d lease from: the shared
// pool, or the kind's dedicated pool (created lazily) when the driver's
// Options request one.
func (r *Registry) poolFor(d kind.Driver) *slmem.PIDPool {
	if !d.Options().DedicatedPool {
		return r.pool
	}
	name := d.Kind()
	if p, ok := r.kindPools.Load(name); ok {
		return p.(*slmem.PIDPool)
	}
	p, _ := r.kindPools.LoadOrStore(name, slmem.NewPIDPool(r.procs))
	return p.(*slmem.PIDPool)
}

// Get returns the named instance of kind k and the pid pool its operations
// lease from, creating the instance through the registered driver on first
// use (req parameterizes creation, e.g. the universal object's type). The
// fast path is a shard read-lock; creation double-checks under the write
// lock so concurrent first uses agree on one instance. Unknown kinds are
// kind.NotFound errors; driver creation errors are returned without
// registering anything.
func (r *Registry) Get(k Kind, name string, req kind.Request) (kind.Instance, *slmem.PIDPool, error) {
	d, ok := kind.Lookup(string(k))
	if !ok {
		return nil, nil, kind.UnknownKind(string(k))
	}
	key := string(k) + "/" + name
	s := r.shard(key)
	s.mu.RLock()
	e, hit := s.m[key]
	s.mu.RUnlock()
	if hit {
		return e.inst, e.pool, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, hit := s.m[key]; hit {
		return e.inst, e.pool, nil
	}
	pool := r.poolFor(d)
	inst, err := d.New(kind.Env{Name: name, Procs: r.procs, Pool: pool, Req: req})
	if err != nil {
		return nil, nil, err
	}
	s.m[key] = entry{inst: inst, pool: pool}
	r.countCreated(string(k))
	return inst, pool, nil
}

// countCreated bumps the per-kind created counter.
func (r *Registry) countCreated(kindName string) {
	c, ok := r.created.Load(kindName)
	if !ok {
		c, _ = r.created.LoadOrStore(kindName, new(atomic.Int64))
	}
	c.(*atomic.Int64).Add(1)
}

// mustGet is Get for built-in kinds whose creation cannot fail; it backs
// the typed accessors.
func (r *Registry) mustGet(k Kind, name string, req kind.Request) kind.Instance {
	inst, _, err := r.Get(k, name, req)
	if err != nil {
		panic(fmt.Sprintf("registry: builtin kind %q: %v", k, err))
	}
	return inst
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *slmem.PooledCounter {
	return r.mustGet(KindCounter, name, kind.Request{}).(kind.Unwrapper).Unwrap().(*slmem.PooledCounter)
}

// MaxRegister returns the named max-register, creating it on first use.
func (r *Registry) MaxRegister(name string) *slmem.PooledMaxRegister {
	return r.mustGet(KindMaxRegister, name, kind.Request{}).(kind.Unwrapper).Unwrap().(*slmem.PooledMaxRegister)
}

// Snapshot returns the named snapshot of string components, creating it on
// first use. Its components number Procs: one slot per process id.
func (r *Registry) Snapshot(name string) *slmem.Pool[string] {
	return r.mustGet(KindSnapshot, name, kind.Request{}).(kind.Unwrapper).Unwrap().(*slmem.Pool[string])
}

// Object returns the named universal-construction object of the given
// simple type, creating it on first use. Subsequent calls must name the
// same type.
func (r *Registry) Object(name, typeName string) (*slmem.PooledObject, error) {
	// Validate the type before Get: an unknown type must not register an
	// object (and must not panic the builtin accessor path).
	if _, err := builtin.ObjectType(typeName); err != nil {
		return nil, fmt.Errorf("registry: %v", err)
	}
	inst, _, err := r.Get(KindObject, name, kind.Request{Op: "execute", Type: typeName})
	if err != nil {
		return nil, err
	}
	if tn := inst.(kind.TypeNamer).TypeName(); tn != typeName {
		return nil, fmt.Errorf("registry: object %q already exists with type %q, not %q", name, tn, typeName)
	}
	return inst.(kind.Unwrapper).Unwrap().(*slmem.PooledObject), nil
}

// Names returns the names registered under kind, sorted.
func (r *Registry) Names(kind Kind) []string {
	prefix := string(kind) + "/"
	var names []string
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		for key := range s.m {
			if len(key) > len(prefix) && key[:len(prefix)] == prefix {
				names = append(names, key[len(prefix):])
			}
		}
		s.mu.RUnlock()
	}
	sort.Strings(names)
	return names
}

// KindPoolStats describes one dedicated per-kind pid pool.
type KindPoolStats struct {
	// Procs is the pool size.
	Procs int `json:"procs"`
	// PIDsInUse is how many of its ids are leased right now.
	PIDsInUse int `json:"pids_in_use"`
	// Pool reports how its lease acquisitions were served.
	Pool slmem.PoolStats `json:"pool"`
}

// Stats is a point-in-time summary of the registry.
type Stats struct {
	// Procs is the shared pool size.
	Procs int `json:"procs"`
	// PIDsInUse is how many shared-pool process ids are leased right now.
	PIDsInUse int `json:"pids_in_use"`
	// Objects counts created objects by kind, one entry per registered kind.
	Objects map[string]int64 `json:"objects"`
	// Pool reports how shared-pool lease acquisitions were served.
	Pool slmem.PoolStats `json:"pool"`
	// KindPools reports dedicated per-kind pools, keyed by kind, present
	// only for kinds whose driver requested one and that have been used.
	KindPools map[string]KindPoolStats `json:"kind_pools,omitempty"`
}

// Stats returns a snapshot of registry-wide metrics.
func (r *Registry) Stats() Stats {
	names := kind.Names()
	objects := make(map[string]int64, len(names))
	for _, n := range names {
		var count int64
		if c, ok := r.created.Load(n); ok {
			count = c.(*atomic.Int64).Load()
		}
		objects[n] = count
	}
	st := Stats{
		Procs:     r.procs,
		PIDsInUse: r.pool.InUse(),
		Objects:   objects,
		Pool:      r.pool.Stats(),
	}
	r.kindPools.Range(func(key, value any) bool {
		p := value.(*slmem.PIDPool)
		if st.KindPools == nil {
			st.KindPools = make(map[string]KindPoolStats)
		}
		st.KindPools[key.(string)] = KindPoolStats{
			Procs:     p.Size(),
			PIDsInUse: p.InUse(),
			Pool:      p.Stats(),
		}
		return true
	})
	return st
}
