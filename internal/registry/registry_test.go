package registry

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestRegistryLazyCreateAndIdentity(t *testing.T) {
	r := New(Options{Procs: 4})
	a := r.Counter("clicks")
	b := r.Counter("clicks")
	if a != b {
		t.Fatal("same name resolved to two counters")
	}
	if c := r.Counter("other"); c == a {
		t.Fatal("different names resolved to one counter")
	}
	st := r.Stats()
	if st.Objects["counter"] != 2 {
		t.Fatalf("created %d counters, want 2", st.Objects["counter"])
	}
}

func TestRegistryConcurrentFirstUseAgrees(t *testing.T) {
	r := New(Options{Procs: 4, Shards: 2})
	const goroutines = 32
	counters := make(chan any, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			counters <- r.Counter("hot")
		}()
	}
	wg.Wait()
	close(counters)
	first := <-counters
	for c := range counters {
		if c != first {
			t.Fatal("concurrent first use created distinct objects")
		}
	}
	if n := r.Stats().Objects["counter"]; n != 1 {
		t.Fatalf("created %d counters, want 1", n)
	}
}

func TestRegistryKindsShareOnePool(t *testing.T) {
	r := New(Options{Procs: 3})
	ctx := context.Background()

	if err := r.Counter("c").Inc(ctx); err != nil {
		t.Fatal(err)
	}
	if err := r.MaxRegister("m").MaxWrite(ctx, 9); err != nil {
		t.Fatal(err)
	}
	if err := r.Snapshot("s").Update(ctx, "x"); err != nil {
		t.Fatal(err)
	}
	o, err := r.Object("bag", "set")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Execute(ctx, "add(1)"); err != nil {
		t.Fatal(err)
	}

	st := r.Stats()
	if st.PIDsInUse != 0 {
		t.Fatalf("pids in use after quiesce: %d", st.PIDsInUse)
	}
	if st.Pool.Acquires < 4 {
		t.Fatalf("pool acquires = %d, want >= 4 (one per op)", st.Pool.Acquires)
	}
	view, err := r.Snapshot("s").Scan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(view) != 3 {
		t.Fatalf("snapshot has %d components, want Procs=3", len(view))
	}
}

func TestRegistryObjectTypeMismatch(t *testing.T) {
	r := New(Options{Procs: 2})
	if _, err := r.Object("x", "set"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Object("x", "accumulator"); err == nil {
		t.Fatal("type mismatch on existing object not rejected")
	} else if !strings.Contains(err.Error(), "already exists") {
		t.Fatalf("unexpected error: %v", err)
	}
	if _, err := r.Object("y", "no-such-type"); err == nil {
		t.Fatal("unknown type not rejected")
	}
}

func TestRegistryNames(t *testing.T) {
	r := New(Options{Procs: 2, Shards: 4})
	for i := 0; i < 5; i++ {
		r.Counter(fmt.Sprintf("c%d", i))
	}
	r.MaxRegister("m0")
	names := r.Names(KindCounter)
	if len(names) != 5 {
		t.Fatalf("Names(counter) = %v, want 5 entries", names)
	}
	for i, name := range names {
		if want := fmt.Sprintf("c%d", i); name != want {
			t.Fatalf("names not sorted: %v", names)
		}
	}
	if got := r.Names(KindMaxRegister); len(got) != 1 || got[0] != "m0" {
		t.Fatalf("Names(maxreg) = %v", got)
	}
}

func TestRegistryConcurrentMixedTraffic(t *testing.T) {
	r := New(Options{Procs: 4, Shards: 4})
	ctx := context.Background()
	goroutines, ops := 16, 30
	if testing.Short() {
		goroutines, ops = 8, 10
	}

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				name := fmt.Sprintf("k%d", (g+i)%3)
				var err error
				switch (g + i) % 3 {
				case 0:
					err = r.Counter(name).Inc(ctx)
				case 1:
					err = r.Snapshot(name).Update(ctx, name)
				default:
					_, err = r.Counter(name).Read(ctx)
				}
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if st := r.Stats(); st.PIDsInUse != 0 {
		t.Fatalf("pids in use after quiesce: %d", st.PIDsInUse)
	}
}
