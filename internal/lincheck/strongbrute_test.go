package lincheck

import (
	"fmt"
	"math/rand"
	"testing"

	"slmem/internal/spec"
	"slmem/internal/trace"
)

// bruteStrong is an independent reference for CheckStrong: at every node it
// enumerates ALL linearizations of the node's history outright (subsets of
// pending ops × permutations, filtered by real-time order and validity),
// keeps those extending the parent's choice, and requires one choice to
// work for all children. Factorial; tiny trees only.
func bruteStrong(node *Node, sp spec.Spec, prefix []LinOp) (bool, error) {
	lins, err := allLinearizations(node.H, sp)
	if err != nil {
		return false, err
	}
candidates:
	for _, lin := range lins {
		// Must extend the parent's linearization exactly (ids + responses).
		if len(lin) < len(prefix) {
			continue
		}
		for i, e := range prefix {
			if lin[i].OpID != e.OpID || lin[i].Resp != e.Resp {
				continue candidates
			}
		}
		ok := true
		for _, c := range node.Children {
			childOk, err := bruteStrong(c, sp, lin)
			if err != nil {
				return false, err
			}
			if !childOk {
				ok = false
				break
			}
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// allLinearizations enumerates every valid linearization of h: every subset
// of pending ops joined with all complete ops, in every order that respects
// happens-before and the specification.
func allLinearizations(h *trace.History, sp spec.Spec) ([][]LinOp, error) {
	var complete, pending []int
	for i, op := range h.Ops {
		if op.Complete() {
			complete = append(complete, i)
		} else {
			pending = append(pending, i)
		}
	}
	var out [][]LinOp
	for mask := 0; mask < 1<<uint(len(pending)); mask++ {
		chosen := append([]int(nil), complete...)
		for b, idx := range pending {
			if mask&(1<<uint(b)) != 0 {
				chosen = append(chosen, idx)
			}
		}
		perm := append([]int(nil), chosen...)
		var rec func(k int) error
		rec = func(k int) error {
			if k == len(perm) {
				lin, ok, err := sequenceToLin(h, sp, perm)
				if err != nil {
					return err
				}
				if ok {
					out = append(out, lin)
				}
				return nil
			}
			for i := k; i < len(perm); i++ {
				perm[k], perm[i] = perm[i], perm[k]
				if err := rec(k + 1); err != nil {
					return err
				}
				perm[k], perm[i] = perm[i], perm[k]
			}
			return nil
		}
		if err := rec(0); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func sequenceToLin(h *trace.History, sp spec.Spec, perm []int) ([]LinOp, bool, error) {
	pos := make(map[int]int, len(perm))
	for p, idx := range perm {
		pos[idx] = p
	}
	for _, i := range perm {
		for _, j := range perm {
			if i != j && h.HappensBefore(h.Ops[i], h.Ops[j]) && pos[i] > pos[j] {
				return nil, false, nil
			}
		}
	}
	state := sp.Initial()
	lin := make([]LinOp, 0, len(perm))
	for _, idx := range perm {
		op := h.Ops[idx]
		next, resp, err := sp.Apply(state, op.PID, op.Desc)
		if err != nil {
			return nil, false, err
		}
		if op.Complete() && resp != op.Res {
			return nil, false, nil
		}
		lin = append(lin, LinOp{OpID: op.OpID, Desc: op.Desc, PID: op.PID, Resp: resp})
		state = next
	}
	return lin, true, nil
}

// randomTree builds a small random history tree: histories evolve by
// invoking and completing register operations; children extend their parent.
func randomTree(rng *rand.Rand, maxOps, depth int) *Node {
	type pendingOp struct {
		idx int
	}
	var build func(h []trace.Operation, nextID, tick, d int) *Node
	build = func(h []trace.Operation, nextID, tick, d int) *Node {
		node := &Node{
			Label: fmt.Sprintf("n%d.%d", d, tick),
			H:     &trace.History{Ops: append([]trace.Operation(nil), h...)},
		}
		if d == 0 {
			return node
		}
		kids := 1 + rng.Intn(2)
		for c := 0; c < kids; c++ {
			child := append([]trace.Operation(nil), h...)
			id, t := nextID, tick
			// Apply 1..3 random events.
			for e := 0; e < 1+rng.Intn(3); e++ {
				var pend []pendingOp
				for i, op := range child {
					if !op.Complete() {
						pend = append(pend, pendingOp{i})
					}
				}
				if len(pend) > 0 && rng.Intn(2) == 0 {
					// Complete a pending op with a random plausible response.
					p := pend[rng.Intn(len(pend))]
					op := &child[p.idx]
					op.Ret = t
					t++
					if op.Desc == "read()" {
						op.Res = []string{"a", "b", spec.Bot}[rng.Intn(3)]
					} else {
						op.Res = "ok"
					}
				} else if len(child) < maxOps {
					// Invoke a new op on a fresh pid (keeps well-formedness).
					desc := "read()"
					if rng.Intn(2) == 0 {
						desc = spec.FormatInvocation("write", []string{"a", "b"}[rng.Intn(2)])
					}
					child = append(child, trace.Operation{
						OpID: id, PID: id, Desc: desc, Inv: t, Ret: -1,
					})
					id++
					t++
				}
			}
			node.Children = append(node.Children, build(child, id, t, d-1))
		}
		return node
	}
	return build(nil, 1, 0, depth)
}

// TestCheckStrongAgreesWithBruteForce cross-validates the backtracking tree
// checker against the exhaustive reference on random small trees.
func TestCheckStrongAgreesWithBruteForce(t *testing.T) {
	sp := spec.Register{}
	rng := rand.New(rand.NewSource(1908)) // arXiv id prefix of the paper
	agreeSat, agreeUnsat := 0, 0
	for trial := 0; trial < 150; trial++ {
		tree := randomTree(rng, 4, 3)
		want, err := bruteStrong(tree, sp, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := CheckStrong(tree, sp)
		if err != nil {
			t.Fatal(err)
		}
		if got.Ok != want {
			t.Fatalf("trial %d: CheckStrong=%v bruteStrong=%v", trial, got.Ok, want)
		}
		if want {
			agreeSat++
		} else {
			agreeUnsat++
		}
	}
	if agreeSat == 0 || agreeUnsat == 0 {
		t.Errorf("generator imbalance: sat=%d unsat=%d — need both verdicts exercised", agreeSat, agreeUnsat)
	}
}
