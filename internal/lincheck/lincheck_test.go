package lincheck

import (
	"testing"

	"slmem/internal/spec"
	"slmem/internal/trace"
)

// hist builds a history from (desc, res, pid, inv, ret) tuples; ret < 0
// means pending.
func hist(ops ...trace.Operation) *trace.History {
	h := &trace.History{}
	h.Ops = append(h.Ops, ops...)
	return h
}

func op(id, pid int, desc, res string, inv, ret int) trace.Operation {
	return trace.Operation{OpID: id, PID: pid, Desc: desc, Res: res, Inv: inv, Ret: ret}
}

func TestCheckHistorySequentialValid(t *testing.T) {
	h := hist(
		op(1, 0, "write(5)", "ok", 0, 1),
		op(2, 1, "read()", "5", 2, 3),
	)
	res, err := CheckHistory(h, spec.Register{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok {
		t.Fatalf("valid sequential history rejected: %s", res.Reason)
	}
	if len(res.Witness.Seq) != 2 || res.Witness.Seq[0].OpID != 1 {
		t.Errorf("witness = %s", res.Witness)
	}
}

func TestCheckHistorySequentialInvalid(t *testing.T) {
	h := hist(
		op(1, 0, "write(5)", "ok", 0, 1),
		op(2, 1, "read()", "7", 2, 3), // wrong value, no overlap
	)
	res, err := CheckHistory(h, spec.Register{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ok {
		t.Fatal("invalid history accepted")
	}
}

func TestCheckHistoryConcurrentReorder(t *testing.T) {
	// write(5) overlaps read()->bot: read may linearize first.
	h := hist(
		op(1, 0, "write(5)", "ok", 0, 3),
		op(2, 1, "read()", spec.Bot, 1, 2),
	)
	res, err := CheckHistory(h, spec.Register{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok {
		t.Fatal("legal concurrent reorder rejected")
	}
}

func TestCheckHistoryRealTimeOrderEnforced(t *testing.T) {
	// read()->bot strictly AFTER write(5) completed: must fail.
	h := hist(
		op(1, 0, "write(5)", "ok", 0, 1),
		op(2, 1, "read()", spec.Bot, 2, 3),
	)
	res, err := CheckHistory(h, spec.Register{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ok {
		t.Fatal("stale read after completed write accepted")
	}
}

func TestCheckHistoryPendingOpMayLinearize(t *testing.T) {
	// Pending update(5) justifies a scan returning [5 _].
	h := hist(
		op(1, 0, "update(5)", "", 0, -1), // pending
		op(2, 1, "scan()", "[5 "+spec.Bot+"]", 1, 2),
	)
	res, err := CheckHistory(h, spec.Snapshot{N: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok {
		t.Fatal("pending update not allowed to take effect")
	}
}

func TestCheckHistoryPendingOpMayBeDropped(t *testing.T) {
	h := hist(
		op(1, 0, "update(5)", "", 0, -1), // pending
		op(2, 1, "scan()", "["+spec.Bot+" "+spec.Bot+"]", 1, 2),
	)
	res, err := CheckHistory(h, spec.Snapshot{N: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok {
		t.Fatal("dropping a pending update not allowed")
	}
}

func TestCheckHistorySnapshotInconsistentViews(t *testing.T) {
	// Two sequential scans observing updates in contradictory orders.
	h := hist(
		op(1, 0, "update(a)", "ok", 0, 1),
		op(2, 1, "scan()", "[a "+spec.Bot+"]", 2, 3),
		op(3, 1, "update(b)", "ok", 4, 5),
		op(4, 0, "scan()", "["+spec.Bot+" b]", 6, 7), // lost component 0
	)
	res, err := CheckHistory(h, spec.Snapshot{N: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ok {
		t.Fatal("snapshot forgetting a completed update accepted")
	}
}

func TestCheckHistoryCounter(t *testing.T) {
	// Two concurrent incs and a later read of 2: valid.
	h := hist(
		op(1, 0, "inc()", "ok", 0, 2),
		op(2, 1, "inc()", "ok", 1, 3),
		op(3, 0, "read()", "2", 4, 5),
	)
	res, err := CheckHistory(h, spec.Counter{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok {
		t.Fatal("valid counter history rejected")
	}

	// Read of 1 after both incs completed: invalid.
	h2 := hist(
		op(1, 0, "inc()", "ok", 0, 1),
		op(2, 1, "inc()", "ok", 2, 3),
		op(3, 0, "read()", "1", 4, 5),
	)
	res, err = CheckHistory(h2, spec.Counter{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ok {
		t.Fatal("lost increment accepted")
	}
}

func TestCheckHistoryABAFlag(t *testing.T) {
	// DRead, then a DWrite, then DRead must report true.
	h := hist(
		op(1, 0, "DRead()", "("+spec.Bot+",false)", 0, 1),
		op(2, 1, "DWrite(x)", "ok", 2, 3),
		op(3, 0, "DRead()", "(x,true)", 4, 5),
	)
	res, err := CheckHistory(h, spec.ABARegister{N: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok {
		t.Fatal("valid ABA history rejected")
	}

	// Same but the final DRead claims false: invalid.
	h2 := hist(
		op(1, 0, "DRead()", "("+spec.Bot+",false)", 0, 1),
		op(2, 1, "DWrite(x)", "ok", 2, 3),
		op(3, 0, "DRead()", "(x,false)", 4, 5),
	)
	res, err = CheckHistory(h2, spec.ABARegister{N: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ok {
		t.Fatal("missed DWrite accepted")
	}
}

func TestCheckHistoryTooManyOps(t *testing.T) {
	h := &trace.History{}
	for i := 0; i < 63; i++ {
		h.Ops = append(h.Ops, op(i, 0, "read()", spec.Bot, 2*i, 2*i+1))
	}
	if _, err := CheckHistory(h, spec.Register{}); err == nil {
		t.Fatal("expected size error")
	}
}

// --- Strong checker ------------------------------------------------------------

func leaf(label string, ops ...trace.Operation) *Node {
	return &Node{Label: label, H: hist(ops...)}
}

func TestCheckStrongSimpleChainOk(t *testing.T) {
	// Prefix: pending write. Child: write complete, read sees it.
	root := leaf("S", op(1, 0, "write(5)", "", 0, -1))
	child := leaf("T",
		op(1, 0, "write(5)", "ok", 0, 1),
		op(2, 1, "read()", "5", 2, 3),
	)
	root.Children = []*Node{child}
	res, err := CheckStrong(root, spec.Register{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok {
		t.Fatalf("valid chain rejected (fail at %s)", res.FailNode)
	}
}

func TestCheckStrongBranchingUnsat(t *testing.T) {
	// The essence of Observation 4: a pending read overlapping a completed
	// write(b), where one future has the read return "a" (it linearized
	// before write(b)) and the other has it return "b". Both writes are
	// complete in the prefix, so f(S) must already order [write(a),
	// write(b)] and either include the read between them (committing
	// response "a", contradicting T2) or not (forcing the read after
	// write(b) in T1, deriving "b" and contradicting its recorded "a").
	// Hence no prefix-preserving linearization function exists — even though
	// each branch is individually linearizable.
	prefixOps := []trace.Operation{
		op(1, 0, "write(a)", "ok", 0, 1),
		op(2, 1, "read()", "", 2, -1),
		op(3, 0, "write(b)", "ok", 3, 4),
	}
	// T1: read returns "a" (so it linearized before write(b)).
	t1 := leaf("T1",
		prefixOps[0],
		op(2, 1, "read()", "a", 2, 5),
		prefixOps[2],
	)
	// T2: read returns "b" (so it linearized after write(b)).
	t2 := leaf("T2",
		prefixOps[0],
		op(2, 1, "read()", "b", 2, 5),
		prefixOps[2],
	)
	root := leaf("S", prefixOps...)
	root.Children = []*Node{t1, t2}

	// Each branch alone is linearizable...
	for _, n := range []*Node{t1, t2} {
		lres, err := CheckHistory(n.H, spec.Register{})
		if err != nil {
			t.Fatal(err)
		}
		if !lres.Ok {
			t.Fatalf("branch %s should be linearizable on its own", n.Label)
		}
	}
	// ...but the tree admits no prefix-preserving linearization function.
	res, err := CheckStrong(root, spec.Register{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ok {
		t.Fatal("contradictory branching tree accepted")
	}
}

func TestCheckStrongUnsatisfiable(t *testing.T) {
	// Force the prefix to commit: in the prefix, the read has COMPLETED with
	// value "a" but a second pending read by the same process exists whose
	// value differs across branches in a contradictory way.
	//
	// Simpler canonical unsat case: prefix has read completed -> "a" before
	// write(b) even started; children extend with a read -> "b" before
	// write(b) was invoked. Build directly: child histories that are
	// individually linearizable but require contradictory prefix choices.
	//
	// Prefix S: write(a) pending from 0; read1 by p1 complete [1,2] -> "a".
	// (So write(a) must be linearized in the prefix, before read1.)
	s := leaf("S",
		op(1, 0, "write(a)", "", 0, -1),
		op(2, 1, "read()", "a", 1, 2),
	)
	// Child T1: same ops, plus read2 by p1 complete -> bot. read2 can only
	// return bot if write(a) never linearized — contradicting the prefix.
	t1 := leaf("T1",
		op(1, 0, "write(a)", "", 0, -1),
		op(2, 1, "read()", "a", 1, 2),
		op(3, 1, "read()", spec.Bot, 3, 4),
	)
	s.Children = []*Node{t1}

	res, err := CheckStrong(s, spec.Register{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ok {
		t.Fatal("contradictory tree accepted")
	}
	// Sanity: T1 alone is NOT even linearizable, so make the test meaningful
	// by checking the child history directly.
	lres, err := CheckHistory(t1.H, spec.Register{})
	if err != nil {
		t.Fatal(err)
	}
	if lres.Ok {
		t.Log("note: child history linearizable on its own; unsat comes from prefix preservation")
	}
}

func TestCheckStrongPendingResponseConsistency(t *testing.T) {
	// A pending op linearized at the prefix with derived response "ok" later
	// completes with a different recorded response -> must backtrack/fail.
	// Register read linearized while pending derives the current value; if
	// the actual later response differs, the choice is inconsistent.
	s := leaf("S",
		op(1, 0, "write(a)", "ok", 0, 1),
		op(2, 1, "read()", "", 2, -1), // pending; if linearized now, derives "a"
	)
	// Child: read completed with "b" and a write(b) appears AFTER the read's
	// completion; also read2 by p0 observed "a" after read1's interval began.
	child := leaf("T",
		op(1, 0, "write(a)", "ok", 0, 1),
		op(2, 1, "read()", "b", 2, 5),
		op(3, 0, "write(b)", "ok", 3, 4),
	)
	s.Children = []*Node{child}
	res, err := CheckStrong(s, spec.Register{})
	if err != nil {
		t.Fatal(err)
	}
	// Satisfiable: prefix should NOT linearize the pending read; child then
	// linearizes write(a), write(b), read->"b".
	if !res.Ok {
		t.Fatalf("satisfiable tree rejected (fail at %s)", res.FailNode)
	}
	// The witness prefix must not contain op 2.
	for _, e := range res.Witness["S"].Seq {
		if e.OpID == 2 {
			t.Error("prefix linearized the pending read yet children contradict it")
		}
	}
}

func TestChainFromTranscript(t *testing.T) {
	tr := &trace.Transcript{}
	tr.Append(trace.Event{Kind: trace.KindInvoke, PID: 0, OpID: 1, Desc: "write(1)"})
	tr.Append(trace.Event{Kind: trace.KindWrite, PID: 0, OpID: 1, Reg: "X", Val: "1"})
	tr.Append(trace.Event{Kind: trace.KindReturn, PID: 0, OpID: 1, Res: "ok"})
	tr.Append(trace.Event{Kind: trace.KindInvoke, PID: 0, OpID: 2, Desc: "read()"})
	tr.Append(trace.Event{Kind: trace.KindRead, PID: 0, OpID: 2, Reg: "X", Val: "1"})
	tr.Append(trace.Event{Kind: trace.KindReturn, PID: 0, OpID: 2, Res: "1"})

	res, err := CheckChain(tr, spec.Register{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok {
		t.Fatalf("valid sequential transcript chain rejected at %s", res.FailNode)
	}
}

func TestCheckStrongDeepTreeBranching(t *testing.T) {
	// Three-level tree: prefix, two mid nodes, each with a leaf; all
	// consistent.
	s := leaf("S", op(1, 0, "inc()", "", 0, -1))
	m1 := leaf("M1",
		op(1, 0, "inc()", "ok", 0, 1),
	)
	m2 := leaf("M2",
		op(1, 0, "inc()", "", 0, -1),
		op(2, 1, "read()", "0", 1, 2), // read before inc takes effect
	)
	l1 := leaf("L1",
		op(1, 0, "inc()", "ok", 0, 1),
		op(2, 1, "read()", "1", 2, 3),
	)
	m1.Children = []*Node{l1}
	s.Children = []*Node{m1, m2}

	res, err := CheckStrong(s, spec.Counter{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok {
		t.Fatalf("consistent tree rejected at %s", res.FailNode)
	}
}
