// Package lincheck decides linearizability of recorded histories and strong
// linearizability of prefix-closed transcript trees, against deterministic
// sequential specifications (internal/spec).
//
// Linearizability of a single history is decided by a Wing–Gong style
// depth-first search with memoization on (set of linearized operations,
// specification state).
//
// Strong linearizability (Golab, Higham, Woelfel) additionally requires a
// prefix-preserving linearization function over the prefix-closed set of
// transcripts. That is a property of transcript *trees*, not of single
// executions: the paper's Observation 4 refutes strong linearizability of
// Algorithm 1 using two continuations T1, T2 of one prefix S. CheckStrong
// performs AND/OR backtracking over such a tree: at each node it chooses an
// extension of the parent's linearization, and the same choice must work for
// every child.
package lincheck

import (
	"fmt"
	"sort"
	"strings"

	"slmem/internal/sched"
	"slmem/internal/spec"
	"slmem/internal/trace"
)

// LinOp is one entry of a linearization: an operation and the response it
// was linearized with. For operations that were pending when linearized the
// response is the specification-derived one, and must match the actual
// response if the operation later completes.
type LinOp struct {
	OpID int
	Desc string
	PID  int
	Resp string
}

// Linearization is a valid sequential ordering with its final spec state.
type Linearization struct {
	Seq   []LinOp
	State string
}

// String renders the linearization for diagnostics.
func (l Linearization) String() string {
	parts := make([]string, len(l.Seq))
	for i, e := range l.Seq {
		parts[i] = fmt.Sprintf("#%d:%s->%s", e.OpID, e.Desc, e.Resp)
	}
	return strings.Join(parts, " ; ")
}

// --- Single-history linearizability -------------------------------------------

// Result reports the outcome of a linearizability check.
type Result struct {
	Ok bool
	// Witness is a linearization when Ok.
	Witness Linearization
	// Reason explains failures.
	Reason string
}

// CheckHistory decides whether the history is linearizable with respect to
// the specification. Pending operations may be linearized (with their
// specification-derived response) or dropped.
func CheckHistory(h *trace.History, sp spec.Spec) (Result, error) {
	return CheckHistoryFrom(h, sp, sp.Initial())
}

// CheckHistoryFrom is CheckHistory starting from an explicit specification
// state instead of sp.Initial().
func CheckHistoryFrom(h *trace.History, sp spec.Spec, initial string) (Result, error) {
	ops := h.Ops
	n := len(ops)
	if n > 62 {
		return Result{}, fmt.Errorf("lincheck: history has %d operations, max 62", n)
	}

	// Precompute happens-before and the required (complete) set.
	hb := make([][]bool, n)
	var required uint64
	for i := range ops {
		hb[i] = make([]bool, n)
		for j := range ops {
			if i != j {
				hb[i][j] = h.HappensBefore(ops[i], ops[j])
			}
		}
		if ops[i].Complete() {
			required |= 1 << uint(i)
		}
	}

	type memoKey struct {
		mask  uint64
		state string
	}
	failed := make(map[memoKey]bool)

	var seq []LinOp
	var dfs func(mask uint64, state string) (bool, error)
	dfs = func(mask uint64, state string) (bool, error) {
		if mask&required == required {
			return true, nil
		}
		key := memoKey{mask, state}
		if failed[key] {
			return false, nil
		}
		for i := 0; i < n; i++ {
			bit := uint64(1) << uint(i)
			if mask&bit != 0 {
				continue
			}
			// An operation may be linearized next only if no other
			// unlinearized operation happens before it.
			legal := true
			for j := 0; j < n; j++ {
				if j != i && mask&(1<<uint(j)) == 0 && hb[j][i] {
					legal = false
					break
				}
			}
			if !legal {
				continue
			}
			next, resp, err := sp.Apply(state, ops[i].PID, ops[i].Desc)
			if err != nil {
				return false, fmt.Errorf("lincheck: %s: %w", ops[i].Desc, err)
			}
			if ops[i].Complete() && resp != ops[i].Res {
				continue
			}
			seq = append(seq, LinOp{OpID: ops[i].OpID, Desc: ops[i].Desc, PID: ops[i].PID, Resp: resp})
			ok, err := dfs(mask|bit, next)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
			seq = seq[:len(seq)-1]
		}
		failed[key] = true
		return false, nil
	}

	ok, err := dfs(0, initial)
	if err != nil {
		return Result{}, err
	}
	if !ok {
		return Result{Reason: "no valid linearization of the history exists"}, nil
	}
	witness := Linearization{Seq: append([]LinOp(nil), seq...)}
	state := initial
	for _, e := range witness.Seq {
		state, _, _ = sp.Apply(state, e.PID, e.Desc)
	}
	witness.State = state
	return Result{Ok: true, Witness: witness}, nil
}

// CheckTranscript is CheckHistory on Γ(t).
func CheckTranscript(t *trace.Transcript, sp spec.Spec) (Result, error) {
	return CheckHistory(t.Interpreted(), sp)
}

// --- Strong linearizability over transcript trees -----------------------------

// Node is a node of a prefix-closed history tree: each child's history
// extends the parent's (same operations plus possibly new ones; pending
// operations may have completed).
type Node struct {
	// Label describes the node in diagnostics (e.g. its schedule).
	Label string
	// H is the interpreted history at this node.
	H *trace.History
	// Children of this node.
	Children []*Node
}

// FromSchedTree converts a scheduler transcript tree to a history tree.
func FromSchedTree(t *sched.TreeNode) *Node {
	node := &Node{
		Label: fmt.Sprintf("%v", t.Schedule),
		H:     t.T.Interpreted(),
	}
	for _, c := range t.Children {
		node.Children = append(node.Children, FromSchedTree(c))
	}
	return node
}

// ChainFromTranscript builds the path tree of a single execution: one node
// per prefix of t that ends at a high-level event (invocation or response).
// A prefix-preserving linearization function must exist along every single
// execution; this is a necessary condition for strong linearizability that
// can be monitored per run.
func ChainFromTranscript(t *trace.Transcript) *Node {
	var cuts []int
	for i, e := range t.Events {
		if e.Kind == trace.KindInvoke || e.Kind == trace.KindReturn {
			cuts = append(cuts, i+1)
		}
	}
	if len(cuts) == 0 || cuts[len(cuts)-1] != t.Len() {
		cuts = append(cuts, t.Len())
	}
	root := &Node{Label: "ε", H: (&trace.Transcript{}).Interpreted()}
	cur := root
	for _, cut := range cuts {
		child := &Node{
			Label: fmt.Sprintf("prefix[:%d]", cut),
			H:     t.Prefix(cut).Interpreted(),
		}
		cur.Children = []*Node{child}
		cur = child
	}
	return root
}

// ChainFromHistory builds the path tree of a recorded history: one node
// per prefix of the history cut at each invocation/response tick, where an
// operation invoked by a cut but not yet returned appears pending. A
// prefix-preserving linearization function must exist along every single
// execution, so CheckStrong on this chain is a necessary condition for
// strong linearizability that can be monitored on histories captured from
// native runs (harness.Recorder), complementing ChainFromTranscript for
// simulated ones.
func ChainFromHistory(h *trace.History) *Node {
	var cuts []int
	for _, op := range h.Ops {
		cuts = append(cuts, op.Inv)
		if op.Complete() {
			cuts = append(cuts, op.Ret)
		}
	}
	sort.Ints(cuts)
	root := &Node{Label: "ε", H: &trace.History{}}
	cur := root
	for _, cut := range cuts {
		sub := &trace.History{}
		for _, op := range h.Ops {
			if op.Inv > cut {
				continue
			}
			if !op.Complete() || op.Ret > cut {
				op.Ret = -1 // pending at this cut
			}
			sub.Ops = append(sub.Ops, op)
		}
		child := &Node{Label: fmt.Sprintf("cut[:%d]", cut), H: sub}
		cur.Children = []*Node{child}
		cur = child
	}
	return root
}

// StrongResult reports the outcome of a strong-linearizability check.
type StrongResult struct {
	Ok bool
	// Witness maps node labels to the linearization chosen there when Ok.
	Witness map[string]Linearization
	// FailNode names a node witnessing failure (best-effort diagnostic).
	FailNode string
}

// CheckStrong decides whether the history tree admits a prefix-preserving
// linearization function: an assignment of a linearization to every node
// such that each child's linearization extends its parent's.
//
// A negative answer on any tree of reachable transcripts proves the
// implementation is not strongly linearizable (this is how Observation 4 is
// reproduced mechanically). A positive answer certifies the property for the
// explored tree.
func CheckStrong(root *Node, sp spec.Spec) (StrongResult, error) {
	res := StrongResult{Witness: make(map[string]Linearization)}
	ok, err := solveNode(root, sp, nil, sp.Initial(), &res)
	if err != nil {
		return StrongResult{}, err
	}
	res.Ok = ok
	if !ok {
		res.Witness = nil
	}
	return res, nil
}

// solveNode tries to find a linearization for node extending prefix (with
// final state prefixState) that works for all children.
func solveNode(node *Node, sp spec.Spec, prefix []LinOp, prefixState string, out *StrongResult) (bool, error) {
	ops := node.H.Ops
	inPrefix := make(map[int]bool, len(prefix))
	// Consistency: operations linearized at an ancestor while pending must,
	// if now complete, have responded with the assigned response.
	for _, e := range prefix {
		inPrefix[e.OpID] = true
		if op, found := node.H.ByID(e.OpID); found && op.Complete() && op.Res != e.Resp {
			if out.FailNode == "" {
				out.FailNode = node.Label
			}
			return false, nil
		}
	}

	// Remaining operations and their happens-before structure.
	var rest []trace.Operation
	for _, op := range ops {
		if !inPrefix[op.OpID] {
			rest = append(rest, op)
		}
	}
	hb := make([][]bool, len(rest))
	for i := range rest {
		hb[i] = make([]bool, len(rest))
		for j := range rest {
			if i != j {
				hb[i][j] = node.H.HappensBefore(rest[i], rest[j])
			}
		}
	}

	used := make([]bool, len(rest))
	seq := append([]LinOp(nil), prefix...)

	var extend func(state string, requiredLeft int) (bool, error)
	extend = func(state string, requiredLeft int) (bool, error) {
		if requiredLeft == 0 {
			// Current seq is a linearization of this node's history; require
			// all children to succeed with it as their prefix.
			allOk := true
			for _, c := range node.Children {
				ok, err := solveNode(c, sp, seq, state, out)
				if err != nil {
					return false, err
				}
				if !ok {
					allOk = false
					break
				}
			}
			if allOk {
				out.Witness[node.Label] = Linearization{Seq: append([]LinOp(nil), seq...), State: state}
				return true, nil
			}
		}
		for i := range rest {
			if used[i] {
				continue
			}
			legal := true
			for j := range rest {
				if j != i && !used[j] && hb[j][i] {
					legal = false
					break
				}
			}
			if !legal {
				continue
			}
			next, resp, err := sp.Apply(state, rest[i].PID, rest[i].Desc)
			if err != nil {
				return false, fmt.Errorf("lincheck: %s: %w", rest[i].Desc, err)
			}
			if rest[i].Complete() && resp != rest[i].Res {
				continue
			}
			used[i] = true
			seq = append(seq, LinOp{OpID: rest[i].OpID, Desc: rest[i].Desc, PID: rest[i].PID, Resp: resp})
			dec := 0
			if rest[i].Complete() {
				dec = 1
			}
			ok, err := extend(next, requiredLeft-dec)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
			seq = seq[:len(seq)-1]
			used[i] = false
		}
		return false, nil
	}

	requiredLeft := 0
	for _, op := range rest {
		if op.Complete() {
			requiredLeft++
		}
	}
	ok, err := extend(prefixState, requiredLeft)
	if err != nil {
		return false, err
	}
	if !ok && out.FailNode == "" {
		out.FailNode = node.Label
	}
	return ok, nil
}

// CheckChain verifies the necessary prefix-preservation condition along a
// single execution: CheckStrong on the prefix chain of t.
func CheckChain(t *trace.Transcript, sp spec.Spec) (StrongResult, error) {
	return CheckStrong(ChainFromTranscript(t), sp)
}
