package lincheck

import (
	"testing"

	"slmem/internal/spec"
	"slmem/internal/trace"
)

// FuzzCheckHistoryRegister fuzzes the checker against the brute-force
// reference: on every generated history the two must agree, and the checker
// must never panic. Bytes decode into a small register history.
func FuzzCheckHistoryRegister(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3})
	f.Add([]byte{7, 7, 7, 7, 7, 7})
	f.Add([]byte{255, 0, 128, 64, 32, 16, 8, 4})

	f.Fuzz(func(t *testing.T, data []byte) {
		h := decodeHistory(data)
		if len(h.Ops) == 0 || len(h.Ops) > 5 {
			return
		}
		sp := spec.Register{}
		want, err := bruteForce(h, sp)
		if err != nil {
			return // malformed descs rejected by the spec are fine
		}
		got, err := CheckHistory(h, sp)
		if err != nil {
			t.Fatalf("bruteForce accepted but CheckHistory errored: %v", err)
		}
		if got.Ok != want {
			t.Fatalf("disagreement: CheckHistory=%v bruteForce=%v on:\n%s", got.Ok, want, h)
		}
	})
}

// decodeHistory deterministically decodes fuzz bytes into a well-formed
// history: each op consumes 3 bytes (kind/value, interval shape, response).
func decodeHistory(data []byte) *trace.History {
	h := &trace.History{}
	tick := 0
	for i := 0; i+2 < len(data) && len(h.Ops) < 5; i += 3 {
		kind, shape, resp := data[i], data[i+1], data[i+2]
		op := trace.Operation{
			OpID: len(h.Ops) + 1,
			PID:  len(h.Ops), // distinct pids keep it well-formed
		}
		if kind%2 == 0 {
			op.Desc = spec.FormatInvocation("write", []string{"a", "b"}[int(kind/2)%2])
			op.Res = "ok"
		} else {
			op.Desc = "read()"
			op.Res = []string{"a", "b", spec.Bot}[int(resp)%3]
		}
		// Interval: overlap with the previous op or not; possibly pending.
		op.Inv = tick
		tick++
		switch shape % 3 {
		case 0: // immediate completion
			op.Ret = tick
			tick++
		case 1: // long interval (overlaps successors)
			op.Ret = tick + 5
			tick++
		default: // pending
			op.Ret = -1
			op.Res = ""
		}
		h.Ops = append(h.Ops, op)
	}
	return h
}
