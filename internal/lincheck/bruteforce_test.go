package lincheck

import (
	"fmt"
	"math/rand"
	"testing"

	"slmem/internal/spec"
	"slmem/internal/trace"
)

// bruteForce is a reference linearizability decision procedure: it tries
// every subset of pending operations and every permutation, checking
// real-time order and spec validity directly. Exponential, only for tiny
// histories — it exists to cross-validate CheckHistory's search.
func bruteForce(h *trace.History, sp spec.Spec) (bool, error) {
	var complete, pending []int
	for i, op := range h.Ops {
		if op.Complete() {
			complete = append(complete, i)
		} else {
			pending = append(pending, i)
		}
	}
	for mask := 0; mask < 1<<uint(len(pending)); mask++ {
		chosen := append([]int(nil), complete...)
		for b, idx := range pending {
			if mask&(1<<uint(b)) != 0 {
				chosen = append(chosen, idx)
			}
		}
		ok, err := somePermutationValid(h, sp, chosen)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

func somePermutationValid(h *trace.History, sp spec.Spec, idxs []int) (bool, error) {
	perm := append([]int(nil), idxs...)
	var rec func(k int) (bool, error)
	rec = func(k int) (bool, error) {
		if k == len(perm) {
			return validSequence(h, sp, perm)
		}
		for i := k; i < len(perm); i++ {
			perm[k], perm[i] = perm[i], perm[k]
			ok, err := rec(k + 1)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
			perm[k], perm[i] = perm[i], perm[k]
		}
		return false, nil
	}
	return rec(0)
}

func validSequence(h *trace.History, sp spec.Spec, perm []int) (bool, error) {
	// Real-time order: if a happens before b, a must precede b.
	pos := make(map[int]int, len(perm))
	for p, idx := range perm {
		pos[idx] = p
	}
	for _, i := range perm {
		for _, j := range perm {
			if i != j && h.HappensBefore(h.Ops[i], h.Ops[j]) && pos[i] > pos[j] {
				return false, nil
			}
		}
	}
	// Spec validity.
	state := sp.Initial()
	for _, idx := range perm {
		op := h.Ops[idx]
		next, resp, err := sp.Apply(state, op.PID, op.Desc)
		if err != nil {
			return false, err
		}
		if op.Complete() && resp != op.Res {
			return false, nil
		}
		state = next
	}
	return true, nil
}

// randomHistory generates a small well-formed register history: each op has
// its own pid (so per-process sequentiality is trivial), random overlapping
// intervals, and responses that are sometimes plausible and sometimes
// corrupted — exercising both verdicts.
func randomHistory(rng *rand.Rand) *trace.History {
	nops := 2 + rng.Intn(4) // 2..5
	type iv struct{ inv, ret int }
	ticks := rng.Perm(2 * nops)
	ivs := make([]iv, nops)
	for i := range ivs {
		a, b := ticks[2*i], ticks[2*i+1]
		if a > b {
			a, b = b, a
		}
		ivs[i] = iv{a, b}
	}
	vals := []string{"a", "b"}
	h := &trace.History{}
	for i := 0; i < nops; i++ {
		var desc, res string
		if rng.Intn(2) == 0 {
			desc = spec.FormatInvocation("write", vals[rng.Intn(len(vals))])
			res = "ok"
		} else {
			desc = "read()"
			res = []string{"a", "b", spec.Bot}[rng.Intn(3)]
		}
		ret := ivs[i].ret
		if rng.Intn(5) == 0 {
			ret = -1 // pending
			res = ""
		}
		h.Ops = append(h.Ops, trace.Operation{
			OpID: i + 1,
			PID:  i, // distinct pids keep the history well-formed
			Desc: desc,
			Res:  res,
			Inv:  ivs[i].inv,
			Ret:  ret,
		})
	}
	return h
}

// TestCheckHistoryAgreesWithBruteForce cross-validates the memoized DFS
// against the exhaustive reference on hundreds of random tiny histories.
func TestCheckHistoryAgreesWithBruteForce(t *testing.T) {
	sp := spec.Register{}
	rng := rand.New(rand.NewSource(20190828)) // arXiv date of the paper
	for trial := 0; trial < 400; trial++ {
		h := randomHistory(rng)
		want, err := bruteForce(h, sp)
		if err != nil {
			t.Fatal(err)
		}
		got, err := CheckHistory(h, sp)
		if err != nil {
			t.Fatal(err)
		}
		if got.Ok != want {
			t.Fatalf("trial %d: CheckHistory=%v bruteForce=%v on:\n%s", trial, got.Ok, want, h)
		}
	}
}

// TestCheckHistoryAgreesWithBruteForceCounter repeats the cross-check with a
// stateful accumulator-style spec where operation order matters more.
func TestCheckHistoryAgreesWithBruteForceCounter(t *testing.T) {
	sp := spec.Counter{}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		nops := 2 + rng.Intn(3)
		ticks := rng.Perm(2 * nops)
		h := &trace.History{}
		for i := 0; i < nops; i++ {
			a, b := ticks[2*i], ticks[2*i+1]
			if a > b {
				a, b = b, a
			}
			var desc, res string
			if rng.Intn(2) == 0 {
				desc, res = "inc()", "ok"
			} else {
				desc, res = "read()", fmt.Sprint(rng.Intn(nops+1))
			}
			h.Ops = append(h.Ops, trace.Operation{
				OpID: i + 1, PID: i, Desc: desc, Res: res, Inv: a, Ret: b,
			})
		}
		want, err := bruteForce(h, sp)
		if err != nil {
			t.Fatal(err)
		}
		got, err := CheckHistory(h, sp)
		if err != nil {
			t.Fatal(err)
		}
		if got.Ok != want {
			t.Fatalf("trial %d: CheckHistory=%v bruteForce=%v on:\n%s", trial, got.Ok, want, h)
		}
	}
}

// TestWitnessIsValid: whenever CheckHistory accepts, its witness must
// itself pass direct validation.
func TestWitnessIsValid(t *testing.T) {
	sp := spec.Register{}
	rng := rand.New(rand.NewSource(7))
	checked := 0
	for trial := 0; trial < 300; trial++ {
		h := randomHistory(rng)
		res, err := CheckHistory(h, sp)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Ok {
			continue
		}
		checked++
		// Replay the witness directly.
		idxByOpID := make(map[int]int)
		for i, op := range h.Ops {
			idxByOpID[op.OpID] = i
		}
		perm := make([]int, 0, len(res.Witness.Seq))
		for _, e := range res.Witness.Seq {
			perm = append(perm, idxByOpID[e.OpID])
		}
		ok, err := validSequence(h, sp, perm)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("trial %d: witness fails direct validation: %s", trial, res.Witness)
		}
	}
	if checked == 0 {
		t.Error("no linearizable histories generated; generator broken")
	}
}
