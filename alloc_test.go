// Allocation accounting for the hot paths (the -benchmem companion
// assertions): the pid-lease layer must be allocation-free, and the direct
// counter Inc path must stay at its three-publication floor.
package slmem

import (
	"context"
	"testing"
)

// TestPooledCounterIncAllocs pins the allocation budget of the counter Inc
// hot path after the typed-register and scan-buffer-pool work:
//
//   - The pooled path (lease + Inc + release) adds at most 1 allocation
//     over the direct path — in practice 0: Acquire, the closure, and
//     Release all stay on the stack.
//   - The direct path itself performs exactly 3 allocations, one per
//     shared-value publication: the snapshot component cell (S.update),
//     the scanned view handed to R (S.scan), and R's tagged cell
//     (R.DWrite). Register values are immutable and shared with readers
//     indefinitely, so these cannot be pooled; this is the floor for a
//     register-based implementation.
//
// (Before this work the direct path was 7 allocs/op: interface boxing on
// every register write and two fresh collect buffers per scan.)
func TestPooledCounterIncAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation counts (sync.Pool drops puts)")
	}
	const n = 4
	ctx := context.Background()
	direct := NewCounter(n)
	pooled := NewPooledCounter(n)
	// Warm both paths (first ops populate scan-buffer pools and lease
	// stripes).
	for i := 0; i < 8; i++ {
		direct.Inc(0)
		if err := pooled.Inc(ctx); err != nil {
			t.Fatal(err)
		}
	}

	directAllocs := testing.AllocsPerRun(500, func() { direct.Inc(0) })
	pooledAllocs := testing.AllocsPerRun(500, func() {
		if err := pooled.Inc(ctx); err != nil {
			t.Fatal(err)
		}
	})

	// A GC during the run can drain the scan-buffer sync.Pool and add a
	// stray allocation; the +0.1 slack absorbs that without masking a real
	// per-op regression.
	if directAllocs > 3.1 {
		t.Errorf("direct Inc = %.2f allocs/op, want <= 3 (one per shared-value publication)", directAllocs)
	}
	if overhead := pooledAllocs - directAllocs; overhead > 1.1 {
		t.Errorf("pooled Inc adds %.2f allocs/op over direct (%.2f vs %.2f), want <= 1",
			overhead, pooledAllocs, directAllocs)
	}
}

// TestSnapshotScanAllocs pins the Scan path: two collect buffers come from
// the pool, so a solo Scan costs the returned view, the agreeing R view
// copy, and R's announcement writes — 4 allocations.
func TestSnapshotScanAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation counts (sync.Pool drops puts)")
	}
	const n = 4
	s := NewSnapshot[uint64](n, 0)
	for pid := 0; pid < n; pid++ {
		s.Update(pid, uint64(pid))
	}
	s.Scan(0)
	allocs := testing.AllocsPerRun(500, func() { s.Scan(0) })
	if allocs > 4.1 {
		t.Errorf("solo Scan = %.2f allocs/op, want <= 4", allocs)
	}
}
