//go:build race

package slmem

// raceEnabled reports whether the race detector instruments this build;
// allocation-count assertions skip under it (the detector disables
// sync.Pool reuse and changes escape behavior).
const raceEnabled = true
