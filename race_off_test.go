//go:build !race

package slmem

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = false
