package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"

	"slmem/internal/load"
)

// runSlload runs the CLI with args and returns the parsed Summary line.
func runSlload(t *testing.T, args ...string) load.Summary {
	t.Helper()
	var stdout bytes.Buffer
	if err := run(args, &stdout, io.Discard); err != nil {
		t.Fatalf("slload %v: %v\nstdout: %s", args, err, stdout.String())
	}
	var sum load.Summary
	if err := json.Unmarshal(stdout.Bytes(), &sum); err != nil {
		t.Fatalf("summary line not JSON: %v\n%s", err, stdout.String())
	}
	return sum
}

// short flags shared by the smoke runs below.
var quick = []string{"-warmup", "20ms", "-duration", "150ms", "-workers", "4", "-keys", "32", "-seed", "1", "-quiet"}

func TestInprocClosedLoop(t *testing.T) {
	sum := runSlload(t, append([]string{"-target", "inproc", "-dist", "uniform", "-mode", "closed"}, quick...)...)
	if sum.Schema != load.SummarySchema {
		t.Errorf("schema = %q, want %q", sum.Schema, load.SummarySchema)
	}
	if sum.Mode != "closed" || sum.Distribution != "uniform" || sum.Kind != "counter" || sum.Op != "inc" {
		t.Errorf("summary misdescribes the run: %+v", sum)
	}
	if sum.Ops == 0 || sum.ThroughputOpsS <= 0 {
		t.Errorf("no throughput measured: %+v", sum)
	}
	if sum.ErrorCount != 0 {
		t.Errorf("error_count = %d, want 0", sum.ErrorCount)
	}
	if sum.P99Ns < sum.P50Ns || sum.P50Ns <= 0 {
		t.Errorf("quantiles disordered: p50=%d p99=%d", sum.P50Ns, sum.P99Ns)
	}
}

func TestInprocOpenLoopBatch(t *testing.T) {
	sum := runSlload(t, append([]string{
		"-target", "inproc", "-dist", "hotkey", "-mode", "open",
		"-rate", "4000", "-poisson", "-batch", "8",
	}, quick...)...)
	if sum.Mode != "open" || sum.Distribution != "hotkey" || sum.Batch != 8 {
		t.Errorf("summary misdescribes the run: %+v", sum)
	}
	if sum.Ops != sum.Calls*8 {
		t.Errorf("ops = %d, want calls*8 = %d", sum.Ops, sum.Calls*8)
	}
}

func TestSelfServeOverTCP(t *testing.T) {
	sum := runSlload(t, append([]string{"-target", "self", "-dist", "zipfian", "-mode", "closed"}, quick...)...)
	if sum.ErrorCount != 0 {
		t.Errorf("error_count = %d over loopback TCP, want 0", sum.ErrorCount)
	}
	// The server-side /v1/stats delta must cover every op the client
	// delivered — the undercount assertion slload exists to make.
	if sum.ServerOpsDelta < sum.Ops {
		t.Errorf("server_ops_delta = %d < measured ops %d", sum.ServerOpsDelta, sum.Ops)
	}
}

func TestSelfServeBatchPipeline(t *testing.T) {
	sum := runSlload(t, append([]string{"-target", "self", "-mode", "closed", "-batch", "16"}, quick...)...)
	if sum.ErrorCount != 0 {
		t.Errorf("error_count = %d, want 0", sum.ErrorCount)
	}
	if sum.ServerOpsDelta < sum.Ops {
		t.Errorf("server_ops_delta = %d < measured ops %d", sum.ServerOpsDelta, sum.Ops)
	}
}

func TestPprofCapture(t *testing.T) {
	dir := t.TempDir()
	runSlload(t, append([]string{"-target", "inproc", "-pprof", dir}, quick...)...)
	for _, name := range []string{"cpu.pprof", "heap.pprof"} {
		fi, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s not written: %v", name, err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", name)
		}
	}
}

func TestSeedReproducesKeyStreams(t *testing.T) {
	// Same seed, same config: the deterministic fields of the summary must
	// match exactly (timing-derived fields of course vary).
	a := runSlload(t, append([]string{"-target", "inproc", "-dist", "zipfian"}, quick...)...)
	b := runSlload(t, append([]string{"-target", "inproc", "-dist", "zipfian"}, quick...)...)
	if a.Seed != b.Seed || a.Distribution != b.Distribution || a.Keys != b.Keys {
		t.Errorf("deterministic fields diverged: %+v vs %+v", a, b)
	}
}

func TestRejectsInvalidWorkload(t *testing.T) {
	cases := [][]string{
		{"-kind", "nope"},
		{"-kind", "counter", "-op", "nope"},
		{"-target", "gopher://x"},
		{"-mode", "open"}, // no rate
		{"-dist", "pareto"},
	}
	for _, args := range cases {
		if err := run(append(args, quick...), io.Discard, io.Discard); err == nil {
			t.Errorf("slload %v: invalid workload accepted", args)
		}
	}
}
