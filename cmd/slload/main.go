// Command slload is the open/closed-loop load harness: it offers a
// configurable workload — key distribution (uniform, hot-key, zipfian),
// arrival mode (closed-loop workers or open-loop paced arrivals), batch
// size — against the in-process registry or a live slserve endpoint over
// TCP, and emits one machine-readable Summary line (schema slload/v5) with
// p50/p95/p99 latency, throughput, and error counts. benchmarks/sweep.sh
// sweeps it into consolidated TSV; CI's bench-smoke job gates p99 with it;
// BENCH_0005.json records its runs.
//
// Usage:
//
//	slload [flags]
//
//	-target inproc          drive the registry directly (no HTTP)
//	-target self            start an in-process HTTP server on a loopback
//	                        TCP listener and drive it over real TCP
//	-target http://host:p   drive a live slserve endpoint
//
//	-kind counter -op inc   the workload operation (any registered kind/op;
//	                        -value/-type/-invocation fill the request body)
//	-dist uniform           key distribution: uniform | hotkey | zipfian
//	-keys 1024              keyspace size (distinct object names)
//	-mode closed            closed (worker-paced) | open (arrival-paced)
//	-rate 5000              open-loop offered rate, ops/s
//	-poisson                open-loop exponential inter-arrival gaps
//	-batch 1                ops per call (>1 uses the batch pipeline)
//	-workers 16             concurrency
//	-warmup 1s -duration 5s phases
//	-seed 1                 deterministic keys and schedules
//	-pprof DIR              capture cpu.pprof/heap.pprof for the measure phase
//
// The Summary line goes to stdout; a human digest goes to stderr. Against
// self/HTTP targets, slload also diffs the server's /v1/stats operation
// counters across the run and records the delta as server_ops_delta —
// asserting the server actually saw the offered load (exit status 1 when it
// undercounts, which catches silently refused connections).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"slmem"
	_ "slmem/internal/bag" // register the bag kind
	"slmem/internal/kind"
	"slmem/internal/load"
	"slmem/internal/registry"
	"slmem/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "slload:", err)
		os.Exit(1)
	}
}

// config is the parsed flag set of one slload invocation.
type config struct {
	target     string
	kindName   string
	opName     string
	value      string
	typeName   string
	invocation string
	prefix     string
	procs      int
	load       load.Config
	pprofDir   string
	quiet      bool
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("slload", flag.ContinueOnError)
	var (
		target     = fs.String("target", "inproc", "what to drive: inproc | self | http(s)://host:port")
		kindName   = fs.String("kind", "counter", "object kind of the workload op")
		opName     = fs.String("op", "inc", "operation name within -kind")
		value      = fs.String("value", "", "request value operand (maxreg write, snapshot update, bag insert)")
		typeName   = fs.String("type", "", "object type (object kind only)")
		invocation = fs.String("invocation", "", "object invocation (object kind only)")
		prefix     = fs.String("prefix", "load-", "object name prefix; key k targets <prefix><k>")
		keys       = fs.Int("keys", 1024, "keyspace size (distinct object names)")
		dist       = fs.String("dist", "uniform", "key distribution: uniform | hotkey | zipfian")
		hotFrac    = fs.Float64("hotfrac", 0.9, "hotkey: fraction of traffic on the hot set")
		hotKeys    = fs.Int("hotkeys", 1, "hotkey: hot-set size")
		zipfS      = fs.Float64("zipfs", 1.1, "zipfian: exponent s > 1")
		mode       = fs.String("mode", "closed", "load mode: closed | open")
		rate       = fs.Float64("rate", 0, "open-loop offered rate, ops/s")
		poisson    = fs.Bool("poisson", false, "open-loop: Poisson (exponential-gap) arrivals")
		batch      = fs.Int("batch", 1, "ops per call; >1 drives the batch pipeline")
		workers    = fs.Int("workers", 16, "concurrency (loops in closed mode, executors in open mode)")
		warmup     = fs.Duration("warmup", 1*time.Second, "warmup phase (not measured)")
		duration   = fs.Duration("duration", 5*time.Second, "measurement window")
		seed       = fs.Int64("seed", 1, "deterministic seed for keys and schedules")
		samples    = fs.Int("samples", 4096, "per-worker latency reservoir capacity")
		procs      = fs.Int("procs", 16, "pid pool size for inproc/self targets")
		pprofDir   = fs.String("pprof", "", "directory to write cpu.pprof/heap.pprof covering the measure phase")
		quiet      = fs.Bool("quiet", false, "suppress the human digest on stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := config{
		target:   *target,
		kindName: *kindName, opName: *opName,
		value: *value, typeName: *typeName, invocation: *invocation,
		prefix: *prefix, procs: *procs, pprofDir: *pprofDir, quiet: *quiet,
		load: load.Config{
			Mode:    load.Mode(*mode),
			Workers: *workers,
			Rate:    *rate,
			Poisson: *poisson,
			Warmup:  *warmup,
			Measure: *duration,
			Keys: load.KeySpec{
				Dist: load.Dist(*dist), Keys: *keys,
				HotFrac: *hotFrac, HotKeys: *hotKeys, ZipfS: *zipfS,
			},
			Seed:       *seed,
			OpsPerCall: *batch,
			SampleCap:  *samples,
		},
	}
	return cfg.execute(context.Background(), stdout, stderr)
}

// execute validates the workload, builds the target driver, runs the load,
// and emits the Summary.
func (c *config) execute(ctx context.Context, stdout, stderr io.Writer) error {
	d, ok := kind.Lookup(c.kindName)
	if !ok {
		return kind.UnknownKind(c.kindName)
	}
	kreq := kind.Request{Op: c.opName, Value: c.value, Type: c.typeName, Invocation: c.invocation}
	if err := d.Validate(kreq); err != nil {
		return fmt.Errorf("workload %s/%s: %w", c.kindName, c.opName, err)
	}

	names := make([]string, c.load.Keys.Keys)
	for i := range names {
		names[i] = fmt.Sprintf("%s%06d", c.prefix, i)
	}

	var (
		op       load.Op
		statsURL string
		shutdown func()
	)
	switch {
	case c.target == "inproc":
		var err error
		if op, err = c.inprocOp(kreq, names); err != nil {
			return err
		}
	case c.target == "self":
		base, stop, err := c.selfServe()
		if err != nil {
			return err
		}
		shutdown = stop
		op = c.httpOp(base, kreq, names)
		statsURL = base + "/v1/stats"
	case strings.HasPrefix(c.target, "http://") || strings.HasPrefix(c.target, "https://"):
		base := strings.TrimSuffix(c.target, "/")
		op = c.httpOp(base, kreq, names)
		statsURL = base + "/v1/stats"
	default:
		return fmt.Errorf("unknown -target %q (want inproc, self, or an http(s) URL)", c.target)
	}
	if shutdown != nil {
		defer shutdown()
	}

	if c.pprofDir != "" {
		stop, err := c.armProfiles(stderr)
		if err != nil {
			return err
		}
		defer stop()
	}

	opsBefore, err := fetchServerOps(statsURL, c.kindName)
	if err != nil {
		return fmt.Errorf("pre-run stats fetch: %w", err)
	}

	res, err := load.Run(ctx, c.load, op)
	if err != nil {
		return err
	}

	sum := load.NewSummary(c.load, res, c.target, c.kindName, c.opName)
	var undercount error
	if statsURL != "" {
		opsAfter, err := fetchServerOps(statsURL, c.kindName)
		if err != nil {
			return fmt.Errorf("post-run stats fetch: %w", err)
		}
		sum.ServerOpsDelta = opsAfter - opsBefore
		// Every call that did not fail delivered Batch ops the server must
		// have counted; a smaller delta means offered load silently vanished
		// (refused connections, a proxy eating requests).
		expected := (res.TotalCalls - res.Errors) * int64(c.load.OpsPerCall)
		if sum.ServerOpsDelta < expected {
			undercount = fmt.Errorf("server undercounted load: /v1/stats ops[%s] grew %d, client delivered >= %d",
				c.kindName, sum.ServerOpsDelta, expected)
		}
	}
	if err := sum.Emit(stdout); err != nil {
		return err
	}
	if !c.quiet {
		fmt.Fprintln(stderr, sum.Human())
	}
	return undercount
}

// inprocOp drives the registry directly through the driver codec: instances
// and compiled steps are resolved once per key, so the hot loop is
// lease+run, and batches (>1 op per call) go through BatchExecute — the same
// two paths the server itself uses, minus HTTP.
func (c *config) inprocOp(kreq kind.Request, names []string) (load.Op, error) {
	reg := registry.New(registry.Options{Procs: c.procs})
	if c.load.OpsPerCall > 1 {
		template := registry.BatchOp{
			Kind: registry.Kind(c.kindName), Op: registry.Op(c.opName),
			Value: c.value, Type: c.typeName, Invocation: c.invocation,
		}
		return func(ctx context.Context, keys []int) error {
			ops := make([]registry.BatchOp, len(keys))
			for i, k := range keys {
				ops[i] = template
				ops[i].Name = names[k]
			}
			out, err := reg.BatchExecute(ctx, ops)
			if err != nil {
				return err
			}
			for _, r := range out.Results {
				if r.Err != nil {
					return r.Err
				}
			}
			return nil
		}, nil
	}

	type resolved struct {
		compiled kind.Compiled
		pool     *slmem.PIDPool
	}
	entries := make([]resolved, len(names))
	for i, name := range names {
		inst, pool, err := reg.Get(registry.Kind(c.kindName), name, kreq)
		if err != nil {
			return nil, fmt.Errorf("resolve %s/%s: %w", c.kindName, name, err)
		}
		compiled, err := inst.Compile(kreq)
		if err != nil {
			return nil, fmt.Errorf("compile %s/%s: %w", c.kindName, name, err)
		}
		entries[i] = resolved{compiled: compiled, pool: pool}
	}
	return func(ctx context.Context, keys []int) error {
		e := entries[keys[0]]
		return e.pool.With(ctx, func(pid int) error {
			_, err := e.compiled.Run(pid)
			return err
		})
	}, nil
}

// selfServe starts the HTTP server on an in-process loopback TCP listener
// and returns its base URL plus a shutdown function — real TCP, real HTTP,
// zero external dependencies, which is what CI's smoke drives.
func (c *config) selfServe() (string, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, fmt.Errorf("self target: %w", err)
	}
	httpSrv := &http.Server{Handler: server.New(registry.Options{Procs: c.procs})}
	go func() { _ = httpSrv.Serve(ln) }()
	stop := func() {
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shutdownCtx)
	}
	return "http://" + ln.Addr().String(), stop, nil
}

// httpOp drives a server over TCP: one POST per call to the single-op
// endpoint, or to /v1/batch when the batch size exceeds one. Bodies and URLs
// are precomputed where the workload shape allows.
func (c *config) httpOp(base string, kreq kind.Request, names []string) load.Op {
	client := &http.Client{
		Transport: &http.Transport{
			MaxIdleConns:        c.load.Workers * 2,
			MaxIdleConnsPerHost: c.load.Workers * 2,
		},
		Timeout: 30 * time.Second,
	}

	if c.load.OpsPerCall > 1 {
		template := registry.BatchOp{
			Kind: registry.Kind(c.kindName), Op: registry.Op(c.opName),
			Value: c.value, Type: c.typeName, Invocation: c.invocation,
		}
		url := base + "/v1/batch"
		return func(ctx context.Context, keys []int) error {
			ops := make([]registry.BatchOp, len(keys))
			for i, k := range keys {
				ops[i] = template
				ops[i].Name = names[k]
			}
			body, err := json.Marshal(ops)
			if err != nil {
				return err
			}
			return post(ctx, client, url, body)
		}
	}

	var body []byte
	if kreq.Value != "" || kreq.Type != "" || kreq.Invocation != "" {
		body, _ = json.Marshal(server.Request{Value: kreq.Value, Type: kreq.Type, Invocation: kreq.Invocation})
	}
	urls := make([]string, len(names))
	for i, name := range names {
		urls[i] = base + "/v1/" + c.kindName + "/" + name + "/" + c.opName
	}
	return func(ctx context.Context, keys []int) error {
		return post(ctx, client, urls[keys[0]], body)
	}
}

// post issues one POST and treats any non-200 as a call failure.
func post(ctx context.Context, client *http.Client, url string, body []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	if len(body) > 0 {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	_, err = io.Copy(io.Discard, resp.Body)
	return err
}

// statsDoc is the slice of /v1/stats slload reads.
type statsDoc struct {
	Ops map[string]int64 `json:"ops"`
}

// fetchServerOps returns the server's operation count for kindName, or 0
// when statsURL is empty (inproc target).
func fetchServerOps(statsURL, kindName string) (int64, error) {
	if statsURL == "" {
		return 0, nil
	}
	resp, err := http.Get(statsURL)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("GET %s: %s", statsURL, resp.Status)
	}
	var doc statsDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return 0, err
	}
	return doc.Ops[kindName], nil
}

// armProfiles wires CPU/heap profile capture to the measure phase: the CPU
// profile starts when the window opens and stops when it closes, and a heap
// profile is written at close, so profiles see exactly the measured load.
func (c *config) armProfiles(stderr io.Writer) (stop func(), err error) {
	if err := os.MkdirAll(c.pprofDir, 0o755); err != nil {
		return nil, err
	}
	cpuPath := filepath.Join(c.pprofDir, "cpu.pprof")
	heapPath := filepath.Join(c.pprofDir, "heap.pprof")
	cpuFile, err := os.Create(cpuPath)
	if err != nil {
		return nil, err
	}
	c.load.OnMeasureStart = func() {
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			fmt.Fprintln(stderr, "slload: cpu profile:", err)
		}
	}
	c.load.OnMeasureEnd = func() {
		pprof.StopCPUProfile()
		heapFile, err := os.Create(heapPath)
		if err != nil {
			fmt.Fprintln(stderr, "slload: heap profile:", err)
			return
		}
		defer heapFile.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(heapFile); err != nil {
			fmt.Fprintln(stderr, "slload: heap profile:", err)
		}
	}
	return func() {
		cpuFile.Close()
		if !c.quiet {
			fmt.Fprintf(stderr, "slload: profiles written to %s and %s\n", cpuPath, heapPath)
		}
	}, nil
}
