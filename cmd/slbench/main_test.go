package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestRunSelected(t *testing.T) {
	// E4 and E5 are the fastest experiments; they cover both flag paths.
	if err := run([]string{"-e", "E4,E5"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMarkdown(t *testing.T) {
	if err := run([]string{"-e", "E4", "-md"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	err := run([]string{"-e", "E99"})
	if err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if !strings.Contains(err.Error(), "E7") {
		t.Errorf("error should mention where E7 lives: %v", err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestSelectionCaseInsensitive(t *testing.T) {
	if err := run([]string{"-e", "e4"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunE9(t *testing.T) {
	if err := run([]string{"-e", "E9"}); err != nil {
		t.Fatal(err)
	}
}

func TestJSONSummary(t *testing.T) {
	var buf bytes.Buffer
	if err := emitJSONSummary(&buf, 2*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	line := strings.TrimRight(buf.String(), "\n")
	if strings.ContainsRune(line, '\n') {
		t.Fatalf("summary is not one line:\n%s", line)
	}
	var sum perfSummary
	if err := json.Unmarshal([]byte(line), &sum); err != nil {
		t.Fatalf("summary is not valid JSON: %v\n%s", err, line)
	}
	if sum.Schema != "slbench/v1" {
		t.Errorf("schema = %q", sum.Schema)
	}
	if len(sum.Probes) < 4 {
		t.Fatalf("only %d probes", len(sum.Probes))
	}
	for _, p := range sum.Probes {
		if p.Ops <= 0 || p.NsPerOp <= 0 || p.Registers <= 0 {
			t.Errorf("probe %q has empty fields: %+v", p.Name, p)
		}
	}
}
