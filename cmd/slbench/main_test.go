package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"slmem/internal/kind"
)

func TestRunSelected(t *testing.T) {
	// E4 and E5 are the fastest experiments; they cover both flag paths.
	if err := run([]string{"-e", "E4,E5"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMarkdown(t *testing.T) {
	if err := run([]string{"-e", "E4", "-md"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	err := run([]string{"-e", "E99"})
	if err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if !strings.Contains(err.Error(), "E7") {
		t.Errorf("error should mention where E7 lives: %v", err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestSelectionCaseInsensitive(t *testing.T) {
	if err := run([]string{"-e", "e4"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunE9(t *testing.T) {
	if err := run([]string{"-e", "E9"}); err != nil {
		t.Fatal(err)
	}
}

func TestJSONSummary(t *testing.T) {
	var buf bytes.Buffer
	if err := emitJSONSummary(&buf, 2*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	line := strings.TrimRight(buf.String(), "\n")
	if strings.ContainsRune(line, '\n') {
		t.Fatalf("summary is not one line:\n%s", line)
	}
	var sum perfSummary
	if err := json.Unmarshal([]byte(line), &sum); err != nil {
		t.Fatalf("summary is not valid JSON: %v\n%s", err, line)
	}
	if sum.Schema != "slbench/v5" {
		t.Errorf("schema = %q", sum.Schema)
	}
	if len(sum.Probes) < 8 {
		t.Fatalf("only %d probes", len(sum.Probes))
	}
	names := make(map[string]bool, len(sum.Probes))
	modes := make(map[string]string, len(sum.Probes))
	for _, p := range sum.Probes {
		names[p.Name] = true
		modes[p.Name] = p.Mode
		if p.Ops <= 0 || p.NsPerOp <= 0 {
			t.Errorf("probe %q has empty fields: %+v", p.Name, p)
		}
		if p.Mode != "steady" && p.Mode != "growth" {
			t.Errorf("probe %q has mode %q, want steady or growth", p.Name, p.Mode)
		}
		if p.AllocsPerOp < 0 {
			t.Errorf("probe %q has negative allocs_per_op %v", p.Name, p.AllocsPerOp)
		}
		// Paper-layer probes must report their register allocation (the
		// space metric); service-layer probes — including universal/*,
		// which reads GCStats off an object living behind the registry —
		// document it as zero.
		serviceLayer := strings.HasPrefix(p.Name, "registry/") ||
			strings.HasPrefix(p.Name, "server/") || strings.HasPrefix(p.Name, "driver/") ||
			strings.HasPrefix(p.Name, "universal/")
		if serviceLayer && p.Registers != 0 {
			t.Errorf("service-layer probe %q reports registers=%d, want 0", p.Name, p.Registers)
		}
		if !serviceLayer && p.Registers <= 0 {
			t.Errorf("probe %q reports registers=%d, want > 0", p.Name, p.Registers)
		}
	}
	for _, want := range []string{
		"counter/inc-direct", "counter/inc-pooled",
		"registry/counter-inc-perop", "registry/counter-inc-batch64",
		"server/counter-inc-request", "server/counter-inc-batch64",
	} {
		if !names[want] {
			t.Errorf("probe %q missing from summary", want)
		}
	}
	// Schema v3: one probe per registered driver that supplies a probe
	// request — enumerated, not hardcoded, so this loop is over the live
	// driver registry and a kind registered tomorrow is covered untouched.
	for _, d := range kind.Drivers() {
		p, ok := d.(kind.Prober)
		if !ok {
			continue
		}
		if want := "driver/" + d.Kind() + "-" + p.Probe().Op; !names[want] {
			t.Errorf("driver probe %q missing from summary", want)
		}
	}
	if !names["driver/bag-insert"] {
		t.Error("the bag driver is not registered in slbench (missing driver/bag-insert probe)")
	}
	// Schema v4 added the growth/steady distinction; v5 reclassifies
	// driver/object-execute as steady (history truncation is on by default
	// for the object kind, so its history no longer grows over the probe)
	// and adds the GC probes with truncation telemetry.
	for name, wantMode := range map[string]string{
		"driver/object-execute":      "steady",
		"driver/bag-insert":          "growth",
		"driver/object-execute-warm": "steady",
		"driver/bag-churn":           "steady",
		"driver/object-gc-churn":     "steady",
		"universal/live-nodes":       "steady",
		"counter/inc-direct":         "steady",
	} {
		if !names[name] {
			t.Errorf("probe %q missing from summary", name)
		} else if modes[name] != wantMode {
			t.Errorf("probe %q has mode %q, want %q", name, modes[name], wantMode)
		}
	}
	for _, p := range sum.Probes {
		if p.Name == "driver/bag-churn" && p.SpaceCells <= 0 {
			t.Errorf("bag churn probe reports space_cells=%d, want > 0 (the open tail chunk)", p.SpaceCells)
		}
		// Live precedence-graph nodes: the churn ops themselves are live
		// until truncated, so this is always at least 1. (Truncation count
		// is not asserted — a 2ms probe may end before the first window.)
		if p.Name == "universal/live-nodes" && p.SpaceCells <= 0 {
			t.Errorf("live-nodes probe reports space_cells=%d, want > 0", p.SpaceCells)
		}
	}
	// The derived ratio is what BENCH_*.json records for the batch pipeline;
	// it must be present and positive (its magnitude is hardware-dependent,
	// so the threshold lives in the recorded BENCH files, not in this test).
	if sum.Derived.Batch64OverheadRatio <= 0 {
		t.Errorf("derived = %+v, want a positive batch64_overhead_ratio", sum.Derived)
	}
}
