package main

import (
	"strings"
	"testing"
)

func TestRunSelected(t *testing.T) {
	// E4 and E5 are the fastest experiments; they cover both flag paths.
	if err := run([]string{"-e", "E4,E5"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMarkdown(t *testing.T) {
	if err := run([]string{"-e", "E4", "-md"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	err := run([]string{"-e", "E99"})
	if err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if !strings.Contains(err.Error(), "E7") {
		t.Errorf("error should mention where E7 lives: %v", err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestSelectionCaseInsensitive(t *testing.T) {
	if err := run([]string{"-e", "e4"}); err != nil {
		t.Fatal(err)
	}
}
