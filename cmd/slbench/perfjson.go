package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"runtime"
	"time"

	_ "slmem/internal/bag" // register the bag kind, so driver probes cover it
	"slmem/internal/core"
	"slmem/internal/kind"
	"slmem/internal/memory"
	"slmem/internal/registry"
	slruntime "slmem/internal/runtime"
	"slmem/internal/server"
)

// perfProbe is one measured hot path in the -json summary.
type perfProbe struct {
	// Name identifies the path, e.g. "counter/inc-direct".
	Name string `json:"name"`
	// Ops is how many operations the probe completed.
	Ops int64 `json:"ops"`
	// NsPerOp is the mean wall-clock cost of one operation.
	NsPerOp float64 `json:"ns_per_op"`
	// Registers is how many base registers the probed object allocated —
	// the paper's space metric (constant for the bounded algorithms). Zero
	// for service-layer probes, whose objects live behind the registry.
	Registers int `json:"registers"`
}

// perfDerived reports the batch-pipeline headline numbers computed from the
// probes: the lease+dispatch overhead one operation pays on the per-request
// server path versus its share of a 64-op batched request, both relative to
// the direct (caller-managed pid) cost of the same counter increment.
type perfDerived struct {
	// PerRequestOverheadNs is server per-request ns/op minus direct ns/op.
	PerRequestOverheadNs float64 `json:"per_request_overhead_ns"`
	// Batch64PerOpOverheadNs is the batched server path's per-op ns (one
	// 64-entry /v1/batch request divided by 64) minus direct ns/op.
	Batch64PerOpOverheadNs float64 `json:"batch64_per_op_overhead_ns"`
	// Batch64OverheadRatio is PerRequestOverheadNs over
	// Batch64PerOpOverheadNs: how many times cheaper the batched path's
	// per-op overhead is. The pipeline targets >= 5.
	Batch64OverheadRatio float64 `json:"batch64_overhead_ratio"`
}

// perfSummary is the one-line JSON document emitted by -json, for recording
// as BENCH_*.json and diffing across PRs.
type perfSummary struct {
	Schema     string      `json:"schema"`
	GoVersion  string      `json:"go"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	ProbeMs    int64       `json:"probe_ms"`
	Probes     []perfProbe `json:"probes"`
	Derived    perfDerived `json:"derived"`
}

// batchProbeSize is the batch size of the batched probes and of the derived
// overhead ratio (matching the BenchmarkRegistryBatch/size-64 family).
const batchProbeSize = 64

// measure runs op in a tight loop for roughly d and returns the op count
// and mean ns/op.
func measure(d time.Duration, op func()) (int64, float64) {
	const batch = 64
	var ops int64
	start := time.Now()
	for {
		for i := 0; i < batch; i++ {
			op()
		}
		ops += batch
		if time.Since(start) >= d {
			break
		}
	}
	return ops, float64(time.Since(start).Nanoseconds()) / float64(ops)
}

// emitJSONSummary measures the service-relevant hot paths — direct (caller
// manages the pid), pooled (a lease per operation), per-driver (the generic
// codec path of every registered kind), per-request (one HTTP request per
// operation), and batched (64 operations per request or lease) — and writes
// one JSON line. The pooled/direct pairs quantify the lease overhead the
// runtime layer adds; the driver probes cover each registered kind through
// the same dispatch the server uses; the request/batch pairs quantify what
// /v1/batch amortizes away; bench_test.go carries the full benchmark suite.
func emitJSONSummary(w io.Writer, probeTime time.Duration) error {
	const n = 8
	ctx := context.Background()
	var probes []perfProbe

	add := func(name string, registers int, op func()) float64 {
		ops, nsPerOp := measure(probeTime, op)
		probes = append(probes, perfProbe{Name: name, Ops: ops, NsPerOp: nsPerOp, Registers: registers})
		return nsPerOp
	}
	// addBatched measures op (which performs `size` operations per call) and
	// records per-operation numbers.
	addBatched := func(name string, size int, op func()) float64 {
		batches, nsPerBatch := measure(probeTime, op)
		nsPerOp := nsPerBatch / float64(size)
		probes = append(probes, perfProbe{Name: name, Ops: batches * int64(size), NsPerOp: nsPerOp})
		return nsPerOp
	}

	var directIncNs float64
	{
		var alloc memory.NativeAllocator
		c := core.NewCounter(&alloc, n)
		directIncNs = add("counter/inc-direct", alloc.Registers(), func() { c.Inc(0) })
	}
	{
		var alloc memory.NativeAllocator
		c := core.NewCounter(&alloc, n)
		l := slruntime.NewLeaser(n)
		add("counter/inc-pooled", alloc.Registers(), func() {
			l.With(ctx, func(pid int) error { c.Inc(pid); return nil })
		})
	}
	{
		var alloc memory.NativeAllocator
		s := core.New[uint64](&alloc, n, 0)
		add("snapshot/update-direct", alloc.Registers(), func() { s.Update(0, 1) })
	}
	{
		var alloc memory.NativeAllocator
		s := core.New[uint64](&alloc, n, 0)
		l := slruntime.NewLeaser(n)
		add("snapshot/scan-pooled", alloc.Registers(), func() {
			l.With(ctx, func(pid int) error { s.Scan(pid); return nil })
		})
	}

	// Registry layer: a lease plus named-object dispatch per op, against one
	// BatchExecute amortizing the lease over batchProbeSize ops.
	{
		reg := registry.New(registry.Options{Procs: n})
		reg.Counter("bench")
		add("registry/counter-inc-perop", 0, func() {
			if err := reg.Counter("bench").Inc(ctx); err != nil {
				panic(err)
			}
		})
		ops := make([]registry.BatchOp, batchProbeSize)
		for i := range ops {
			ops[i] = registry.BatchOp{Kind: registry.KindCounter, Name: "bench", Op: registry.OpInc}
		}
		addBatched("registry/counter-inc-batch64", batchProbeSize, func() {
			if _, err := reg.BatchExecute(ctx, ops); err != nil {
				panic(err)
			}
		})
	}

	// Server layer: the full per-request path (mux, JSON, lease, dispatch)
	// against one 64-entry /v1/batch request. This is the pair the batch
	// pipeline exists for: the derived ratio below compares their per-op
	// overhead over the direct cost.
	var requestNs, batchNs float64
	{
		srv := server.New(registry.Options{Procs: n})
		requestNs = add("server/counter-inc-request", 0, func() {
			req := httptest.NewRequest("POST", "/v1/counter/bench/inc", nil)
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, req)
			if rec.Code != 200 {
				panic(fmt.Sprintf("inc request failed: %d %s", rec.Code, rec.Body))
			}
		})
		entries := make([]server.BatchEntry, batchProbeSize)
		for i := range entries {
			entries[i] = server.BatchEntry{Kind: registry.KindCounter, Name: "bench", Op: registry.OpInc}
		}
		body, err := json.Marshal(entries)
		if err != nil {
			return err
		}
		batchNs = addBatched("server/counter-inc-batch64", batchProbeSize, func() {
			req := httptest.NewRequest("POST", "/v1/batch", bytes.NewReader(body))
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, req)
			if rec.Code != 200 {
				panic(fmt.Sprintf("batch request failed: %d %s", rec.Code, rec.Body))
			}
		})
	}

	// Driver layer: the generic codec path every registered kind is served
	// through — driver Compile plus one pid lease and Run per op, against a
	// registry-resolved instance. The probe set is not a literal kind list:
	// it enumerates whatever drivers this binary imports (kind.Drivers) and
	// probes each one that supplies a representative request (kind.Prober),
	// so a newly registered kind — the Ellen–Sela bag here — shows up in
	// BENCH_*.json with zero edits to this file.
	//
	// These probes run LAST: the bag's inserted items and the universal
	// object's history stay live in the registry, and running them earlier
	// would tax every later probe's GC and skew the derived pair against
	// BENCH_0002 (which had no driver probes). Two numbers here measure
	// growth, not steady state, by construction: object-execute replays an
	// unbounded history (its ns/op grows with probe duration — compare it
	// only across equal -probetime runs), and bag-insert accretes tombstone
	// cells (bounding both is ROADMAP work).
	{
		reg := registry.New(registry.Options{Procs: n})
		for _, d := range kind.Drivers() {
			prober, ok := d.(kind.Prober)
			if !ok {
				continue
			}
			req := prober.Probe()
			inst, pool, err := reg.Get(registry.Kind(d.Kind()), "bench", req)
			if err != nil {
				return fmt.Errorf("driver probe %s: %w", d.Kind(), err)
			}
			add("driver/"+d.Kind()+"-"+req.Op, 0, func() {
				compiled, err := inst.Compile(req)
				if err != nil {
					panic(err)
				}
				if err := pool.With(ctx, func(pid int) error {
					_, runErr := compiled.Run(pid)
					return runErr
				}); err != nil {
					panic(err)
				}
			})
		}
	}

	derived := perfDerived{
		PerRequestOverheadNs:   requestNs - directIncNs,
		Batch64PerOpOverheadNs: batchNs - directIncNs,
	}
	if derived.Batch64PerOpOverheadNs > 0 {
		derived.Batch64OverheadRatio = derived.PerRequestOverheadNs / derived.Batch64PerOpOverheadNs
	}

	sum := perfSummary{
		Schema:     "slbench/v3",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		ProbeMs:    probeTime.Milliseconds(),
		Probes:     probes,
		Derived:    derived,
	}
	enc, err := json.Marshal(sum)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintln(w, string(enc))
	return err
}
