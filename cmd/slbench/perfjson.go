package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"runtime"
	"time"

	"slmem"
	"slmem/internal/bag" // registers the bag kind; churn probe reads its stats
	"slmem/internal/core"
	"slmem/internal/kind"
	"slmem/internal/memory"
	"slmem/internal/registry"
	slruntime "slmem/internal/runtime"
	"slmem/internal/server"
)

// perfProbe is one measured hot path in the -json summary.
type perfProbe struct {
	// Name identifies the path, e.g. "counter/inc-direct".
	Name string `json:"name"`
	// Mode distinguishes what the number means: "steady" probes measure a
	// stable per-op cost, "growth" probes measure a cost that grows with
	// accumulated state (history length, tombstones) over the probe
	// duration — their ns/op is only comparable across equal -probetime
	// runs.
	Mode string `json:"mode"`
	// Ops is how many operations the probe completed.
	Ops int64 `json:"ops"`
	// NsPerOp is the mean wall-clock cost of one operation.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp is the mean number of heap allocations per operation
	// (whole-process Mallocs delta over the probe, like -benchmem).
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Registers is how many base registers the probed object allocated —
	// the paper's space metric (constant for the bounded algorithms). Zero
	// for service-layer probes, whose objects live behind the registry.
	Registers int `json:"registers"`
	// SpaceCells, when set, is the number of reachable storage cells the
	// probed object holds after the probe — the bounded-space evidence for
	// the bag churn and universal GC probes (live precedence-graph nodes
	// for the latter).
	SpaceCells int `json:"space_cells,omitempty"`
	// Truncations, when set, is how many times the probed universal
	// object's garbage collector advanced its truncation root during the
	// probe.
	Truncations int64 `json:"truncations,omitempty"`
	// RootVersion, when set, is the probed universal object's truncation
	// root version when the probe ended.
	RootVersion int64 `json:"root_version,omitempty"`
	// GCFailures, when set, is the sum of the probed object's collector
	// coverage and replay failure counters when the probe ended. Nonzero
	// means the truncation protocol broke mid-probe (see Object.GCStats);
	// the field is omitted in the healthy zero case.
	GCFailures int64 `json:"gc_failures,omitempty"`
}

// perfDerived reports the batch-pipeline headline numbers computed from the
// probes: the lease+dispatch overhead one operation pays on the per-request
// server path versus its share of a 64-op batched request, both relative to
// the direct (caller-managed pid) cost of the same counter increment.
type perfDerived struct {
	// PerRequestOverheadNs is server per-request ns/op minus direct ns/op.
	PerRequestOverheadNs float64 `json:"per_request_overhead_ns"`
	// Batch64PerOpOverheadNs is the batched server path's per-op ns (one
	// 64-entry /v1/batch request divided by 64) minus direct ns/op.
	Batch64PerOpOverheadNs float64 `json:"batch64_per_op_overhead_ns"`
	// Batch64OverheadRatio is PerRequestOverheadNs over
	// Batch64PerOpOverheadNs: how many times cheaper the batched path's
	// per-op overhead is. CI's bench-smoke job gates it at >= 6 (the dev
	// box records ~8x in BENCH_*.json).
	Batch64OverheadRatio float64 `json:"batch64_overhead_ratio"`
}

// perfSummary is the one-line JSON document emitted by -json, for recording
// as BENCH_*.json and diffing across PRs.
type perfSummary struct {
	Schema     string      `json:"schema"`
	GoVersion  string      `json:"go"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	ProbeMs    int64       `json:"probe_ms"`
	Probes     []perfProbe `json:"probes"`
	Derived    perfDerived `json:"derived"`
}

// batchProbeSize is the batch size of the batched probes and of the derived
// overhead ratio (matching the BenchmarkRegistryBatch/size-64 family).
const batchProbeSize = 64

// warmObjectHistory is the history depth the steady-state universal-object
// probe pre-grows before measuring: deep enough that an O(history) replay
// would dominate (BENCH_0003 measured ~2.9ms/op around this depth), so the
// probe demonstrates the replay cache's O(delta) amortization.
const warmObjectHistory = 10000

// measure runs op in a tight loop for roughly d and returns the op count,
// mean ns/op, and mean allocations per op (whole-process Mallocs delta, so
// run probes one at a time).
func measure(d time.Duration, op func()) (int64, float64, float64) {
	const batch = 64
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	var ops int64
	start := time.Now()
	for {
		for i := 0; i < batch; i++ {
			op()
		}
		ops += batch
		if time.Since(start) >= d {
			break
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return ops,
		float64(elapsed.Nanoseconds()) / float64(ops),
		float64(after.Mallocs-before.Mallocs) / float64(ops)
}

// emitJSONSummary measures the service-relevant hot paths — direct (caller
// manages the pid), pooled (a lease per operation), per-driver (the generic
// codec path of every registered kind), per-request (one HTTP request per
// operation), and batched (64 operations per request or lease) — and writes
// one JSON line. The pooled/direct pairs quantify the lease overhead the
// runtime layer adds; the driver probes cover each registered kind through
// the same dispatch the server uses; the request/batch pairs quantify what
// /v1/batch amortizes away; bench_test.go carries the full benchmark suite.
func emitJSONSummary(w io.Writer, probeTime time.Duration) error {
	const n = 8
	ctx := context.Background()
	var probes []perfProbe

	add := func(name, mode string, registers int, op func()) float64 {
		ops, nsPerOp, allocsPerOp := measure(probeTime, op)
		probes = append(probes, perfProbe{
			Name: name, Mode: mode, Ops: ops,
			NsPerOp: nsPerOp, AllocsPerOp: allocsPerOp, Registers: registers,
		})
		return nsPerOp
	}
	// addBatched measures op (which performs `size` operations per call) and
	// records per-operation numbers.
	addBatched := func(name, mode string, size int, op func()) float64 {
		batches, nsPerBatch, allocsPerBatch := measure(probeTime, op)
		nsPerOp := nsPerBatch / float64(size)
		probes = append(probes, perfProbe{
			Name: name, Mode: mode, Ops: batches * int64(size),
			NsPerOp: nsPerOp, AllocsPerOp: allocsPerBatch / float64(size),
		})
		return nsPerOp
	}

	var directIncNs float64
	{
		var alloc memory.NativeAllocator
		c := core.NewCounter(&alloc, n)
		directIncNs = add("counter/inc-direct", "steady", alloc.Registers(), func() { c.Inc(0) })
	}
	{
		var alloc memory.NativeAllocator
		c := core.NewCounter(&alloc, n)
		l := slruntime.NewLeaser(n)
		add("counter/inc-pooled", "steady", alloc.Registers(), func() {
			l.With(ctx, func(pid int) error { c.Inc(pid); return nil })
		})
	}
	{
		var alloc memory.NativeAllocator
		s := core.New[uint64](&alloc, n, 0)
		add("snapshot/update-direct", "steady", alloc.Registers(), func() { s.Update(0, 1) })
	}
	{
		var alloc memory.NativeAllocator
		s := core.New[uint64](&alloc, n, 0)
		l := slruntime.NewLeaser(n)
		add("snapshot/scan-pooled", "steady", alloc.Registers(), func() {
			l.With(ctx, func(pid int) error { s.Scan(pid); return nil })
		})
	}

	// Registry layer: a lease plus named-object dispatch per op, against one
	// BatchExecute amortizing the lease over batchProbeSize ops.
	{
		reg := registry.New(registry.Options{Procs: n})
		reg.Counter("bench")
		add("registry/counter-inc-perop", "steady", 0, func() {
			if err := reg.Counter("bench").Inc(ctx); err != nil {
				panic(err)
			}
		})
		ops := make([]registry.BatchOp, batchProbeSize)
		for i := range ops {
			ops[i] = registry.BatchOp{Kind: registry.KindCounter, Name: "bench", Op: registry.OpInc}
		}
		addBatched("registry/counter-inc-batch64", "steady", batchProbeSize, func() {
			if _, err := reg.BatchExecute(ctx, ops); err != nil {
				panic(err)
			}
		})
	}

	// Server layer: the full per-request path (mux, JSON, lease, dispatch)
	// against one 64-entry /v1/batch request. This is the pair the batch
	// pipeline exists for: the derived ratio below compares their per-op
	// overhead over the direct cost.
	var requestNs, batchNs float64
	{
		srv := server.New(registry.Options{Procs: n})
		requestNs = add("server/counter-inc-request", "steady", 0, func() {
			req := httptest.NewRequest("POST", "/v1/counter/bench/inc", nil)
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, req)
			if rec.Code != 200 {
				panic(fmt.Sprintf("inc request failed: %d %s", rec.Code, rec.Body))
			}
		})
		entries := make([]server.BatchEntry, batchProbeSize)
		for i := range entries {
			entries[i] = server.BatchEntry{Kind: registry.KindCounter, Name: "bench", Op: registry.OpInc}
		}
		body, err := json.Marshal(entries)
		if err != nil {
			return err
		}
		batchNs = addBatched("server/counter-inc-batch64", "steady", batchProbeSize, func() {
			req := httptest.NewRequest("POST", "/v1/batch", bytes.NewReader(body))
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, req)
			if rec.Code != 200 {
				panic(fmt.Sprintf("batch request failed: %d %s", rec.Code, rec.Body))
			}
		})
	}

	// Driver layer: the generic codec path every registered kind is served
	// through — driver Compile plus one pid lease and Run per op, against a
	// registry-resolved instance. The probe set is not a literal kind list:
	// it enumerates whatever drivers this binary imports (kind.Drivers) and
	// probes each one that supplies a representative request (kind.Prober),
	// so a newly registered kind — the Ellen–Sela bag here — shows up in
	// BENCH_*.json with zero edits to this file.
	//
	// These probes run LAST: the bag's inserted items and whatever history
	// the universal objects retain stay live in the registry, and running
	// them earlier would tax every later probe's GC and skew the derived
	// pair against BENCH_0002 (which had no driver probes). One number here
	// is marked mode:"growth" by construction: bag-insert with no removes
	// accretes live cells — compare growth probes only across equal
	// -probetime runs. (object-execute used to be the other growth probe;
	// with history truncation on by default its node count is bounded, so
	// it is steady now.) Their steady-state counterparts follow:
	// object-execute-warm measures the replay-cached path at a fixed
	// pre-grown history depth, bag-churn pairs every insert with a remove
	// so chunk recycling holds live space constant (recorded in
	// space_cells), and object-gc-churn keeps every pool pid active so the
	// low-watermark collector bounds live precedence-graph nodes.
	{
		reg := registry.New(registry.Options{Procs: n})
		for _, d := range kind.Drivers() {
			prober, ok := d.(kind.Prober)
			if !ok {
				continue
			}
			req := prober.Probe()
			inst, pool, err := reg.Get(registry.Kind(d.Kind()), "bench", req)
			if err != nil {
				return fmt.Errorf("driver probe %s: %w", d.Kind(), err)
			}
			mode := "steady"
			if gp, ok := d.(kind.GrowthProber); ok && gp.ProbeGrowth() {
				mode = "growth"
			}
			add("driver/"+d.Kind()+"-"+req.Op, mode, 0, func() {
				compiled, err := inst.Compile(req)
				if err != nil {
					panic(err)
				}
				if err := pool.With(ctx, func(pid int) error {
					_, runErr := compiled.Run(pid)
					return runErr
				}); err != nil {
					panic(err)
				}
			})
		}

		// Steady-state universal execution: pre-grow the object's history to
		// warmObjectHistory nodes, then measure the same compile+lease+run
		// path as driver/object-execute. The replay cache makes the per-op
		// cost O(delta since the leased pid's previous op) instead of
		// O(history), which is what separates this number from the growth
		// probe above.
		{
			req := kind.Request{Op: "execute", Type: "accumulator", Invocation: "addTo(1)"}
			inst, pool, err := reg.Get(registry.Kind("object"), "warm", req)
			if err != nil {
				return fmt.Errorf("warm object probe: %w", err)
			}
			compiled, err := inst.Compile(req)
			if err != nil {
				return fmt.Errorf("warm object probe: %w", err)
			}
			for i := 0; i < warmObjectHistory; i++ {
				if err := pool.With(ctx, func(pid int) error {
					_, runErr := compiled.Run(pid)
					return runErr
				}); err != nil {
					return fmt.Errorf("warm object prewarm: %w", err)
				}
			}
			add("driver/object-execute-warm", "steady", 0, func() {
				c, err := inst.Compile(req)
				if err != nil {
					panic(err)
				}
				if err := pool.With(ctx, func(pid int) error {
					_, runErr := c.Run(pid)
					return runErr
				}); err != nil {
					panic(err)
				}
			})
		}

		// Bounded-space bag churn: each round inserts one item and removes
		// one under a single lease, so chunk recycling keeps live cells
		// constant no matter how many items pass through; space_cells
		// records what is still reachable when the probe ends.
		{
			insReq := kind.Request{Op: "insert", Value: "churn"}
			inst, pool, err := reg.Get(registry.Kind("bag"), "churn", insReq)
			if err != nil {
				return fmt.Errorf("bag churn probe: %w", err)
			}
			insOp, err := inst.Compile(insReq)
			if err != nil {
				return fmt.Errorf("bag churn probe: %w", err)
			}
			remOp, err := inst.Compile(kind.Request{Op: "remove"})
			if err != nil {
				return fmt.Errorf("bag churn probe: %w", err)
			}
			addBatched("driver/bag-churn", "steady", 2, func() {
				if err := pool.With(ctx, func(pid int) error {
					if _, err := insOp.Run(pid); err != nil {
						return err
					}
					_, err := remOp.Run(pid)
					return err
				}); err != nil {
					panic(err)
				}
			})
			uw, ok := inst.(kind.Unwrapper)
			if !ok {
				return fmt.Errorf("bag churn probe: instance does not support Unwrap")
			}
			pb, ok := uw.Unwrap().(*bag.PooledBag)
			if !ok {
				return fmt.Errorf("bag churn probe: unexpected unwrap type %T", uw.Unwrap())
			}
			st, err := pb.Stats(ctx)
			if err != nil {
				return fmt.Errorf("bag churn stats: %w", err)
			}
			probes[len(probes)-1].SpaceCells = st.LiveCells
		}

		// Bounded-memory universal churn: sustained executes through the
		// driver path against a GC-enabled object (the driver default). The
		// low-watermark collector only truncates below what EVERY process
		// has anchored past, so the probe leases all n pids up front and
		// rotates them — an idle pid would pin the graph. space_cells
		// records the live precedence-graph nodes when the probe ends;
		// truncations and root_version record the collector's progress. The
		// paired universal/live-nodes probe prices the GCStats read itself
		// (one root scan plus a delta extraction).
		{
			req := kind.Request{Op: "execute", Type: "counter", Invocation: "inc()"}
			inst, pool, err := reg.Get(registry.Kind("object"), "gc-churn", req)
			if err != nil {
				return fmt.Errorf("object gc-churn probe: %w", err)
			}
			compiled, err := inst.Compile(req)
			if err != nil {
				return fmt.Errorf("object gc-churn probe: %w", err)
			}
			uw, ok := inst.(kind.Unwrapper)
			if !ok {
				return fmt.Errorf("object gc-churn probe: instance does not support Unwrap")
			}
			po, ok := uw.Unwrap().(*slmem.PooledObject)
			if !ok {
				return fmt.Errorf("object gc-churn probe: unexpected unwrap type %T", uw.Unwrap())
			}
			pids := make([]int, n)
			for i := range pids {
				pid, err := pool.Acquire(ctx)
				if err != nil {
					return fmt.Errorf("object gc-churn probe: %w", err)
				}
				pids[i] = pid
			}
			turn := 0
			add("driver/object-gc-churn", "steady", 0, func() {
				if _, err := compiled.Run(pids[turn]); err != nil {
					panic(err)
				}
				turn = (turn + 1) % n
			})
			obj := po.Unpooled()
			var st slmem.ObjectGCStats
			add("universal/live-nodes", "steady", 0, func() { st = obj.GCStats(pids[0]) })
			for _, p := range []*perfProbe{&probes[len(probes)-2], &probes[len(probes)-1]} {
				p.SpaceCells = st.LiveNodes
				p.Truncations = st.Truncations
				p.RootVersion = st.RootVersion
				p.GCFailures = st.CoverageFailures + st.ReplayFailures
			}
			for _, pid := range pids {
				pool.Release(pid)
			}
		}
	}

	derived := perfDerived{
		PerRequestOverheadNs:   requestNs - directIncNs,
		Batch64PerOpOverheadNs: batchNs - directIncNs,
	}
	if derived.Batch64PerOpOverheadNs > 0 {
		derived.Batch64OverheadRatio = derived.PerRequestOverheadNs / derived.Batch64PerOpOverheadNs
	}

	sum := perfSummary{
		Schema:     "slbench/v5",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		ProbeMs:    probeTime.Milliseconds(),
		Probes:     probes,
		Derived:    derived,
	}
	enc, err := json.Marshal(sum)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintln(w, string(enc))
	return err
}
