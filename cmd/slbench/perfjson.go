package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"slmem/internal/core"
	"slmem/internal/memory"
	slruntime "slmem/internal/runtime"
)

// perfProbe is one measured hot path in the -json summary.
type perfProbe struct {
	// Name identifies the path, e.g. "counter/inc-direct".
	Name string `json:"name"`
	// Ops is how many operations the probe completed.
	Ops int64 `json:"ops"`
	// NsPerOp is the mean wall-clock cost of one operation.
	NsPerOp float64 `json:"ns_per_op"`
	// Registers is how many base registers the probed object allocated —
	// the paper's space metric (constant for the bounded algorithms).
	Registers int `json:"registers"`
}

// perfSummary is the one-line JSON document emitted by -json, for recording
// as BENCH_*.json and diffing across PRs.
type perfSummary struct {
	Schema     string      `json:"schema"`
	GoVersion  string      `json:"go"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	ProbeMs    int64       `json:"probe_ms"`
	Probes     []perfProbe `json:"probes"`
}

// measure runs op in a tight loop for roughly d and returns the op count
// and mean ns/op.
func measure(d time.Duration, op func()) (int64, float64) {
	const batch = 64
	var ops int64
	start := time.Now()
	for {
		for i := 0; i < batch; i++ {
			op()
		}
		ops += batch
		if time.Since(start) >= d {
			break
		}
	}
	return ops, float64(time.Since(start).Nanoseconds()) / float64(ops)
}

// emitJSONSummary measures the service-relevant hot paths — direct (caller
// manages the pid) and pooled (a lease per operation) — and writes one JSON
// line. The pooled/direct pairs quantify the lease overhead the runtime
// layer adds; bench_test.go carries the full benchmark suite.
func emitJSONSummary(w io.Writer, probeTime time.Duration) error {
	const n = 8
	ctx := context.Background()
	var probes []perfProbe

	add := func(name string, registers int, op func()) {
		ops, nsPerOp := measure(probeTime, op)
		probes = append(probes, perfProbe{Name: name, Ops: ops, NsPerOp: nsPerOp, Registers: registers})
	}

	{
		var alloc memory.NativeAllocator
		c := core.NewCounter(&alloc, n)
		add("counter/inc-direct", alloc.Registers(), func() { c.Inc(0) })
	}
	{
		var alloc memory.NativeAllocator
		c := core.NewCounter(&alloc, n)
		l := slruntime.NewLeaser(n)
		add("counter/inc-pooled", alloc.Registers(), func() {
			l.With(ctx, func(pid int) error { c.Inc(pid); return nil })
		})
	}
	{
		var alloc memory.NativeAllocator
		s := core.New[uint64](&alloc, n, 0)
		add("snapshot/update-direct", alloc.Registers(), func() { s.Update(0, 1) })
	}
	{
		var alloc memory.NativeAllocator
		s := core.New[uint64](&alloc, n, 0)
		l := slruntime.NewLeaser(n)
		add("snapshot/scan-pooled", alloc.Registers(), func() {
			l.With(ctx, func(pid int) error { s.Scan(pid); return nil })
		})
	}

	sum := perfSummary{
		Schema:     "slbench/v1",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		ProbeMs:    probeTime.Milliseconds(),
		Probes:     probes,
	}
	enc, err := json.Marshal(sum)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintln(w, string(enc))
	return err
}
