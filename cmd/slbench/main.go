// Command slbench runs the experiment suite that regenerates the paper's
// claims (see DESIGN.md's experiment index and EXPERIMENTS.md for recorded
// outcomes).
//
// Usage:
//
//	slbench            # run every experiment
//	slbench -e E2,E5   # run selected experiments
//	slbench -md        # emit markdown tables
//	slbench -json      # emit a one-line JSON perf summary (for BENCH_*.json)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"slmem/internal/harness"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "slbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("slbench", flag.ContinueOnError)
	var (
		only      = fs.String("e", "", "comma-separated experiment ids to run (e.g. E1,E5); default all")
		markdown  = fs.Bool("md", false, "emit markdown instead of aligned text")
		jsonOut   = fs.Bool("json", false, "emit a one-line machine-readable perf summary instead of experiment tables")
		probeTime = fs.Duration("probetime", 50*time.Millisecond, "per-probe measuring time for -json")
		seed      = fs.Int64("seed", 0, "offset every experiment schedule seed; 0 reproduces the historical schedules byte-for-byte")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	harness.SetSeedBase(*seed)
	if *jsonOut {
		return emitJSONSummary(os.Stdout, *probeTime)
	}

	experiments := []struct {
		id  string
		run func() (*harness.Table, error)
	}{
		{"E1", harness.E1Observation4},
		{"E2", harness.E2ABASteps},
		{"E3", harness.E3SnapshotSteps},
		{"E4", harness.E4SoloOps},
		{"E5", harness.E5SpaceGrowth},
		{"E6", harness.E6Universal},
		{"E8", harness.E8Starvation},
		{"E9", harness.E9LeaseSoak},
	}

	selected := make(map[string]bool)
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			selected[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	ran := 0
	for _, e := range experiments {
		if len(selected) > 0 && !selected[e.id] {
			continue
		}
		start := time.Now()
		tbl, err := e.run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.id, err)
		}
		if *markdown {
			fmt.Println(tbl.Markdown())
		} else {
			fmt.Println(tbl.String())
		}
		fmt.Printf("(%s finished in %v)\n\n", e.id, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no experiments matched %q (E7 lives in bench_test.go: go test -bench=.)", *only)
	}
	return nil
}
