package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"

	"slmem/internal/registry"
	"slmem/internal/server"
)

func testServer(t *testing.T, procs int) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(server.New(registry.Options{Procs: procs, Shards: 4}))
	t.Cleanup(ts.Close)
	return ts
}

func post(t *testing.T, client *http.Client, url string, body any) (int, server.Response) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	res, err := client.Post(url, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var r server.Response
	if err := json.NewDecoder(res.Body).Decode(&r); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return res.StatusCode, r
}

func TestCounterRoundTrip(t *testing.T) {
	ts := testServer(t, 4)
	for i := 0; i < 3; i++ {
		if code, r := post(t, ts.Client(), ts.URL+"/v1/counter/clicks/inc", nil); code != 200 || !r.OK {
			t.Fatalf("inc: code=%d resp=%+v", code, r)
		}
	}
	code, r := post(t, ts.Client(), ts.URL+"/v1/counter/clicks/read", nil)
	if code != 200 || r.Value != "3" {
		t.Fatalf("read: code=%d resp=%+v, want value 3", code, r)
	}
}

func TestMaxRegRoundTrip(t *testing.T) {
	ts := testServer(t, 4)
	for _, v := range []string{"5", "9", "2"} {
		if code, r := post(t, ts.Client(), ts.URL+"/v1/maxreg/peak/write", server.Request{Value: v}); code != 200 || !r.OK {
			t.Fatalf("write %s: code=%d resp=%+v", v, code, r)
		}
	}
	code, r := post(t, ts.Client(), ts.URL+"/v1/maxreg/peak/read", nil)
	if code != 200 || r.Value != "9" {
		t.Fatalf("read: code=%d resp=%+v, want value 9", code, r)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	ts := testServer(t, 4)
	if code, r := post(t, ts.Client(), ts.URL+"/v1/snapshot/board/update", server.Request{Value: "hello"}); code != 200 || !r.OK {
		t.Fatalf("update: code=%d resp=%+v", code, r)
	}
	code, r := post(t, ts.Client(), ts.URL+"/v1/snapshot/board/scan", nil)
	if code != 200 || len(r.View) != 4 {
		t.Fatalf("scan: code=%d resp=%+v, want 4-component view", code, r)
	}
	found := false
	for _, v := range r.View {
		found = found || v == "hello"
	}
	if !found {
		t.Fatalf("update not visible in view %v", r.View)
	}
}

func TestObjectExecute(t *testing.T) {
	ts := testServer(t, 4)
	add := server.Request{Type: "set", Invocation: "add(7)"}
	if code, r := post(t, ts.Client(), ts.URL+"/v1/object/bag/execute", add); code != 200 || !r.OK {
		t.Fatalf("add: code=%d resp=%+v", code, r)
	}
	has := server.Request{Type: "set", Invocation: "contains(7)"}
	code, r := post(t, ts.Client(), ts.URL+"/v1/object/bag/execute", has)
	if code != 200 || r.Value != "true" {
		t.Fatalf("contains: code=%d resp=%+v, want true", code, r)
	}
}

func TestErrorStatuses(t *testing.T) {
	ts := testServer(t, 2)
	client := ts.Client()
	cases := []struct {
		name string
		url  string
		body any
		want int
	}{
		{"unknown kind", "/v1/stack/s/push", nil, 404},
		{"unknown op", "/v1/counter/c/dec", nil, 404},
		{"bad maxreg value", "/v1/maxreg/m/write", server.Request{Value: "seven"}, 400},
		{"bad object type", "/v1/object/o/execute", server.Request{Type: "queue", Invocation: "x()"}, 400},
		{"bad invocation", "/v1/object/o2/execute", server.Request{Type: "set", Invocation: "frob(1)"}, 400},
	}
	for _, tc := range cases {
		code, r := post(t, client, ts.URL+tc.url, tc.body)
		if code != tc.want || r.OK || r.Error == "" {
			t.Errorf("%s: code=%d resp=%+v, want status %d with error", tc.name, code, r, tc.want)
		}
	}

	// None of the failing requests above may have registered an object —
	// the registry has no eviction, so that would be a memory leak vector.
	res0, err := client.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st0 server.Stats
	if err := json.NewDecoder(res0.Body).Decode(&st0); err != nil {
		t.Fatal(err)
	}
	res0.Body.Close()
	for kind, count := range st0.Registry.Objects {
		if count != 0 {
			t.Errorf("failing requests created %d %s object(s)", count, kind)
		}
	}

	// Type mismatch against an existing object.
	if code, _ := post(t, client, ts.URL+"/v1/object/o2/execute", server.Request{Type: "set", Invocation: "add(1)"}); code != 200 {
		t.Fatalf("priming object: code=%d", code)
	}
	if code, _ := post(t, client, ts.URL+"/v1/object/o2/execute", server.Request{Type: "register", Invocation: "read()"}); code != 409 {
		t.Errorf("type mismatch: code=%d, want 409", code)
	}

	// Malformed JSON body.
	res, err := client.Post(ts.URL+"/v1/counter/c/inc", "application/json", bytes.NewBufferString("{"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if res.StatusCode != 400 {
		t.Errorf("malformed body: code=%d, want 400", res.StatusCode)
	}

	// Operation endpoints are POST-only.
	res, err = client.Get(ts.URL + "/v1/counter/c/read")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if res.StatusCode != 405 {
		t.Errorf("GET on op endpoint: code=%d, want 405", res.StatusCode)
	}
}

func TestStatsEndpoint(t *testing.T) {
	ts := testServer(t, 4)
	post(t, ts.Client(), ts.URL+"/v1/counter/c/inc", nil)
	post(t, ts.Client(), ts.URL+"/v1/snapshot/s/scan", nil)

	res, err := ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var st server.Stats
	if err := json.NewDecoder(res.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Requests < 2 {
		t.Errorf("requests = %d, want >= 2", st.Requests)
	}
	if st.Ops["counter"] != 1 || st.Ops["snapshot"] != 1 {
		t.Errorf("ops = %v, want counter and snapshot counted once each", st.Ops)
	}
	if st.Registry.Procs != 4 {
		t.Errorf("registry procs = %d, want 4", st.Registry.Procs)
	}
	if st.Registry.PIDsInUse != 0 {
		t.Errorf("pids in use at rest = %d, want 0", st.Registry.PIDsInUse)
	}
}

// TestConcurrentSwarm is the acceptance scenario: 64 concurrent HTTP
// clients hammer one shared counter and one shared snapshot through a
// server whose pid pool is much smaller than the client count, so every
// request path — lease fast path, stealing, and FIFO blocking — is
// exercised. The counter must not lose an increment and no pid may leak.
func TestConcurrentSwarm(t *testing.T) {
	const clients = 64
	opsPerClient := 24
	if testing.Short() {
		opsPerClient = 8
	}
	ts := testServer(t, 8) // 8 pids serving 64 clients: heavy lease contention
	client := ts.Client()
	client.Transport = &http.Transport{MaxIdleConnsPerHost: clients}

	incsPerClient := 0
	for i := 0; i < opsPerClient; i++ {
		if i%3 != 2 {
			incsPerClient++
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < opsPerClient; i++ {
				var code int
				var r server.Response
				switch i % 3 {
				case 0, 1:
					code, r = post(t, client, ts.URL+"/v1/counter/shared/inc", nil)
				default:
					code, r = post(t, client, ts.URL+"/v1/snapshot/shared/update",
						server.Request{Value: fmt.Sprintf("c%d-%d", c, i)})
					if code == 200 {
						code, r = post(t, client, ts.URL+"/v1/snapshot/shared/scan", nil)
					}
				}
				if code != 200 || !r.OK {
					errs <- fmt.Errorf("client %d op %d: code=%d resp=%+v", c, i, code, r)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	code, r := post(t, client, ts.URL+"/v1/counter/shared/read", nil)
	if code != 200 {
		t.Fatalf("final read: code=%d", code)
	}
	want := strconv.Itoa(clients * incsPerClient)
	if r.Value != want {
		t.Fatalf("final count = %s, want %s (lost increments)", r.Value, want)
	}

	res, err := client.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var st server.Stats
	if err := json.NewDecoder(res.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Registry.PIDsInUse != 0 {
		t.Fatalf("pids leaked: %d in use after swarm", st.Registry.PIDsInUse)
	}
	if st.Failures != 0 {
		t.Fatalf("server recorded %d failures", st.Failures)
	}
	t.Logf("swarm: %d requests, pool=%+v", st.Requests, st.Registry.Pool)
}
