package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"

	"slmem/internal/registry"
	"slmem/internal/server"
)

func testServer(t *testing.T, procs int) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(server.New(registry.Options{Procs: procs, Shards: 4}))
	t.Cleanup(ts.Close)
	return ts
}

func post(t *testing.T, client *http.Client, url string, body any) (int, server.Response) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	res, err := client.Post(url, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var r server.Response
	if err := json.NewDecoder(res.Body).Decode(&r); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return res.StatusCode, r
}

func TestCounterRoundTrip(t *testing.T) {
	ts := testServer(t, 4)
	for i := 0; i < 3; i++ {
		if code, r := post(t, ts.Client(), ts.URL+"/v1/counter/clicks/inc", nil); code != 200 || !r.OK {
			t.Fatalf("inc: code=%d resp=%+v", code, r)
		}
	}
	code, r := post(t, ts.Client(), ts.URL+"/v1/counter/clicks/read", nil)
	if code != 200 || r.Value != "3" {
		t.Fatalf("read: code=%d resp=%+v, want value 3", code, r)
	}
}

func TestMaxRegRoundTrip(t *testing.T) {
	ts := testServer(t, 4)
	for _, v := range []string{"5", "9", "2"} {
		if code, r := post(t, ts.Client(), ts.URL+"/v1/maxreg/peak/write", server.Request{Value: v}); code != 200 || !r.OK {
			t.Fatalf("write %s: code=%d resp=%+v", v, code, r)
		}
	}
	code, r := post(t, ts.Client(), ts.URL+"/v1/maxreg/peak/read", nil)
	if code != 200 || r.Value != "9" {
		t.Fatalf("read: code=%d resp=%+v, want value 9", code, r)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	ts := testServer(t, 4)
	if code, r := post(t, ts.Client(), ts.URL+"/v1/snapshot/board/update", server.Request{Value: "hello"}); code != 200 || !r.OK {
		t.Fatalf("update: code=%d resp=%+v", code, r)
	}
	code, r := post(t, ts.Client(), ts.URL+"/v1/snapshot/board/scan", nil)
	if code != 200 || len(r.View) != 4 {
		t.Fatalf("scan: code=%d resp=%+v, want 4-component view", code, r)
	}
	found := false
	for _, v := range r.View {
		found = found || v == "hello"
	}
	if !found {
		t.Fatalf("update not visible in view %v", r.View)
	}
}

func TestObjectExecute(t *testing.T) {
	ts := testServer(t, 4)
	add := server.Request{Type: "set", Invocation: "add(7)"}
	if code, r := post(t, ts.Client(), ts.URL+"/v1/object/bag/execute", add); code != 200 || !r.OK {
		t.Fatalf("add: code=%d resp=%+v", code, r)
	}
	has := server.Request{Type: "set", Invocation: "contains(7)"}
	code, r := post(t, ts.Client(), ts.URL+"/v1/object/bag/execute", has)
	if code != 200 || r.Value != "true" {
		t.Fatalf("contains: code=%d resp=%+v, want true", code, r)
	}
}

func TestErrorStatuses(t *testing.T) {
	ts := testServer(t, 2)
	client := ts.Client()
	cases := []struct {
		name string
		url  string
		body any
		want int
	}{
		{"unknown kind", "/v1/stack/s/push", nil, 404},
		{"unknown op", "/v1/counter/c/dec", nil, 404},
		{"bad maxreg value", "/v1/maxreg/m/write", server.Request{Value: "seven"}, 400},
		{"bad object type", "/v1/object/o/execute", server.Request{Type: "queue", Invocation: "x()"}, 400},
		{"bad invocation", "/v1/object/o2/execute", server.Request{Type: "set", Invocation: "frob(1)"}, 400},
	}
	for _, tc := range cases {
		code, r := post(t, client, ts.URL+tc.url, tc.body)
		if code != tc.want || r.OK || r.Error == "" {
			t.Errorf("%s: code=%d resp=%+v, want status %d with error", tc.name, code, r, tc.want)
		}
	}

	// None of the failing requests above may have registered an object —
	// the registry has no eviction, so that would be a memory leak vector.
	res0, err := client.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st0 server.Stats
	if err := json.NewDecoder(res0.Body).Decode(&st0); err != nil {
		t.Fatal(err)
	}
	res0.Body.Close()
	for kind, count := range st0.Registry.Objects {
		if count != 0 {
			t.Errorf("failing requests created %d %s object(s)", count, kind)
		}
	}

	// Type mismatch against an existing object.
	if code, _ := post(t, client, ts.URL+"/v1/object/o2/execute", server.Request{Type: "set", Invocation: "add(1)"}); code != 200 {
		t.Fatalf("priming object: code=%d", code)
	}
	if code, _ := post(t, client, ts.URL+"/v1/object/o2/execute", server.Request{Type: "register", Invocation: "read()"}); code != 409 {
		t.Errorf("type mismatch: code=%d, want 409", code)
	}

	// Malformed JSON body.
	res, err := client.Post(ts.URL+"/v1/counter/c/inc", "application/json", bytes.NewBufferString("{"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if res.StatusCode != 400 {
		t.Errorf("malformed body: code=%d, want 400", res.StatusCode)
	}

	// Operation endpoints are POST-only.
	res, err = client.Get(ts.URL + "/v1/counter/c/read")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if res.StatusCode != 405 {
		t.Errorf("GET on op endpoint: code=%d, want 405", res.StatusCode)
	}
}

func TestStatsEndpoint(t *testing.T) {
	ts := testServer(t, 4)
	post(t, ts.Client(), ts.URL+"/v1/counter/c/inc", nil)
	post(t, ts.Client(), ts.URL+"/v1/snapshot/s/scan", nil)

	res, err := ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var st server.Stats
	if err := json.NewDecoder(res.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Requests < 2 {
		t.Errorf("requests = %d, want >= 2", st.Requests)
	}
	if st.Ops["counter"] != 1 || st.Ops["snapshot"] != 1 {
		t.Errorf("ops = %v, want counter and snapshot counted once each", st.Ops)
	}
	if st.Registry.Procs != 4 {
		t.Errorf("registry procs = %d, want 4", st.Registry.Procs)
	}
	if st.Registry.PIDsInUse != 0 {
		t.Errorf("pids in use at rest = %d, want 0", st.Registry.PIDsInUse)
	}
}

// TestConcurrentSwarm is the acceptance scenario: 64 concurrent HTTP
// clients hammer one shared counter and one shared snapshot through a
// server whose pid pool is much smaller than the client count, so every
// request path — lease fast path, stealing, and FIFO blocking — is
// exercised. The counter must not lose an increment and no pid may leak.
func TestConcurrentSwarm(t *testing.T) {
	const clients = 64
	opsPerClient := 24
	if testing.Short() {
		opsPerClient = 8
	}
	ts := testServer(t, 8) // 8 pids serving 64 clients: heavy lease contention
	client := ts.Client()
	client.Transport = &http.Transport{MaxIdleConnsPerHost: clients}

	incsPerClient := 0
	for i := 0; i < opsPerClient; i++ {
		if i%3 != 2 {
			incsPerClient++
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < opsPerClient; i++ {
				var code int
				var r server.Response
				switch i % 3 {
				case 0, 1:
					code, r = post(t, client, ts.URL+"/v1/counter/shared/inc", nil)
				default:
					code, r = post(t, client, ts.URL+"/v1/snapshot/shared/update",
						server.Request{Value: fmt.Sprintf("c%d-%d", c, i)})
					if code == 200 {
						code, r = post(t, client, ts.URL+"/v1/snapshot/shared/scan", nil)
					}
				}
				if code != 200 || !r.OK {
					errs <- fmt.Errorf("client %d op %d: code=%d resp=%+v", c, i, code, r)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	code, r := post(t, client, ts.URL+"/v1/counter/shared/read", nil)
	if code != 200 {
		t.Fatalf("final read: code=%d", code)
	}
	want := strconv.Itoa(clients * incsPerClient)
	if r.Value != want {
		t.Fatalf("final count = %s, want %s (lost increments)", r.Value, want)
	}

	res, err := client.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var st server.Stats
	if err := json.NewDecoder(res.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Registry.PIDsInUse != 0 {
		t.Fatalf("pids leaked: %d in use after swarm", st.Registry.PIDsInUse)
	}
	if st.Failures != 0 {
		t.Fatalf("server recorded %d failures", st.Failures)
	}
	t.Logf("swarm: %d requests, pool=%+v", st.Requests, st.Registry.Pool)
}

// postBatchE posts a /v1/batch body and decodes the batch reply, returning
// errors instead of failing the test so client goroutines can call it
// (t.Fatal must only run on the test goroutine).
func postBatchE(client *http.Client, url string, entries any) (int, server.BatchResponse, error) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(entries); err != nil {
		return 0, server.BatchResponse{}, err
	}
	res, err := client.Post(url+"/v1/batch", "application/json", &buf)
	if err != nil {
		return 0, server.BatchResponse{}, err
	}
	defer res.Body.Close()
	var r server.BatchResponse
	if err := json.NewDecoder(res.Body).Decode(&r); err != nil {
		return res.StatusCode, server.BatchResponse{}, fmt.Errorf("decode batch reply: %w", err)
	}
	return res.StatusCode, r, nil
}

// postBatch is postBatchE for the test goroutine: any transport or decode
// failure fails the test immediately.
func postBatch(t *testing.T, client *http.Client, url string, entries any) (int, server.BatchResponse) {
	t.Helper()
	code, r, err := postBatchE(client, url, entries)
	if err != nil {
		t.Fatal(err)
	}
	return code, r
}

func TestBatchRoundTrip(t *testing.T) {
	ts := testServer(t, 4)
	entries := []server.BatchEntry{
		{Kind: "counter", Name: "clicks", Op: "inc"},
		{Kind: "counter", Name: "clicks", Op: "inc"},
		{Kind: "counter", Name: "clicks", Op: "read"},
		{Kind: "maxreg", Name: "peak", Op: "write", Value: "12"},
		{Kind: "maxreg", Name: "peak", Op: "read"},
		{Kind: "snapshot", Name: "board", Op: "update", Value: "x"},
		{Kind: "snapshot", Name: "board", Op: "scan"},
		{Kind: "object", Name: "bag", Op: "execute", Type: "set", Invocation: "add(7)"},
		{Kind: "object", Name: "bag", Op: "execute", Type: "set", Invocation: "contains(7)"},
	}
	code, r := postBatch(t, ts.Client(), ts.URL, entries)
	if code != 200 || !r.OK {
		t.Fatalf("batch: code=%d resp=%+v", code, r)
	}
	if len(r.Results) != len(entries) {
		t.Fatalf("got %d results for %d entries", len(r.Results), len(entries))
	}
	if r.Results[2].Value != "2" {
		t.Errorf("counter read = %q, want 2", r.Results[2].Value)
	}
	if r.Results[4].Value != "12" {
		t.Errorf("maxreg read = %q, want 12", r.Results[4].Value)
	}
	if len(r.Results[6].View) != 4 {
		t.Errorf("scan view = %v, want 4 components", r.Results[6].View)
	}
	if r.Results[8].Value != "true" {
		t.Errorf("contains(7) = %q, want true", r.Results[8].Value)
	}
	if r.Stats.Ops != len(entries) || r.Stats.Failed != 0 || r.Stats.Leases != 1 {
		t.Errorf("stats = %+v, want ops=%d failed=0 leases=1", r.Stats, len(entries))
	}

	// The batch must be visible in server metrics.
	res, err := ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var st server.Stats
	if err := json.NewDecoder(res.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Batches != 1 || st.BatchOps != int64(len(entries)) {
		t.Errorf("batches=%d batch_ops=%d, want 1 and %d", st.Batches, st.BatchOps, len(entries))
	}
	if st.Registry.Pool.Acquires != 1 {
		t.Errorf("pool acquires = %d, want 1 (one lease for the whole batch)", st.Registry.Pool.Acquires)
	}
}

func TestBatchPartialFailure(t *testing.T) {
	ts := testServer(t, 4)
	entries := []server.BatchEntry{
		{Kind: "counter", Name: "c", Op: "inc"},
		{Kind: "stack", Name: "s", Op: "push"},
		{Kind: "maxreg", Name: "m", Op: "write", Value: "twelve"},
		{Kind: "counter", Name: "c", Op: "read"},
	}
	code, r := postBatch(t, ts.Client(), ts.URL, entries)
	if code != 200 {
		t.Fatalf("partial-failure batch: code=%d, want 200", code)
	}
	if r.OK {
		t.Error("batch with failed entries reported ok=true")
	}
	if !r.Results[0].OK || r.Results[1].OK || r.Results[2].OK || !r.Results[3].OK {
		t.Fatalf("per-entry ok flags wrong: %+v", r.Results)
	}
	if r.Results[1].Error == "" || r.Results[2].Error == "" {
		t.Error("failed entries carry no error text")
	}
	if r.Results[3].Value != "1" {
		t.Errorf("read after failures = %q, want 1", r.Results[3].Value)
	}
	if r.Stats.Failed != 2 {
		t.Errorf("stats.failed = %d, want 2", r.Stats.Failed)
	}
}

func TestBatchErrorPaths(t *testing.T) {
	ts := httptest.NewServer(server.New(registry.Options{Procs: 2, Shards: 2}, server.WithMaxBatchOps(4)))
	t.Cleanup(ts.Close)
	client := ts.Client()

	// Malformed body: not JSON at all.
	res, err := client.Post(ts.URL+"/v1/batch", "application/json", bytes.NewBufferString("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if res.StatusCode != 400 {
		t.Errorf("malformed batch body: code=%d, want 400", res.StatusCode)
	}

	// Malformed body: an object where an array is required.
	if code, r := postBatch(t, client, ts.URL, map[string]string{"kind": "counter"}); code != 400 || r.Error == "" {
		t.Errorf("non-array batch body: code=%d resp=%+v, want 400 with error", code, r)
	}

	// Malformed entry: wrong JSON type inside the array.
	res, err = client.Post(ts.URL+"/v1/batch", "application/json", bytes.NewBufferString(`[{"kind":"counter","name":"c","op":"inc"}, 42]`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if res.StatusCode != 400 {
		t.Errorf("malformed batch entry: code=%d, want 400", res.StatusCode)
	}

	// Empty batch.
	if code, _ := postBatch(t, client, ts.URL, []server.BatchEntry{}); code != 400 {
		t.Errorf("empty batch: code=%d, want 400", code)
	}

	// Oversized batch: 5 entries against a 4-entry cap.
	big := make([]server.BatchEntry, 5)
	for i := range big {
		big[i] = server.BatchEntry{Kind: "counter", Name: "c", Op: "inc"}
	}
	code, r := postBatch(t, client, ts.URL, big)
	if code != 413 || r.Error == "" {
		t.Errorf("oversized batch: code=%d resp=%+v, want 413 with error", code, r)
	}

	// Unknown kind / op / type are per-entry failures, not batch failures.
	code, r = postBatch(t, client, ts.URL, []server.BatchEntry{
		{Kind: "stack", Name: "s", Op: "push"},
		{Kind: "counter", Name: "c", Op: "dec"},
		{Kind: "object", Name: "o", Op: "execute", Type: "queue", Invocation: "x()"},
	})
	if code != 200 || r.OK || r.Stats.Failed != 3 || r.Stats.Leases != 0 {
		t.Errorf("all-invalid batch: code=%d resp=%+v, want 200, ok=false, failed=3, leases=0", code, r)
	}

	// None of the failing requests may have registered objects.
	res, err = client.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st server.Stats
	if err := json.NewDecoder(res.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	for kind, count := range st.Registry.Objects {
		if count != 0 {
			t.Errorf("failing batches created %d %s object(s)", count, kind)
		}
	}

	// GET on the batch endpoint is rejected.
	res, err = client.Get(ts.URL + "/v1/batch")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if res.StatusCode != 405 {
		t.Errorf("GET /v1/batch: code=%d, want 405", res.StatusCode)
	}
}

func TestBatchCancelledContext(t *testing.T) {
	// A request whose context is already cancelled must fail as a whole with
	// 503 (the lease is never acquired) and leave no object behind.
	srv := server.New(registry.Options{Procs: 1, Shards: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	body, err := json.Marshal([]server.BatchEntry{{Kind: "counter", Name: "c", Op: "inc"}})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", "/v1/batch", bytes.NewReader(body)).WithContext(ctx)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != 503 {
		t.Fatalf("cancelled batch: code=%d, want 503", rec.Code)
	}
	var r server.BatchResponse
	if err := json.NewDecoder(rec.Body).Decode(&r); err != nil {
		t.Fatal(err)
	}
	if r.OK || r.Error == "" {
		t.Fatalf("cancelled batch reply = %+v, want ok=false with error", r)
	}
	st := srv.Stats()
	if st.Registry.PIDsInUse != 0 {
		t.Fatalf("pids in use after cancelled batch: %d", st.Registry.PIDsInUse)
	}
	// The registry has no eviction, so the dead client's batch must not
	// have lazily created the objects it named.
	for kind, count := range st.Registry.Objects {
		if count != 0 {
			t.Errorf("cancelled batch created %d %s object(s)", count, kind)
		}
	}
}

// TestBatchSwarm mirrors TestConcurrentSwarm through the batch endpoint:
// many clients, each submitting batches against a shared counter, with the
// pid pool far smaller than the client count. No increment may be lost and
// no pid may leak.
func TestBatchSwarm(t *testing.T) {
	const clients = 32
	batchesPerClient := 6
	if testing.Short() {
		batchesPerClient = 2
	}
	const incsPerBatch = 16
	ts := testServer(t, 4)
	client := ts.Client()
	client.Transport = &http.Transport{MaxIdleConnsPerHost: clients}

	entries := make([]server.BatchEntry, incsPerBatch)
	for i := range entries {
		entries[i] = server.BatchEntry{Kind: "counter", Name: "shared", Op: "inc"}
	}

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := 0; b < batchesPerClient; b++ {
				code, r, err := postBatchE(client, ts.URL, entries)
				if err != nil {
					errs <- fmt.Errorf("client %d batch %d: %w", c, b, err)
					return
				}
				if code != 200 || !r.OK {
					errs <- fmt.Errorf("client %d batch %d: code=%d resp=%+v", c, b, code, r)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	code, r := post(t, client, ts.URL+"/v1/counter/shared/read", nil)
	if code != 200 {
		t.Fatalf("final read: code=%d", code)
	}
	want := strconv.Itoa(clients * batchesPerClient * incsPerBatch)
	if r.Value != want {
		t.Fatalf("final count = %s, want %s (lost increments)", r.Value, want)
	}
	res, err := client.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var st server.Stats
	if err := json.NewDecoder(res.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Registry.PIDsInUse != 0 {
		t.Fatalf("pids leaked: %d in use after batch swarm", st.Registry.PIDsInUse)
	}
	// Amortization check: far fewer lease acquisitions than operations.
	totalBatches := int64(clients * batchesPerClient)
	if st.Registry.Pool.Acquires > totalBatches+1 {
		t.Errorf("pool acquires = %d for %d batches: lease not amortized", st.Registry.Pool.Acquires, totalBatches)
	}
	t.Logf("batch swarm: %d batches x %d incs, pool=%+v", totalBatches, incsPerBatch, st.Registry.Pool)
}

func TestKindsEndpoint(t *testing.T) {
	ts := testServer(t, 4)
	res, err := ts.Client().Get(ts.URL + "/v1/kinds")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != 200 {
		t.Fatalf("GET /v1/kinds: code=%d", res.StatusCode)
	}
	var kr server.KindsResponse
	if err := json.NewDecoder(res.Body).Decode(&kr); err != nil {
		t.Fatal(err)
	}
	got := make(map[string][]string)
	for _, info := range kr.Kinds {
		var ops []string
		for _, op := range info.Ops {
			ops = append(ops, op.Name)
		}
		got[info.Kind] = ops
	}
	for kind, wantOps := range map[string][]string{
		"counter":  {"inc", "read"},
		"maxreg":   {"write", "read"},
		"snapshot": {"update", "scan"},
		"object":   {"execute"},
		"bag":      {"insert", "remove", "size"},
	} {
		ops, ok := got[kind]
		if !ok {
			t.Errorf("kind %q missing from /v1/kinds: %v", kind, got)
			continue
		}
		if fmt.Sprint(ops) != fmt.Sprint(wantOps) {
			t.Errorf("kind %q ops = %v, want %v", kind, ops, wantOps)
		}
	}
}

func TestBatchIntrospectionEntriesHTTP(t *testing.T) {
	ts := testServer(t, 4)
	code, r := postBatch(t, ts.Client(), ts.URL, []server.BatchEntry{
		{Kind: "counter", Name: "c", Op: "inc"},
		{Kind: "counter", Op: "names"},
		{Op: "stats"},
	})
	if code != 200 || !r.OK {
		t.Fatalf("introspection batch: code=%d resp=%+v", code, r)
	}
	if view := r.Results[1].View; len(view) != 1 || view[0] != "c" {
		t.Errorf("names entry = %v, want [c]", view)
	}
	var st registry.Stats
	if err := json.Unmarshal([]byte(r.Results[2].Value), &st); err != nil {
		t.Fatalf("stats entry is not JSON: %v", err)
	}
	if st.Objects["counter"] != 1 {
		t.Errorf("stats entry counted %d counters, want 1", st.Objects["counter"])
	}
	if r.Stats.Leases != 1 {
		t.Errorf("leases = %d, want 1 (introspection entries lease nothing)", r.Stats.Leases)
	}
}

func TestRunRejectsBadMaxBatch(t *testing.T) {
	if err := run([]string{"-maxbatch", "0"}); err == nil {
		t.Fatal("-maxbatch 0 accepted")
	}
	if err := run([]string{"-maxbatch", "-5"}); err == nil {
		t.Fatal("negative -maxbatch accepted")
	}
}
