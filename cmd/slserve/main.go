// Command slserve serves strongly linearizable shared objects over
// HTTP/JSON. It fronts a named-object registry (internal/registry) through
// the handler in internal/server: objects are created lazily on first use,
// operations lease a process id from a fixed pool of -procs ids (the shared
// pool, or a per-kind pool where a driver requests one), and
// every object is strongly linearizable — the guarantee composed clients
// need under adversarial scheduling. The kind set is open: this binary
// serves every driver it imports (internal/kind) — the four paper kinds
// plus the Ellen–Sela bag — and GET /v1/kinds lists them.
//
// Usage:
//
//	slserve [-addr :8080] [-procs 16] [-shards 16] [-maxbatch 1024]
//
// See docs/API.md for the endpoint reference. -procs bounds concurrently
// executing operations: requests beyond it queue FIFO on the pid pool (and
// give up when the client disconnects). -maxbatch caps the entries accepted
// per POST /v1/batch request, which runs many operations under one pid
// lease. SIGINT/SIGTERM drain in-flight requests before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	_ "slmem/internal/bag" // register the bag kind
	"slmem/internal/kind"
	"slmem/internal/registry"
	"slmem/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "slserve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("slserve", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", ":8080", "listen address")
		procs    = fs.Int("procs", 16, "process pool size (max concurrent operations)")
		shards   = fs.Int("shards", 16, "registry shard count")
		maxBatch = fs.Int("maxbatch", server.MaxBatchOps, "max entries per /v1/batch request")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *maxBatch <= 0 {
		return fmt.Errorf("-maxbatch must be positive, got %d", *maxBatch)
	}

	httpSrv := &http.Server{
		Addr: *addr,
		Handler: server.New(registry.Options{Procs: *procs, Shards: *shards},
			server.WithMaxBatchOps(*maxBatch)),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("slserve: listening on %s (procs=%d shards=%d kinds=%s)",
			*addr, *procs, *shards, strings.Join(kind.Names(), ","))
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("slserve: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return httpSrv.Shutdown(shutdownCtx)
}
