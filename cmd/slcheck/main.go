// Command slcheck model-checks the ABA-detecting register implementations
// for linearizability and strong linearizability.
//
// Scenarios:
//
//	obs4     — the paper's Observation 4 transcript tree {S, T1, T2}
//	           (Algorithm 1 must fail, each branch staying linearizable)
//	explore  — exhaustive interleaving tree of a small workload
//	random   — randomly sampled branching trees
//	hunt     — branch at every cut point of one natural execution with
//	           writer- vs reader-priority futures; rediscovers Observation 4
//	           on alg1 without knowing where the commitment point lies
//
// Examples:
//
//	slcheck -scenario obs4
//	slcheck -scenario explore -impl alg2 -writes 1 -reads 1
//	slcheck -scenario random -impl alg1 -trees 50
//	slcheck -scenario hunt -impl alg1
package main

import (
	"flag"
	"fmt"
	"os"

	"slmem/internal/harness"
	"slmem/internal/lincheck"
	"slmem/internal/sched"
	"slmem/internal/spec"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "slcheck:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("slcheck", flag.ContinueOnError)
	var (
		scenario = fs.String("scenario", "obs4", "obs4 | explore | random")
		impl     = fs.String("impl", "alg1", "alg1 (linearizable) | alg2 (strongly linearizable)")
		writes   = fs.Int("writes", 1, "DWrites per writer (explore)")
		reads    = fs.Int("reads", 1, "DReads per reader (explore)")
		maxNodes = fs.Int("maxnodes", 500000, "node budget for exploration")
		trees    = fs.Int("trees", 25, "number of random branching trees")
		prefix   = fs.Int("prefix", 8, "random tree prefix length")
		fanout   = fs.Int("fanout", 3, "random tree fanout")
		verbose  = fs.Bool("v", false, "print transcripts of failing nodes")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	implSel := harness.ABALinearizable
	if *impl == "alg2" {
		implSel = harness.ABAStrong
	}
	sp := spec.ABARegister{N: 2}

	switch *scenario {
	case "obs4":
		tree, err := harness.Observation4Tree()
		if err != nil {
			return err
		}
		fmt.Println("scenario: Observation 4 tree {S, T1, T2} on Algorithm 1")
		for i, child := range tree.Children {
			chk, err := lincheck.CheckTranscript(child.T, sp)
			if err != nil {
				return err
			}
			fmt.Printf("  branch T%d linearizable: %v\n", i+1, chk.Ok)
			if *verbose {
				fmt.Println(child.T.Interpreted())
			}
		}
		res, err := lincheck.CheckStrong(lincheck.FromSchedTree(tree), sp)
		if err != nil {
			return err
		}
		fmt.Printf("  prefix-preserving linearization function exists: %v\n", res.Ok)
		if res.Ok {
			return fmt.Errorf("unexpected: Observation 4 tree accepted")
		}
		fmt.Println("verdict: Algorithm 1 is NOT strongly linearizable (Observation 4 reproduced)")
		return nil

	case "explore":
		sys := harness.ABASystem(implSel, 2, 1, *reads, *writes)
		tree, err := sched.Explore(sys, 0, *maxNodes, sched.Options{})
		if err != nil {
			return err
		}
		nodes, leaves, depth := harness.TreeStats(tree)
		fmt.Printf("scenario: exhaustive exploration of %s, 1 writer × %d DWrites, 1 reader × %d DReads\n",
			implSel, *writes, *reads)
		fmt.Printf("  transcript tree: %d nodes, %d complete leaves, max depth %d\n", nodes, leaves, depth)
		res, err := lincheck.CheckStrong(lincheck.FromSchedTree(tree), sp)
		if err != nil {
			return err
		}
		fmt.Printf("  strongly linearizable over the full tree: %v\n", res.Ok)
		if !res.Ok {
			fmt.Printf("  first failing node: %s\n", res.FailNode)
		}
		return nil

	case "random":
		sys := harness.Observation4System(implSel)
		fails := 0
		for seed := int64(0); seed < int64(*trees); seed++ {
			tree, err := harness.RandomBranchTree(sys, seed, *prefix, *fanout)
			if err != nil {
				return err
			}
			res, err := lincheck.CheckStrong(lincheck.FromSchedTree(tree), sp)
			if err != nil {
				return err
			}
			if !res.Ok {
				fails++
				fmt.Printf("  seed %d: NOT prefix-preserving (fail at %s)\n", seed, res.FailNode)
				if *verbose {
					fmt.Println(tree.T.Interpreted())
				}
			}
		}
		fmt.Printf("scenario: %d random branching trees on %s — %d violations\n", *trees, implSel, fails)
		return nil

	case "hunt":
		var schedule []int
		if implSel == harness.ABALinearizable {
			// One natural execution of the Observation 4 workload:
			// dw1; dr1 through line 16; dw2..dw5; dr1 completion; dr2.
			for _, seg := range []struct{ pid, k int }{{1, 4}, {0, 3}, {1, 16}, {0, 9}} {
				for i := 0; i < seg.k; i++ {
					schedule = append(schedule, seg.pid)
				}
			}
		} else {
			probe := sched.Run(harness.Observation4System(implSel), harness.PriorityAdversary(1, 0), sched.Options{})
			if !probe.Completed() {
				return fmt.Errorf("hunt probe incomplete: %v", probe.Err)
			}
			schedule = probe.Schedule
		}
		res, err := harness.Hunt(
			func() sched.System { return harness.Observation4System(implSel) },
			schedule, sp,
			[][]int{{1, 0}, {0, 1}},
		)
		if err != nil {
			return err
		}
		fmt.Printf("scenario: guided hunt on %s — %d cut points, violations at cuts %v\n",
			implSel, res.CutsTried, res.Violations)
		if implSel == harness.ABALinearizable && len(res.Violations) == 0 {
			return fmt.Errorf("hunt failed to rediscover Observation 4")
		}
		if implSel == harness.ABAStrong && len(res.Violations) != 0 {
			return fmt.Errorf("Algorithm 2 violated prefix preservation")
		}
		return nil

	default:
		return fmt.Errorf("unknown scenario %q", *scenario)
	}
}
