package main

import (
	"testing"
)

func TestObs4Scenario(t *testing.T) {
	// Succeeds precisely when the Observation 4 violation is reproduced.
	if err := run([]string{"-scenario", "obs4"}); err != nil {
		t.Fatal(err)
	}
}

func TestExploreScenarioAlg1(t *testing.T) {
	if err := run([]string{"-scenario", "explore", "-impl", "alg1", "-writes", "1", "-reads", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestExploreScenarioAlg2(t *testing.T) {
	if err := run([]string{"-scenario", "explore", "-impl", "alg2", "-writes", "1", "-reads", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomScenario(t *testing.T) {
	if err := run([]string{"-scenario", "random", "-impl", "alg2", "-trees", "5"}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownScenario(t *testing.T) {
	if err := run([]string{"-scenario", "nope"}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestExploreNodeBudgetError(t *testing.T) {
	if err := run([]string{"-scenario", "explore", "-maxnodes", "3"}); err == nil {
		t.Fatal("tiny node budget should error")
	}
}

func TestHuntScenarioAlg1(t *testing.T) {
	if err := run([]string{"-scenario", "hunt", "-impl", "alg1"}); err != nil {
		t.Fatal(err)
	}
}

func TestHuntScenarioAlg2(t *testing.T) {
	if err := run([]string{"-scenario", "hunt", "-impl", "alg2"}); err != nil {
		t.Fatal(err)
	}
}
